"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.n == 64
        assert args.algorithm == "greedy"
        assert args.workload == "poisson"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("e1:", "e4:", "a3:"):
            assert exp_id in out

    def test_experiment_e1(self, capsys):
        assert main(["experiment", "e1"]) == 0
        out = capsys.readouterr().out
        assert "A_G" in out and "[E1]" in out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "zz"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_simulate_greedy(self, capsys):
        assert main(["simulate", "--n", "16", "--tasks", "60", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "max load" in out
        assert "competitive ratio" in out

    def test_simulate_periodic_with_d(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--n", "16",
                    "--algorithm", "periodic",
                    "--d", "1",
                    "--workload", "churn",
                    "--tasks", "200",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "reallocations" in out

    def test_simulate_random_algorithm(self, capsys):
        assert main(["simulate", "--algorithm", "random", "--n", "16", "--tasks", "50"]) == 0

    def test_simulate_optimal_ratio_one(self, capsys):
        assert main(["simulate", "--algorithm", "optimal", "--n", "16", "--tasks", "80"]) == 0
        out = capsys.readouterr().out
        assert "competitive ratio  : 1.000" in out


class TestArchiveWorkflow:
    def test_save_and_audit_roundtrip(self, tmp_path, capsys):
        archive = tmp_path / "run.json"
        assert (
            main(
                [
                    "simulate", "--n", "16", "--workload", "churn",
                    "--tasks", "150", "--algorithm", "periodic", "--d", "1",
                    "--save-run", str(archive),
                ]
            )
            == 0
        )
        assert archive.exists()
        capsys.readouterr()
        assert main(["audit", str(archive)]) == 0
        out = capsys.readouterr().out
        assert "verdict            : OK" in out

    def test_audit_detects_tampering(self, tmp_path, capsys):
        import json

        archive = tmp_path / "run.json"
        main(
            [
                "simulate", "--n", "16", "--workload", "burst",
                "--tasks", "20", "--save-run", str(archive),
            ]
        )
        payload = json.loads(archive.read_text())
        tid = next(iter(payload["segments"]))
        payload["segments"][tid][0][0] += 0.5  # shift a start time
        archive.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["audit", str(archive)]) == 1
        assert "FAILED" in capsys.readouterr().out


class TestJobsOption:
    def test_sweep_jobs_matches_serial(self, capsys):
        argv = ["sweep", "--n", "8", "--tasks", "40", "--seed", "2",
                "--d-values", "0,1"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main([*argv, "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial


class TestGracefulErrors:
    def test_library_errors_become_clean_messages(self, capsys):
        # 32 PEs is not a square count: Mesh2D must reject it, and the CLI
        # must surface that as a message + exit code, not a traceback.
        assert main(["simulate", "--n", "32", "--topology", "mesh", "--tasks", "5"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "square PE count" in err

    def test_topology_option_runs(self, capsys):
        assert (
            main(
                ["simulate", "--n", "16", "--topology", "hypercube",
                 "--workload", "burst", "--tasks", "20"]
            )
            == 0
        )
        assert "hypercube" in capsys.readouterr().out


class TestUnknownAlgorithmErrors:
    def test_compare_unknown_algorithm_is_clean(self, capsys):
        # A typo'd registry name must surface as the standard clean error
        # (message + exit 2), not a KeyError traceback.
        argv = ["compare", "--n", "16", "--tasks", "20", "--algorithms", "greedly"]
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "error: unknown algorithm 'greedly'" in err
        assert "Traceback" not in err

    def test_unknown_algorithm_error_lists_known_names(self, capsys):
        main(["compare", "--n", "16", "--tasks", "20", "--algorithms", "nope"])
        err = capsys.readouterr().err
        assert "known:" in err and "greedy" in err

    def test_registry_error_is_still_a_keyerror(self):
        # Backward compatibility: callers catching KeyError keep working.
        from repro.core.registry import make_algorithm
        from repro.errors import ReproError, UnknownAlgorithmError
        from repro.machines.tree import TreeMachine

        with pytest.raises(KeyError):
            make_algorithm("nope", TreeMachine(4))
        assert issubclass(UnknownAlgorithmError, ReproError)


class TestVerifyCommand:
    def test_small_campaign_is_green(self, capsys):
        assert main(["verify", "--n", "16", "--sequences", "6", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "sequences fuzzed   : 6" in out
        assert "verdict            : OK" in out
        assert "features covered" in out

    def test_writes_markdown_report(self, tmp_path, capsys):
        report = tmp_path / "verify.md"
        argv = ["verify", "--n", "16", "--sequences", "4", "--out", str(report)]
        assert main(argv) == 0
        text = report.read_text()
        assert "# Differential verification report" in text
        assert "Tightest bound instances" in text

    def test_algorithm_subset_and_unknown_name(self, capsys):
        assert main(["verify", "--n", "16", "--sequences", "3",
                     "--algorithms", "greedy,optimal"]) == 0
        capsys.readouterr()
        assert main(["verify", "--n", "16", "--sequences", "3",
                     "--algorithms", "nope"]) == 2
        assert "error: unknown algorithm" in capsys.readouterr().err

    def test_replays_committed_corpus(self, capsys):
        from pathlib import Path

        corpus = Path(__file__).resolve().parent / "corpus"
        assert main(["verify", "--replay", str(corpus)]) == 0
        out = capsys.readouterr().out
        assert "all corpus entries pass" in out


class TestInterrupts:
    """Exit-code conventions when the user (or the pipe) goes away."""

    def _parser_raising(self, exc):
        import argparse

        def boom(args):
            raise exc

        def fake_build_parser():
            p = argparse.ArgumentParser()
            p.set_defaults(func=boom)
            return p

        return fake_build_parser

    def test_keyboard_interrupt_exits_130_with_note(self, monkeypatch, capsys):
        monkeypatch.setattr(
            "repro.cli.build_parser", self._parser_raising(KeyboardInterrupt())
        )
        assert main([]) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "--resume" in err

    def test_broken_pipe_exits_141_silently(self, monkeypatch, capsys):
        monkeypatch.setattr(
            "repro.cli.build_parser", self._parser_raising(BrokenPipeError())
        )
        assert main([]) == 141
        assert capsys.readouterr().err == ""

    class _SignallingStdin:
        """One good event line, then the stream raises a signal exception
        — models Ctrl-C / a vanished reader mid-serve."""

        def __init__(self, exc):
            self._exc = exc

        def __iter__(self):
            yield '{"kind":"arrival","size":2}\n'
            raise self._exc

    @pytest.mark.parametrize(
        "exc,code", [(KeyboardInterrupt, 130), (BrokenPipeError, 141)]
    )
    def test_serve_signal_mid_stream_commits_then_exits(
        self, monkeypatch, capsys, tmp_path, exc, code
    ):
        """Satellite contract: signals during serving (including SLO
        backpressure stalls) keep the 130/141 convention AND the close()
        commit — the absorbed event must survive into a resumed session."""
        import json

        journal = tmp_path / "interrupted.journal"
        monkeypatch.setattr("sys.stdin", self._SignallingStdin(exc()))
        argv = [
            "serve", "--n", "8", "--slo-target", "2",
            "--journal", str(journal), "--fsync", "batch",
        ]
        assert main(argv) == code
        capsys.readouterr()
        # The finally-path close() committed the group-commit buffer.
        monkeypatch.setattr("sys.stdin", io.StringIO('{"op":"status"}\n'))
        assert main(["serve", "--n", "8", "--slo-target", "2",
                     "--journal", str(journal)]) == 0
        status = json.loads(
            capsys.readouterr().out.strip().splitlines()[0]
        )
        assert status["events"] == 1 and status["active_tasks"] == 1


class TestFaultFlags:
    def test_simulate_with_faults_prints_degradation(self, capsys):
        assert (
            main(
                [
                    "simulate", "--n", "16", "--workload", "churn",
                    "--tasks", "120", "--algorithm", "periodic", "--d", "1",
                    "--faults", "--seed", "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fault plan" in out
        assert "min surviving" in out

    def test_verify_with_faults_reports_fault_mode(self, capsys):
        assert (
            main(["verify", "--n", "16", "--sequences", "3", "--faults"]) == 0
        )
        out = capsys.readouterr().out
        assert "fault-mode checks" in out
        assert "verdict            : OK" in out

    def test_verify_slo_reports_slo_mode(self, capsys):
        assert (
            main(["verify", "--n", "16", "--sequences", "4", "--slo"]) == 0
        )
        out = capsys.readouterr().out
        assert "slo-mode checks" in out
        assert "verdict            : OK" in out

    def test_verify_resume_matches_uninterrupted(self, tmp_path, capsys):
        ckpt = tmp_path / "verify.ckpt"
        argv = ["verify", "--n", "16", "--sequences", "4", "--seed", "9"]
        assert main(argv + ["--resume", str(ckpt)]) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume", str(ckpt)]) == 0
        resumed = capsys.readouterr().out
        assert main(argv) == 0
        plain = capsys.readouterr().out

        def stats(text):
            return [
                line for line in text.splitlines()
                if "checks run" in line or "verdict" in line
            ]

        assert stats(first) == stats(resumed) == stats(plain)


class TestStreaming:
    """`repro emit`, `repro simulate --stream`, and `repro serve`."""

    def _stdin(self, monkeypatch, text):
        import io
        monkeypatch.setattr("sys.stdin", io.StringIO(text))

    def test_emit_prints_jsonl(self, capsys):
        import json

        assert main(["emit", "--n", "8", "--tasks", "10", "--seed", "1"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        for line in lines:
            record = json.loads(line)
            assert record["kind"] in ("arrival", "departure")

    def test_emit_pipes_into_stream_simulate(self, capsys, monkeypatch):
        import json

        assert main(["emit", "--n", "8", "--tasks", "10", "--seed", "1"]) == 0
        emitted = capsys.readouterr().out
        self._stdin(monkeypatch, emitted)
        assert main(["simulate", "--stream", "--n", "8", "--seed", "1"]) == 0
        captured = capsys.readouterr()
        decisions = [json.loads(l) for l in captured.out.strip().splitlines()]
        assert len(decisions) == len(emitted.strip().splitlines())
        assert all("max_load" in d for d in decisions)
        assert "stream done" in captured.err

    def test_stream_rejects_garbage(self, capsys, monkeypatch):
        self._stdin(monkeypatch, "{not json\n")
        assert main(["simulate", "--stream", "--n", "8"]) == 2
        assert "invalid event JSON" in capsys.readouterr().err

    def test_stream_save_run_audits(self, capsys, monkeypatch, tmp_path):
        path = tmp_path / "stream-run.json"
        self._stdin(
            monkeypatch,
            '{"kind":"arrival","size":4}\n'
            '{"kind":"arrival","size":2,"time":1.0}\n'
            '{"kind":"departure","id":0,"time":2.0}\n',
        )
        assert main(
            ["simulate", "--stream", "--n", "8", "--save-run", str(path)]
        ) == 0
        capsys.readouterr()
        assert main(["audit", str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_serve_ops_and_errors(self, capsys, monkeypatch):
        import json

        self._stdin(
            monkeypatch,
            '{"kind":"arrival","size":2}\n'
            '{"op":"status"}\n'
            '{"kind":"departure","id":99}\n'  # unknown task -> error record
            "not json at all\n"
            '{"op":"nope"}\n',
        )
        assert main(["serve", "--n", "8"]) == 0
        out_lines = capsys.readouterr().out.strip().splitlines()
        decision = json.loads(out_lines[0])
        assert decision["kind"] == "arrival"
        status = json.loads(out_lines[1])
        assert status["events"] == 1
        assert "error" in json.loads(out_lines[2])
        assert "error" in json.loads(out_lines[3])
        assert "error" in json.loads(out_lines[4])

    def test_serve_journal_resume(self, capsys, monkeypatch, tmp_path):
        import json

        journal = tmp_path / "serve.journal"
        self._stdin(monkeypatch, '{"kind":"arrival","size":2}\n')
        assert main(["serve", "--n", "8", "--journal", str(journal)]) == 0
        capsys.readouterr()
        self._stdin(monkeypatch, '{"op":"status"}\n')
        assert main(["serve", "--n", "8", "--journal", str(journal)]) == 0
        captured = capsys.readouterr()
        assert "resumed 1 event(s)" in captured.err
        status = json.loads(captured.out.strip().splitlines()[0])
        assert status["events"] == 1 and status["active_tasks"] == 1

    def test_serve_error_records_carry_line_numbers(self, capsys, monkeypatch):
        """Satellite contract: every error record names the offending
        stream line, and the session keeps serving afterwards."""
        import json

        self._stdin(
            monkeypatch,
            '{"kind":"arrival","size":2}\n'
            "{broken json\n"
            '{"op":"bogus"}\n'
            '{"kind":"arrival","size":4}\n',
        )
        assert main(["serve", "--n", "8"]) == 0
        out = [json.loads(l) for l in capsys.readouterr().out.strip().splitlines()]
        bad_json, bad_op = out[1], out[2]
        assert bad_json["error"].startswith("invalid JSON")
        assert bad_json["op"] is None and bad_json["line"] == 2
        assert bad_op["op"] == "bogus" and bad_op["line"] == 3
        # The line after both errors was still served normally.
        assert out[3]["kind"] == "arrival" and out[3]["task_id"] == 1

    def test_serve_slo_emits_typed_outcomes(self, capsys, monkeypatch):
        import json

        self._stdin(
            monkeypatch,
            '{"kind":"arrival","size":8}\n'   # admitted (load 1 everywhere)
            '{"kind":"arrival","size":4}\n'   # queued: target 1 reached
            '{"kind":"arrival","size":4}\n'   # rejected: queue full
            '{"kind":"departure","id":0}\n'   # departs and drains task 1
            '{"op":"status"}\n',
        )
        assert main(
            ["serve", "--n", "8", "--slo-target", "1", "--slo-queue", "1"]
        ) == 0
        captured = capsys.readouterr()
        out = [json.loads(l) for l in captured.out.strip().splitlines()]
        assert out[0]["kind"] == "arrival" and "node" in out[0]
        assert out[1] == {"slo": "queued", "id": 1, "position": 0, "queued": 1}
        assert out[2]["slo"] == "rejected" and "retry_after" in out[2]
        assert out[3]["kind"] == "departure"
        assert out[4]["dequeued"] is True and out[4]["task_id"] == 1
        status = out[5]
        assert status["slo"]["load_target"] == 1
        assert status["rejected_total"] == 1 and status["queued_tasks"] == 0
        assert ", 0 queued, 1 rejected" in captured.err

    def test_serve_backpressure_emits_overloaded_and_commits(
        self, capsys, monkeypatch, tmp_path
    ):
        """Above the high watermark the server emits an ``overloaded``
        record and flushes the journal before reading on."""
        import json

        import repro.service as service_mod

        real_policy = service_mod.SLOPolicy

        def tight_policy(**kw):
            kw.setdefault("high_watermark", 2)
            kw.setdefault("low_watermark", 1)
            return real_policy(**kw)

        monkeypatch.setattr(service_mod, "SLOPolicy", tight_policy)
        journal = tmp_path / "overload.journal"
        self._stdin(
            monkeypatch,
            '{"kind":"arrival","size":1}\n'
            '{"kind":"arrival","size":1}\n'
            '{"kind":"arrival","size":1}\n',
        )
        assert main(
            [
                "serve", "--n", "8", "--slo-target", "4",
                "--journal", str(journal), "--fsync", "batch",
            ]
        ) == 0
        out = [json.loads(l) for l in capsys.readouterr().out.strip().splitlines()]
        overloaded = [o for o in out if o.get("overloaded")]
        assert overloaded, out
        assert overloaded[0]["journal_pending"] >= 2
        assert overloaded[0]["retry_after"] > 0
        # The stall committed: every admitted event is on disk.
        from repro.sim.frames import iter_journal_payloads

        assert len(iter_journal_payloads(journal)) == 3


class TestBatchedStreaming:
    """`simulate --stream --batch K --fsync ...`: amortised, same answers."""

    def _stdin(self, monkeypatch, text):
        import io
        monkeypatch.setattr("sys.stdin", io.StringIO(text))

    def test_batched_stream_equals_per_event(self, capsys, monkeypatch):
        assert main(["emit", "--n", "8", "--tasks", "30", "--seed", "4"]) == 0
        emitted = capsys.readouterr().out

        self._stdin(monkeypatch, emitted)
        assert main(["simulate", "--stream", "--n", "8", "--seed", "4"]) == 0
        per_event = capsys.readouterr().out.strip().splitlines()

        self._stdin(monkeypatch, emitted)
        assert main(
            ["simulate", "--stream", "--batch", "7", "--n", "8", "--seed", "4"]
        ) == 0
        batched = capsys.readouterr().out.strip().splitlines()
        assert batched == per_event

    def test_batched_stream_with_journal_resumes(
        self, capsys, monkeypatch, tmp_path
    ):
        import json

        journal = tmp_path / "stream.journal"
        assert main(["emit", "--n", "8", "--tasks", "20", "--seed", "2"]) == 0
        emitted = capsys.readouterr().out
        self._stdin(monkeypatch, emitted)
        assert main(
            [
                "simulate", "--stream", "--batch", "8",
                "--fsync", "batch", "--journal", str(journal),
                "--n", "8", "--seed", "2",
            ]
        ) == 0
        capsys.readouterr()
        assert journal.exists()
        # The journal resumes in `serve` (same session wire format).
        self._stdin(monkeypatch, '{"op":"status"}\n')
        assert main(["serve", "--n", "8", "--journal", str(journal)]) == 0
        captured = capsys.readouterr()
        status = json.loads(captured.out.strip().splitlines()[0])
        assert status["events"] == len(emitted.strip().splitlines())

    def test_bad_fsync_policy_is_a_clean_error(self, capsys, monkeypatch, tmp_path):
        self._stdin(monkeypatch, '{"kind":"arrival","size":2}\n')
        code = main(
            [
                "simulate", "--stream", "--n", "8",
                "--journal", str(tmp_path / "j"), "--fsync", "nope",
            ]
        )
        assert code != 0
        assert "fsync" in capsys.readouterr().err

    def test_serve_control_op_flushes_group_commit(
        self, capsys, monkeypatch, tmp_path
    ):
        """Every control op is a commit point: it must flush the pending
        group-commit buffer before answering."""
        import json

        from repro.service import AllocationSession

        pending_at_flush = []
        original = AllocationSession.flush

        def spying_flush(self):
            if self._journal is not None:
                pending_at_flush.append(self._journal.pending)
            original(self)

        monkeypatch.setattr(AllocationSession, "flush", spying_flush)
        journal = tmp_path / "serve.journal"
        self._stdin(
            monkeypatch,
            '{"kind":"arrival","size":2}\n'
            '{"kind":"arrival","size":4}\n'
            '{"op":"status"}\n'
            '{"op":"snapshot"}\n',
        )
        assert main(
            ["serve", "--n", "8", "--journal", str(journal), "--fsync", "batch"]
        ) == 0
        captured = capsys.readouterr()
        status = json.loads(captured.out.strip().splitlines()[2])
        assert status["events"] == 2
        # status saw 2 buffered records and committed them; snapshot then
        # had nothing pending.
        assert pending_at_flush == [2, 0]
        from repro.sim.frames import iter_journal_payloads

        assert len(iter_journal_payloads(journal)) == 2

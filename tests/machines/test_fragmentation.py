"""Tests for the fragmentation potential (the Thm 4.3 proof's measure)."""

import numpy as np
import pytest

from repro.machines.fragmentation import (
    fragmentation_profile,
    machine_potential,
    submachine_potential,
)
from repro.machines.hierarchy import Hierarchy
from repro.types import TaskId


@pytest.fixture
def h8():
    return Hierarchy(8)


def _state(h, assignments):
    """assignments: list of (task_id, node). Returns (loads, placements, sizes)."""
    loads = np.zeros(h.num_leaves, dtype=np.int64)
    placements = {}
    sizes = {}
    for tid, node in assignments:
        lo, hi = h.leaf_span(node)
        loads[lo:hi] += 1
        placements[TaskId(tid)] = node
        sizes[TaskId(tid)] = hi - lo
    return loads, placements, sizes


class TestSubmachinePotential:
    def test_empty_machine_zero(self, h8):
        loads, placements, sizes = _state(h8, [])
        assert submachine_potential(h8, loads, placements, sizes, 1) == 0

    def test_perfectly_packed_block_zero(self, h8):
        # One unit task on each leaf of the left 4-PE block: 4*1 - 4 = 0.
        loads, placements, sizes = _state(
            h8, [(i, h8.leaf_node(i)) for i in range(4)]
        )
        assert submachine_potential(h8, loads, placements, sizes, 2) == 0

    def test_single_stacked_leaf(self, h8):
        # Two unit tasks on leaf 0: maxload 2, volume 2 -> 4*2 - 2 = 6 holes.
        loads, placements, sizes = _state(
            h8, [(0, h8.leaf_node(0)), (1, h8.leaf_node(0))]
        )
        assert submachine_potential(h8, loads, placements, sizes, 2) == 6

    def test_task_spanning_blocks_counts_coverage(self, h8):
        # A root task covers both 4-PE blocks fully: each block sees
        # maxload 1, volume 4 -> potential 0.
        loads, placements, sizes = _state(h8, [(0, 1)])
        assert submachine_potential(h8, loads, placements, sizes, 2) == 0
        assert submachine_potential(h8, loads, placements, sizes, 3) == 0


class TestMachinePotential:
    def test_level_zero_is_n_maxload_minus_volume(self, h8):
        loads, placements, sizes = _state(
            h8, [(0, h8.leaf_node(0)), (1, h8.leaf_node(0)), (2, 2)]
        )
        # maxload = 3 on leaf 0; volume = 1 + 1 + 4 = 6.
        assert machine_potential(h8, loads, placements, sizes, 0) == 8 * 3 - 6

    def test_leaf_level_counts_per_pe_holes(self, h8):
        loads, placements, sizes = _state(
            h8, [(0, h8.leaf_node(0)), (1, h8.leaf_node(0))]
        )
        # Leaf 0: 1*2 - 2 = 0; other leaves 0 -> total 0 at leaf level.
        assert machine_potential(h8, loads, placements, sizes, 3) == 0

    def test_potential_nonnegative_everywhere(self, h8):
        rng = np.random.default_rng(0)
        for _ in range(20):
            assignments = []
            for tid in range(rng.integers(1, 10)):
                node = int(rng.integers(1, 16))
                assignments.append((tid, node))
            loads, placements, sizes = _state(h8, assignments)
            for level in range(4):
                assert machine_potential(h8, loads, placements, sizes, level) >= 0


class TestProfile:
    def test_profile_fields(self, h8):
        loads, placements, sizes = _state(
            h8, [(0, h8.leaf_node(0)), (1, h8.leaf_node(0))]
        )
        profile = fragmentation_profile(h8, loads, placements, sizes)
        assert profile.max_load == 2
        assert profile.volume == 2
        assert profile.whole_machine_potential == 8 * 2 - 2
        assert len(profile.potential_by_level) == 4
        assert profile.normalized(8) == pytest.approx(14 / 16)

    def test_empty_profile(self, h8):
        profile = fragmentation_profile(h8, np.zeros(8, dtype=np.int64), {}, {})
        assert profile.max_load == 0
        assert profile.normalized(8) == 0.0


class TestLemma3:
    """Numerical verification of the potential-increment lemma."""

    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_adversary_phase_increments(self, n):
        from repro.adversary.deterministic import DeterministicAdversary
        from repro.core.greedy import GreedyAlgorithm
        from repro.machines.tree import TreeMachine

        machine = TreeMachine(n)
        outcome = DeterministicAdversary(machine, float("inf")).run(
            GreedyAlgorithm(machine)
        )
        pots = outcome.phase_potentials
        assert len(pots) == outcome.num_phases
        for i in range(1, len(pots)):
            increment = pots[i] - pots[i - 1]
            assert increment >= (n - (1 << (i - 1))) / 2, (
                f"Lemma 3 violated at phase {i}: dP = {increment}"
            )

    def test_final_potential_implies_load(self):
        """P(T, p-1) = N*maxload - volume forces the Thm 4.3 load bound."""
        from repro.adversary.deterministic import DeterministicAdversary
        from repro.core.basic import BasicAlgorithm
        from repro.machines.tree import TreeMachine

        n = 64
        machine = TreeMachine(n)
        outcome = DeterministicAdversary(machine, float("inf")).run(
            BasicAlgorithm(machine)
        )
        pots = outcome.phase_potentials
        for i in range(1, len(pots)):
            assert pots[i] - pots[i - 1] >= (n - (1 << (i - 1))) / 2

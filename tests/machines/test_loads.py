"""Unit and property tests for the LoadTracker."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlacementError
from repro.machines.hierarchy import Hierarchy
from repro.machines.loads import LoadTracker


@pytest.fixture
def tracker():
    return LoadTracker(Hierarchy(8))


class TestPlacement:
    def test_place_updates_leaf_loads(self, tracker):
        tracker.place(1, 8)       # whole machine
        tracker.place(4, 2)       # PEs 0-1
        assert tracker.leaf_loads().tolist() == [2, 2, 1, 1, 1, 1, 1, 1]
        assert tracker.max_load == 2
        assert tracker.num_active == 2

    def test_remove_restores(self, tracker):
        tracker.place(4, 2)
        tracker.remove(4, 2)
        assert tracker.max_load == 0
        assert tracker.num_active == 0

    def test_place_rejects_wrong_size(self, tracker):
        with pytest.raises(PlacementError):
            tracker.place(8, 4)   # node 8 is a leaf (1 PE)
        with pytest.raises(PlacementError):
            tracker.place(1, 3)   # non power of two

    def test_place_rejects_invalid_node(self, tracker):
        with pytest.raises(PlacementError):
            tracker.place(0, 8)
        with pytest.raises(PlacementError):
            tracker.place(99, 1)

    def test_remove_requires_prior_place(self, tracker):
        with pytest.raises(PlacementError):
            tracker.remove(4, 2)

    def test_clear(self, tracker):
        tracker.place(1, 8)
        tracker.place(15, 1)
        tracker.clear()
        assert tracker.max_load == 0
        assert tracker.leaf_loads().sum() == 0


class TestQueries:
    def test_submachine_load_includes_ancestors(self, tracker):
        tracker.place(1, 8)   # root task loads every PE
        tracker.place(4, 2)   # PEs 0-1
        assert tracker.submachine_load(4) == 2
        assert tracker.submachine_load(5) == 1
        assert tracker.submachine_load(1) == 2
        assert tracker.ancestor_load(4) == 1
        assert tracker.node_count(4) == 1

    def test_leaf_load(self, tracker):
        tracker.place(1, 8)
        tracker.place(4, 2)
        assert tracker.leaf_load(0) == 2
        assert tracker.leaf_load(7) == 1

    def test_level_loads(self, tracker):
        tracker.place(4, 2)
        tracker.place(4, 2)
        tracker.place(7, 2)
        assert tracker.level_loads(2).tolist() == [2, 0, 0, 1]
        assert tracker.level_loads(4).tolist() == [2, 1]
        assert tracker.level_loads(8).tolist() == [2]

    def test_leftmost_min_is_first_argmin(self, tracker):
        tracker.place(4, 2)
        node, load = tracker.leftmost_min_submachine(2)
        assert (node, load) == (5, 0)  # first zero-load 2-PE submachine
        tracker.place(5, 2)
        tracker.place(6, 2)
        tracker.place(7, 2)
        node, load = tracker.leftmost_min_submachine(2)
        assert (node, load) == (4, 1)  # all tied at 1 -> leftmost

    def test_snapshot_is_copy(self, tracker):
        tracker.place(1, 8)
        snap = tracker.snapshot()
        snap[1] = 99
        assert tracker.node_count(1) == 1


@st.composite
def placement_scripts(draw, num_leaves=8, max_ops=40):
    """Random interleavings of place/remove on an N-leaf tracker."""
    h = Hierarchy(num_leaves)
    ops = []
    live: list[int] = []
    for _ in range(draw(st.integers(1, max_ops))):
        if live and draw(st.booleans()):
            idx = draw(st.integers(0, len(live) - 1))
            ops.append(("remove", live.pop(idx)))
        else:
            node = draw(st.integers(1, 2 * num_leaves - 1))
            ops.append(("place", node))
            live.append(node)
    return ops


class TestPropertyConsistency:
    @given(placement_scripts())
    @settings(max_examples=80, deadline=None)
    def test_tracker_matches_naive_accounting(self, ops):
        h = Hierarchy(8)
        tracker = LoadTracker(h)
        naive = np.zeros(8, dtype=np.int64)
        for op, node in ops:
            size = h.subtree_size(node)
            lo, hi = h.leaf_span(node)
            if op == "place":
                tracker.place(node, size)
                naive[lo:hi] += 1
            else:
                tracker.remove(node, size)
                naive[lo:hi] -= 1
        assert tracker.leaf_loads().tolist() == naive.tolist()
        assert tracker.max_load == int(naive.max()) if len(ops) else True
        tracker.check_invariants()

    @given(placement_scripts(num_leaves=16))
    @settings(max_examples=40, deadline=None)
    def test_level_loads_match_leaf_maxima(self, ops):
        h = Hierarchy(16)
        tracker = LoadTracker(h)
        for op, node in ops:
            size = h.subtree_size(node)
            if op == "place":
                tracker.place(node, size)
            else:
                tracker.remove(node, size)
        leaves = tracker.leaf_loads()
        for size in (1, 2, 4, 8, 16):
            expected = leaves.reshape(16 // size, size).max(axis=1)
            assert tracker.level_loads(size).tolist() == expected.tolist()

    @given(placement_scripts(num_leaves=8, max_ops=25))
    @settings(max_examples=40, deadline=None)
    def test_submachine_load_definition(self, ops):
        h = Hierarchy(8)
        tracker = LoadTracker(h)
        for op, node in ops:
            size = h.subtree_size(node)
            getattr(tracker, "place" if op == "place" else "remove")(node, size)
        leaves = tracker.leaf_loads()
        for v in range(1, 16):
            lo, hi = h.leaf_span(v)
            assert tracker.submachine_load(v) == int(leaves[lo:hi].max())


class TestLeftmostMinDescent:
    """The O(log N) descent must be indistinguishable from the brute-force
    level scan + argmin — value *and* leftmost tie-break — at every point
    of a random placement churn, including queries interleaved with
    mutations (the descent structure is built lazily on the first query
    and maintained incrementally afterwards)."""

    @given(placement_scripts(num_leaves=16, max_ops=60))
    @settings(max_examples=60, deadline=None)
    def test_descent_matches_scan_under_churn(self, ops):
        h = Hierarchy(16)
        tracker = LoadTracker(h)
        sizes = (1, 2, 4, 8, 16)
        for step, (op, node) in enumerate(ops):
            size = h.subtree_size(node)
            getattr(tracker, "place" if op == "place" else "remove")(node, size)
            # Query mid-churn every few steps so the lazily built structure
            # sees further mutations after construction.
            if step % 3 == 0:
                for qsize in sizes:
                    assert (
                        tracker.leftmost_min_submachine(qsize)
                        == tracker.leftmost_min_submachine_scan(qsize)
                    )
        for qsize in sizes:
            assert (
                tracker.leftmost_min_submachine(qsize)
                == tracker.leftmost_min_submachine_scan(qsize)
            )
        tracker.check_invariants()

    @given(placement_scripts(num_leaves=8, max_ops=40))
    @settings(max_examples=40, deadline=None)
    def test_interleaved_queries_keep_all_caches_consistent(self, ops):
        """leaf_loads journal + min-of-max structure stay in sync when
        queries and mutations interleave arbitrarily."""
        h = Hierarchy(8)
        tracker = LoadTracker(h)
        naive = np.zeros(8, dtype=np.int64)
        for step, (op, node) in enumerate(ops):
            size = h.subtree_size(node)
            lo, hi = h.leaf_span(node)
            if op == "place":
                tracker.place(node, size)
                naive[lo:hi] += 1
            else:
                tracker.remove(node, size)
                naive[lo:hi] -= 1
            if step % 2 == 0:
                assert tracker.leaf_loads().tolist() == naive.tolist()
                node_min, load = tracker.leftmost_min_submachine(2)
                assert tracker.leftmost_min_submachine_scan(2) == (node_min, load)
        tracker.check_invariants()

    def test_clear_resets_descent_structure(self):
        h = Hierarchy(8)
        tracker = LoadTracker(h)
        tracker.place(2, 4)
        assert tracker.leftmost_min_submachine(4) == (3, 0)
        tracker.clear()
        assert tracker.leftmost_min_submachine(4) == (2, 0)
        assert tracker.leaf_loads().tolist() == [0] * 8
        tracker.check_invariants()

    def test_journal_overflow_falls_back_to_rebuild(self):
        """More mutations between queries than the journal cap: the cache
        is rebuilt vectorized and stays exact."""
        h = Hierarchy(16)
        tracker = LoadTracker(h)
        naive = np.zeros(16, dtype=np.int64)
        rng = np.random.default_rng(7)
        for _ in range(300):
            node = int(rng.integers(1, 32))
            tracker.place(node, h.subtree_size(node))
            lo, hi = h.leaf_span(node)
            naive[lo:hi] += 1
        assert tracker.leaf_loads().tolist() == naive.tolist()
        tracker.check_invariants()


class TestRebuildFrom:
    """rebuild_from(placements) must equal clear() + place() per task."""

    @given(
        st.lists(st.integers(min_value=1, max_value=31), max_size=40),
        st.lists(st.integers(min_value=1, max_value=31), max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_incremental_rebuild(self, warmup, placements):
        h = Hierarchy(16)
        fast = LoadTracker(h)
        slow = LoadTracker(h)
        # Warm both trackers with prior state so rebuild_from really
        # replaces something (and must discard stale caches/journals).
        for node in warmup:
            fast.place(node, h.subtree_size(node))
            _ = fast.leaf_loads()  # populate cache + journal mid-stream
        pairs = [(node, h.subtree_size(node)) for node in placements]
        fast.rebuild_from(pairs)
        for node, size in pairs:
            slow.place(node, size)
        assert fast.leaf_loads().tolist() == slow.leaf_loads().tolist()
        assert fast.max_load == slow.max_load
        assert fast.num_active == slow.num_active
        for size in (1, 2, 4, 8, 16):
            assert fast.level_loads(size).tolist() == slow.level_loads(size).tolist()
            assert fast.leftmost_min_submachine(size) == slow.leftmost_min_submachine(size)
        fast.check_invariants()

    def test_rebuild_from_empty_clears(self):
        h = Hierarchy(8)
        tracker = LoadTracker(h)
        tracker.place(1, 8)
        tracker.place(4, 2)
        tracker.rebuild_from([])
        assert tracker.max_load == 0
        assert tracker.num_active == 0
        assert tracker.leaf_loads().tolist() == [0] * 8
        tracker.check_invariants()

    def test_rebuild_from_validates(self):
        tracker = LoadTracker(Hierarchy(8))
        with pytest.raises(PlacementError):
            tracker.rebuild_from([(8, 4)])  # node 8 is a leaf (1 PE)
        with pytest.raises(PlacementError):
            tracker.rebuild_from([(99, 1)])

    def test_clear_keeps_answering(self):
        tracker = LoadTracker(Hierarchy(8))
        tracker.place(1, 8)
        tracker.clear()
        assert tracker.leaf_loads().tolist() == [0] * 8
        tracker.place(4, 2)
        assert tracker.max_load == 1
        tracker.check_invariants()


class TestLeafLoadsView:
    def test_view_is_read_only_and_tracks_cache(self):
        tracker = LoadTracker(Hierarchy(8))
        tracker.place(4, 2)
        view = tracker.leaf_loads(copy=False)
        assert view.tolist() == [1, 1, 0, 0, 0, 0, 0, 0]
        with pytest.raises(ValueError):
            view[0] = 99
        # The view is live: after the next mutation + query it shows the
        # new loads without being re-fetched.
        tracker.place(5, 2)
        _ = tracker.leaf_loads(copy=False)
        assert view.tolist() == [1, 1, 1, 1, 0, 0, 0, 0]

    def test_copy_default_is_isolated(self):
        tracker = LoadTracker(Hierarchy(8))
        tracker.place(4, 2)
        snap = tracker.leaf_loads()
        tracker.place(4, 2)
        _ = tracker.leaf_loads()
        assert snap.tolist() == [1, 1, 0, 0, 0, 0, 0, 0]
        snap[0] = 42  # a real copy is writable

    def test_view_and_copy_agree_after_rebuild(self):
        h = Hierarchy(16)
        tracker = LoadTracker(h)
        tracker.rebuild_from([(1, 16), (2, 8), (8, 2)])
        assert tracker.leaf_loads(copy=False).tolist() == tracker.leaf_loads().tolist()


class TestJournalCapScaling:
    def test_scales_with_machine_size(self):
        from repro.machines.loads import _leaf_journal_cap

        assert _leaf_journal_cap(16) == 16          # floor
        assert _leaf_journal_cap(1 << 10) == 128    # N // 8
        assert _leaf_journal_cap(1 << 16) == 8192   # ceiling
        assert _leaf_journal_cap(1 << 20) == 8192

    def test_module_override_wins(self, monkeypatch):
        import repro.machines.loads as loads_mod

        monkeypatch.setattr(loads_mod, "_LEAF_JOURNAL_CAP", 3)
        tracker = LoadTracker(Hierarchy(64))
        assert tracker._leaf_journal_cap == 3
        h = tracker.hierarchy
        naive = np.zeros(64, dtype=np.int64)
        rng = np.random.default_rng(1)
        _ = tracker.leaf_loads()
        for _ in range(50):  # far past the tiny cap: overflow path
            node = int(rng.integers(1, 128))
            tracker.place(node, h.subtree_size(node))
            lo, hi = h.leaf_span(node)
            naive[lo:hi] += 1
        assert tracker.leaf_loads().tolist() == naive.tolist()
        tracker.check_invariants()


class TestApplySpans:
    """apply_spans(updates) == the same |delta| place()/remove() calls."""

    def test_matches_place_remove_loop(self):
        h = Hierarchy(16)
        bulk, slow = LoadTracker(h), LoadTracker(h)
        updates = [(1, 16, 2), (2, 8, 1), (8, 2, 3), (16, 1, 1)]
        bulk.apply_spans(updates)
        for node, size, delta in updates:
            for _ in range(delta):
                slow.place(node, size)
        assert bulk.leaf_loads().tolist() == slow.leaf_loads().tolist()
        assert bulk.max_load == slow.max_load
        assert bulk.num_active == slow.num_active
        bulk.check_invariants()

    def test_duplicate_nodes_coalesce_and_cancel(self):
        h = Hierarchy(16)
        tracker = LoadTracker(h)
        tracker.place(2, 8)
        # +2 then -2 at one node nets to zero; +1/-1 across two triples too.
        tracker.apply_spans([(4, 4, 2), (4, 4, -2), (8, 2, 1), (8, 2, -1)])
        assert tracker.leaf_loads().tolist() == [1] * 8 + [0] * 8
        assert tracker.num_active == 1
        tracker.check_invariants()

    def test_net_negative_rejected_before_any_mutation(self):
        h = Hierarchy(16)
        tracker = LoadTracker(h)
        tracker.place(2, 8)
        before = tracker.leaf_loads().tolist()
        with pytest.raises(PlacementError, match="no task placed"):
            tracker.apply_spans([(3, 8, 1), (2, 8, -2)])
        assert tracker.leaf_loads().tolist() == before
        assert tracker.num_active == 1
        tracker.check_invariants()

    def test_invalid_node_and_size_diagnostics(self):
        tracker = LoadTracker(Hierarchy(16))
        with pytest.raises(PlacementError, match="outside the machine"):
            tracker.apply_spans([(99, 1, 1)])
        with pytest.raises(PlacementError):
            tracker.apply_spans([(1, 3, 1)])     # non power of two
        with pytest.raises(PlacementError):
            tracker.apply_spans([(16, 2, 1)])    # leaf can't host 2 PEs

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=31),
                st.integers(min_value=1, max_value=3),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_equivalence_incremental_vs_rebuild(self, spans):
        # Small span lists take the per-node walk path; a wide warm-up
        # placement list pushes the same tracker over the rebuild
        # crossover on a second call — both must agree with place() loops.
        h = Hierarchy(16)
        bulk, slow = LoadTracker(h), LoadTracker(h)
        updates = [(node, h.subtree_size(node), d) for node, d in spans]
        bulk.apply_spans(updates)
        for node, size, d in updates:
            for _ in range(d):
                slow.place(node, size)
        assert bulk.leaf_loads().tolist() == slow.leaf_loads().tolist()
        assert bulk.max_load == slow.max_load
        bulk.check_invariants()

    def test_crossover_rebuild_path_is_exact(self):
        # Enough distinct nodes that len(acc) * 100 >= num_leaves forces
        # the vectorized full recompute branch.
        h = Hierarchy(16)
        bulk, slow = LoadTracker(h), LoadTracker(h)
        updates = [(node, h.subtree_size(node), 1) for node in range(1, 32)]
        assert len(updates) * 100 >= h.num_leaves
        bulk.apply_spans(updates)
        for node, size, d in updates:
            slow.place(node, size)
        assert bulk.leaf_loads().tolist() == slow.leaf_loads().tolist()
        assert bulk.max_load == slow.max_load
        bulk.check_invariants()

    def test_empty_and_all_zero_updates_are_noops(self):
        tracker = LoadTracker(Hierarchy(16))
        tracker.place(1, 16)
        before = tracker.leaf_loads().tolist()
        tracker.apply_spans([])
        tracker.apply_spans([(2, 8, 0), (3, 8, 0)])
        assert tracker.leaf_loads().tolist() == before
        tracker.check_invariants()


class TestJournalWidthBudget:
    """Staleness is decided by accumulated replay width, not entry count."""

    def test_many_narrow_spans_stay_incremental(self):
        # 2N width budget: N leaf-wide spans cost 1 each, so N/2 singleton
        # places stay under budget and never force a rebuild.
        h = Hierarchy(64)
        tracker = LoadTracker(h)
        _ = tracker.leaf_loads()  # populate the cache; journal from here
        for leaf in range(32):
            tracker.place(64 + leaf, 1)
        assert not tracker._leaf_stale
        assert len(tracker._leaf_journal) == 32
        assert tracker._leaf_journal_width == 32
        assert tracker.leaf_loads().tolist() == [1] * 32 + [0] * 32

    def test_wide_spans_exhaust_the_budget(self):
        # Whole-machine spans are N wide: the third one exceeds 2N and
        # flips the cache to stale (one vectorized rebuild on next query).
        h = Hierarchy(64)
        tracker = LoadTracker(h)
        _ = tracker.leaf_loads()
        tracker.place(1, 64)
        tracker.place(1, 64)
        assert not tracker._leaf_stale
        tracker.place(1, 64)
        assert tracker._leaf_stale
        assert tracker._leaf_journal == []
        assert tracker.leaf_loads().tolist() == [3] * 64
        tracker.check_invariants()

    def test_drain_resets_width(self):
        h = Hierarchy(64)
        tracker = LoadTracker(h)
        _ = tracker.leaf_loads()
        tracker.place(1, 64)
        assert tracker._leaf_journal_width == 64
        _ = tracker.leaf_loads()  # replays and drains the journal
        assert tracker._leaf_journal_width == 0
        assert tracker._leaf_journal == []

"""Tests for subcube recognition strategies (Chen & Shin related work)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError, InvalidMachineError
from repro.machines.subcube import (
    SubcubeAllocator,
    is_subcube,
    recognized_subcubes,
)


class TestIsSubcube:
    def test_singleton(self):
        assert is_subcube(frozenset([5]))

    def test_pair_differing_in_one_bit(self):
        assert is_subcube(frozenset([0b010, 0b011]))
        assert not is_subcube(frozenset([0b001, 0b010]))  # differ in 2 bits

    def test_pair_differing_in_two_bits_not_subcube(self):
        assert not is_subcube(frozenset([0b00, 0b11]))

    def test_square(self):
        assert is_subcube(frozenset([0b00, 0b01, 0b10, 0b11]))
        assert is_subcube(frozenset([0b100, 0b101, 0b110, 0b111]))

    def test_not_closed(self):
        # 3 bits span but only 4 elements.
        assert not is_subcube(frozenset([0b000, 0b001, 0b010, 0b100]))

    def test_wrong_cardinality(self):
        assert not is_subcube(frozenset([1, 2, 3]))
        assert not is_subcube(frozenset())


class TestRecognition:
    @pytest.mark.parametrize("n_exp", [3, 4, 5])
    def test_gray_recognizes_twice_buddy(self, n_exp):
        """Chen & Shin: the GC strategy recognizes 2x the buddy subcubes."""
        n = 1 << n_exp
        for k in range(1, n_exp + 1):
            buddy = recognized_subcubes(n, 1 << k, "buddy")
            gray = recognized_subcubes(n, 1 << k, "gray")
            assert len(gray) == 2 * len(buddy)

    @pytest.mark.parametrize("n_exp", [3, 4, 5])
    def test_every_gray_region_is_a_subcube(self, n_exp):
        n = 1 << n_exp
        for k in range(1, n_exp + 1):
            for region in recognized_subcubes(n, 1 << k, "gray"):
                assert is_subcube(region.addresses())

    def test_size_one_identical(self):
        assert len(recognized_subcubes(8, 1, "gray")) == len(
            recognized_subcubes(8, 1, "buddy")
        ) == 8

    def test_validation(self):
        with pytest.raises(InvalidMachineError):
            recognized_subcubes(8, 3, "buddy")
        with pytest.raises(InvalidMachineError):
            recognized_subcubes(8, 16, "buddy")
        with pytest.raises(InvalidMachineError):
            recognized_subcubes(8, 2, "magic")


class TestAllocator:
    def test_allocate_free_roundtrip(self):
        alloc = SubcubeAllocator(8, "buddy")
        h1 = alloc.allocate(4)
        assert alloc.num_busy == 4
        h2 = alloc.allocate(4)
        assert alloc.num_busy == 8
        assert not alloc.can_host(1)
        alloc.free(h1)
        assert alloc.can_host(4)
        alloc.free(h2)
        assert alloc.num_busy == 0

    def test_double_free_rejected(self):
        alloc = SubcubeAllocator(8, "gray")
        h = alloc.allocate(2)
        alloc.free(h)
        with pytest.raises(AllocationError):
            alloc.free(h)

    def test_exhaustion(self):
        alloc = SubcubeAllocator(4, "buddy")
        alloc.allocate(4)
        with pytest.raises(AllocationError):
            alloc.allocate(1)

    def test_gray_recognizes_straddling_block(self):
        """GC can place a 2-cube across a buddy boundary; buddy cannot."""
        buddy = SubcubeAllocator(8, "buddy")
        gray = SubcubeAllocator(8, "gray")
        # Occupy ranks 0-1 and 6-7 in both (ranks = addresses for buddy,
        # gray ranks map through the code but the *pattern* is what counts).
        for alloc in (buddy, gray):
            a = alloc.allocate(2)   # first 2-region
            assert alloc.num_busy == 2
        # Buddy's remaining aligned 4-blocks: [0-3] (partly busy), [4-7]
        # (free) -> it CAN host 4. Fill [4,8) then compare mid-straddle.
        hb = buddy.allocate(4)
        hg = gray.allocate(4)
        # Now both have 6 busy; only gray may still find a straddling pair
        # if its occupancy pattern allows. Recognition counts differ:
        assert len(recognized_subcubes(8, 4, "gray")) == 4
        assert len(recognized_subcubes(8, 4, "buddy")) == 2

    def test_largest_hostable(self):
        alloc = SubcubeAllocator(8, "buddy")
        assert alloc.largest_hostable == 8
        alloc.allocate(1)
        assert alloc.largest_hostable == 4

    def test_validation(self):
        with pytest.raises(InvalidMachineError):
            SubcubeAllocator(6)
        with pytest.raises(InvalidMachineError):
            SubcubeAllocator(8, "magic")

    @given(st.integers(0, 400))
    @settings(max_examples=25, deadline=None)
    def test_random_alloc_free_never_overlaps(self, seed):
        rng = np.random.default_rng(seed)
        alloc = SubcubeAllocator(16, "gray")
        live = []
        occupied = 0
        for _ in range(40):
            if live and rng.random() < 0.4:
                idx = int(rng.integers(len(live)))
                handle, size = live.pop(idx)
                alloc.free(handle)
                occupied -= size
            else:
                size = int(1 << rng.integers(0, 4))
                if alloc.can_host(size):
                    live.append((alloc.allocate(size), size))
                    occupied += size
            assert alloc.num_busy == occupied  # no overlap, no leak


class TestQueueingIntegration:
    def test_both_strategies_complete_same_workload(self):
        from repro.machines.hypercube import Hypercube
        from repro.sim.queueing import simulate_exclusive_queueing
        from repro.tasks.task import Task
        from repro.types import TaskId

        rng = np.random.default_rng(1)
        tasks = []
        t = 0.0
        for i in range(60):
            t += float(rng.exponential(0.3))
            tasks.append(
                Task(TaskId(i), int(1 << rng.integers(0, 3)), t,
                     work=float(rng.exponential(1.0)))
            )
        for strategy in ("buddy", "gray"):
            cube = Hypercube(8)
            result = simulate_exclusive_queueing(
                cube, tasks, allocator=SubcubeAllocator(8, strategy)
            )
            assert len(result.outcomes) == 60
            assert result.max_load == 1

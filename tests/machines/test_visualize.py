"""Tests for the ASCII allocation renderer."""

from repro.machines.hierarchy import Hierarchy
from repro.machines.loads import LoadTracker
from repro.machines.visualize import render_allocation, render_tree
from repro.types import TaskId


class TestRenderAllocation:
    def test_figure1_final_state(self):
        """Draw the paper's Figure 1 end state under greedy."""
        from repro.core.greedy import GreedyAlgorithm
        from repro.machines.tree import TreeMachine
        from repro.sim.engine import Simulator
        from repro.tasks.builder import figure1_sequence

        m = TreeMachine(4)
        sim = Simulator(m, GreedyAlgorithm(m))
        for ev in figure1_sequence():
            sim.step(ev)
        text = render_allocation(
            m.hierarchy,
            sim.placements,
            labels={TaskId(0): "t1", TaskId(2): "t3", TaskId(4): "t5"},
        )
        assert "t1" in text and "t3" in text and "t5" in text
        assert "2" in text.splitlines()[-1]  # load row shows the stack of 2

    def test_empty_state(self):
        h = Hierarchy(4)
        text = render_allocation(h, {})
        assert "no active tasks" in text
        assert text.splitlines()[-1].split()[:4] == ["0", "0", "0", "0"]

    def test_span_filling(self):
        h = Hierarchy(4)
        text = render_allocation(h, {TaskId(0): 1})  # whole machine
        task_row = text.splitlines()[2]
        assert task_row.count("t0") == 4

    def test_load_footer_counts_stacks(self):
        h = Hierarchy(4)
        text = render_allocation(h, {TaskId(0): 1, TaskId(1): h.leaf_node(0)})
        footer = text.splitlines()[-1]
        assert footer.split()[0] == "2"

    def test_custom_labels_and_width(self):
        h = Hierarchy(2)
        text = render_allocation(
            h, {TaskId(0): 1}, labels={TaskId(0): "job"}, cell_width=6
        )
        assert "job" in text


class TestRenderTree:
    def test_annotations(self):
        h = Hierarchy(4)
        tracker = LoadTracker(h)
        tracker.place(2, 2)
        text = render_tree(h, tracker)
        assert "node 1 [0,4) count=0 load=1" in text
        assert "node 2 [0,2) count=1 load=1" in text

    def test_empty_subtrees_elided(self):
        h = Hierarchy(8)
        tracker = LoadTracker(h)
        tracker.place(h.leaf_node(0), 1)
        text = render_tree(h, tracker)
        assert "(empty)" in text

    def test_depth_limit(self):
        h = Hierarchy(8)
        tracker = LoadTracker(h)
        tracker.place(h.leaf_node(0), 1)
        shallow = render_tree(h, tracker, max_depth=1)
        deep = render_tree(h, tracker)
        assert len(shallow.splitlines()) < len(deep.splitlines())

"""Unit and property tests for the heap-indexed hierarchy arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidMachineError
from repro.machines.hierarchy import Hierarchy


@pytest.fixture
def h16():
    return Hierarchy(16)


hier_sizes = st.sampled_from([2, 4, 8, 16, 64, 256])


class TestConstruction:
    @pytest.mark.parametrize("bad", [0, 3, 6, 12, -4])
    def test_rejects_non_powers(self, bad):
        with pytest.raises(InvalidMachineError):
            Hierarchy(bad)

    def test_counts(self, h16):
        assert h16.height == 4
        assert h16.num_nodes == 31
        assert h16.root == 1


class TestLevels:
    def test_level_of(self, h16):
        assert h16.level_of(1) == 0
        assert h16.level_of(2) == 1
        assert h16.level_of(3) == 1
        assert h16.level_of(16) == 4
        assert h16.level_of(31) == 4

    def test_subtree_size(self, h16):
        assert h16.subtree_size(1) == 16
        assert h16.subtree_size(2) == 8
        assert h16.subtree_size(16) == 1

    def test_level_for_size(self, h16):
        assert h16.level_for_size(16) == 0
        assert h16.level_for_size(1) == 4
        assert h16.level_for_size(4) == 2
        with pytest.raises(InvalidMachineError):
            h16.level_for_size(3)
        with pytest.raises(InvalidMachineError):
            h16.level_for_size(32)

    def test_nodes_at_level(self, h16):
        assert list(h16.nodes_at_level(0)) == [1]
        assert list(h16.nodes_at_level(2)) == [4, 5, 6, 7]
        with pytest.raises(InvalidMachineError):
            h16.nodes_at_level(5)

    def test_node_for_and_index(self, h16):
        assert h16.node_for(4, 0) == 4
        assert h16.node_for(4, 3) == 7
        assert h16.index_within_level(7) == 3
        with pytest.raises(InvalidMachineError):
            h16.node_for(4, 4)

    def test_num_submachines(self, h16):
        assert h16.num_submachines(4) == 4
        assert h16.num_submachines(16) == 1
        assert h16.num_submachines(3) == 0


class TestNavigation:
    def test_parent_children_sibling(self, h16):
        assert h16.parent(5) == 2
        assert h16.left(2) == 4
        assert h16.right(2) == 5
        assert h16.sibling(4) == 5
        assert h16.sibling(5) == 4

    def test_root_has_no_parent_or_sibling(self, h16):
        with pytest.raises(InvalidMachineError):
            h16.parent(1)
        with pytest.raises(InvalidMachineError):
            h16.sibling(1)

    def test_leaf_has_no_children(self, h16):
        with pytest.raises(InvalidMachineError):
            h16.left(16)

    def test_is_leaf(self, h16):
        assert not h16.is_leaf(1)
        assert not h16.is_leaf(15)
        assert h16.is_leaf(16)
        assert h16.is_leaf(31)

    def test_ancestors_and_path(self, h16):
        assert list(h16.ancestors(20)) == [10, 5, 2, 1]
        assert list(h16.path_to_root(20)) == [20, 10, 5, 2, 1]
        assert list(h16.ancestors(1)) == []

    def test_lca(self, h16):
        assert h16.lca(16, 17) == 8
        assert h16.lca(16, 31) == 1
        assert h16.lca(4, 9) == 4  # ancestor relationship
        assert h16.lca(7, 7) == 7

    def test_ancestor_and_contains(self, h16):
        assert h16.is_ancestor_or_self(2, 9)
        assert h16.is_ancestor_or_self(9, 9)
        assert not h16.is_ancestor_or_self(9, 2)
        assert h16.contains(2, 16)
        assert not h16.contains(3, 16)


class TestLeafSpans:
    def test_root_span(self, h16):
        assert h16.leaf_span(1) == (0, 16)

    def test_leaf_spans_partition_each_level(self, h16):
        for level in range(h16.height + 1):
            spans = [h16.leaf_span(v) for v in h16.nodes_at_level(level)]
            assert spans[0][0] == 0
            assert spans[-1][1] == 16
            for (a, b), (c, d) in zip(spans, spans[1:]):
                assert b == c

    def test_leaf_node_roundtrip(self, h16):
        for pe in range(16):
            node = h16.leaf_node(pe)
            assert h16.leaf_span(node) == (pe, pe + 1)
        with pytest.raises(InvalidMachineError):
            h16.leaf_node(16)

    def test_enclosing_node(self, h16):
        assert h16.enclosing_node(5, 4) == 5  # PEs 4..7 -> node index 1 at level 2
        assert h16.enclosing_node(0, 16) == 1
        assert h16.enclosing_node(15, 1) == 31

    def test_leaves_range(self, h16):
        assert list(h16.leaves(5)) == [4, 5, 6, 7]


class TestDistances:
    def test_tree_distance(self, h16):
        assert h16.tree_distance(16, 16) == 0
        assert h16.tree_distance(16, 17) == 2
        assert h16.tree_distance(16, 31) == 8
        assert h16.tree_distance(2, 3) == 2
        assert h16.tree_distance(1, 16) == 4

    def test_leaf_distance_symmetry(self, h16):
        for a, b in [(0, 1), (0, 15), (3, 12), (7, 8)]:
            assert h16.leaf_distance(a, b) == h16.leaf_distance(b, a)

    @given(hier_sizes, st.data())
    @settings(max_examples=50, deadline=None)
    def test_triangle_inequality(self, n, data):
        h = Hierarchy(n)
        pes = st.integers(0, n - 1)
        a, b, c = data.draw(pes), data.draw(pes), data.draw(pes)
        assert h.leaf_distance(a, c) <= h.leaf_distance(a, b) + h.leaf_distance(b, c)


class TestAncestorSums:
    def test_manual_example(self, h16):
        values = np.zeros(32, dtype=np.int64)
        values[1] = 5   # root
        values[2] = 3   # left half
        # Level-2 nodes: anc sums should be 8, 8, 5, 5.
        sums = h16.ancestor_sums(values, 2)
        assert sums.tolist() == [8, 8, 5, 5]

    def test_level_zero_is_zero(self, h16):
        values = np.ones(32, dtype=np.int64)
        assert h16.ancestor_sums(values, 0).tolist() == [0]

    def test_wrong_length_rejected(self, h16):
        with pytest.raises(InvalidMachineError):
            h16.ancestor_sums(np.zeros(10, dtype=np.int64), 2)

    @given(hier_sizes, st.integers(0, 6), st.data())
    @settings(max_examples=40, deadline=None)
    def test_matches_naive(self, n, level_raw, data):
        h = Hierarchy(n)
        level = min(level_raw, h.height)
        values = np.array(
            [0] + [data.draw(st.integers(0, 5)) for _ in range(2 * n - 1)],
            dtype=np.int64,
        )
        fast = h.ancestor_sums(values, level)
        naive = [
            sum(int(values[a]) for a in h.ancestors(v))
            for v in h.nodes_at_level(level)
        ]
        assert fast.tolist() == naive


class TestStructuralProperties:
    @given(hier_sizes, st.data())
    @settings(max_examples=50, deadline=None)
    def test_children_partition_parent_span(self, n, data):
        h = Hierarchy(n)
        if h.height == 0:
            return
        v = data.draw(st.integers(1, n - 1))  # internal nodes only
        lo, hi = h.leaf_span(v)
        llo, lhi = h.leaf_span(h.left(v))
        rlo, rhi = h.leaf_span(h.right(v))
        assert (llo, rhi) == (lo, hi)
        assert lhi == rlo

    @given(hier_sizes, st.data())
    @settings(max_examples=50, deadline=None)
    def test_lca_is_deepest_common_ancestor(self, n, data):
        h = Hierarchy(n)
        a = data.draw(st.integers(1, 2 * n - 1))
        b = data.draw(st.integers(1, 2 * n - 1))
        anc = h.lca(a, b)
        assert h.is_ancestor_or_self(anc, a)
        assert h.is_ancestor_or_self(anc, b)
        if not h.is_leaf(anc):
            # No child of the LCA dominates both.
            for child in (h.left(anc), h.right(anc)):
                assert not (
                    h.is_ancestor_or_self(child, a)
                    and h.is_ancestor_or_self(child, b)
                )

    @given(hier_sizes, st.data())
    @settings(max_examples=50, deadline=None)
    def test_enclosing_node_contains_leaf(self, n, data):
        h = Hierarchy(n)
        pe = data.draw(st.integers(0, n - 1))
        exp = data.draw(st.integers(0, h.height))
        size = 1 << exp
        node = h.enclosing_node(pe, size)
        lo, hi = h.leaf_span(node)
        assert lo <= pe < hi
        assert hi - lo == size

"""Aligned-subtree renumbering and the shard plan built on it."""

import pytest

from repro.errors import InvalidMachineError
from repro.machines.subtree import (
    global_to_subtree,
    owning_shard,
    shard_root,
    subtree_machine,
    subtree_to_global,
)
from repro.machines.tree import TreeMachine
from repro.service.shard import ShardPlan


class TestRenumbering:
    def test_trivial_subtree_is_identity(self):
        for node in range(1, 32):
            assert subtree_to_global(node, 1) == node
            assert global_to_subtree(node, 1) == node

    def test_bijection_over_whole_subtree(self):
        # Subtree rooted at host node 5 of a 16-PE machine: 8 host nodes
        # (5; 10,11; 20..23) must map onto local heap ids 1..7 and back.
        root = 5
        seen = set()
        for local in range(1, 8):
            g = int(subtree_to_global(local, root))
            assert global_to_subtree(g, root) == local
            seen.add(g)
        assert seen == {5, 10, 11, 20, 21, 22, 23}

    def test_outside_nodes_map_to_none(self):
        assert global_to_subtree(4, 5) is None  # sibling subtree
        assert global_to_subtree(2, 5) is None  # strict ancestor
        assert global_to_subtree(1, 5) is None

    def test_commutes_with_children(self):
        # child-of-map == map-of-child: 2v and 2v+1 stay children.
        root = 6
        for local in range(1, 4):
            g = int(subtree_to_global(local, root))
            assert int(subtree_to_global(2 * local, root)) == 2 * g
            assert int(subtree_to_global(2 * local + 1, root)) == 2 * g + 1

    def test_invalid_node_raises(self):
        with pytest.raises(InvalidMachineError):
            subtree_to_global(0, 1)


class TestShardHelpers:
    def test_shard_roots_partition_level(self):
        assert [int(shard_root(4, i)) for i in range(4)] == [4, 5, 6, 7]

    def test_owning_shard(self):
        # 16 PEs, 4 shards: nodes 1..3 are cross-shard (None).
        assert owning_shard(1, 4) is None
        assert owning_shard(2, 4) is None
        assert owning_shard(3, 4) is None
        assert owning_shard(4, 4) == 0
        assert owning_shard(11, 4) == 1  # 11 -> parent 5
        assert owning_shard(31, 4) == 3  # deepest leaf under root 7

    def test_single_shard_owns_everything(self):
        for node in range(1, 16):
            assert owning_shard(node, 1) == 0


class TestSubtreeMachine:
    def test_width_and_topology(self):
        host = TreeMachine(64)
        small = subtree_machine(host, 16)
        assert small.num_pes == 16
        assert type(small) is type(host)

    def test_bad_width_rejected(self):
        with pytest.raises(InvalidMachineError):
            subtree_machine(TreeMachine(16), 3)
        with pytest.raises(InvalidMachineError):
            subtree_machine(TreeMachine(16), 32)


class TestShardPlan:
    def test_validation(self):
        with pytest.raises(InvalidMachineError):
            ShardPlan(100, 4)  # non power of two machine
        with pytest.raises(InvalidMachineError):
            ShardPlan(16, 3)
        with pytest.raises(InvalidMachineError):
            ShardPlan(4, 8)  # more shards than PEs

    def test_roots_and_width(self):
        plan = ShardPlan(256, 4)
        assert plan.width == 64
        assert [int(plan.root(i)) for i in range(4)] == [4, 5, 6, 7]

    def test_owner_to_local_to_global_roundtrip(self):
        plan = ShardPlan(64, 4)
        hierarchy = TreeMachine(64).hierarchy
        owned = 0
        for node in range(1, hierarchy.num_nodes + 1):
            shard = plan.owner(node)
            if shard is None:
                assert int(node) < 4  # only the top K-1 nodes
                continue
            owned += 1
            local = plan.to_local(node, shard)
            assert int(plan.to_global(local, shard)) == int(node)
        assert owned == 127 - 3

    def test_to_local_rejects_foreign_node(self):
        plan = ShardPlan(64, 4)
        with pytest.raises(InvalidMachineError):
            plan.to_local(4, 1)  # node 4 belongs to shard 0

    def test_shard_machine_matches_width(self):
        plan = ShardPlan(64, 4)
        assert plan.shard_machine(TreeMachine(64)).num_pes == 16
        with pytest.raises(InvalidMachineError):
            plan.shard_machine(TreeMachine(32))

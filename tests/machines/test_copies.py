"""Unit and property tests for BuddyCopy and CopySet (the copies-of-T device)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError, PlacementError
from repro.machines.copies import BuddyCopy, CopySet
from repro.machines.hierarchy import Hierarchy


@pytest.fixture
def copy8():
    return BuddyCopy(Hierarchy(8))


class TestBuddyCopyBasics:
    def test_fresh_copy_fully_vacant(self, copy8):
        assert copy8.largest_vacant() == 8
        assert copy8.is_empty
        assert copy8.can_host(8)

    def test_allocate_leftmost(self, copy8):
        assert copy8.allocate(2) == 4      # PEs 0-1
        assert copy8.allocate(2) == 5      # next leftmost
        assert copy8.allocate(1) == 12     # leftmost free leaf = PE 4
        assert copy8.num_tasks == 3

    def test_allocate_whole_machine(self, copy8):
        assert copy8.allocate(8) == 1
        assert copy8.largest_vacant() == 0
        assert not copy8.can_host(1)

    def test_allocation_never_overlaps(self, copy8):
        copy8.allocate(4)                  # node 2, PEs 0-3
        node = copy8.allocate(4)
        assert node == 3                   # PEs 4-7
        with pytest.raises(AllocationError):
            copy8.allocate(1)

    def test_free_and_reuse(self, copy8):
        node = copy8.allocate(4)
        copy8.free(node)
        assert copy8.largest_vacant() == 8
        assert copy8.allocate(8) == 1

    def test_buddy_merge_on_free(self, copy8):
        a = copy8.allocate(2)  # node 4
        b = copy8.allocate(2)  # node 5
        copy8.allocate(4)      # node 3
        copy8.free(a)
        assert copy8.largest_vacant() == 2
        copy8.free(b)
        assert copy8.largest_vacant() == 4   # 4 and 5 merged into node 2

    def test_free_unassigned_rejected(self, copy8):
        with pytest.raises(AllocationError):
            copy8.free(4)

    def test_allocate_oversized_rejected(self, copy8):
        with pytest.raises(PlacementError):
            copy8.allocate(16)
        with pytest.raises(PlacementError):
            copy8.allocate(3)

    def test_assign_at_specific_node(self, copy8):
        copy8.assign_at(5)
        assert copy8.is_assigned(5)
        with pytest.raises(AllocationError):
            copy8.assign_at(5)       # already occupied
        with pytest.raises(AllocationError):
            copy8.assign_at(10)      # 10 is a child of 5 -> blocked ancestor
        with pytest.raises(AllocationError):
            copy8.assign_at(2)       # 2 contains 5 -> not entirely vacant

    def test_assigned_nodes_iteration(self, copy8):
        copy8.allocate(2)
        copy8.allocate(1)
        assert sorted(copy8.assigned_nodes()) == sorted(
            v for v in range(1, 16) if copy8.is_assigned(v)
        )


class TestCopySet:
    def test_first_fit_creates_copies_on_demand(self):
        cs = CopySet(Hierarchy(4))
        assert len(cs) == 0
        cid, node = cs.first_fit(4)
        assert (cid, node) == (0, 1)
        cid, node = cs.first_fit(4)
        assert (cid, node) == (1, 1)
        assert cs.num_copies == 2

    def test_first_fit_prefers_earliest_copy(self):
        cs = CopySet(Hierarchy(4))
        cs.first_fit(4)             # fills copy 0
        cid1, node1 = cs.first_fit(2)  # forces copy 1
        assert cid1 == 1
        cs.free(0, 1)               # copy 0 now empty again
        cid2, node2 = cs.first_fit(2)
        assert cid2 == 0            # reuses the earliest copy

    def test_nonempty_count(self):
        cs = CopySet(Hierarchy(4))
        cid, node = cs.first_fit(4)
        assert cs.num_nonempty_copies == 1
        cs.free(cid, node)
        assert cs.num_nonempty_copies == 0
        assert cs.num_copies == 1   # copies persist

    def test_free_unknown_copy_rejected(self):
        cs = CopySet(Hierarchy(4))
        with pytest.raises(AllocationError):
            cs.free(3, 1)

    def test_reset(self):
        cs = CopySet(Hierarchy(4))
        cs.first_fit(2)
        cs.reset()
        assert cs.num_copies == 0
        assert cs.total_tasks() == 0


@st.composite
def alloc_scripts(draw, max_ops=50):
    """Random interleavings of first_fit / free with power-of-two sizes."""
    ops = []
    live: list[int] = []  # indices into alloc results
    n_alloc = 0
    for _ in range(draw(st.integers(1, max_ops))):
        if live and draw(st.booleans()):
            idx = draw(st.integers(0, len(live) - 1))
            ops.append(("free", live.pop(idx)))
        else:
            size = 1 << draw(st.integers(0, 3))
            ops.append(("alloc", size))
            live.append(n_alloc)
            n_alloc += 1
    return ops


class TestCopySetProperties:
    @given(alloc_scripts())
    @settings(max_examples=60, deadline=None)
    def test_no_overlap_and_invariants(self, ops):
        h = Hierarchy(8)
        cs = CopySet(h)
        slots: dict[int, tuple[int, int]] = {}
        n_alloc = 0
        for op, arg in ops:
            if op == "alloc":
                slots[n_alloc] = cs.first_fit(arg)
                n_alloc += 1
            else:
                cid, node = slots.pop(arg)
                cs.free(cid, node)
        cs.check_invariants()
        # Within each copy, assigned leaf spans must be pairwise disjoint.
        per_copy: dict[int, list[tuple[int, int]]] = {}
        for cid, node in slots.values():
            per_copy.setdefault(cid, []).append(h.leaf_span(node))
        for spans in per_copy.values():
            spans.sort()
            for (a, b), (c, d) in zip(spans, spans[1:]):
                assert b <= c, "overlapping assignments within one copy"

    @given(alloc_scripts(max_ops=60))
    @settings(max_examples=60, deadline=None)
    def test_lemma2_copy_bound(self, ops):
        """CopySet first-fit (algorithm A_B) uses at most ceil(S/N) copies."""
        h = Hierarchy(8)
        cs = CopySet(h)
        slots: dict[int, tuple[int, int]] = {}
        n_alloc = 0
        total_arrival = 0
        for op, arg in ops:
            if op == "alloc":
                total_arrival += arg
                slots[n_alloc] = cs.first_fit(arg)
                n_alloc += 1
            else:
                cid, node = slots.pop(arg)
                cs.free(cid, node)
        assert cs.num_copies <= -(-total_arrival // 8)

    @given(alloc_scripts(max_ops=40))
    @settings(max_examples=40, deadline=None)
    def test_claim1_no_two_equal_maximal_vacant(self, ops):
        """Lemma 2 Claim 1: within one copy, maximal vacant submachines have
        pairwise distinct sizes (checked on the final state of every copy
        that A_B-style first-fit produces)."""
        h = Hierarchy(8)
        cs = CopySet(h)
        slots: dict[int, tuple[int, int]] = {}
        n_alloc = 0
        for op, arg in ops:
            if op == "alloc":
                slots[n_alloc] = cs.first_fit(arg)
                n_alloc += 1
            else:
                cid, node = slots.pop(arg)
                cs.free(cid, node)
        # Claim 1 is about the state A_B maintains across *arrivals only*;
        # departures can break it, so restrict to runs without frees.
        if any(op == "free" for op, _ in ops):
            return
        for copy_idx in range(cs.num_copies):
            copy = cs[copy_idx]
            maximal_sizes = []
            for v in range(1, 16):
                lo, hi = h.leaf_span(v)
                vacant = not any(
                    h.is_ancestor_or_self(a, v) or h.is_ancestor_or_self(v, a)
                    for a in copy.assigned_nodes()
                )
                if not vacant:
                    continue
                parent_vacant = v > 1 and not any(
                    h.is_ancestor_or_self(a, v >> 1) or h.is_ancestor_or_self(v >> 1, a)
                    for a in copy.assigned_nodes()
                )
                if not parent_vacant:
                    maximal_sizes.append(hi - lo)
            assert len(maximal_sizes) == len(set(maximal_sizes))

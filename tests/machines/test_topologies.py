"""Unit and property tests for the four physical topologies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidMachineError
from repro.machines.fattree import FatTree
from repro.machines.hypercube import Hypercube, gray_code, inverse_gray_code
from repro.machines.mesh import Mesh2D, morton_decode, morton_encode
from repro.machines.tree import TreeMachine


class TestTreeMachine:
    def test_basics(self):
        m = TreeMachine(16)
        assert m.topology_name == "tree"
        assert m.num_pes == 16
        assert m.log_num_pes == 4

    def test_rejects_non_power(self):
        with pytest.raises(InvalidMachineError):
            TreeMachine(12)

    def test_pe_distance(self):
        m = TreeMachine(8)
        assert m.pe_distance(0, 0) == 0
        assert m.pe_distance(0, 1) == 2   # via their shared switch
        assert m.pe_distance(0, 7) == 6   # leaf-root-leaf
        assert m.pe_distance(3, 4) == 6   # crosses the root

    def test_submachine_diameter(self):
        m = TreeMachine(16)
        assert m.submachine_diameter(m.hierarchy.leaf_node(0)) == 0
        assert m.submachine_diameter(1) == 8        # 2 * log 16
        assert m.submachine_diameter(2) == 6

    def test_switch_levels(self):
        m = TreeMachine(16)
        assert m.switch_levels_used(1) == 4
        assert m.switch_levels_used(m.hierarchy.leaf_node(3)) == 0

    def test_migration_distance_zero_for_same_node(self):
        m = TreeMachine(8)
        assert m.migration_distance(2, 2) == 0
        assert m.migration_distance(2, 3) == m.pe_distance(0, 4)

    def test_describe(self):
        d = TreeMachine(8).describe()
        assert d["topology"] == "tree"
        assert d["num_pes"] == 8

    def test_validate_task_size(self):
        m = TreeMachine(8)
        m.validate_task_size(8)
        with pytest.raises(InvalidMachineError):
            m.validate_task_size(16)
        with pytest.raises(InvalidMachineError):
            m.validate_task_size(3)


class TestGrayCode:
    @given(st.integers(0, 1 << 20))
    def test_roundtrip(self, x):
        assert inverse_gray_code(gray_code(x)) == x

    @given(st.integers(0, 1 << 20))
    def test_adjacent_codes_differ_in_one_bit(self, x):
        assert bin(gray_code(x) ^ gray_code(x + 1)).count("1") == 1

    def test_first_codewords(self):
        assert [gray_code(i) for i in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gray_code(-1)
        with pytest.raises(ValueError):
            inverse_gray_code(-1)


class TestHypercube:
    def test_binary_layout_identity(self):
        c = Hypercube(16)
        assert c.topology_name == "hypercube-binary"
        assert c.dimension == 4
        for pe in range(16):
            assert c.address_of(pe) == pe
            assert c.pe_at(pe) == pe

    def test_gray_layout_roundtrip(self):
        c = Hypercube(16, layout="gray")
        for pe in range(16):
            assert c.pe_at(c.address_of(pe)) == pe

    def test_unknown_layout_rejected(self):
        with pytest.raises(InvalidMachineError):
            Hypercube(8, layout="fancy")

    def test_hamming_distance(self):
        c = Hypercube(16)
        assert c.pe_distance(0, 15) == 4
        assert c.pe_distance(5, 5) == 0
        assert c.pe_distance(0b0101, 0b0110) == 2

    def test_gray_neighbours_adjacent(self):
        c = Hypercube(16, layout="gray")
        for pe in range(15):
            assert c.pe_distance(pe, pe + 1) == 1

    def test_subcube_mask(self):
        c = Hypercube(16)
        level, value = c.subcube_mask(5)   # level 2, index 1
        assert (level, value) == (2, 1)

    def test_submachine_diameter_binary(self):
        c = Hypercube(16)
        assert c.submachine_diameter(1) == 4
        assert c.submachine_diameter(2) == 3
        assert c.submachine_diameter(c.hierarchy.leaf_node(0)) == 0

    @pytest.mark.parametrize("layout", ["binary", "gray"])
    def test_aligned_blocks_are_subcubes(self, layout):
        # Diameter of a 2^x block must be exactly x in both layouts.
        c = Hypercube(16, layout=layout)
        h = c.hierarchy
        for level in range(h.height + 1):
            for v in h.nodes_at_level(level):
                assert c.submachine_diameter(v) == h.height - level

    def test_out_of_range(self):
        c = Hypercube(8)
        with pytest.raises(InvalidMachineError):
            c.address_of(8)
        with pytest.raises(InvalidMachineError):
            c.pe_at(-1)


class TestMorton:
    @given(st.integers(0, 1 << 20))
    def test_roundtrip(self, rank):
        x, y = morton_decode(rank)
        assert morton_encode(x, y) == rank

    def test_first_ranks(self):
        assert [morton_decode(i) for i in range(4)] == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            morton_decode(-1)
        with pytest.raises(ValueError):
            morton_encode(-1, 0)


class TestMesh2D:
    def test_requires_square_count(self):
        with pytest.raises(InvalidMachineError):
            Mesh2D(8)  # 2^3: not 4^k
        m = Mesh2D(16)
        assert m.side == 4
        assert m.topology_name == "mesh2d"

    def test_coordinates_within_grid(self):
        m = Mesh2D(16)
        for pe in range(16):
            x, y = m.coordinates_of(pe)
            assert 0 <= x < 4 and 0 <= y < 4
            assert m.pe_at(x, y) == pe

    def test_manhattan_distance(self):
        m = Mesh2D(16)
        # Morton rank 0 = (0,0); rank 15 = (3,3).
        assert m.pe_distance(0, 15) == 6
        assert m.pe_distance(0, 0) == 0

    def test_partition_shapes(self):
        m = Mesh2D(16)
        h = m.hierarchy
        assert m.partition_shape(1) == (4, 4)
        assert m.partition_shape(2) == (2, 4) or m.partition_shape(2) == (4, 2)
        assert m.partition_shape(h.leaf_node(0)) == (1, 1)

    def test_partition_is_contiguous_rectangle(self):
        m = Mesh2D(64)
        h = m.hierarchy
        for level in range(h.height + 1):
            for v in h.nodes_at_level(level):
                lo, hi = h.leaf_span(v)
                coords = [m.coordinates_of(pe) for pe in range(lo, hi)]
                xs = {c[0] for c in coords}
                ys = {c[1] for c in coords}
                w, hgt = m.partition_shape(v)
                assert len(xs) * len(ys) == len(coords)  # full rectangle
                assert {len(xs), len(ys)} == {w, hgt}

    def test_diameter_matches_shape(self):
        m = Mesh2D(16)
        assert m.submachine_diameter(1) == 6
        assert m.submachine_diameter(m.hierarchy.leaf_node(5)) == 0

    def test_out_of_range(self):
        m = Mesh2D(16)
        with pytest.raises(InvalidMachineError):
            m.coordinates_of(16)
        with pytest.raises(InvalidMachineError):
            m.pe_at(4, 0)


class TestFatTree:
    def test_parameters_validated(self):
        with pytest.raises(InvalidMachineError):
            FatTree(8, fatness=0.5)
        with pytest.raises(InvalidMachineError):
            FatTree(8, base_capacity=0.0)

    def test_capacity_grows_toward_root(self):
        ft = FatTree(16, fatness=2.0)
        caps = [ft.link_capacity(level) for level in range(4)]
        assert caps == sorted(caps, reverse=True)
        assert caps[-1] == 1.0            # leaf links at base capacity
        assert caps[0] == 8.0             # root links 2^(height-1)

    def test_fatness_one_is_plain_tree(self):
        ft = FatTree(16, fatness=1.0)
        assert all(ft.link_capacity(l) == 1.0 for l in range(4))

    def test_link_capacity_range(self):
        ft = FatTree(8)
        with pytest.raises(InvalidMachineError):
            ft.link_capacity(3)
        with pytest.raises(InvalidMachineError):
            ft.link_capacity(-1)

    def test_distance_same_as_tree(self):
        ft = FatTree(16)
        tree = TreeMachine(16)
        for a, b in [(0, 1), (0, 15), (6, 9)]:
            assert ft.pe_distance(a, b) == tree.pe_distance(a, b)

    def test_weighted_transfer_cost(self):
        ft = FatTree(4, fatness=2.0)
        # PEs 0 and 1 meet at a leaf-level switch: 2 links of capacity 1.
        assert ft.weighted_transfer_cost(0, 1) == pytest.approx(2.0)
        # PEs 0 and 3 cross the root: fat links make it cheaper per level.
        assert ft.weighted_transfer_cost(0, 3) == pytest.approx(2.0 / 2.0 + 2.0 / 1.0)
        assert ft.weighted_transfer_cost(2, 2) == 0.0

    def test_fat_cost_below_plain_cost(self):
        fat = FatTree(64, fatness=2.0)
        plain = FatTree(64, fatness=1.0)
        assert fat.weighted_transfer_cost(0, 63) < plain.weighted_transfer_cost(0, 63)

    def test_bisection_capacity(self):
        ft = FatTree(16, fatness=2.0)
        assert ft.bisection_capacity(1) == 2.0 * ft.link_capacity(0)
        with pytest.raises(InvalidMachineError):
            ft.bisection_capacity(ft.hierarchy.leaf_node(0))

"""Stateful (rule-based) Hypothesis test for :class:`LoadTracker`.

The unit suite checks place/remove/repack in hand-picked orders; this
machine lets Hypothesis interleave them arbitrarily and asserts after
*every* step that all of the tracker's redundant representations agree:

* the journal-backed ``leaf_loads`` cache against a naive difference-array
  recomputation from the shadow placement list (via the verify package's
  independent ``oracle_leaf_span``, which shares no code with the tracker);
* the O(log N) ``leftmost_min_submachine`` descent against the
  ``leftmost_min_submachine_scan`` oracle, for every submachine size;
* ``max_load`` and the tracker's own ``check_invariants``.

A dedicated churn rule overflows the leaf journal's replay-width budget
(2N leaf additions) so the
stale-flag → vectorised-rebuild path runs inside arbitrary histories, and
the repack rule exercises ``clear()`` + bulk re-placement (the A_M repack
idiom) rather than only incremental updates.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.machines.tree import TreeMachine
from repro.verify.oracle import oracle_leaf_span

N = 16
SIZES = [1, 2, 4, 8, 16]


def _nodes_for_size(size: int) -> range:
    count = N // size
    return range(count, 2 * count)


class LoadTrackerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.machine = TreeMachine(N)
        self.tracker = self.machine.new_load_tracker()
        #: Shadow model: flat list of (node, size) placements.
        self.placed: list[tuple[int, int]] = []

    # -- rules ------------------------------------------------------------

    @rule(size=st.sampled_from(SIZES))
    def place_at_descent_choice(self, size):
        node, load = self.tracker.leftmost_min_submachine(size)
        scan_node, scan_load = self.tracker.leftmost_min_submachine_scan(size)
        assert (node, load) == (scan_node, scan_load)
        self.tracker.place(node, size)
        self.placed.append((node, size))

    @rule(size=st.sampled_from(SIZES), data=st.data())
    def place_anywhere(self, size, data):
        # Adversarial placements too — the tracker serves all algorithms,
        # not only load-seeking ones.
        node = data.draw(st.sampled_from(list(_nodes_for_size(size))))
        self.tracker.place(node, size)
        self.placed.append((node, size))

    @precondition(lambda self: self.placed)
    @rule(data=st.data())
    def remove_one(self, data):
        idx = data.draw(st.integers(0, len(self.placed) - 1))
        node, size = self.placed.pop(idx)
        self.tracker.remove(node, size)

    @precondition(lambda self: self.placed)
    @rule()
    def repack(self):
        # The A_M idiom: wipe everything, re-place the survivors largest
        # first at the descent's choice.
        self.tracker.clear()
        survivors = sorted(self.placed, key=lambda ns: -ns[1])
        self.placed = []
        for _old_node, size in survivors:
            node, _ = self.tracker.leftmost_min_submachine(size)
            self.tracker.place(node, size)
            self.placed.append((node, size))

    @rule(pe=st.integers(0, N - 1))
    def churn_overflows_journal(self, pe):
        # 70 place/remove pairs on one leaf: net zero, but 140 leaves of
        # accumulated replay width — past the 2N = 32 width budget,
        # forcing the stale-rebuild path the next time leaf_loads() is
        # consulted.
        leaf = N + pe
        for _ in range(70):
            self.tracker.place(leaf, 1)
            self.tracker.remove(leaf, 1)

    # -- invariants -------------------------------------------------------

    @invariant()
    def all_representations_agree(self):
        self.tracker.check_invariants()
        expected = np.zeros(N, dtype=np.int64)
        for node, _size in self.placed:
            lo, hi = oracle_leaf_span(node, N)
            expected[lo:hi] += 1
        assert np.array_equal(self.tracker.leaf_loads(), expected)
        assert self.tracker.max_load == int(expected.max())
        assert self.tracker.num_active == len(self.placed)

    @invariant()
    def descent_matches_scan_for_every_size(self):
        for size in SIZES:
            assert self.tracker.leftmost_min_submachine(
                size
            ) == self.tracker.leftmost_min_submachine_scan(size)


TestLoadTrackerStateful = LoadTrackerMachine.TestCase
TestLoadTrackerStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)

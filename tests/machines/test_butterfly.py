"""Unit tests for the butterfly topology."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidMachineError
from repro.machines.butterfly import Butterfly


class TestStructure:
    def test_basics(self):
        b = Butterfly(16)
        assert b.topology_name == "butterfly"
        assert b.order == 4
        assert b.num_switches == 5 * 16

    def test_rejects_non_power(self):
        with pytest.raises(InvalidMachineError):
            Butterfly(12)


class TestDistances:
    def test_same_pe(self):
        assert Butterfly(16).pe_distance(3, 3) == 0

    def test_adjacent_addresses(self):
        b = Butterfly(16)
        # Differ in bit 0 only: climb to rank 1 and back -> 2 hops.
        assert b.pe_distance(0, 1) == 2

    def test_top_bit_differs(self):
        b = Butterfly(16)
        # Differ in bit 3: climb to rank 4 and back -> 8 hops.
        assert b.pe_distance(0, 8) == 8
        assert b.pe_distance(0, 15) == 8

    def test_symmetry(self):
        b = Butterfly(32)
        for a, c in [(0, 7), (3, 28), (11, 11)]:
            assert b.pe_distance(a, c) == b.pe_distance(c, a)

    def test_out_of_range(self):
        b = Butterfly(8)
        with pytest.raises(InvalidMachineError):
            b.pe_distance(0, 8)

    @given(st.integers(0, 31), st.integers(0, 31))
    @settings(max_examples=60, deadline=None)
    def test_distance_formula(self, a, c):
        b = Butterfly(32)
        expected = 0 if a == c else 2 * (a ^ c).bit_length()
        assert b.pe_distance(a, c) == expected

    def test_distance_bounded_by_diameter(self):
        b = Butterfly(64)
        for a in range(0, 64, 7):
            for c in range(0, 64, 5):
                assert b.pe_distance(a, c) <= 2 * b.order


class TestPartitions:
    def test_submachine_diameter(self):
        b = Butterfly(16)
        h = b.hierarchy
        assert b.submachine_diameter(1) == 8        # order-4 sub-butterfly
        assert b.submachine_diameter(2) == 6
        assert b.submachine_diameter(h.leaf_node(0)) == 0

    def test_partition_is_local(self):
        """PEs within an aligned block never route above its sub-butterfly."""
        b = Butterfly(32)
        h = b.hierarchy
        for v in h.nodes_at_level(2):  # 8-PE partitions
            lo, hi = h.leaf_span(v)
            for a in range(lo, hi):
                for c in range(lo, hi):
                    assert b.pe_distance(a, c) <= b.submachine_diameter(v)

    def test_ranks_used(self):
        b = Butterfly(16)
        assert b.ranks_used(1) == 5
        assert b.ranks_used(b.hierarchy.leaf_node(0)) == 1

"""Unit tests for ASCII plotting primitives."""

import pytest

from repro.analysis.plots import histogram, line_plot, sparkline


class TestSparkline:
    def test_monotone_ramp(self):
        assert sparkline([0, 1, 2, 3]) == " ▃▅█"

    def test_constant_series(self):
        out = sparkline([5, 5, 5])
        assert len(out) == 3
        assert len(set(out)) == 1

    def test_empty(self):
        assert sparkline([]) == ""

    def test_extremes_map_to_ends(self):
        out = sparkline([0, 10, 0])
        assert out[1] == "█"
        assert out[0] == " "

    def test_length_preserved(self):
        assert len(sparkline(list(range(100)))) == 100


class TestLinePlot:
    def test_contains_points_and_axes(self):
        out = line_plot([0, 1, 2], [0, 1, 4], width=20, height=5)
        assert "*" in out
        assert "+" + "-" * 20 in out

    def test_title_and_labels(self):
        out = line_plot([0, 1], [1, 2], title="T", y_label="load", x_label="d")
        assert out.splitlines()[0] == "T"
        assert "load" in out
        assert "d" in out

    def test_y_range_labels(self):
        out = line_plot([0, 1], [3, 7])
        assert "7" in out and "3" in out

    def test_empty_data(self):
        assert line_plot([], []) == "(no data)"

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            line_plot([1], [1, 2])

    def test_too_small_area(self):
        with pytest.raises(ValueError):
            line_plot([1], [1], width=2)

    def test_flat_series_ok(self):
        out = line_plot([0, 1, 2], [5, 5, 5])
        assert "*" in out

    def test_peak_in_top_row(self):
        out = line_plot([0, 1, 2], [0, 9, 0], width=12, height=4)
        data_rows = [l for l in out.splitlines() if "|" in l]
        assert "*" in data_rows[0]


class TestHistogram:
    def test_mapping_input(self):
        out = histogram({"a": 1, "b": 4})
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert lines[1].count("#") > lines[0].count("#")

    def test_sequence_input(self):
        out = histogram([0, 2, 1])
        assert len(out.splitlines()) == 3

    def test_zero_counts_have_no_bar(self):
        out = histogram({"x": 0, "y": 3})
        x_line = out.splitlines()[0]
        assert "#" not in x_line

    def test_title(self):
        out = histogram({"x": 1}, title="Loads")
        assert out.splitlines()[0] == "Loads"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            histogram({"x": -1})

    def test_empty(self):
        assert histogram({}) == "(no data)"

    def test_bar_width_capped(self):
        out = histogram({"big": 1000, "small": 1}, width=10)
        assert max(l.count("#") for l in out.splitlines()) <= 10


class TestHeatmap:
    def test_basic_rendering(self):
        from repro.analysis.plots import heatmap

        out = heatmap([[0, 1], [2, 3]])
        lines = out.splitlines()
        assert lines[0].startswith("|") and lines[0].endswith("|")
        assert "= 0" in lines[-1] and "= 3" in lines[-1]

    def test_title_and_labels(self):
        from repro.analysis.plots import heatmap

        out = heatmap([[1]], title="T", y_label="PE", x_label="t")
        assert out.splitlines()[0] == "T"
        assert "rows: PE" in out

    def test_downsampling_max_pool(self):
        from repro.analysis.plots import heatmap

        # A single hot cell must survive pooling (max, not mean).
        matrix = [[0.0] * 200 for _ in range(40)]
        matrix[37][163] = 9.0
        out = heatmap(matrix, max_width=20, max_height=5)
        assert "█" in out

    def test_constant_matrix(self):
        from repro.analysis.plots import heatmap

        out = heatmap([[5, 5], [5, 5]])
        assert "= 5" in out.splitlines()[-1]

    def test_ragged_rejected(self):
        from repro.analysis.plots import heatmap

        import pytest
        with pytest.raises(ValueError):
            heatmap([[1, 2], [3]])

    def test_empty(self):
        from repro.analysis.plots import heatmap

        assert heatmap([]) == "(no data)"

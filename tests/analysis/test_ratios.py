"""Unit tests for competitive-ratio summaries."""

import pytest

from repro.analysis.ratios import all_within_bound, summarize_ratios, worst_ratio
from repro.sim.engine import RunResult
from repro.sim.metrics import MetricsCollector


def _result(max_load: int, lstar: int) -> RunResult:
    metrics = MetricsCollector()
    import numpy as np

    metrics.observe(0.0, max_load, np.array([max_load]))
    return RunResult(
        algorithm_name="x",
        machine_description={},
        metrics=metrics,
        optimal_load=lstar,
    )


class TestSummaries:
    def test_summary_fields(self):
        results = [_result(2, 1), _result(3, 1), _result(2, 2)]
        s = summarize_ratios(results)
        assert s.num_runs == 3
        assert s.worst == 3.0
        assert s.best == 1.0
        assert s.mean == pytest.approx((2 + 3 + 1) / 3)
        assert "worst=" in str(s)

    def test_worst_ratio(self):
        assert worst_ratio([_result(4, 2), _result(5, 1)]) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_ratios([])


class TestBoundCompliance:
    def test_within(self):
        assert all_within_bound([_result(2, 1), _result(4, 2)], factor=2.0)

    def test_violation(self):
        assert not all_within_bound([_result(3, 1)], factor=2.0)

    def test_fractional_factor_exact(self):
        # load 3, L* 2, factor 1.5: 3 <= 3.0 exactly.
        assert all_within_bound([_result(3, 2)], factor=1.5)
        assert not all_within_bound([_result(4, 2)], factor=1.5)

"""Unit tests for the parameter-sweep framework."""

import numpy as np
import pytest

from repro.analysis.sweeps import Sweep, SweepResults


class TestGrid:
    def test_num_cells(self):
        sweep = Sweep({"a": [1, 2], "b": [10, 20, 30]})
        assert sweep.num_cells == 6
        assert len(sweep.cells()) == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            Sweep({})
        with pytest.raises(ValueError):
            Sweep({"a": []})

    def test_rng_axis_rejected(self):
        """An axis named 'rng' would shadow the injected generator; the
        collision must be a loud construction-time error, not a silent
        override."""
        with pytest.raises(ValueError, match="rng"):
            Sweep({"n": [4, 8], "rng": [0, 1]})

    def test_cell_order_deterministic(self):
        sweep = Sweep({"a": [1, 2], "b": ["x", "y"]})
        assert sweep.cells() == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]


class TestRun:
    def test_fn_receives_params_and_rng(self):
        sweep = Sweep({"n": [4, 8]}, seed=1)
        results = sweep.run(lambda n, rng: (n, isinstance(rng, np.random.Generator)))
        assert results.values() == [(4, True), (8, True)]

    def test_per_cell_rng_reproducible(self):
        def draw(n, rng):
            return float(rng.random())

        a = Sweep({"n": [1, 2, 3]}, seed=5).run(draw)
        b = Sweep({"n": [1, 2, 3]}, seed=5).run(draw)
        assert a.values() == b.values()
        c = Sweep({"n": [1, 2, 3]}, seed=6).run(draw)
        assert a.values() != c.values()

    def test_per_cell_rng_independent(self):
        results = Sweep({"n": [1, 2]}, seed=0).run(lambda n, rng: float(rng.random()))
        v = results.values()
        assert v[0] != v[1]


class TestResults:
    @pytest.fixture
    def results(self):
        sweep = Sweep({"n": [4, 8], "d": [0, 1]}, seed=0)
        return sweep.run(lambda n, d, rng: n * 10 + d)

    def test_where(self, results):
        sub = results.where(n=4)
        assert len(sub) == 2
        assert all(c["n"] == 4 for c in sub)

    def test_series_ordered(self, results):
        xs, ys = results.where(n=8).series("d")
        assert xs == [0, 1]
        assert ys == [80, 81]

    def test_table_rendering(self, results):
        out = results.table(["n", "d"], value_header="score")
        assert "score" in out
        assert "80" in out

    def test_values_with_extractor(self, results):
        assert results.where(n=4).values(lambda v: v % 10) == [0, 1]

    def test_integration_with_run_results(self):
        """End to end: sweep an allocator over (n, d) cells."""
        from repro.core.periodic import PeriodicReallocationAlgorithm
        from repro.machines.tree import TreeMachine
        from repro.sim.runner import run
        from repro.workloads.generators import churn_sequence

        def cell(n, d, rng):
            machine = TreeMachine(n)
            sigma = churn_sequence(n, 120, rng)
            return run(machine, PeriodicReallocationAlgorithm(machine, d), sigma)

        results = Sweep({"n": [8, 16], "d": [0, 2]}, seed=3).run(cell)
        assert len(results) == 4
        for c in results.where(d=0):
            assert c.value.max_load == c.value.optimal_load  # d=0 optimal

"""Unit tests for the statistics toolkit."""

import numpy as np
import pytest

from repro.analysis.stats import bootstrap_ci, summarize


class TestBootstrapCI:
    def test_constant_samples_tight_interval(self):
        rng = np.random.default_rng(0)
        lo, hi = bootstrap_ci(np.full(20, 3.0), rng)
        assert lo == hi == 3.0

    def test_single_sample(self):
        rng = np.random.default_rng(0)
        lo, hi = bootstrap_ci(np.array([5.0]), rng)
        assert lo == hi == 5.0

    def test_interval_contains_mean_usually(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(10.0, 2.0, size=100)
        lo, hi = bootstrap_ci(samples, np.random.default_rng(2))
        assert lo <= samples.mean() <= hi

    def test_wider_confidence_wider_interval(self):
        samples = np.random.default_rng(3).normal(0, 1, 50)
        lo99, hi99 = bootstrap_ci(samples, np.random.default_rng(4), confidence=0.99)
        lo80, hi80 = bootstrap_ci(samples, np.random.default_rng(4), confidence=0.80)
        assert (hi99 - lo99) >= (hi80 - lo80)

    def test_validates(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([]), rng)
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([1.0, 2.0]), rng, confidence=1.5)


class TestSummarize:
    def test_fields(self):
        s = summarize(np.array([1.0, 2.0, 3.0]))
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.ci_low <= s.mean <= s.ci_high
        assert s.std == pytest.approx(1.0)

    def test_single_sample_std_zero(self):
        s = summarize(np.array([4.0]))
        assert s.std == 0.0

    def test_str_format(self):
        s = summarize(np.array([1.0, 1.0]))
        assert "[" in str(s)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize(np.array([]))

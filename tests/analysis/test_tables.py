"""Unit tests for ASCII table rendering."""

import pytest

from repro.analysis.tables import format_kv, format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["n", "ratio"], [[4, 1.0], [1024, 1.5]])
        lines = out.splitlines()
        assert lines[0].startswith("n")
        assert "ratio" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert lines[2].split() == ["4", "1.0"]
        assert lines[3].split() == ["1024", "1.500"]

    def test_title(self):
        out = format_table(["a"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"
        assert out.splitlines()[1] == "========"

    def test_float_formatting(self):
        out = format_table(["x"], [[1.23456], [2.0], [float("nan")]])
        assert "1.235" in out
        assert "2.0" in out
        assert "nan" in out

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = format_table(["a", "b"], [])
        assert len(out.splitlines()) == 2

    def test_wide_cell_expands_column(self):
        out = format_table(["x"], [["a-very-long-cell"]])
        header, rule, row = out.splitlines()
        assert len(rule) == len("a-very-long-cell")


class TestFormatKV:
    def test_alignment(self):
        out = format_kv({"alpha": 1, "b": 2.5})
        lines = out.splitlines()
        assert lines[0] == "alpha : 1"
        assert lines[1] == "b     : 2.500"

    def test_title(self):
        out = format_kv({"a": 1}, title="Params")
        assert out.splitlines()[0] == "Params"

    def test_empty(self):
        assert format_kv({}) == ""

"""Integration tests for the experiment drivers (small parameterisations).

Each driver is run at reduced scale and its *scientific* assertions are
checked: bound compliance columns, expected orderings, exact reproduction
of the Figure 1 numbers.
"""

import math

import pytest

from repro.analysis.experiments import (
    EXPERIMENTS,
    experiment_adversary,
    experiment_copies_ablation,
    experiment_figure1,
    experiment_greedy_scaling,
    experiment_optimal,
    experiment_randomized,
    experiment_sigma_r,
    experiment_slowdown,
    experiment_topology,
    experiment_tradeoff,
    experiment_twochoice,
)


class TestFigure1:
    def test_exact_paper_numbers(self):
        report = experiment_figure1()
        by_algo = {row[0]: row for row in report.rows}
        assert by_algo["A_G"][1] == 2
        assert by_algo["A_M(d=1,lazy)"][1] == 1
        assert by_algo["A_C"][1] == 1
        assert all(row[2] == 1 for row in report.rows)  # L* = 1 everywhere

    def test_render_contains_table(self):
        text = experiment_figure1().render()
        assert "A_G" in text and "max_load" in text and "[E1]" in text


class TestOptimalDriver:
    def test_every_row_optimal(self):
        report = experiment_optimal(machine_sizes=(4, 16), seeds=(0, 1), num_tasks=80)
        assert all(v == "yes" for v in report.column("optimal?"))


class TestGreedyDriver:
    def test_within_bound_everywhere(self):
        report = experiment_greedy_scaling(machine_sizes=(4, 16, 64), num_tasks=150)
        assert all(v == "yes" for v in report.column("within?"))

    def test_adversarial_ratio_at_least_half_bound(self):
        report = experiment_greedy_scaling(machine_sizes=(16, 64), num_tasks=100)
        for adv, bound in zip(report.column("adversarial ratio"), report.column("bound")):
            assert adv >= bound / 2  # paper: tight within factor 2


class TestTradeoffDriver:
    def test_shape(self):
        report = experiment_tradeoff(num_pes=64, num_events=800, d_values=[0, 1, 2, 4, float("inf")])
        worst = report.column("worst ratio")
        lower = report.column("lower")
        bound = report.column("bound")
        # Worst-case ratio is sandwiched and monotone (non-strictly) in d.
        for w, lo, b in zip(worst, lower, bound):
            assert lo <= w <= b
        assert all(a <= b for a, b in zip(worst, worst[1:]))
        # d = 0 is optimal.
        assert report.rows[0][1] == report.rows[0][2]

    def test_traffic_decreases_with_d(self):
        report = experiment_tradeoff(num_pes=64, num_events=800, d_values=[0, 2, 4])
        traffic = report.column("traffic(pe-hops)")
        assert traffic[0] > traffic[1] > traffic[2]


class TestAdversaryDriver:
    def test_all_sandwiched(self):
        report = experiment_adversary(num_pes=64, d_values=[1, 2, 4, float("inf")])
        assert all(v == "yes" for v in report.column("sandwiched?"))

    def test_lstar_is_one(self):
        report = experiment_adversary(num_pes=64, d_values=[2])
        assert report.column("L*") == [1]


class TestRandomizedDriver:
    def test_within_bound(self):
        report = experiment_randomized(machine_sizes=(16, 64), repetitions=10)
        assert all(v == "yes" for v in report.column("within?"))

    def test_load_grows_with_n(self):
        report = experiment_randomized(machine_sizes=(16, 1024), repetitions=10)
        loads = report.column("E[max load]")
        assert loads[1] > loads[0]


class TestSigmaRDriver:
    def test_oblivious_worse_than_greedy(self):
        report = experiment_sigma_r(machine_sizes=(64, 256), repetitions=6)
        greedy = report.column("A_G E[ratio]")
        rand = report.column("A_rand E[ratio]")
        assert all(r >= g for g, r in zip(greedy, rand))


class TestSlowdownDriver:
    def test_slowdown_tracks_load(self):
        report = experiment_slowdown(num_pes=16, num_tasks=60)
        for row in report.rows:
            _, max_load, worst_task_load, worst_slowdown, mean_slowdown = row
            assert worst_slowdown <= worst_task_load + 1e-9
            assert mean_slowdown <= worst_slowdown + 1e-9
            assert worst_task_load <= max_load


class TestAblations:
    def test_lazy_never_more_reallocs(self):
        report = experiment_copies_ablation(num_pes=64, num_events=600, d_values=(1, 2))
        for row in report.rows:
            _, _, _, re_eager, re_lazy, _, _ = row
            assert re_lazy <= re_eager

    def test_twochoice_gain(self):
        report = experiment_twochoice(machine_sizes=(64,), repetitions=8)
        (row,) = report.rows
        assert row[2] <= row[1]  # 2-choice no worse than 1-choice

    def test_topology_loads_identical(self):
        report = experiment_topology(num_pes=64, num_events=400)
        loads = report.column("max_load")
        assert len(set(loads)) == 1
        # But traffic differs between at least two topologies.
        traffic = report.column("traffic(pe-hops)")
        assert len(set(traffic)) > 1


class TestHybridDriver:
    def test_hybrid_beats_oblivious_at_small_d(self):
        from repro.analysis.experiments import experiment_hybrid

        report = experiment_hybrid(
            num_pes=64, d_values=(0.5, 2), num_events=600, repetitions=4
        )
        hybrid = report.column("E[A_randM load]")
        oblivious = report.column("E[A_rand load]")
        assert hybrid[0] <= oblivious[0]


class TestIncrementalDriver:
    def test_frontier_monotone(self):
        from repro.analysis.experiments import experiment_incremental

        report = experiment_incremental(num_pes=64, budgets=(0, 2, 64))
        loads = [row[1] for row in report.rows[:-1]]
        assert all(a >= b for a, b in zip(loads, loads[1:]))
        assert loads[0] == 4  # greedy factor at N = 64


class TestOperatingModelsDriver:
    def test_shared_bounded_queueing_not(self):
        from repro.analysis.experiments import experiment_operating_models

        report = experiment_operating_models(num_pes=16, num_tasks=120)
        worst = [float(row[3]) for row in report.rows]
        assert worst[0] <= float(report.rows[0][4]) + 1e-9  # <= max load
        assert worst[1] > worst[0]


class TestThreadOverheadDriver:
    def test_load_drives_overhead(self):
        from repro.analysis.experiments import experiment_thread_overhead

        report = experiment_thread_overhead(num_pes=16, num_tasks=32)
        by_placement = {row[0]: row for row in report.rows}
        assert by_placement["A_rand"][1] >= by_placement["A_G greedy"][1]


class TestWorkloadSensitivityDriver:
    def test_d_zero_column_is_optimal(self):
        from repro.analysis.experiments import experiment_workload_sensitivity

        report = experiment_workload_sensitivity(num_pes=32, scale=0.2)
        for row in report.rows:
            lstar, load_d0 = row[1], row[2]
            assert load_d0 == lstar  # d = 0 achieves L* on every scenario
            assert row[-1] >= 0     # never-realloc can't beat optimal


class TestRegistry:
    def test_all_ids_present(self):
        assert set(EXPERIMENTS) == {
            "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9",
            "a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8", "a9",
        }

    def test_ids_match_reports(self):
        report = EXPERIMENTS["e1"]()
        assert report.experiment_id == "e1"

    def test_column_lookup_error(self):
        report = experiment_figure1()
        with pytest.raises(ValueError):
            report.column("nonexistent")

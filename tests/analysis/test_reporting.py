"""Tests for markdown report generation and the `repro report` command."""

import pytest

from repro.analysis.experiments import experiment_figure1
from repro.analysis.reporting import generate_report, render_markdown
from repro.cli import main


class TestRenderMarkdown:
    def test_contains_table_and_metadata(self):
        text = render_markdown([experiment_figure1()])
        assert "# Reproduction report" in text
        assert "## E1 —" in text
        assert "| algorithm |" in text
        assert "| A_G | 2 |" in text
        assert "*Parameters:*" in text

    def test_notes_are_blockquotes(self):
        text = render_markdown([experiment_figure1()])
        assert "\n> " in text


class TestGenerateReport:
    def test_subset_by_id(self):
        text = generate_report(experiment_ids=["e1"])
        assert "## E1" in text
        assert "## E2" not in text

    def test_unknown_id_rejected_before_running(self):
        with pytest.raises(KeyError):
            generate_report(experiment_ids=["zz"])

    def test_writes_file(self, tmp_path):
        out = tmp_path / "report.md"
        generate_report(out, experiment_ids=["e1"])
        assert out.exists()
        assert "## E1" in out.read_text()


class TestReportCommand:
    def test_stdout(self, capsys):
        assert main(["report", "--ids", "e1"]) == 0
        assert "## E1" in capsys.readouterr().out

    def test_to_file(self, tmp_path, capsys):
        out = tmp_path / "r.md"
        assert main(["report", "--ids", "e1", "--out", str(out)]) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_bad_id(self, capsys):
        assert main(["report", "--ids", "nope"]) == 2

"""Delta debugging: minimal results, predicate discipline, bounded effort."""

import math

from repro.tasks.sequence import TaskSequence
from repro.tasks.task import Task
from repro.types import TaskId
from repro.verify.shrink import shrink


def _tasks(n, size=1, arrival_step=1.0):
    return [Task(TaskId(i), size, i * arrival_step, math.inf) for i in range(n)]


class TestShrink:
    def test_reduces_to_single_culprit(self):
        # Violation: "some task has size 4".
        tasks = _tasks(20) + [Task(TaskId(99), 4, 5.0, math.inf)]
        sigma = TaskSequence.from_tasks(tasks)

        def has_big(seq):
            return any(t.size == 4 for t in seq.tasks.values())

        reduced = shrink(sigma, has_big)
        assert reduced.num_tasks == 1
        assert next(iter(reduced.tasks.values())).size == 4

    def test_reduces_conjunction_to_minimal_pair(self):
        # Violation needs one size-2 AND one size-4 task simultaneously.
        tasks = _tasks(15) + [
            Task(TaskId(50), 2, 3.0, math.inf),
            Task(TaskId(51), 4, 4.0, math.inf),
        ]
        sigma = TaskSequence.from_tasks(tasks)

        def needs_both(seq):
            sizes = {t.size for t in seq.tasks.values()}
            return {2, 4} <= sizes

        reduced = shrink(sigma, needs_both)
        assert reduced.num_tasks == 2
        assert {t.size for t in reduced.tasks.values()} == {2, 4}

    def test_threshold_predicate_keeps_exactly_enough(self):
        # "At least 5 active unit tasks" — minimal witness is any 5.
        sigma = TaskSequence.from_tasks(_tasks(30))

        def at_least_five(seq):
            return seq.num_tasks >= 5

        reduced = shrink(sigma, at_least_five)
        assert reduced.num_tasks == 5

    def test_result_still_satisfies_predicate(self):
        sigma = TaskSequence.from_tasks(_tasks(12, size=2))

        def pred(seq):
            return seq.peak_active_size >= 8

        reduced = shrink(sigma, pred)
        assert pred(reduced)
        assert reduced.num_tasks <= sigma.num_tasks

    def test_check_budget_bounds_work(self):
        calls = 0
        sigma = TaskSequence.from_tasks(_tasks(40))

        def counting(seq):
            nonlocal calls
            calls += 1
            return seq.num_tasks >= 1

        reduced = shrink(sigma, counting, max_checks=10)
        assert calls <= 11  # budget plus at most the in-flight call
        assert reduced.num_tasks >= 1

    def test_departures_travel_with_their_task(self):
        # Removing a task must drop both its events; the reduced sequence
        # stays valid (constructor would raise otherwise).
        tasks = [Task(TaskId(i), 1, float(i), float(i) + 5.0) for i in range(10)]
        sigma = TaskSequence.from_tasks(tasks)
        reduced = shrink(sigma, lambda s: s.num_tasks >= 2)
        assert reduced.num_tasks == 2
        assert len(reduced) == 4  # two arrivals + two departures

"""The brute-force oracle: correct on known answers, merciless on bad data."""

import math

import pytest
from hypothesis import given, settings

from repro.core.greedy import GreedyAlgorithm
from repro.core.optimal import OptimalReallocatingAlgorithm
from repro.machines.tree import TreeMachine
from repro.sim.audit import audit_run
from repro.sim.runner import run_traced
from repro.verify.oracle import (
    oracle_audit,
    oracle_leaf_span,
    oracle_optimal_load,
    tasks_table,
)

from tests.conftest import task_sequences


class TestLeafSpan:
    def test_root_spans_everything(self):
        assert oracle_leaf_span(1, 16) == (0, 16)

    def test_leaves_are_unit_spans(self):
        for i in range(16):
            assert oracle_leaf_span(16 + i, 16) == (i, i + 1)

    def test_matches_hierarchy_on_every_node(self):
        h = TreeMachine(64).hierarchy
        for node in range(1, 128):
            assert oracle_leaf_span(node, 64) == tuple(h.leaf_span(node))


class TestOptimalLoad:
    def test_single_task(self):
        peak, lstar = oracle_optimal_load({0: (4, 0.0, math.inf)}, 16)
        assert (peak, lstar) == (4, 1)

    def test_departure_frees_before_same_time_arrival(self):
        # One size-16 task leaves at t=1 exactly when another arrives: the
        # peak is 16, not 32 (departures are applied first).
        tasks = {0: (16, 0.0, 1.0), 1: (16, 1.0, math.inf)}
        peak, lstar = oracle_optimal_load(tasks, 16)
        assert (peak, lstar) == (16, 1)

    @settings(max_examples=40, deadline=None)
    @given(sigma=task_sequences(num_pes=16))
    def test_matches_sequence_statistics(self, sigma):
        peak, lstar = oracle_optimal_load(tasks_table(sigma), 16)
        assert peak == sigma.peak_active_size
        assert lstar == sigma.optimal_load(16)


class TestOracleAudit:
    def _trace(self, n, algo_cls, sigma):
        machine = TreeMachine(n)
        return run_traced(machine, algo_cls(machine), sigma)

    @settings(max_examples=30, deadline=None)
    @given(sigma=task_sequences(num_pes=16))
    def test_agrees_with_audit_on_greedy_runs(self, sigma):
        machine = TreeMachine(16)
        result, intervals = self._trace(16, GreedyAlgorithm, sigma)
        report = oracle_audit(16, tasks_table(sigma), intervals)
        assert report.ok, report.violations
        audit = audit_run(machine, sigma, intervals)
        assert report.max_load == audit.max_load == result.max_load
        assert report.optimal_load == result.optimal_load

    @settings(max_examples=20, deadline=None)
    @given(sigma=task_sequences(num_pes=16))
    def test_agrees_on_reallocating_runs(self, sigma):
        result, intervals = self._trace(16, OptimalReallocatingAlgorithm, sigma)
        report = oracle_audit(16, tasks_table(sigma), intervals)
        assert report.ok, report.violations
        assert report.max_load == result.max_load == result.optimal_load

    def test_rejects_non_power_of_two_machine(self):
        report = oracle_audit(12, {}, {})
        assert not report.ok

    def test_flags_unplaced_task(self):
        tasks = {0: (1, 0.0, math.inf)}
        report = oracle_audit(4, tasks, {})
        assert not report.ok
        assert any("never placed" in v for v in report.violations)

    def test_flags_wrong_size_node(self):
        # Size-2 task on a leaf (span 1).
        tasks = {0: (2, 0.0, math.inf)}
        intervals = {0: [(0.0, math.inf, 4)]}
        report = oracle_audit(4, tasks, intervals)
        assert any("spanning" in v for v in report.violations)

    def test_flags_node_outside_machine(self):
        tasks = {0: (1, 0.0, math.inf)}
        intervals = {0: [(0.0, math.inf, 8)]}
        report = oracle_audit(4, tasks, intervals)
        assert any("outside machine" in v for v in report.violations)

    def test_flags_lifetime_gap(self):
        tasks = {0: (1, 0.0, 4.0)}
        intervals = {0: [(0.0, 1.0, 4), (2.0, 4.0, 5)]}
        report = oracle_audit(4, tasks, intervals)
        assert any("gap" in v for v in report.violations)

    def test_flags_late_start_and_early_end(self):
        tasks = {0: (1, 0.0, 4.0)}
        intervals = {0: [(1.0, 3.0, 4)]}
        report = oracle_audit(4, tasks, intervals)
        assert any("starts at" in v for v in report.violations)
        assert any("ends at" in v for v in report.violations)

    def test_flags_phantom_volume(self):
        # The placement claims residence the task list doesn't back: the
        # task departs at 2 but its interval runs to 5.
        tasks = {0: (1, 0.0, 2.0), 1: (1, 0.0, math.inf)}
        intervals = {0: [(0.0, 5.0, 4)], 1: [(0.0, math.inf, 5)]}
        report = oracle_audit(4, tasks, intervals)
        assert not report.ok

    def test_recomputes_max_load_from_overlap(self):
        # Two unit tasks stacked on the same leaf: load 2 even though
        # the machine has 4 idle-capable PEs.
        tasks = {0: (1, 0.0, math.inf), 1: (1, 1.0, math.inf)}
        intervals = {0: [(0.0, math.inf, 4)], 1: [(1.0, math.inf, 4)]}
        report = oracle_audit(4, tasks, intervals)
        assert report.ok, report.violations
        assert report.max_load == 2
        assert report.optimal_load == 1

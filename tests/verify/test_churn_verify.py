"""The churn verify wiring: piecewise-N referee, fuzzer, campaign, corpus."""

import json
import math

import pytest

from repro.scenarios import ChurnProcess, MachineResize, Scenario
from repro.verify import (
    ChurnFuzzer,
    CorpusEntry,
    check_algorithm_under_churn,
    check_churn_backend_parity,
    replay_corpus,
    scenario_features,
    write_counterexample,
)
from repro.verify.harness import DifferentialHarness


def _scenario(num_pes=16, seed=11):
    return ChurnProcess(
        num_pes=num_pes, seed=seed, horizon=30.0, task_rate=1.2,
        pe_mttf=10.0, mttr=2.5, kill_rate=0.1, storm_rate=0.1, storm_depth=5,
        resizes=((12.0, "grow", 2), (24.0, "shrink", 2)),
    ).build()


class TestChurnReferee:
    def test_ok_on_generated_scenario(self):
        scenario = _scenario()
        outcome = check_algorithm_under_churn("optimal", 2.0, 0, scenario)
        assert outcome.ok, outcome.violations
        assert outcome.churned and outcome.faulted
        assert outcome.num_resizes == 2
        assert outcome.num_epochs == 3
        # Finite d: the piecewise bound was computed and holds.
        assert outcome.bound is not None
        assert outcome.max_load <= outcome.bound + 1e-9

    def test_infinite_d_gates_the_bound_off(self):
        outcome = check_algorithm_under_churn("greedy", 2.0, 0, _scenario())
        assert outcome.ok, outcome.violations
        # Greedy never reallocates (d = inf): no finite bound to enforce.
        assert outcome.bound is None

    def test_backend_parity_over_full_alphabet(self):
        assert check_churn_backend_parity("optimal", 2.0, 0, _scenario()) == []


class TestChurnFuzzer:
    def test_deterministic_stream(self):
        a = [s.to_dict() for _, s in zip(range(4), ChurnFuzzer(16, seed=3))]
        b = [s.to_dict() for _, s in zip(range(4), ChurnFuzzer(16, seed=3))]
        assert a == b

    def test_requires_power_of_two(self):
        with pytest.raises(Exception, match="power of two"):
            ChurnFuzzer(12)

    def test_generated_scenarios_are_admissible(self):
        fuzzer = ChurnFuzzer(16, seed=1, horizon=30.0)
        for _ in range(5):
            fuzzer.generate().validate()

    def test_scenario_features_buckets(self):
        calm = Scenario(num_pes=16, sequence=_scenario().sequence)
        f = scenario_features(calm)
        assert f.churn == 0 and f.resizes == 0
        stormy = _scenario()
        g = scenario_features(stormy)
        assert g.churn >= 1
        assert g.resizes == 2
        assert 0 <= g.storm <= 5


class TestFuzzChurnCampaign:
    def test_small_campaign_is_green(self, tmp_path):
        harness = DifferentialHarness(
            16, algorithms=("optimal", "greedy"), seed=5, jobs=1,
            corpus_dir=tmp_path,
        )
        report = harness.fuzz_churn(max_sequences=3, horizon=30.0)
        assert report.ok, [v.violations for v in report.violations]
        assert report.sequences_tried == 3
        assert report.churn_checks == report.checks_run == 6
        assert report.faulted_checks == 6
        assert report.features
        payload = report.to_dict()
        assert payload["churn_checks"] == 6
        assert "resizes_checked" in payload
        assert all("churn" in f for f in payload["features"])

    def test_campaign_resumes_from_checkpoint(self, tmp_path):
        journal = tmp_path / "churn.journal"
        args = dict(max_sequences=3, horizon=30.0, checkpoint=journal)
        first = DifferentialHarness(
            16, algorithms=("optimal",), seed=5, jobs=1
        ).fuzz_churn(**args)
        resumed = DifferentialHarness(
            16, algorithms=("optimal",), seed=5, jobs=1
        ).fuzz_churn(**args)
        assert resumed.checks_run == first.checks_run
        assert resumed.ok == first.ok
        assert [repr(f) for f in resumed.features] == [
            repr(f) for f in first.features
        ]


class TestChurnCorpus:
    def _entry(self):
        scenario = _scenario()
        return CorpusEntry.from_sequence(
            scenario.sequence,
            algorithm="optimal",
            num_pes=scenario.num_pes,
            d=2.0,
            seed=0,
            check="churn demo",
            fault_plan=scenario.plan,
            resizes=scenario.resizes,
        ), scenario

    def test_json_round_trip_keeps_resizes(self):
        entry, scenario = self._entry()
        back = CorpusEntry.from_json(entry.to_json())
        assert back == entry
        payload = json.loads(entry.to_json())
        assert payload["resizes"] == [
            {"time": 12.0, "op": "grow", "factor": 2},
            {"time": 24.0, "op": "shrink", "factor": 2},
        ]

    def test_scenario_rebuild_is_exact(self):
        entry, scenario = self._entry()
        rebuilt = entry.scenario()
        assert rebuilt is not None
        assert rebuilt.to_dict() == scenario.to_dict()

    def test_entry_without_resizes_has_no_scenario(self):
        scenario = _scenario()
        entry = CorpusEntry.from_sequence(
            scenario.sequence, algorithm="optimal",
            num_pes=scenario.num_pes, d=2.0, seed=0, check="plain",
        )
        assert entry.scenario() is None

    def test_replay_dispatches_churn_check(self, tmp_path):
        entry, _ = self._entry()
        write_counterexample(entry, tmp_path)
        results = replay_corpus(tmp_path)
        assert len(results) == 1
        replayed, outcome = results[0]
        assert replayed == entry
        assert outcome.churned
        assert outcome.ok, outcome.violations

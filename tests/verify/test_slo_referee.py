"""SLO admission referee tests: the shadow model vs the production gate.

`check_slo_admission` re-derives every admission decision from a flat
NumPy leaf-load array and a plain deque.  These tests pin both
directions: gated algorithms (greedy, two-choice) pass clean, and an
oblivious algorithm that ignores loads is flagged — the referee is not
vacuously green.
"""

import numpy as np
import pytest

from repro.verify import DifferentialHarness, check_slo_admission
from repro.verify.slo import admission_log
from repro.workloads.generators import poisson_sequence


def _sequence(n=32, tasks=60, seed=3):
    return poisson_sequence(n, tasks, np.random.default_rng(seed))


class TestReferee:
    @pytest.mark.parametrize("name", ["greedy", "twochoice"])
    def test_gated_algorithms_pass(self, name):
        outcome = check_slo_admission(
            name, 32, 2.0, 7, _sequence(), 2, 8
        )
        assert outcome.ok, outcome.violations
        assert outcome.sloed
        assert outcome.max_load <= 2

    def test_oblivious_random_is_flagged(self):
        """`random` places without consulting loads, so some seed must
        push a submachine past the target — and the referee must say so."""
        for seed in range(25):
            outcome = check_slo_admission(
                "random", 16, 2.0, seed, _sequence(16, 40, seed), 1, 64
            )
            if not outcome.ok:
                assert any(
                    "> target" in v or "inadmissible" in v
                    or "violation" in v
                    for v in outcome.violations
                ), outcome.violations
                return
        pytest.fail("referee never flagged the oblivious algorithm")

    def test_admission_log_is_deterministic(self):
        from repro.service.stream import sequence_records

        records = list(sequence_records(_sequence(16, 30, 5)))
        runs = [
            admission_log(
                "twochoice", 16, 2.0, 11, records,
                load_target=2, queue_capacity=4,
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        verdicts = {v for v, _ in runs[0]}
        assert "admit" in verdicts  # the log is not vacuous


class TestFuzzSLO:
    def test_small_campaign_is_green_and_counted(self):
        harness = DifferentialHarness(
            32, seed=9, algorithms=["greedy", "twochoice"]
        )
        report = harness.fuzz_slo(max_sequences=6)
        assert report.ok, [v.violations for v in report.violations]
        assert report.slo_checks == 12  # 6 sequences x 2 algorithms
        assert report.to_dict()["slo_checks"] == 12
        assert report.features_covered > 0

    def test_checkpoint_resume_skips_done_work(self, tmp_path):
        path = tmp_path / "slo.fuzz"
        harness = DifferentialHarness(16, seed=4, algorithms=["greedy"])
        first = harness.fuzz_slo(max_sequences=4, checkpoint=path)
        assert first.sequences_tried == 4
        again = DifferentialHarness(16, seed=4, algorithms=["greedy"])
        resumed = again.fuzz_slo(max_sequences=4, checkpoint=path)
        # Cached outcomes replay into the report; nothing recomputes.
        assert resumed.checks_run == first.checks_run
        assert resumed.ok == first.ok
        assert resumed.sequences_tried == 4
        assert [repr(f) for f in resumed.features] == [
            repr(f) for f in first.features
        ]

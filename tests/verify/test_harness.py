"""Differential harness end-to-end: clean code passes, seeded bugs don't.

The headline test seeds a deliberate off-by-one into A_G's placement
descent (always take the left child, ignoring sibling loads) and demands
the full pipeline deliver: detection, a shrunk counterexample of at most 8
events, deterministic replay from the corpus while the bug is live, and a
green replay once it is reverted.  All of it runs serially (``jobs=None``)
so the monkeypatch is visible to the checks.
"""

import math

import pytest

from repro.core.base import Placement
from repro.core.greedy import GreedyAlgorithm
from repro.errors import UnknownAlgorithmError, VerificationError
from repro.verify import (
    DifferentialHarness,
    check_algorithm,
    replay_corpus,
)
from repro.verify.harness import DEFAULT_D_VALUES


def _num_events(entry):
    return sum(2 if not math.isinf(dep) else 1 for _tid, _s, _a, dep in entry.tasks)


class TestCheckAlgorithm:
    def test_green_on_known_good_algorithms(self):
        from repro.verify.fuzzer import SequenceFuzzer

        fuzz = DifferentialHarness(16, algorithms=["optimal", "greedy"], seed=0)
        sigma = SequenceFuzzer(16, seed=0).generate()
        for outcome in fuzz.check_sequence(sigma, d=1.0, seed=0):
            assert outcome.ok, outcome.violations

    def test_bound_recorded_for_bounded_specs(self):
        from repro.verify.fuzzer import SequenceFuzzer

        sigma = SequenceFuzzer(16, seed=2).generate()
        outcome = check_algorithm("greedy", 16, 2.0, 0, sigma)
        assert outcome.bound is not None
        assert outcome.max_load <= outcome.bound
        outcome = check_algorithm("roundrobin", 16, 2.0, 0, sigma)
        assert outcome.bound is None  # baselines carry no guarantee

    def test_optimal_bound_is_exact(self):
        from repro.verify.fuzzer import SequenceFuzzer

        sigma = SequenceFuzzer(16, seed=4).generate()
        outcome = check_algorithm("optimal", 16, 2.0, 0, sigma)
        assert outcome.ok, outcome.violations
        assert outcome.max_load == outcome.optimal_load


class TestDifferentialHarness:
    def test_unknown_algorithm_rejected_cleanly(self):
        with pytest.raises(UnknownAlgorithmError, match="unknown algorithm"):
            DifferentialHarness(16, algorithms=["nope"])

    def test_requires_a_stopping_condition(self):
        with pytest.raises(ValueError, match="budget"):
            DifferentialHarness(16, algorithms=["greedy"]).fuzz()

    def test_clean_code_fuzzes_green(self):
        harness = DifferentialHarness(16, seed=11)
        report = harness.fuzz(max_sequences=8)
        assert report.ok, [v.violations for v in report.violations]
        assert report.sequences_tried == 8
        assert report.checks_run == 8 * len(harness.algorithms)
        assert report.features_covered >= 1
        report.raise_if_failed()  # must be a no-op when green

    def test_d_values_cycle_both_theorem_branches(self):
        assert 0.0 in DEFAULT_D_VALUES
        assert math.inf in DEFAULT_D_VALUES

    def test_report_serialises(self):
        import json

        report = DifferentialHarness(16, algorithms=["greedy"], seed=1).fuzz(
            max_sequences=4
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True
        assert payload["checks_run"] == 4
        assert "greedy" in payload["tightest_bounds"]


def _left_stacking_arrival(self, task):
    """The seeded bug: an off-by-one in the min-load descent that always
    takes the left child — every task lands on the leftmost submachine of
    its size, stacking loads the real A_G would spread."""
    self.machine.validate_task_size(task.size)
    level = self.machine.hierarchy.level_for_size(task.size)
    node = 1 << level
    self._loads.place(node, task.size)
    self._placement[task.task_id] = node
    return Placement(task.task_id, node)


class TestSeededBugPipeline:
    @pytest.fixture
    def buggy_greedy(self, monkeypatch):
        monkeypatch.setattr(GreedyAlgorithm, "on_arrival", _left_stacking_arrival)

    def test_harness_catches_and_shrinks(self, buggy_greedy, tmp_path):
        corpus = tmp_path / "corpus"
        harness = DifferentialHarness(
            16, algorithms=["greedy"], seed=5, corpus_dir=corpus
        )
        report = harness.fuzz(max_sequences=40)
        assert not report.ok
        with pytest.raises(VerificationError, match="violation"):
            report.raise_if_failed()

        # At least one counterexample shrank to the acceptance target.
        assert report.counterexamples
        smallest = min(report.counterexamples, key=_num_events)
        assert _num_events(smallest) <= 8

        # Replay from disk while the bug is live: deterministic reproduction.
        results = replay_corpus(corpus)
        assert results
        assert all(not outcome.ok for _entry, outcome in results)

    def test_corpus_goes_green_after_the_fix(self, monkeypatch, tmp_path):
        corpus = tmp_path / "corpus"
        monkeypatch.setattr(GreedyAlgorithm, "on_arrival", _left_stacking_arrival)
        harness = DifferentialHarness(
            16, algorithms=["greedy"], seed=5, corpus_dir=corpus
        )
        assert not harness.fuzz(max_sequences=40).ok
        monkeypatch.undo()  # "fix" the bug
        results = replay_corpus(corpus)
        assert results
        assert all(outcome.ok for _entry, outcome in results)

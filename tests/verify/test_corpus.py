"""Corpus round-tripping plus the committed regression corpus staying green."""

import json
import math
from pathlib import Path

import pytest

from repro.verify.corpus import (
    CorpusEntry,
    load_corpus,
    replay_corpus,
    write_counterexample,
)
from repro.verify.fuzzer import SequenceFuzzer

COMMITTED_CORPUS = Path(__file__).resolve().parent.parent / "corpus"


class TestCorpusEntry:
    def _entry(self):
        sigma = SequenceFuzzer(16, seed=9).generate()
        return CorpusEntry.from_sequence(
            sigma, algorithm="greedy", num_pes=16, d=2.0, seed=3, check="demo"
        )

    def test_json_round_trip(self):
        entry = self._entry()
        assert CorpusEntry.from_json(entry.to_json()) == entry

    def test_sequence_round_trip(self):
        sigma = SequenceFuzzer(16, seed=9).generate()
        entry = CorpusEntry.from_sequence(
            sigma, algorithm="greedy", num_pes=16, d=2.0, seed=3, check="demo"
        )
        assert entry.sequence() == sigma

    def test_inf_departure_and_d_encode_as_strings(self):
        entry = CorpusEntry(
            algorithm="greedy",
            num_pes=4,
            d=math.inf,
            seed=0,
            check="",
            tasks=((0, 1, 0.0, math.inf),),
        )
        payload = json.loads(entry.to_json())
        assert payload["d"] == "inf"
        assert payload["tasks"][0]["departure"] == "inf"
        assert CorpusEntry.from_json(entry.to_json()) == entry

    def test_unknown_version_rejected(self):
        entry = self._entry()
        payload = json.loads(entry.to_json())
        payload["version"] = 999
        with pytest.raises(ValueError, match="version"):
            CorpusEntry.from_json(json.dumps(payload))

    def test_write_is_idempotent_and_content_addressed(self, tmp_path):
        entry = self._entry()
        p1 = write_counterexample(entry, tmp_path)
        p2 = write_counterexample(entry, tmp_path)
        assert p1 == p2
        assert len(list(tmp_path.glob("*.json"))) == 1
        assert load_corpus(tmp_path) == [entry]

    def test_load_missing_directory_is_empty(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []


class TestCommittedCorpus:
    def test_corpus_exists_and_is_nonempty(self):
        assert COMMITTED_CORPUS.is_dir()
        assert list(COMMITTED_CORPUS.glob("*.json"))

    def test_every_committed_entry_replays_green(self):
        # The committed corpus is a regression corpus: each entry once
        # exposed a (seeded or real) bug.  On fixed code every entry must
        # pass all referees.
        results = replay_corpus(COMMITTED_CORPUS)
        assert results
        for entry, outcome in results:
            assert outcome.ok, (entry.filename(), outcome.violations)

    def test_churn_witnesses_are_committed_and_replay_churned(self):
        # Churn entries are stored UNSHRUNK (shrinking would break the
        # epoch/granularity admissibility discipline) and must route
        # through the piecewise-N churn referee on replay.
        results = replay_corpus(COMMITTED_CORPUS)
        churned = [(e, o) for e, o in results if o.churned]
        assert churned, "no churn witness committed in tests/corpus/"
        for entry, outcome in churned:
            assert entry.resize_events, entry.filename()
            assert entry.scenario() is not None
            assert outcome.num_resizes == len(entry.resize_events)
            assert outcome.num_epochs == len(entry.resize_events) + 1

"""Coverage-guided fuzzer: determinism, validity, and actual coverage growth."""

import pytest

from repro.verify.fuzzer import FeatureVector, SequenceFuzzer, sequence_features


class TestSequenceFeatures:
    def test_reflects_structure(self):
        fuzzer = SequenceFuzzer(16, seed=0)
        sigma = fuzzer.generate()
        f = sequence_features(sigma, 16)
        assert 1 <= f.size_classes <= 5
        assert 0 <= f.depth <= 4
        assert 0 <= f.volume <= 8
        assert 0 <= f.burst <= 5

    def test_feature_vector_hashable(self):
        f = FeatureVector(1, False, 1, 1, 0)
        assert f in {f}


class TestSequenceFuzzer:
    def test_rejects_bad_machine_size(self):
        with pytest.raises(ValueError):
            SequenceFuzzer(12)

    def test_sequences_are_valid_and_nonempty(self):
        fuzzer = SequenceFuzzer(16, seed=1)
        for _ in range(25):
            sigma = fuzzer.generate()
            assert len(sigma) >= 1
            assert all(t.size <= 16 for t in sigma.tasks.values())

    def test_deterministic_from_seed(self):
        a = SequenceFuzzer(32, seed=7)
        b = SequenceFuzzer(32, seed=7)
        for _ in range(15):
            assert a.generate() == b.generate()

    def test_different_seeds_diverge(self):
        a = [SequenceFuzzer(32, seed=1).generate() for _ in range(3)]
        b = [SequenceFuzzer(32, seed=2).generate() for _ in range(3)]
        assert a != b

    def test_coverage_grows_and_pool_retains_discoverers(self):
        fuzzer = SequenceFuzzer(32, seed=0)
        initial_pool = fuzzer.pool_size
        for _ in range(60):
            fuzzer.generate()
        # A healthy campaign reaches well beyond one structural bucket and
        # keeps the parameter vectors that found new ones.
        assert len(fuzzer.coverage) >= 10
        assert fuzzer.pool_size > initial_pool
        assert fuzzer.generated == 60

    def test_reaches_the_interesting_regimes(self):
        # Within a modest budget the fuzzer must hit at least one deep
        # (depth >= 2) bucket and one bursty (burst >= 2) bucket — the
        # regimes uniform sampling tends to miss.
        fuzzer = SequenceFuzzer(16, seed=3)
        for _ in range(80):
            fuzzer.generate()
        assert any(f.depth >= 2 for f in fuzzer.coverage)
        assert any(f.burst >= 2 for f in fuzzer.coverage)
        assert any(f.has_full_machine for f in fuzzer.coverage)

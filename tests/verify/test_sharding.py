"""The sharding referee: parity checks, corpus replay, and the fuzzer."""

import numpy as np
import pytest

from repro.service import sequence_records
from repro.verify.sharding import (
    check_sharded_parity,
    fuzz_sharding,
    replay_corpus_sharded,
    shardable_algorithms,
    _wide_stream,
)
from repro.workloads.generators import churn_sequence

CORPUS = __file__.rsplit("/", 1)[0] + "/../corpus"


def test_shardable_algorithms_excludes_reallocators():
    names = shardable_algorithms()
    assert "greedy" in names
    assert "optimal" not in names


class TestParityCheck:
    def test_churn_stream_is_bit_identical(self):
        records = list(
            sequence_records(churn_sequence(64, 80, np.random.default_rng(1)))
        )
        outcome = check_sharded_parity(
            records, algorithm="greedy", num_pes=64, num_shards=4
        )
        assert outcome.ok
        assert outcome.events == len(records)
        assert outcome.num_shards == 4

    def test_wide_stream_exercises_cross_shard_path(self):
        records = _wide_stream(64, 80, np.random.default_rng(2))
        outcome = check_sharded_parity(
            records, algorithm="greedy", num_pes=64, num_shards=4
        )
        assert outcome.ok
        assert outcome.cross_shard_events > 0

    def test_batch_path_checked_against_per_event_oracle(self):
        records = _wide_stream(64, 80, np.random.default_rng(3))
        outcome = check_sharded_parity(
            records, algorithm="greedy", num_pes=64, num_shards=2, batch=16
        )
        assert outcome.ok

    @pytest.mark.parametrize("name", sorted(shardable_algorithms()))
    def test_every_shardable_algorithm_holds_parity(self, name):
        records = list(
            sequence_records(churn_sequence(32, 60, np.random.default_rng(4)))
        )
        outcome = check_sharded_parity(
            records, algorithm=name, num_pes=32, num_shards=2, seed=4
        )
        assert outcome.ok, outcome.divergences


class TestCorpusReplay:
    def test_replay_covers_corpus_and_skips_unshardable(self):
        results = replay_corpus_sharded(CORPUS, num_shards=2)
        assert len(results) >= 9
        shardable = set(shardable_algorithms())
        checked = skipped = 0
        for entry, outcome in results:
            if outcome is None:
                skipped += 1
                assert (
                    entry.algorithm not in shardable
                    or entry.fault_events
                    or entry.resize_events
                    or 2 > entry.num_pes
                )
            else:
                checked += 1
                assert outcome.ok, outcome.divergences
                assert outcome.events > 0
        assert checked > 0 and skipped > 0

    def test_replay_batch_path(self):
        results = replay_corpus_sharded(CORPUS, num_shards=4, batch=32)
        assert all(o.ok for _, o in results if o is not None)


class TestFuzz:
    def test_small_sweep_is_clean(self):
        outcomes = fuzz_sharding(
            num_pes=64, num_shards=4, sequences=4, tasks=60,
            algorithms=["greedy"], seed=7,
        )
        assert len(outcomes) == 4
        assert all(o.ok for o in outcomes)
        # The alternating generators must actually hit the cross-shard
        # path (wide streams) somewhere in the sweep.
        assert any(o.cross_shard_events > 0 for o in outcomes)

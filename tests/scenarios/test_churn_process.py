"""ChurnProcess: deterministic replay, round-trips, admissibility by construction.

The determinism contract is the foundation the whole churn suite rests
on: a committed scenario seed must rebuild byte-for-byte forever (corpus
replay, journal resume, and cross-backend parity all assume it).  The
stateful machine below lets Hypothesis wander through parameter space the
way the coverage-guided fuzzer does — mutating one knob at a time — and
re-checks the contract after every step.
"""

import json
import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.errors import InvalidMachineError
from repro.scenarios import ChurnProcess

#: Resize schedules that keep every machine size admissible from N=8 up.
RESIZE_SCHEDULES = (
    (),
    ((10.0, "grow", 2),),
    ((10.0, "grow", 2), (20.0, "shrink", 2)),
    ((12.0, "shrink", 2), (22.0, "grow", 2)),
)


def _canon(scenario) -> str:
    """Canonical byte representation of a scenario."""
    return json.dumps(scenario.to_dict(), sort_keys=True)


def _check_contract(process: ChurnProcess) -> None:
    """One full determinism + round-trip check for one parameter point."""
    first = _canon(process.build())
    # Same process object, second build: byte-identical.
    assert _canon(process.build()) == first
    # A fresh process with the same parameters: byte-identical.
    clone = ChurnProcess(**{
        f: getattr(process, f) for f in process.__dataclass_fields__
    })
    assert _canon(clone.build()) == first
    # to_dict/from_dict round-trips the parameters and the scenario.
    restored = ChurnProcess.from_dict(process.to_dict())
    assert restored == process
    assert restored.to_dict() == process.to_dict()
    assert _canon(restored.build()) == first


class TestDeterminism:
    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_any_seed_replays_identically(self, seed):
        process = ChurnProcess(
            num_pes=16, seed=seed, horizon=30.0, task_rate=1.0,
            pe_mttf=12.0, mttr=2.5, kill_rate=0.1,
            storm_rate=0.1, storm_depth=5,
            resizes=((12.0, "grow", 2), (24.0, "shrink", 2)),
        )
        _check_contract(process)

    def test_different_seeds_differ(self):
        base = dict(num_pes=16, horizon=40.0, task_rate=1.5)
        a = ChurnProcess(seed=1, **base).build()
        b = ChurnProcess(seed=2, **base).build()
        assert _canon(a) != _canon(b)

    def test_built_scenarios_are_admissible(self):
        # build() validates internally; re-validate explicitly anyway.
        process = ChurnProcess(
            num_pes=16, seed=7, horizon=50.0, task_rate=2.0,
            pe_mttf=8.0, mttr=2.0, kill_rate=0.2, storm_rate=0.2,
            storm_depth=8, diurnal_period=25.0, diurnal_amplitude=0.6,
            resizes=((18.0, "shrink", 2), (36.0, "grow", 2)),
        )
        scenario = process.build()
        scenario.validate()
        assert scenario.final_num_pes() == 16

    def test_bad_parameters_rejected(self):
        with pytest.raises(InvalidMachineError, match="power of two"):
            ChurnProcess(num_pes=12).build()
        with pytest.raises(InvalidMachineError, match="horizon"):
            ChurnProcess(num_pes=8, horizon=0.0).build()
        with pytest.raises(InvalidMachineError, match="task_rate"):
            ChurnProcess(num_pes=8, task_rate=-1.0).build()


class ChurnDeterminismMachine(RuleBasedStateMachine):
    """Mutate one generation knob at a time; the contract must never break."""

    def __init__(self):
        super().__init__()
        self.params: dict = dict(num_pes=8, seed=0, horizon=25.0, task_rate=1.0)

    # -- knobs -------------------------------------------------------------

    @rule(seed=st.integers(0, 2**32 - 1))
    def reseed(self, seed):
        self.params["seed"] = seed

    @rule(n=st.sampled_from([8, 16, 32]))
    def resize_machine(self, n):
        self.params["num_pes"] = n

    @rule(rate=st.floats(0.2, 3.0), duration=st.floats(0.5, 8.0))
    def set_workload(self, rate, duration):
        self.params["task_rate"] = rate
        self.params["mean_duration"] = duration

    @rule(mttf=st.one_of(st.none(), st.floats(3.0, 50.0)),
          mttr=st.floats(0.5, 4.0))
    def set_faults(self, mttf, mttr):
        self.params["pe_mttf"] = math.inf if mttf is None else mttf
        self.params["mttr"] = mttr

    @rule(kill=st.floats(0.0, 0.3))
    def set_kills(self, kill):
        self.params["kill_rate"] = kill

    @rule(storm=st.floats(0.0, 0.3), depth=st.integers(2, 10))
    def set_storms(self, storm, depth):
        self.params["storm_rate"] = storm
        self.params["storm_depth"] = depth

    @rule(amplitude=st.floats(0.0, 0.8))
    def set_diurnal(self, amplitude):
        self.params["diurnal_period"] = self.params["horizon"] / 2.0
        self.params["diurnal_amplitude"] = amplitude

    @rule(index=st.integers(0, len(RESIZE_SCHEDULES) - 1))
    def set_resizes(self, index):
        self.params["resizes"] = RESIZE_SCHEDULES[index]

    # -- the contract ------------------------------------------------------

    @invariant()
    def replays_byte_identically_and_round_trips(self):
        _check_contract(ChurnProcess(**self.params))


ChurnDeterminismMachine.TestCase.settings = settings(
    max_examples=12,
    stateful_step_count=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TestChurnDeterminismStateful = ChurnDeterminismMachine.TestCase

"""Resize events, epoch structure, and the scenario discipline."""

import math

import pytest

from repro.errors import FaultPlanError, InvalidMachineError
from repro.faults.plan import FaultPlan, PEFailure, PERepair, TaskKill
from repro.scenarios import Epoch, MachineResize, Scenario
from repro.tasks.events import Arrival, Departure, event_sort_key
from repro.tasks.sequence import TaskSequence
from repro.tasks.task import Task
from repro.types import TaskId


def _sequence(*specs):
    """specs: (tid, size, arrival, departure)."""
    return TaskSequence.from_tasks(
        [Task(TaskId(t), s, a, d) for t, s, a, d in specs]
    )


class TestMachineResize:
    def test_rejects_bad_op_and_factor(self):
        with pytest.raises(InvalidMachineError, match="grow.*shrink"):
            MachineResize(1.0, "explode")
        with pytest.raises(InvalidMachineError, match="power of two"):
            MachineResize(1.0, "grow", 3)
        with pytest.raises(InvalidMachineError, match="power of two"):
            MachineResize(1.0, "grow", 1)

    def test_applied_to(self):
        assert MachineResize(1.0, "grow", 2).applied_to(8) == 16
        assert MachineResize(1.0, "shrink", 4).applied_to(8) == 2
        with pytest.raises(InvalidMachineError, match="cannot shrink"):
            MachineResize(1.0, "shrink", 4).applied_to(2)

    def test_resize_sorts_last_at_shared_timestamp(self):
        t = 5.0
        task = Task(TaskId(0), 2, 0.0, t)
        events = [
            MachineResize(t, "grow"),
            Arrival(t, Task(TaskId(1), 2, t)),
            PEFailure(t, 3),
            Departure(t, TaskId(0)),
        ]
        ordered = sorted(events, key=event_sort_key)
        assert [type(e).__name__ for e in ordered] == [
            "Departure", "Arrival", "PEFailure", "MachineResize"
        ]
        assert task.departure == t  # the tie the ordering resolves


class TestEpochs:
    def _scenario(self):
        return Scenario(
            num_pes=8,
            sequence=_sequence((0, 2, 0.0, 50.0)),
            resizes=(
                MachineResize(10.0, "grow", 2),
                MachineResize(20.0, "shrink", 4),
            ),
        )

    def test_epoch_trajectory(self):
        epochs = self._scenario().epochs()
        assert [e.num_pes for e in epochs] == [8, 16, 4]
        assert epochs[0].start == -math.inf and epochs[-1].end == math.inf
        assert [(e.start, e.end) for e in epochs][1] == (10.0, 20.0)

    def test_epoch_at_resize_instant_is_the_old_epoch(self):
        s = self._scenario()
        assert s.epoch_at(10.0).num_pes == 8
        assert s.epoch_at(10.0 + 1e-9).num_pes == 16
        assert s.min_num_pes() == 4
        assert s.final_num_pes() == 4

    def test_equal_time_resizes_rejected(self):
        with pytest.raises(InvalidMachineError, match="strictly time-ordered"):
            Scenario(
                num_pes=8,
                sequence=TaskSequence(()),
                resizes=(
                    MachineResize(5.0, "grow"),
                    MachineResize(5.0, "shrink"),
                ),
            )

    def test_plan_slices_split_by_epoch(self):
        plan = FaultPlan((
            PEFailure(2.0, 4), PERepair(5.0, 4),    # epoch 0 (N=8)
            TaskKill(10.0, TaskId(0)),               # at the resize -> epoch 0
            PEFailure(12.0, 8), PERepair(15.0, 8),   # epoch 1 (N=16)
        ))
        s = Scenario(
            num_pes=8,
            sequence=_sequence((0, 2, 0.0, 50.0)),
            plan=plan,
            resizes=(
                MachineResize(10.0, "grow", 2),
                MachineResize(20.0, "shrink", 4),
            ),
        )
        slices = s.plan_slices()
        assert [len(p) for p in slices] == [3, 2, 0]
        assert s.num_churn_events == 7
        s.validate()


class TestValidate:
    def test_task_must_fit_smallest_machine(self):
        s = Scenario(
            num_pes=8,
            sequence=_sequence((0, 8, 0.0, 50.0)),
            resizes=(MachineResize(10.0, "shrink", 2),),
        )
        with pytest.raises(InvalidMachineError, match="smallest machine"):
            s.validate()

    def test_failure_must_be_repaired_before_resize(self):
        s = Scenario(
            num_pes=8,
            sequence=_sequence((0, 1, 0.0, 50.0)),
            plan=FaultPlan((PEFailure(2.0, 4),)),
            resizes=(MachineResize(10.0, "grow", 2),),
        )
        with pytest.raises(FaultPlanError, match="unrepaired"):
            s.validate()

    def test_granularity_checked_per_epoch_size(self):
        # Node 8 is a single PE on N=8: legal for w=1 tasks, but a
        # size-2 task makes it break the granularity rule in epoch 0.
        s = Scenario(
            num_pes=8,
            sequence=_sequence((0, 2, 0.0, 50.0)),
            plan=FaultPlan((PEFailure(2.0, 8), PERepair(3.0, 8))),
        )
        with pytest.raises(FaultPlanError, match="granularity"):
            s.validate()

    def test_validate_errors_name_event_index_and_time(self):
        plan = FaultPlan((
            PEFailure(1.0, 4), PERepair(2.0, 4), PERepair(3.5, 4),
        ))
        with pytest.raises(FaultPlanError, match=r"event 2 \(t=3\.5\)"):
            plan.validate_for(8)


class TestSerialisation:
    def test_round_trip(self):
        s = Scenario(
            num_pes=8,
            sequence=_sequence((0, 2, 0.0, 50.0), (1, 4, 1.0, math.inf)),
            plan=FaultPlan((PEFailure(2.0, 2), PERepair(5.0, 2))),
            resizes=(MachineResize(10.0, "grow", 2),),
        )
        back = Scenario.from_dict(s.to_dict())
        assert back.to_dict() == s.to_dict()
        assert back.num_pes == s.num_pes
        assert back.resizes == s.resizes
        assert back.plan.events == s.plan.events
        assert back.describe() == s.describe()

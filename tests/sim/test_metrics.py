"""Unit tests for metrics collection and fairness/time-series helpers."""

import numpy as np
import pytest

from repro.sim.metrics import (
    LoadTimeSeries,
    MetricsCollector,
    ReallocationStats,
    jain_fairness,
)


class TestJainFairness:
    def test_balanced_is_one(self):
        assert jain_fairness(np.array([3, 3, 3, 3])) == pytest.approx(1.0)

    def test_single_loaded_pe(self):
        assert jain_fairness(np.array([4, 0, 0, 0])) == pytest.approx(0.25)

    def test_empty_machine_is_balanced(self):
        assert jain_fairness(np.zeros(8)) == 1.0

    def test_intermediate(self):
        v = np.array([2, 1, 1, 0])
        expected = (4.0**2) / (4 * (4 + 1 + 1))
        assert jain_fairness(v) == pytest.approx(expected)

    def test_scale_invariant(self):
        v = np.array([1, 2, 3, 4], dtype=float)
        assert jain_fairness(v) == pytest.approx(jain_fairness(10 * v))


class TestLoadTimeSeries:
    def test_peak_empty(self):
        assert LoadTimeSeries().peak == 0

    def test_record_and_peak(self):
        ts = LoadTimeSeries()
        for t, v in [(0.0, 1), (1.0, 3), (2.0, 2)]:
            ts.record(t, v)
        assert ts.peak == 3
        times, loads = ts.as_arrays()
        assert times.tolist() == [0.0, 1.0, 2.0]
        assert loads.tolist() == [1, 3, 2]

    def test_time_average_piecewise(self):
        ts = LoadTimeSeries()
        ts.record(0.0, 2)
        ts.record(1.0, 4)   # 2 held on [0,1)
        ts.record(3.0, 0)   # 4 held on [1,3)
        assert ts.time_average() == pytest.approx((2 * 1 + 4 * 2) / 3.0)

    def test_time_average_degenerate(self):
        ts = LoadTimeSeries()
        assert ts.time_average() == 0.0
        ts.record(1.0, 5)
        assert ts.time_average() == 5.0


class TestReallocationStats:
    def test_accumulation(self):
        stats = ReallocationStats()
        stats.record_reallocation()
        stats.record_move(size=4, distance=3, bytes_moved=100.0)
        stats.record_move(size=2, distance=1, bytes_moved=50.0)
        stats.record_stationary()
        assert stats.num_reallocations == 1
        assert stats.num_migrations == 2
        assert stats.num_stationary == 1
        assert stats.migrated_pe_volume == 6
        assert stats.traffic_pe_hops == 4 * 3 + 2 * 1
        assert stats.checkpoint_bytes == 150.0


class TestMetricsCollector:
    def test_peak_snapshot_follows_max(self):
        mc = MetricsCollector()
        mc.observe(0.0, 1, np.array([1, 0]))
        mc.observe(1.0, 3, np.array([3, 1]))
        mc.observe(2.0, 2, np.array([2, 2]))
        assert mc.max_load == 3
        assert mc.peak_snapshot.tolist() == [3, 1]
        assert mc.peak_snapshot_time == 1.0
        assert mc.events_processed == 3

    def test_fairness_at_peak(self):
        mc = MetricsCollector()
        assert mc.fairness_at_peak() == 1.0
        mc.observe(0.0, 2, np.array([2, 0]))
        assert mc.fairness_at_peak() == pytest.approx(0.5)


class TestLightweightMode:
    def test_observe_without_snapshot(self):
        mc = MetricsCollector()
        mc.observe(0.0, 3)  # no leaf loads
        assert mc.max_load == 3
        assert mc.peak_snapshot is None
        assert mc.fairness_at_peak() == 1.0

    def test_simulator_flag_keeps_max_load_exact(self):
        from repro.core.greedy import GreedyAlgorithm
        from repro.machines.tree import TreeMachine
        from repro.sim.engine import Simulator
        from repro.tasks.builder import figure1_sequence

        m1, m2 = TreeMachine(4), TreeMachine(4)
        full = Simulator(m1, GreedyAlgorithm(m1))
        light = Simulator(m2, GreedyAlgorithm(m2), collect_leaf_snapshots=False)
        for ev in figure1_sequence():
            full.step(ev)
        for ev in figure1_sequence():
            light.step(ev)
        assert light.metrics.max_load == full.metrics.max_load == 2
        assert light.metrics.series.max_loads == full.metrics.series.max_loads
        assert light.metrics.peak_snapshot is None
        assert full.metrics.peak_snapshot is not None

"""Tests for exact placement-interval logging and dynamic slowdown."""

import math

import pytest

from repro.core.optimal import OptimalReallocatingAlgorithm
from repro.core.greedy import GreedyAlgorithm
from repro.machines.tree import TreeMachine
from repro.sim.engine import Simulator
from repro.sim.slowdown import measure_slowdowns, measure_slowdowns_dynamic
from repro.tasks.builder import SequenceBuilder, figure1_sequence
from repro.types import TaskId


class TestPlacementIntervals:
    def test_static_algorithm_single_segment(self):
        m = TreeMachine(4)
        sim = Simulator(m, GreedyAlgorithm(m))
        seq = SequenceBuilder().arrive("a", size=2).depart("a").build()
        for ev in seq:
            sim.step(ev)
        intervals = sim.placement_intervals()
        (seg,) = intervals[TaskId(0)]
        start, end, node = seg
        assert (start, end) == (1.0, 2.0)
        assert m.hierarchy.subtree_size(node) == 2

    def test_immortal_task_open_segment(self):
        m = TreeMachine(4)
        sim = Simulator(m, GreedyAlgorithm(m))
        seq = SequenceBuilder().arrive("a", size=1).build()
        for ev in seq:
            sim.step(ev)
        (seg,) = sim.placement_intervals()[TaskId(0)]
        assert math.isinf(seg[1])

    def test_reallocation_splits_segments(self):
        m = TreeMachine(4)
        sim = Simulator(m, OptimalReallocatingAlgorithm(m))
        for ev in figure1_sequence():
            sim.step(ev)
        intervals = sim.placement_intervals()
        # t3 (id 2) gets moved by the repack after t5 arrives in the paper's
        # example; at minimum, every task has contiguous non-overlapping
        # segments covering [arrival, departure/inf).
        for tid, segs in intervals.items():
            assert segs, f"task {tid} has no segments"
            for (s1, e1, _), (s2, e2, _) in zip(segs, segs[1:]):
                assert e1 == s2  # contiguous
            assert all(e > s for s, e, _ in segs)

    def test_segments_cover_lifetime(self):
        m = TreeMachine(4)
        sim = Simulator(m, OptimalReallocatingAlgorithm(m))
        seq = figure1_sequence()
        for ev in seq:
            sim.step(ev)
        intervals = sim.placement_intervals()
        for tid, task in seq.tasks.items():
            segs = intervals[tid]
            assert segs[0][0] == task.arrival
            assert segs[-1][1] == task.departure


class TestDynamicSlowdown:
    def test_matches_static_for_fixed_placements(self):
        m = TreeMachine(8)
        seq = (
            SequenceBuilder()
            .arrive("a", size=4)
            .arrive("b", size=2)
            .depart("a")
            .depart("b")
            .build()
        )
        sim = Simulator(m, GreedyAlgorithm(m))
        for ev in seq:
            sim.step(ev)
        dynamic = measure_slowdowns_dynamic(m, seq, sim.placement_intervals())
        static = measure_slowdowns(
            m, seq, {tid: segs[0][2] for tid, segs in sim.placement_intervals().items()}
        )
        for tid in seq.tasks:
            assert dynamic.per_task[tid].slowdown == pytest.approx(
                static.per_task[tid].slowdown
            )

    def test_migration_to_idle_pe_restores_speed(self):
        """A task moved off a contended PE speeds up from that instant."""
        m = TreeMachine(4)
        # Two unit tasks share leaf 0 on [0, 2); then one 'migrates' to leaf 3.
        seq = (
            SequenceBuilder()
            .arrive("x", size=1, at=0.0)
            .arrive("y", size=1, at=0.0)
            .depart("x", at=4.0)
            .depart("y", at=4.0)
            .build()
        )
        leaf = m.hierarchy.leaf_node
        intervals = {
            TaskId(0): [(0.0, 4.0, leaf(0))],
            TaskId(1): [(0.0, 2.0, leaf(0)), (2.0, 4.0, leaf(3))],
        }
        report = measure_slowdowns_dynamic(m, seq, intervals)
        # y: shared for 2 units (rate 1/2), alone for 2 (rate 1): work 3 in 4.
        assert report.per_task[TaskId(1)].completed_work == pytest.approx(3.0)
        assert report.per_task[TaskId(1)].slowdown == pytest.approx(4.0 / 3.0)
        # x: shared 2, alone 2 as well once y left.
        assert report.per_task[TaskId(0)].completed_work == pytest.approx(3.0)

    def test_worst_slowdown_never_exceeds_peak_load(self):
        """Physical sanity: slowdown is bounded by the max load anywhere."""
        import numpy as np

        from repro.core.periodic import PeriodicReallocationAlgorithm
        from repro.workloads.generators import poisson_sequence

        m = TreeMachine(16)
        seq = poisson_sequence(16, 120, np.random.default_rng(8), utilization=1.5)
        sim = Simulator(m, PeriodicReallocationAlgorithm(m, 1))
        for ev in seq:
            sim.step(ev)
        report = measure_slowdowns_dynamic(m, seq, sim.placement_intervals())
        assert report.worst_slowdown <= sim.metrics.max_load + 1e-9

    def test_empty_intervals(self):
        from repro.tasks.sequence import TaskSequence

        m = TreeMachine(4)
        report = measure_slowdowns_dynamic(m, TaskSequence([]), {})
        assert report.worst_slowdown == 0.0

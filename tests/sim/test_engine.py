"""Unit tests for the Simulator: validation, budget enforcement, accounting."""

import math

import pytest

from repro.core.base import AllocationAlgorithm, Placement, Reallocation
from repro.core.greedy import GreedyAlgorithm
from repro.core.optimal import OptimalReallocatingAlgorithm
from repro.errors import PlacementError, ReallocationError, SimulationError
from repro.machines.tree import TreeMachine
from repro.sim.engine import Simulator
from repro.tasks.builder import SequenceBuilder, figure1_sequence
from repro.tasks.events import Arrival, Departure
from repro.tasks.task import Task
from repro.types import TaskId


class _RiggedAlgorithm(AllocationAlgorithm):
    """Test double returning scripted placements/reallocations."""

    def __init__(self, machine, placements=None, realloc=None, d=float("inf")):
        super().__init__(machine)
        self._placements = dict(placements or {})
        self._realloc = realloc
        self._d = d

    @property
    def name(self):
        return "rigged"

    @property
    def reallocation_parameter(self):
        return self._d

    def on_arrival(self, task):
        return Placement(task.task_id, self._placements[task.task_id])

    def on_departure(self, task):
        pass

    def maybe_reallocate(self, arrived_since_last):
        realloc, self._realloc = self._realloc, None
        return realloc


def _two_event_sequence(size=2):
    return SequenceBuilder().arrive("a", size=size).build()


class TestValidation:
    def test_wrong_machine_instance_rejected(self):
        m1, m2 = TreeMachine(4), TreeMachine(4)
        with pytest.raises(SimulationError):
            Simulator(m1, GreedyAlgorithm(m2))

    def test_wrong_size_placement_rejected(self):
        m = TreeMachine(4)
        algo = _RiggedAlgorithm(m, placements={TaskId(0): 1})  # 4-PE node for size 2
        sim = Simulator(m, algo)
        with pytest.raises(PlacementError):
            sim.run(_two_event_sequence(size=2))

    def test_invalid_node_rejected(self):
        m = TreeMachine(4)
        algo = _RiggedAlgorithm(m, placements={TaskId(0): 99})
        with pytest.raises(PlacementError):
            Simulator(m, algo).run(_two_event_sequence())

    def test_wrong_task_id_in_placement_rejected(self):
        m = TreeMachine(4)

        class Liar(_RiggedAlgorithm):
            def on_arrival(self, task):
                return Placement(TaskId(999), 2)

        with pytest.raises(PlacementError):
            Simulator(m, Liar(m)).run(_two_event_sequence())


class TestReallocationEnforcement:
    def test_budget_violation_rejected(self):
        m = TreeMachine(4)
        algo = _RiggedAlgorithm(
            m,
            placements={TaskId(0): 2},
            realloc=Reallocation({TaskId(0): 3}),
            d=10.0,  # budget 40 PE-arrivals; only 2 arrive
        )
        with pytest.raises(ReallocationError):
            Simulator(m, algo).run(_two_event_sequence())

    def test_realloc_must_cover_exactly_active_tasks(self):
        m = TreeMachine(4)
        algo = _RiggedAlgorithm(
            m,
            placements={TaskId(0): 2},
            realloc=Reallocation({TaskId(0): 3, TaskId(7): 2}),
            d=0.0,
        )
        with pytest.raises(ReallocationError):
            Simulator(m, algo).run(_two_event_sequence())

    def test_realloc_missing_task_rejected(self):
        m = TreeMachine(4)
        algo = _RiggedAlgorithm(
            m, placements={TaskId(0): 2}, realloc=Reallocation({}), d=0.0
        )
        with pytest.raises(ReallocationError):
            Simulator(m, algo).run(_two_event_sequence())

    def test_migration_accounting(self):
        m = TreeMachine(4)
        algo = _RiggedAlgorithm(
            m,
            placements={TaskId(0): 2},
            realloc=Reallocation({TaskId(0): 3}),
            d=0.0,
        )
        sim = Simulator(m, algo)
        sim.run(_two_event_sequence())
        stats = sim.metrics.realloc
        assert stats.num_reallocations == 1
        assert stats.num_migrations == 1
        assert stats.num_stationary == 0
        assert stats.migrated_pe_volume == 2
        assert stats.traffic_pe_hops > 0

    def test_stationary_remap_costs_nothing(self):
        m = TreeMachine(4)
        algo = _RiggedAlgorithm(
            m,
            placements={TaskId(0): 2},
            realloc=Reallocation({TaskId(0): 2}),
            d=0.0,
        )
        sim = Simulator(m, algo)
        sim.run(_two_event_sequence())
        assert sim.metrics.realloc.num_stationary == 1
        assert sim.metrics.realloc.num_migrations == 0


class TestAccounting:
    def test_metrics_peak_and_events(self):
        m = TreeMachine(4)
        sim = Simulator(m, GreedyAlgorithm(m))
        result = sim.run(figure1_sequence())
        assert result.max_load == 2
        assert result.metrics.events_processed == 7
        assert result.optimal_load == 1
        assert result.competitive_ratio == 2.0

    def test_peak_captured_between_events(self):
        """The peak is measured after every event, so an interior spike
        that later drains is still recorded."""
        m = TreeMachine(4)
        seq = (
            SequenceBuilder()
            .arrive("a", size=4)
            .arrive("b", size=4)
            .depart("a")
            .depart("b")
            .build()
        )
        sim = Simulator(m, GreedyAlgorithm(m))
        result = sim.run(seq)
        assert result.max_load == 2
        assert sim.current_max_load == 0

    def test_final_placements_exposed(self):
        m = TreeMachine(4)
        sim = Simulator(m, GreedyAlgorithm(m))
        result = sim.run(figure1_sequence())
        assert len(result.final_placements) == 3  # t1, t3, t5 still active

    def test_competitive_ratio_empty_sequence(self):
        from repro.tasks.sequence import TaskSequence

        m = TreeMachine(4)
        result = Simulator(m, GreedyAlgorithm(m)).run(TaskSequence([]))
        assert result.max_load == 0
        assert result.competitive_ratio == 0.0

    def test_duplicate_arrival_caught(self):
        m = TreeMachine(4)
        sim = Simulator(m, GreedyAlgorithm(m))
        t = Task(TaskId(0), 1, 0.0)
        sim.step(Arrival(0.0, t))
        with pytest.raises(SimulationError):
            sim.step(Arrival(0.0, t))

    def test_departure_of_unknown_caught(self):
        m = TreeMachine(4)
        sim = Simulator(m, GreedyAlgorithm(m))
        with pytest.raises(SimulationError):
            sim.step(Departure(1.0, TaskId(5)))

    def test_consistency_checker(self):
        m = TreeMachine(8)
        sim = Simulator(m, GreedyAlgorithm(m))
        seq = (
            SequenceBuilder()
            .arrive("a", size=2)
            .arrive("b", size=4)
            .arrive("c", size=1)
            .depart("b")
            .build()
        )
        for ev in seq:
            sim.step(ev)
            sim.check_consistency()
        assert sim.active_size() == 3

    def test_optimal_run_via_simulator_reallocates(self):
        m = TreeMachine(4)
        sim = Simulator(m, OptimalReallocatingAlgorithm(m))
        result = sim.run(figure1_sequence())
        assert result.max_load == 1
        assert result.metrics.realloc.num_reallocations == 5  # one per arrival

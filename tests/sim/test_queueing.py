"""Tests for the exclusive-use queueing comparator."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.machines.tree import TreeMachine
from repro.sim.queueing import simulate_exclusive_queueing
from repro.tasks.task import Task
from repro.types import TaskId


def _task(tid, size, arrival=0.0, work=1.0):
    return Task(TaskId(tid), size, arrival, work=work)


class TestFCFS:
    def test_immediate_start_when_vacant(self):
        m = TreeMachine(4)
        result = simulate_exclusive_queueing(m, [_task(0, 2, 1.0, 3.0)])
        out = result.outcomes[TaskId(0)]
        assert out.start == pytest.approx(1.0)
        assert out.completion == pytest.approx(4.0)
        assert out.slowdown == pytest.approx(1.0)

    def test_queueing_when_full(self):
        m = TreeMachine(4)
        tasks = [_task(0, 4, 0.0, 5.0), _task(1, 4, 1.0, 1.0)]
        result = simulate_exclusive_queueing(m, tasks)
        assert result.outcomes[TaskId(1)].start == pytest.approx(5.0)
        assert result.outcomes[TaskId(1)].response_time == pytest.approx(5.0)
        assert result.max_load == 1

    def test_fcfs_head_blocks_fitting_followers(self):
        m = TreeMachine(4)
        tasks = [
            _task(0, 2, 0.0, 10.0),   # occupies half
            _task(1, 4, 1.0, 1.0),    # cannot fit -> queue head
            _task(2, 2, 2.0, 1.0),    # would fit, but FCFS blocks it
        ]
        result = simulate_exclusive_queueing(m, tasks, policy="fcfs")
        assert result.outcomes[TaskId(2)].start >= result.outcomes[TaskId(1)].start

    def test_parallel_occupancy(self):
        m = TreeMachine(4)
        tasks = [_task(0, 2, 0.0, 2.0), _task(1, 2, 0.0, 2.0)]
        result = simulate_exclusive_queueing(m, tasks)
        assert result.makespan == pytest.approx(2.0)
        assert result.utilization == pytest.approx(1.0)


class TestBackfill:
    def test_backfill_overtakes_blocked_head(self):
        m = TreeMachine(4)
        tasks = [
            _task(0, 2, 0.0, 10.0),
            _task(1, 4, 1.0, 1.0),    # blocked head
            _task(2, 2, 2.0, 1.0),    # backfills into the free half
        ]
        result = simulate_exclusive_queueing(m, tasks, policy="backfill")
        assert result.outcomes[TaskId(2)].start == pytest.approx(2.0)
        assert result.outcomes[TaskId(1)].start == pytest.approx(10.0)

    def test_backfill_improves_mean_response(self):
        rng = np.random.default_rng(2)
        tasks = []
        t = 0.0
        for i in range(150):
            t += float(rng.exponential(0.2))
            tasks.append(_task(i, int(1 << rng.integers(0, 5)), t, float(rng.exponential(1.5))))
        m = TreeMachine(16)
        fcfs = simulate_exclusive_queueing(m, tasks, policy="fcfs")
        bf = simulate_exclusive_queueing(TreeMachine(16), tasks, policy="backfill")
        assert bf.mean_response <= fcfs.mean_response + 1e-9


class TestInvariantsAndErrors:
    def test_no_overlap_ever(self):
        """Exclusive use: completion records never overlap on a PE."""
        rng = np.random.default_rng(4)
        tasks = []
        t = 0.0
        for i in range(80):
            t += float(rng.exponential(0.3))
            tasks.append(_task(i, int(1 << rng.integers(0, 3)), t, float(rng.exponential(1.0))))
        m = TreeMachine(8)
        result = simulate_exclusive_queueing(m, tasks, policy="backfill")
        assert result.max_load == 1
        # Per-PE busy intervals from outcomes must be disjoint is implied by
        # max_load==1 at every instant; cross-check utilization sanity.
        total_work = sum(t.size * t.work for t in tasks)
        assert result.utilization * 8 * result.makespan == pytest.approx(total_work)

    def test_oversized_task_rejected(self):
        m = TreeMachine(4)
        with pytest.raises(Exception):
            simulate_exclusive_queueing(m, [_task(0, 8, 0.0, 1.0)])

    def test_unknown_policy(self):
        m = TreeMachine(4)
        with pytest.raises(SimulationError):
            simulate_exclusive_queueing(m, [], policy="magic")

    def test_zero_work_rejected(self):
        m = TreeMachine(4)
        with pytest.raises(SimulationError):
            simulate_exclusive_queueing(m, [Task(TaskId(0), 1, 0.0, work=0.0)])

    def test_empty(self):
        m = TreeMachine(4)
        result = simulate_exclusive_queueing(m, [])
        assert result.makespan == 0.0
        assert result.max_load == 0


class TestRegimeComparison:
    def test_shared_caps_worst_slowdown_queueing_does_not(self):
        """The paper's motivating contrast on a bursty workload."""
        from repro.core.greedy import GreedyAlgorithm
        from repro.sim.closedloop import simulate_shared_closed_loop

        rng = np.random.default_rng(11)
        tasks = []
        t = 0.0
        for i in range(120):
            t += float(rng.exponential(0.15))
            tasks.append(
                _task(i, int(1 << rng.integers(0, 5)), t, float(rng.exponential(1.0)))
            )
        m = TreeMachine(16)
        shared = simulate_shared_closed_loop(m, GreedyAlgorithm(m), tasks)
        queued = simulate_exclusive_queueing(TreeMachine(16), tasks, policy="fcfs")
        assert shared.worst_slowdown <= shared.max_load + 1e-9
        assert queued.worst_slowdown > shared.worst_slowdown

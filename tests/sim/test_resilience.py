"""Fault containment in the parallel executor: timeouts, crashes, resume."""

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro.errors import CellExecutionError
from repro.sim.parallel import parallel_map, run_seeded_cells

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _ident(x):
    return x * 10


def _sleepy(x, naptime=5.0, slow={3}):
    if x in slow:
        time.sleep(naptime)
    return x * 10


def _buggy(x):
    if x == 2:
        raise ValueError("genuine bug in the cell")
    return x


def _slow_once(x, flag_dir):
    """Sleeps on the first attempt of cell 3, fast afterwards."""
    flag = Path(flag_dir) / f"slow-{x}"
    if x == 3 and not flag.exists():
        flag.touch()
        time.sleep(5.0)
    return x * 10


def _suicidal(x, flag_dir):
    """SIGKILLs its own worker process on the first attempt of cell 3."""
    flag = Path(flag_dir) / f"kill-{x}"
    if x == 3 and not flag.exists():
        flag.touch()
        os.kill(os.getpid(), signal.SIGKILL)
    return x * 10


def _seeded(rng, base):
    return base + int(rng.integers(0, 1_000_000))


class TestTimeouts:
    def test_serial_timeout_fails_only_the_slow_cell(self):
        with pytest.raises(CellExecutionError) as err:
            parallel_map(_sleepy, [(i,) for i in range(5)], timeout=0.2)
        assert set(err.value.failures) == {3}
        assert "timeout" in err.value.failures[3]

    def test_pool_timeout_fails_only_the_slow_cell(self):
        with pytest.raises(CellExecutionError) as err:
            parallel_map(_sleepy, [(i,) for i in range(5)], jobs=2, timeout=0.2)
        assert set(err.value.failures) == {3}

    def test_transient_slowness_survives_a_retry(self, tmp_path):
        results = parallel_map(
            _slow_once,
            [(i, str(tmp_path)) for i in range(5)],
            jobs=2,
            timeout=0.5,
            retries=1,
        )
        assert results == [i * 10 for i in range(5)]

    def test_genuine_bugs_propagate_immediately(self):
        with pytest.raises(ValueError, match="genuine bug"):
            parallel_map(_buggy, [(i,) for i in range(4)], timeout=1.0, retries=3)
        with pytest.raises(ValueError, match="genuine bug"):
            parallel_map(
                _buggy, [(i,) for i in range(4)], jobs=2, timeout=1.0, retries=3
            )


class TestWorkerCrash:
    def test_sigkilled_worker_is_retried_to_completion(self, tmp_path):
        results = parallel_map(
            _suicidal,
            [(i, str(tmp_path)) for i in range(6)],
            jobs=2,
            retries=1,
        )
        assert results == [i * 10 for i in range(6)]

    def test_without_retries_the_crash_surfaces_as_cell_failures(self, tmp_path):
        with pytest.raises(CellExecutionError) as err:
            parallel_map(
                _suicidal,
                [(i, str(tmp_path)) for i in range(6)],
                jobs=2,
                retries=0,
            )
        # The pool cannot attribute the crash, so the culprit is among the
        # reported cells — but every completed cell stays out of the list.
        assert 3 in err.value.failures
        assert set(err.value.failures) <= set(range(6))


class TestCheckpointedExecution:
    def test_parallel_map_resumes_from_journal(self, tmp_path):
        ckpt = tmp_path / "map.ckpt"
        args = [(i,) for i in range(6)]
        first = parallel_map(_ident, args, checkpoint=ckpt)
        again = parallel_map(_ident, args, checkpoint=ckpt)
        assert first == again == [i * 10 for i in range(6)]

    def test_run_seeded_cells_resume_is_bit_identical(self, tmp_path):
        cells = [{"base": i} for i in range(5)]
        root = np.random.SeedSequence(42)
        serial = run_seeded_cells(_seeded, cells, root.spawn(5))
        ckpt = tmp_path / "cells.ckpt"
        checkpointed = run_seeded_cells(
            _seeded, cells, np.random.SeedSequence(42).spawn(5), checkpoint=ckpt
        )
        resumed = run_seeded_cells(
            _seeded, cells, np.random.SeedSequence(42).spawn(5), checkpoint=ckpt
        )
        assert serial == checkpointed == resumed

    def test_dead_coordinator_resumes_bit_identically(self, tmp_path):
        """SIGKILL-equivalent coordinator death mid-sweep, then resume.

        The journal fingerprint pins the callable's module and qualname, so
        the cell function lives in a throwaway module importable by both
        the doomed child process and the resuming parent.
        """
        helper = tmp_path / "resil_helper.py"
        helper.write_text(
            textwrap.dedent(
                """
                import os

                def cell(x):
                    if x == 3 and os.environ.get("RESIL_DIE") == "1":
                        os._exit(9)  # uncatchable, like SIGKILL: no cleanup
                    return x * x + 1
                """
            )
        )
        ckpt = tmp_path / "sweep.ckpt"
        child = textwrap.dedent(
            f"""
            from resil_helper import cell
            from repro.sim.parallel import parallel_map

            parallel_map(cell, [(i,) for i in range(6)], checkpoint={str(ckpt)!r})
            """
        )
        env = dict(
            os.environ,
            PYTHONPATH=os.pathsep.join([SRC, str(tmp_path)]),
            RESIL_DIE="1",
        )
        proc = subprocess.run(
            [sys.executable, "-c", child], env=env, capture_output=True, text=True
        )
        assert proc.returncode == 9, proc.stderr
        # Header + cells 0..2: the journal survived the coordinator.
        assert len(ckpt.read_text().splitlines()) == 4

        sys.path.insert(0, str(tmp_path))
        try:
            import resil_helper

            resumed = parallel_map(
                resil_helper.cell, [(i,) for i in range(6)], checkpoint=ckpt
            )
        finally:
            sys.path.remove(str(tmp_path))
            sys.modules.pop("resil_helper", None)
        assert resumed == [i * i + 1 for i in range(6)]

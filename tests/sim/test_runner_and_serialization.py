"""Tests for runner helpers, observers, serialization, and the diurnal
generator — the recently added surface."""

import json
import math

import numpy as np
import pytest

from repro.core.greedy import GreedyAlgorithm
from repro.core.randomized import ObliviousRandomAlgorithm
from repro.machines.tree import TreeMachine
from repro.sim.engine import Simulator
from repro.sim.runner import SweepPoint, expected_max_load, run, run_many
from repro.tasks.builder import figure1_sequence
from repro.tasks.events import Arrival
from repro.workloads.generators import diurnal_sequence, poisson_sequence


class TestRunnerHelpers:
    def test_run_many_fresh_instances(self):
        sequences = [figure1_sequence(), figure1_sequence()]
        machine = TreeMachine(4)
        results = run_many(machine, GreedyAlgorithm, sequences)
        assert [r.max_load for r in results] == [2, 2]

    def test_expected_max_load_validates_reps(self):
        machine = TreeMachine(4)
        with pytest.raises(ValueError):
            expected_max_load(
                machine,
                lambda m: ObliviousRandomAlgorithm(m, np.random.default_rng(0)),
                figure1_sequence(),
                0,
            )

    def test_expected_max_load_returns_all_peaks(self):
        machine = TreeMachine(4)
        seeds = iter(range(100, 110))
        mean, peaks = expected_max_load(
            machine,
            lambda m: ObliviousRandomAlgorithm(m, np.random.default_rng(next(seeds))),
            figure1_sequence(),
            10,
        )
        assert len(peaks) == 10
        assert mean == pytest.approx(float(peaks.mean()))

    def test_sweep_point_accessors(self):
        machine = TreeMachine(4)
        result = run(machine, GreedyAlgorithm(machine), figure1_sequence())
        point = SweepPoint(parameter=2.0, result=result)
        assert point.max_load == 2
        assert point.ratio == 2.0


class TestObservers:
    def test_observer_sees_every_event(self):
        machine = TreeMachine(4)
        sim = Simulator(machine, GreedyAlgorithm(machine))
        seen = []
        sim.add_observer(lambda s, ev: seen.append((type(ev).__name__, s.current_max_load)))
        for ev in figure1_sequence():
            sim.step(ev)
        assert len(seen) == 7
        assert seen[-1] == ("Arrival", 2)

    def test_observer_sees_post_event_state(self):
        machine = TreeMachine(4)
        sim = Simulator(machine, GreedyAlgorithm(machine))
        volumes = []
        sim.add_observer(lambda s, ev: volumes.append(s.active_size()))
        for ev in figure1_sequence():
            sim.step(ev)
        assert volumes == [1, 2, 3, 4, 3, 2, 4]


class TestSerialization:
    def test_to_dict_roundtrips_through_json(self):
        machine = TreeMachine(4)
        result = run(machine, GreedyAlgorithm(machine), figure1_sequence())
        payload = json.loads(json.dumps(result.to_dict(include_series=True)))
        assert payload["algorithm"] == "A_G"
        assert payload["max_load"] == 2
        assert payload["optimal_load"] == 1
        assert payload["competitive_ratio"] == 2.0
        assert payload["events"] == 7
        assert len(payload["load_series"]["max_loads"]) == 7

    def test_to_dict_omits_series_by_default(self):
        machine = TreeMachine(4)
        result = run(machine, GreedyAlgorithm(machine), figure1_sequence())
        payload = result.to_dict()
        assert "load_series" not in payload
        assert payload["events"] == 7

    def test_to_dict_includes_realloc_ledger(self):
        from repro.core.optimal import OptimalReallocatingAlgorithm

        machine = TreeMachine(4)
        result = run(machine, OptimalReallocatingAlgorithm(machine), figure1_sequence())
        payload = result.to_dict()
        assert payload["reallocations"] == 5
        assert payload["migrations"] >= 0


class TestDiurnal:
    def test_basic_generation(self):
        seq = diurnal_sequence(32, 300, np.random.default_rng(0))
        assert seq.num_tasks == 300
        assert all(t.size <= 32 for t in seq.tasks.values())

    def test_rate_actually_oscillates(self):
        """More arrivals land in peak half-periods than trough half-periods."""
        period = 50.0
        seq = diurnal_sequence(
            32, 2000, np.random.default_rng(1), period=period, peak_to_trough=6.0
        )
        peak_count = trough_count = 0
        for ev in seq:
            if not isinstance(ev, Arrival):
                continue
            phase = (ev.time % period) / period
            if phase < 0.5:
                peak_count += 1   # sin > 0: above-base rate
            else:
                trough_count += 1
        assert peak_count > 1.5 * trough_count

    def test_flat_cycle_matches_poisson_intensity(self):
        """peak_to_trough = 1 degenerates to a homogeneous process."""
        seq = diurnal_sequence(
            32, 500, np.random.default_rng(2), peak_to_trough=1.0, utilization=0.7
        )
        flat = poisson_sequence(32, 500, np.random.default_rng(2), utilization=0.7)
        # Horizons within a factor ~2 (same intensity scale).
        assert 0.4 < seq.horizon() / flat.horizon() < 2.5

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            diurnal_sequence(32, 0, rng)
        with pytest.raises(ValueError):
            diurnal_sequence(32, 10, rng, period=0)
        with pytest.raises(ValueError):
            diurnal_sequence(32, 10, rng, peak_to_trough=0.5)

    def test_reproducible(self):
        a = diurnal_sequence(16, 100, np.random.default_rng(5))
        b = diurnal_sequence(16, 100, np.random.default_rng(5))
        assert a == b

"""Tests for the run-archive workflow (save -> load -> audit)."""

import json
import math

import numpy as np
import pytest

from repro.core.greedy import GreedyAlgorithm
from repro.core.periodic import PeriodicReallocationAlgorithm
from repro.errors import TraceFormatError
from repro.machines.fattree import FatTree
from repro.machines.hypercube import Hypercube
from repro.machines.mesh import Mesh2D
from repro.machines.tree import TreeMachine
from repro.sim.archive import load_run, machine_from_descriptor, save_run
from repro.sim.audit import audit_run
from repro.sim.engine import Simulator
from repro.tasks.builder import figure1_sequence
from repro.workloads.generators import churn_sequence


def _completed_sim(machine, algorithm, sequence):
    sim = Simulator(machine, algorithm)
    for ev in sequence:
        sim.step(ev)
    return sim


class TestRoundtrip:
    def test_save_load_audit(self, tmp_path):
        machine = TreeMachine(4)
        seq = figure1_sequence()
        sim = _completed_sim(machine, GreedyAlgorithm(machine), seq)
        path = tmp_path / "run.json"
        save_run(path, machine, seq, sim, metadata={"note": "figure 1"})

        machine2, seq2, intervals = load_run(path)
        assert machine2.num_pes == 4
        assert seq2 == seq
        report = audit_run(machine2, seq2, intervals)
        report.raise_if_failed()
        assert report.max_load == sim.metrics.max_load

    def test_reallocating_run_roundtrip(self, tmp_path):
        machine = TreeMachine(16)
        seq = churn_sequence(16, 300, np.random.default_rng(3))
        sim = _completed_sim(machine, PeriodicReallocationAlgorithm(machine, 1), seq)
        path = tmp_path / "run.json"
        save_run(path, machine, seq, sim)
        machine2, seq2, intervals = load_run(path)
        audit_run(machine2, seq2, intervals).raise_if_failed()

    def test_metadata_and_algorithm_recorded(self, tmp_path):
        machine = TreeMachine(4)
        seq = figure1_sequence()
        sim = _completed_sim(machine, GreedyAlgorithm(machine), seq)
        path = tmp_path / "run.json"
        save_run(path, machine, seq, sim, metadata={"seed": 7})
        payload = json.loads(path.read_text())
        assert payload["algorithm"] == "A_G"
        assert payload["metadata"]["seed"] == 7
        assert payload["max_load"] == 2

    def test_result_summary_embedded_without_series(self, tmp_path):
        machine = TreeMachine(4)
        seq = figure1_sequence()
        sim = Simulator(machine, GreedyAlgorithm(machine))
        result = sim.run(seq)
        path = tmp_path / "run.json"
        save_run(path, machine, seq, sim, result=result)
        payload = json.loads(path.read_text())
        summary = payload["result_summary"]
        assert summary["max_load"] == 2
        assert summary["competitive_ratio"] == 2.0
        assert "load_series" not in summary  # archives stay compact
        # The archive stays loadable/auditble with the extra key.
        machine2, seq2, intervals = load_run(path)
        audit_run(machine2, seq2, intervals).raise_if_failed()

    def test_infinite_departures_encoded(self, tmp_path):
        machine = TreeMachine(4)
        seq = figure1_sequence()  # three tasks never depart
        sim = _completed_sim(machine, GreedyAlgorithm(machine), seq)
        path = tmp_path / "run.json"
        save_run(path, machine, seq, sim)
        _m, seq2, intervals = load_run(path)
        immortal = [t for t in seq2.tasks.values() if math.isinf(t.departure)]
        assert len(immortal) == 3
        open_segments = [
            segs[-1] for segs in intervals.values() if math.isinf(segs[-1][1])
        ]
        assert len(open_segments) == 3


class TestMachineDescriptors:
    @pytest.mark.parametrize(
        "machine",
        [
            TreeMachine(8),
            FatTree(8, fatness=1.5, base_capacity=2.0),
            Hypercube(8, layout="binary"),
            Hypercube(8, layout="gray"),
            Mesh2D(16),
        ],
    )
    def test_descriptor_roundtrip(self, machine, tmp_path):
        from repro.sim.archive import _machine_descriptor

        rebuilt = machine_from_descriptor(_machine_descriptor(machine))
        assert rebuilt.topology_name == machine.topology_name
        assert rebuilt.num_pes == machine.num_pes
        if isinstance(machine, FatTree):
            assert rebuilt.fatness == machine.fatness

    def test_unknown_topology_rejected(self):
        with pytest.raises(TraceFormatError):
            machine_from_descriptor({"topology": "torus", "num_pes": 8})


class TestErrors:
    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(TraceFormatError):
            load_run(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99}))
        with pytest.raises(TraceFormatError, match="version"):
            load_run(path)

    def test_tampered_archive_fails_audit(self, tmp_path):
        machine = TreeMachine(4)
        seq = figure1_sequence()
        sim = _completed_sim(machine, GreedyAlgorithm(machine), seq)
        path = tmp_path / "run.json"
        save_run(path, machine, seq, sim)
        payload = json.loads(path.read_text())
        # Move one segment to a wrong-size node.
        first_tid = next(iter(payload["segments"]))
        payload["segments"][first_tid][0][2] = 1  # root (4 PEs) for a size-1 task
        path.write_text(json.dumps(payload))
        machine2, seq2, intervals = load_run(path)
        report = audit_run(machine2, seq2, intervals)
        assert not report.ok


class TestErrorDiagnostics:
    """Every load failure must name the offending file."""

    def _saved_run(self, tmp_path):
        machine = TreeMachine(4)
        seq = figure1_sequence()
        sim = _completed_sim(machine, GreedyAlgorithm(machine), seq)
        path = tmp_path / "run.json"
        save_run(path, machine, seq, sim)
        return path

    def test_truncated_archive_names_path_and_cause(self, tmp_path):
        path = self._saved_run(tmp_path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(TraceFormatError, match="truncated") as err:
            load_run(path)
        assert str(path) in str(err.value)

    def test_invalid_json_names_path(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": } 1')
        with pytest.raises(TraceFormatError) as err:
            load_run(path)
        assert str(path) in str(err.value)

    def test_missing_file_names_path(self, tmp_path):
        path = tmp_path / "nope.json"
        with pytest.raises(TraceFormatError, match="cannot read") as err:
            load_run(path)
        assert str(path) in str(err.value)

    def test_malformed_fields_name_path(self, tmp_path):
        path = self._saved_run(tmp_path)
        payload = json.loads(path.read_text())
        del payload["segments"]
        path.write_text(json.dumps(payload))
        with pytest.raises(TraceFormatError, match="malformed") as err:
            load_run(path)
        assert str(path) in str(err.value)

    def test_version_mismatch_names_path(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"format_version": 99}))
        with pytest.raises(TraceFormatError, match="version") as err:
            load_run(path)
        assert str(path) in str(err.value)


class TestFaultArchive:
    def test_fault_plan_saved_with_faulted_runs(self, tmp_path):
        from repro.faults import FaultAwareSimulator, FaultPlan
        from repro.faults.plan import PEFailure, PERepair

        machine = TreeMachine(8)
        seq = churn_sequence(8, 60, np.random.default_rng(2))
        plan = FaultPlan(events=(PEFailure(1.0, 2), PERepair(4.0, 2)))
        sim = FaultAwareSimulator(machine, GreedyAlgorithm(machine), plan=plan)
        sim.run(seq)
        path = tmp_path / "faulted.json"
        save_run(path, machine, seq, sim)
        payload = json.loads(path.read_text())
        assert payload["faults"] == plan.to_dict()

    def test_healthy_runs_have_no_faults_key(self, tmp_path):
        path = self._saved(tmp_path)
        assert "faults" not in json.loads(path.read_text())

    def _saved(self, tmp_path):
        machine = TreeMachine(4)
        seq = figure1_sequence()
        sim = _completed_sim(machine, GreedyAlgorithm(machine), seq)
        path = tmp_path / "run.json"
        save_run(path, machine, seq, sim)
        return path

"""Tests for the work-driven (closed-loop) shared-model simulator."""

import numpy as np
import pytest

from repro.core.greedy import GreedyAlgorithm
from repro.core.periodic import PeriodicReallocationAlgorithm
from repro.errors import SimulationError
from repro.machines.tree import TreeMachine
from repro.sim.closedloop import simulate_shared_closed_loop
from repro.tasks.task import Task
from repro.types import TaskId


def _task(tid, size, arrival=0.0, work=1.0):
    return Task(TaskId(tid), size, arrival, work=work)


class TestBasics:
    def test_lone_task_full_speed(self):
        m = TreeMachine(4)
        result = simulate_shared_closed_loop(
            m, GreedyAlgorithm(m), [_task(0, 2, 0.0, 5.0)]
        )
        out = result.outcomes[TaskId(0)]
        assert out.response_time == pytest.approx(5.0)
        assert out.slowdown == pytest.approx(1.0)
        assert result.max_load == 1
        assert result.makespan == pytest.approx(5.0)

    def test_empty_input(self):
        m = TreeMachine(4)
        result = simulate_shared_closed_loop(m, GreedyAlgorithm(m), [])
        assert result.makespan == 0.0
        assert result.mean_response == 0.0

    def test_two_full_machine_tasks_processor_share(self):
        m = TreeMachine(4)
        tasks = [_task(0, 4, 0.0, 4.0), _task(1, 4, 0.0, 4.0)]
        result = simulate_shared_closed_loop(m, GreedyAlgorithm(m), tasks)
        # Both run at rate 1/2 until one "finishes" (ties) at t = 8.
        for tid in (TaskId(0), TaskId(1)):
            assert result.outcomes[tid].completion == pytest.approx(8.0)
            assert result.outcomes[tid].slowdown == pytest.approx(2.0)

    def test_short_task_then_speedup(self):
        m = TreeMachine(4)
        tasks = [_task(0, 4, 0.0, 2.0), _task(1, 4, 0.0, 4.0)]
        result = simulate_shared_closed_loop(m, GreedyAlgorithm(m), tasks)
        # Shared until t=4 (each did 2 work); task 0 leaves; task 1 alone
        # finishes its remaining 2 work by t=6.
        assert result.outcomes[TaskId(0)].completion == pytest.approx(4.0)
        assert result.outcomes[TaskId(1)].completion == pytest.approx(6.0)

    def test_disjoint_tasks_full_speed(self):
        m = TreeMachine(4)
        tasks = [_task(0, 2, 0.0, 3.0), _task(1, 2, 0.0, 3.0)]
        result = simulate_shared_closed_loop(m, GreedyAlgorithm(m), tasks)
        # Greedy puts them on disjoint halves: no interference.
        for tid in (TaskId(0), TaskId(1)):
            assert result.outcomes[tid].slowdown == pytest.approx(1.0)
        assert result.utilization == pytest.approx(1.0)

    def test_staggered_arrivals(self):
        m = TreeMachine(4)
        tasks = [_task(0, 4, 0.0, 4.0), _task(1, 4, 2.0, 1.0)]
        result = simulate_shared_closed_loop(m, GreedyAlgorithm(m), tasks)
        # Task 0 alone on [0,2) does 2 work; shares [2,4) doing 1 more;
        # task 1 does 1 work by t=4 and leaves; task 0 finishes its last
        # unit alone by t=5.
        assert result.outcomes[TaskId(1)].completion == pytest.approx(4.0)
        assert result.outcomes[TaskId(0)].completion == pytest.approx(5.0)


class TestWithReallocation:
    def test_periodic_reallocator_runs_clean(self):
        m = TreeMachine(8)
        rng = np.random.default_rng(3)
        tasks = []
        t = 0.0
        for i in range(60):
            t += float(rng.exponential(0.4))
            tasks.append(_task(i, int(1 << rng.integers(0, 3)), t, float(rng.exponential(1.5))))
        algo = PeriodicReallocationAlgorithm(m, 1)
        result = simulate_shared_closed_loop(m, algo, tasks)
        assert len(result.outcomes) == 60
        assert all(o.slowdown >= 1.0 - 1e-9 for o in result.outcomes.values())

    def test_slowdown_bounded_by_max_load(self):
        m = TreeMachine(8)
        rng = np.random.default_rng(5)
        tasks = []
        t = 0.0
        for i in range(40):
            t += float(rng.exponential(0.5))
            tasks.append(_task(i, int(1 << rng.integers(0, 4)), t, float(rng.exponential(1.0))))
        result = simulate_shared_closed_loop(m, GreedyAlgorithm(m), tasks)
        assert result.worst_slowdown <= result.max_load + 1e-9


class TestValidation:
    def test_wrong_machine(self):
        m1, m2 = TreeMachine(4), TreeMachine(4)
        with pytest.raises(SimulationError):
            simulate_shared_closed_loop(m1, GreedyAlgorithm(m2), [])

    def test_nonpositive_work(self):
        m = TreeMachine(4)
        with pytest.raises(SimulationError):
            simulate_shared_closed_loop(
                m, GreedyAlgorithm(m), [Task(TaskId(0), 1, 0.0, work=0.0)]
            )

    def test_percentiles_and_aggregates(self):
        m = TreeMachine(4)
        tasks = [_task(i, 1, 0.0, 1.0) for i in range(4)]
        result = simulate_shared_closed_loop(m, GreedyAlgorithm(m), tasks)
        assert result.mean_response == pytest.approx(1.0)
        assert result.percentile_response(95) == pytest.approx(1.0)
        assert result.max_response == pytest.approx(1.0)


class TestConservation:
    """Physical conservation laws of the work-driven model."""

    def test_work_conservation(self):
        """Every task completes exactly its work — no more, no less."""
        import numpy as np

        m = TreeMachine(16)
        rng = np.random.default_rng(13)
        tasks = []
        t = 0.0
        for i in range(50):
            t += float(rng.exponential(0.4))
            tasks.append(_task(i, int(1 << rng.integers(0, 4)), t,
                                float(rng.uniform(0.5, 3.0))))
        result = simulate_shared_closed_loop(m, GreedyAlgorithm(m), tasks)
        # Completion implies the integral of rate over residence == work:
        # response_time >= work always (rate <= 1) and equality iff alone.
        for task in tasks:
            out = result.outcomes[task.task_id]
            assert out.response_time >= task.work - 1e-9
            assert out.completion > task.arrival

    def test_busy_time_identity(self):
        """Utilization * N * makespan equals the busy PE-time integral,
        which is at least the total PE-work performed."""
        import numpy as np

        m = TreeMachine(8)
        rng = np.random.default_rng(17)
        tasks = []
        t = 0.0
        for i in range(30):
            t += float(rng.exponential(0.5))
            tasks.append(_task(i, int(1 << rng.integers(0, 3)), t,
                                float(rng.uniform(0.5, 2.0))))
        result = simulate_shared_closed_loop(m, GreedyAlgorithm(m), tasks)
        busy_time = result.utilization * 8 * result.makespan
        total_pe_work = sum(t.size * t.work for t in tasks)
        # Sharing wastes no PE-time in this model, but PEs can idle between
        # tasks, and a loaded PE serves exactly one task per instant:
        assert busy_time >= 0
        assert busy_time <= 8 * result.makespan + 1e-9
        # PE-work delivered cannot exceed busy PE-time (rate <= 1 per PE).
        assert total_pe_work <= busy_time + 1e-6


class TestClosedLoopProperties:
    """Hypothesis fuzzing of the work-driven simulator's invariants."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(st.integers(0, 10**6), st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_invariants_on_random_batches(self, seed, count):
        rng = np.random.default_rng(seed)
        m = TreeMachine(8)
        tasks = []
        t = 0.0
        for i in range(count):
            t += float(rng.exponential(0.5))
            tasks.append(
                _task(
                    i,
                    int(1 << rng.integers(0, 4)),
                    t,
                    float(rng.uniform(0.25, 3.0)),
                )
            )
        result = simulate_shared_closed_loop(m, GreedyAlgorithm(m), tasks)
        # Everyone completes, after their arrival, no faster than their work.
        assert len(result.outcomes) == count
        for task in tasks:
            out = result.outcomes[task.task_id]
            assert out.completion > task.arrival
            assert out.slowdown >= 1.0 - 1e-9
        # Slowdown bounded by the worst concurrency ever seen.
        assert result.worst_slowdown <= result.max_load + 1e-9
        # Makespan covers the last arrival and the longest job.
        assert result.makespan >= max(t.arrival for t in tasks)
        assert 0.0 <= result.utilization <= 1.0 + 1e-9

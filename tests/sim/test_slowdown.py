"""Unit tests for the round-robin slowdown model."""

import pytest

from repro.machines.tree import TreeMachine
from repro.sim.slowdown import measure_slowdowns
from repro.tasks.builder import SequenceBuilder
from repro.types import TaskId


class TestSlowdownModel:
    def test_lone_task_runs_at_full_speed(self):
        m = TreeMachine(4)
        seq = SequenceBuilder().arrive("a", size=2).depart("a", at=5.0).build()
        report = measure_slowdowns(m, seq, {TaskId(0): 2})
        s = report.per_task[TaskId(0)]
        assert s.slowdown == pytest.approx(1.0)
        assert s.max_observed_load == 1
        assert s.busy_time == pytest.approx(4.0)
        assert s.completed_work == pytest.approx(4.0)

    def test_two_tasks_sharing_halve_throughput(self):
        m = TreeMachine(4)
        seq = (
            SequenceBuilder()
            .arrive("a", size=4, at=0.0)
            .arrive("b", size=4, at=0.0)
            .depart("a", at=10.0)
            .depart("b", at=10.0)
            .build()
        )
        report = measure_slowdowns(m, seq, {TaskId(0): 1, TaskId(1): 1})
        for tid in (TaskId(0), TaskId(1)):
            assert report.per_task[tid].slowdown == pytest.approx(2.0)
        assert report.worst_slowdown == pytest.approx(2.0)
        assert report.mean_slowdown == pytest.approx(2.0)

    def test_slowdown_is_max_over_pes(self):
        """A parallel task is slowed by its most-loaded PE (bulk-synchronous)."""
        m = TreeMachine(4)
        seq = (
            SequenceBuilder()
            .arrive("wide", size=4, at=0.0)
            .arrive("narrow", size=1, at=0.0)
            .depart("wide", at=8.0)
            .depart("narrow", at=8.0)
            .build()
        )
        placements = {TaskId(0): 1, TaskId(1): m.hierarchy.leaf_node(0)}
        report = measure_slowdowns(m, seq, placements)
        # The wide task shares PE 0 (load 2) even though PEs 1-3 are its own.
        assert report.per_task[TaskId(0)].slowdown == pytest.approx(2.0)
        assert report.per_task[TaskId(1)].slowdown == pytest.approx(2.0)

    def test_phased_load_integrates_piecewise(self):
        m = TreeMachine(4)
        seq = (
            SequenceBuilder()
            .arrive("a", size=4, at=0.0)
            .arrive("b", size=4, at=2.0)
            .depart("b", at=4.0)
            .depart("a", at=6.0)
            .build()
        )
        report = measure_slowdowns(m, seq, {TaskId(0): 1, TaskId(1): 1})
        a = report.per_task[TaskId(0)]
        # a: alone on [0,2) and [4,6), shared on [2,4): work = 2 + 1 + 2 = 5 over 6.
        assert a.completed_work == pytest.approx(5.0)
        assert a.busy_time == pytest.approx(6.0)
        assert a.slowdown == pytest.approx(6.0 / 5.0)

    def test_immortal_tasks_use_horizon(self):
        m = TreeMachine(4)
        seq = SequenceBuilder().arrive("a", size=4, at=0.0).build()
        report = measure_slowdowns(m, seq, {TaskId(0): 1}, horizon=10.0)
        assert report.per_task[TaskId(0)].busy_time == pytest.approx(10.0)

    def test_empty_sequence(self):
        from repro.tasks.sequence import TaskSequence

        m = TreeMachine(4)
        report = measure_slowdowns(m, TaskSequence([]), {})
        assert report.worst_slowdown == 0.0
        assert report.mean_slowdown == 0.0
        assert report.worst_max_load() == 0

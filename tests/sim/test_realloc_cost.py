"""Unit tests for the migration cost model."""

import pytest

from repro.machines.mesh import Mesh2D
from repro.machines.tree import TreeMachine
from repro.sim.realloc_cost import MigrationCostModel


class TestCharge:
    def test_no_move_is_free(self):
        model = MigrationCostModel()
        charge = model.charge(TreeMachine(8), 2, 4, 4)
        assert charge.distance == 0
        assert charge.bytes_moved == 0.0
        assert charge.byte_hops == 0.0
        assert charge.seconds == 0.0

    def test_bytes_scale_with_task_size(self):
        model = MigrationCostModel(bytes_per_pe=10.0)
        m = TreeMachine(8)
        c2 = model.charge(m, 2, 4, 5)
        c4 = model.charge(m, 4, 2, 3)
        assert c2.bytes_moved == 20.0
        assert c4.bytes_moved == 40.0

    def test_distance_from_topology(self):
        model = MigrationCostModel()
        m = TreeMachine(8)
        # Nodes 4 and 5 are sibling 2-PE subtrees: first PEs 0 and 2.
        assert model.charge(m, 2, 4, 5).distance == m.pe_distance(0, 2)

    def test_seconds_follow_bandwidth(self):
        fast = MigrationCostModel(bytes_per_pe=1e6, link_bandwidth=100e6)
        slow = MigrationCostModel(bytes_per_pe=1e6, link_bandwidth=10e6)
        m = TreeMachine(8)
        assert slow.charge(m, 4, 2, 3).seconds == pytest.approx(
            10 * fast.charge(m, 4, 2, 3).seconds
        )

    def test_topology_changes_cost(self):
        model = MigrationCostModel()
        tree = TreeMachine(16)
        mesh = Mesh2D(16)
        # Same logical move, different physical distances.
        t = model.charge(tree, 4, 4, 7).byte_hops
        me = model.charge(mesh, 4, 4, 7).byte_hops
        assert t != me

    def test_barrier_overhead(self):
        model = MigrationCostModel(barrier_cost_seconds=0.5)
        assert model.reallocation_overhead_seconds(4) == 2.0


class TestCapacityAwarePricing:
    def test_fat_tree_moves_cost_less_time_than_plain(self):
        from repro.machines.fattree import FatTree

        model = MigrationCostModel()
        fat = FatTree(16, fatness=2.0)
        plain = FatTree(16, fatness=1.0)
        # Migration across the root: nodes 2 and 3 (8-PE halves).
        fast = model.charge(fat, 8, 2, 3)
        slow = model.charge(plain, 8, 2, 3)
        assert fast.byte_hops == slow.byte_hops      # same traffic volume
        assert fast.seconds < slow.seconds           # cheaper in time

    def test_fatness_one_matches_flat_estimate(self):
        from repro.machines.fattree import FatTree
        from repro.machines.tree import TreeMachine

        model = MigrationCostModel()
        ft = FatTree(16, fatness=1.0)
        tree = TreeMachine(16)
        assert model.charge(ft, 4, 4, 7).seconds == pytest.approx(
            model.charge(tree, 4, 4, 7).seconds
        )

    def test_opt_out_flag(self):
        from repro.machines.fattree import FatTree

        fat = FatTree(16, fatness=2.0)
        aware = MigrationCostModel()
        flat = MigrationCostModel(use_link_capacities=False)
        assert aware.charge(fat, 8, 2, 3).seconds < flat.charge(fat, 8, 2, 3).seconds

"""Frame codec torture tests: every way a journal or socket can break.

The v2 journal and the worker wire protocol share one codec, so its
failure modes are the service's failure modes: a SIGKILL tears the tail
mid-frame, a bad disk flips a CRC byte, a crash cuts the length prefix
short.  Each case must be *detected* (never silently mis-parsed) and,
for the scanning entry points, must surrender exactly the intact prefix.
"""

import io

import pytest

from repro.sim.frames import (
    FRAME_ATTACH,
    FRAME_JSON,
    FRAME_PICKLE,
    JOURNAL_MAGIC,
    FrameError,
    RoutedColumns,
    decode_record_batch,
    decode_routed_columns,
    encode_routed_records,
    encode_wire_records,
    frame_bytes,
    iter_journal_payloads,
    read_frame,
    routed_columns_from_records,
    scan_frames,
)


def _stream(*frames: bytes) -> io.BytesIO:
    return io.BytesIO(b"".join(frames))


class TestReadFrame:
    def test_roundtrip(self):
        stream = _stream(frame_bytes(7, b"hello"), frame_bytes(2, b""))
        assert read_frame(stream) == (7, b"hello")
        assert read_frame(stream) == (2, b"")
        assert read_frame(stream) is None  # clean EOF

    def test_truncated_length_prefix(self):
        data = frame_bytes(1, b"payload")
        with pytest.raises(FrameError, match="truncated header"):
            read_frame(_stream(data[:4]))  # cut inside the u32 length

    def test_torn_payload(self):
        data = frame_bytes(1, b"payload")
        with pytest.raises(FrameError, match="torn payload"):
            read_frame(_stream(data[:-3]))

    def test_corrupted_crc(self):
        data = bytearray(frame_bytes(1, b"payload"))
        data[-1] ^= 0xFF  # flip a payload byte: CRC no longer matches
        with pytest.raises(FrameError, match="crc mismatch"):
            read_frame(_stream(bytes(data)))


class TestScanFrames:
    def test_clean_buffer_ends_on_boundary(self):
        data = frame_bytes(1, b"a") + frame_bytes(2, b"bb")
        frames, good_end, reason = scan_frames(data)
        assert [(k, p) for k, p, _s in frames] == [(1, b"a"), (2, b"bb")]
        assert (good_end, reason) == (len(data), None)

    def test_torn_tail_mid_frame(self):
        keep = frame_bytes(1, b"a")
        torn = frame_bytes(2, b"bb" * 10)
        frames, good_end, reason = scan_frames(keep + torn[:-5])
        assert [(k, p) for k, p, _s in frames] == [(1, b"a")]
        assert good_end == len(keep)
        assert reason == "torn payload"

    def test_truncated_header_tail(self):
        keep = frame_bytes(1, b"a")
        frames, good_end, reason = scan_frames(keep + b"\x03\x00")
        assert len(frames) == 1
        assert good_end == len(keep)
        assert reason == "truncated header"

    def test_corrupt_crc_stops_scan_there(self):
        """A flipped byte mid-file surrenders everything from that frame
        on — frames *before* the corruption are still served."""
        a, b, c = (frame_bytes(1, bytes([i]) * 8) for i in range(3))
        data = bytearray(a + b + c)
        data[len(a) + 9 + 2] ^= 0x01  # inside b's payload
        frames, good_end, reason = scan_frames(bytes(data))
        assert len(frames) == 1 and frames[0][1] == b"\x00" * 8
        assert good_end == len(a)
        assert reason == "crc mismatch"

    def test_offset_skips_magic(self):
        data = JOURNAL_MAGIC + frame_bytes(1, b"x")
        frames, _end, reason = scan_frames(data, len(JOURNAL_MAGIC))
        assert [(k, p) for k, p, _s in frames] == [(1, b"x")]
        assert reason is None


WIRE_RECORDS = [
    {"kind": "arrival", "time": 1.0, "id": 0, "size": 4, "work": 2.5},
    {"kind": "departure", "time": 2.0, "id": 0},
    {"kind": "arrival", "time": 3.5, "id": 1, "size": 1, "work": 1.0},
]

ROUTED_RECORDS = [
    {"kind": "placed", "time": 1.0, "id": 0, "size": 2, "node": 4,
     "work": 1.5, "gsn": 0},
    {"kind": "placed", "time": 1.5, "id": 1, "size": 1, "node": 9,
     "work": 1.0, "gsn": 1, "drain": True},
    {"kind": "departure", "time": 2.0, "id": 0, "gsn": 2},
]


class TestColumnarRoundTrips:
    def test_wire_records_roundtrip_key_for_key(self):
        blob = encode_wire_records(WIRE_RECORDS)
        assert blob is not None
        assert decode_record_batch(blob) == WIRE_RECORDS

    def test_wire_rejects_off_schema_records(self):
        assert encode_wire_records(
            [{"kind": "arrival", "time": 1.0, "id": 0, "size": 4,
              "work": 1.0, "extra": 1}]
        ) is None
        assert encode_wire_records([{"kind": "failure", "node": 4}]) is None
        # int time is valid input but off the strict hot-path schema.
        assert encode_wire_records(
            [{"kind": "departure", "time": 2, "id": 0}]
        ) is None

    def test_routed_records_roundtrip(self):
        blob = encode_routed_records(ROUTED_RECORDS)
        assert blob is not None
        cols = decode_routed_columns(blob)
        assert isinstance(cols, RoutedColumns)
        assert cols.records() == ROUTED_RECORDS
        assert cols.encoded() == blob  # decoded columns retain their blob

    def test_routed_rejects_off_schema_records(self):
        bad = dict(ROUTED_RECORDS[0])
        bad["drain"] = False  # only drain=True rides the hot path
        assert routed_columns_from_records([bad]) is None
        assert routed_columns_from_records([{"kind": "kill", "id": 1}]) is None

    def test_sliced_prefix(self):
        cols = routed_columns_from_records(ROUTED_RECORDS)
        assert cols.sliced(2).records() == ROUTED_RECORDS[:2]

    def test_decode_rejects_garbage(self):
        assert decode_routed_columns(b"not a pickle") is None


class TestIterJournalPayloads:
    def test_v2_attach_merges_and_last_wins(self, tmp_path):
        import json as _json
        import pickle as _pickle

        path = tmp_path / "j.v2"
        path.write_bytes(
            JOURNAL_MAGIC
            + frame_bytes(1, b'{"kind": "h"}')
            + frame_bytes(FRAME_JSON, _json.dumps([0, {"record": 1}]).encode())
            + frame_bytes(FRAME_ATTACH, _pickle.dumps((0, {"snapshot": "s"})))
            + frame_bytes(FRAME_JSON, _json.dumps([0, {"record": 2}]).encode())
        )
        assert iter_journal_payloads(path) == [(0, {"record": 2})]

    def test_v2_corrupt_tail_is_ignored(self, tmp_path):
        path = tmp_path / "j.v2"
        good = frame_bytes(FRAME_PICKLE, __import__("pickle").dumps((3, "x")))
        path.write_bytes(
            JOURNAL_MAGIC + frame_bytes(1, b"{}") + good + b"\x07\x00\x00"
        )
        assert iter_journal_payloads(path) == [(3, "x")]

    def test_v1_unterminated_tail_is_ignored(self, tmp_path):
        path = tmp_path / "j.v1"
        path.write_text(
            '{"kind": "h"}\n'
            '{"cell": 0, "json": {"record": "a"}}\n'
            '{"cell": 1, "json": {"record": '
        )
        assert iter_journal_payloads(path) == [(0, {"record": "a"})]

    def test_unrecognisable_file_is_empty(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"\x00\x01\x02")
        assert iter_journal_payloads(path) == []
        assert iter_journal_payloads(tmp_path / "absent") == []

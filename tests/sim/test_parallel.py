"""Tests for the process-parallel experiment engine.

The engine's contract is *bit-identical results*: a parallel run must be
indistinguishable from the serial run because the per-cell RNG streams are
spawned before dispatch and results are collected in submission order.
Worker callables live at module level so they pickle.
"""

import numpy as np
import pytest

from repro.analysis.sweeps import Sweep
from repro.core.greedy import GreedyAlgorithm
from repro.machines.tree import TreeMachine
from repro.sim.parallel import (
    RESERVED_CELL_PARAMS,
    parallel_map,
    reject_reserved_params,
    resolve_jobs,
    run_seeded_cells,
)
from repro.sim.runner import run_many
from repro.workloads.generators import churn_sequence, poisson_sequence


def _sim_cell(n: int, d: int, rng: np.random.Generator) -> tuple:
    """A realistic sweep cell: a full greedy run plus raw RNG draws, so any
    divergence in stream handling or ordering shows up in the value."""
    sigma = churn_sequence(n, 60, rng)
    machine = TreeMachine(n)
    from repro.sim.runner import run

    result = run(machine, GreedyAlgorithm(machine), sigma)
    return (n, d, result.max_load, float(rng.random()))


def _square(x: int) -> int:
    return x * x


class TestResolveJobs:
    def test_serial_values(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1
        assert resolve_jobs(1) == 1

    def test_explicit_and_all_cores(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(-1) >= 1

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestParallelMap:
    def test_preserves_input_order(self):
        items = [(i,) for i in range(20)]
        assert parallel_map(_square, items, jobs=4) == [i * i for i in range(20)]

    def test_serial_path_identical(self):
        items = [(i,) for i in range(5)]
        assert parallel_map(_square, items, jobs=None) == parallel_map(
            _square, items, jobs=2
        )


class TestSeededCells:
    def test_stream_count_mismatch_rejected(self):
        root = np.random.SeedSequence(0)
        with pytest.raises(ValueError):
            run_seeded_cells(_sim_cell, [{"n": 4, "d": 0}], root.spawn(2))


class TestParallelSweep:
    def test_parallel_sweep_is_bit_identical(self):
        """Acceptance criterion: a 4-worker sweep returns bit-identical
        cell values to the serial run on the same grid and seed."""
        grid = {"n": [8, 16], "d": [0, 1, 2]}
        serial = Sweep(grid, seed=42).run(_sim_cell)
        parallel = Sweep(grid, seed=42).run(_sim_cell, parallel=4)
        assert len(serial) == len(parallel) == 6
        for a, b in zip(serial, parallel):
            assert a.params == b.params
            assert a.value == b.value  # tuple equality: exact ints + floats

    def test_parallel_rejects_unpicklable_cell(self):
        with pytest.raises(Exception):  # pickling error type varies by OS
            Sweep({"n": [8, 16]}, seed=0).run(
                lambda n, rng: float(rng.random()), parallel=2
            )


class TestRunManyJobs:
    def test_jobs_matches_serial(self):
        machine = TreeMachine(16)
        sequences = [
            poisson_sequence(16, 40, np.random.default_rng(s)) for s in range(4)
        ]
        serial = run_many(machine, GreedyAlgorithm, sequences)
        fanned = run_many(machine, GreedyAlgorithm, sequences, jobs=2)
        assert [r.max_load for r in serial] == [r.max_load for r in fanned]
        assert [r.optimal_load for r in serial] == [
            r.optimal_load for r in fanned
        ]


class TestRunExperimentsParallel:
    def test_reports_match_serial(self):
        from repro.analysis.experiments import run_experiments

        serial = run_experiments(["e1"])
        fanned = run_experiments(["e1", "e1"], jobs=2)
        assert [r.experiment_id for r in fanned] == ["e1", "e1"]
        assert fanned[0].rows == serial[0].rows == fanned[1].rows

    def test_unknown_id_rejected_before_running(self):
        from repro.analysis.experiments import run_experiments

        with pytest.raises(KeyError):
            run_experiments(["e1", "nope"], jobs=2)


class TestReservedParams:
    """A cell parameter named like an injected kwarg must fail fast and
    clearly, not shadow the injection or die as a pickling-era TypeError
    deep inside a worker (the same contract Sweep enforces on grid axes)."""

    def test_reject_reserved_params_flags_rng(self):
        with pytest.raises(ValueError, match="reserved"):
            reject_reserved_params({"rng": 1}, where="somewhere")

    def test_reject_reserved_params_passes_clean_mappings(self):
        reject_reserved_params({"n": 4, "d": 0}, where="somewhere")

    def test_run_seeded_cells_rejects_rng_cell_serial(self):
        root = np.random.SeedSequence(0)
        cells = [{"n": 4, "d": 0, "rng": None}]
        with pytest.raises(ValueError, match="'rng' is reserved"):
            run_seeded_cells(_sim_cell, cells, root.spawn(1))

    def test_run_seeded_cells_rejects_rng_cell_before_dispatch(self):
        # With jobs=2 the error must still be the same clean ValueError,
        # raised in the caller before any worker starts.
        root = np.random.SeedSequence(0)
        cells = [{"n": 4, "d": 0}, {"n": 4, "d": 1, "rng": None}]
        with pytest.raises(ValueError, match="'rng' is reserved"):
            run_seeded_cells(_sim_cell, cells, root.spawn(2), jobs=2)

    def test_sweep_and_engine_agree_on_the_reserved_set(self):
        # Sweep rejects the same axis name at construction time.
        for name in RESERVED_CELL_PARAMS:
            with pytest.raises(ValueError):
                Sweep({name: [1, 2]}, seed=0)

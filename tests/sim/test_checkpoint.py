"""CheckpointJournal: durability, recovery, and workload pinning."""

import json

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.sim.checkpoint import (
    JOURNAL_VERSION,
    CheckpointJournal,
    workload_fingerprint,
)

FP = {"kind": "test", "what": "checkpoint-unit"}


def _square(rng, x):
    return x * x


class TestRecordAndResume:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "j.ckpt"
        with CheckpointJournal(path, fingerprint=FP) as journal:
            journal.record(0, {"load": 3})
            journal.record(5, (1, 2.5, "x"))
        with CheckpointJournal(path, fingerprint=FP) as journal:
            done = journal.completed()
        assert done == {0: {"load": 3}, 5: (1, 2.5, "x")}

    def test_resume_appends(self, tmp_path):
        path = tmp_path / "j.ckpt"
        with CheckpointJournal(path, fingerprint=FP) as journal:
            journal.record(0, "a")
        with CheckpointJournal(path, fingerprint=FP) as journal:
            journal.record(1, "b")
        with CheckpointJournal(path, fingerprint=FP) as journal:
            assert journal.completed() == {0: "a", 1: "b"}

    def test_rerecord_overwrites_in_memory(self, tmp_path):
        path = tmp_path / "j.ckpt"
        with CheckpointJournal(path, fingerprint=FP) as journal:
            journal.record(0, "old")
            journal.record(0, "new")
            assert journal.completed()[0] == "new"

    def test_closed_journal_refuses_records(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.ckpt", fingerprint=FP)
        journal.close()
        with pytest.raises(CheckpointError, match="closed"):
            journal.record(0, "x")


class TestWorkloadPinning:
    def test_fingerprint_mismatch_is_refused(self, tmp_path):
        path = tmp_path / "j.ckpt"
        CheckpointJournal(path, fingerprint=FP).close()
        with pytest.raises(CheckpointError, match="different workload"):
            CheckpointJournal(path, fingerprint={"kind": "test", "what": "other"})

    def test_version_mismatch_is_refused(self, tmp_path):
        path = tmp_path / "j.ckpt"
        CheckpointJournal(path, fingerprint=FP).close()
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["version"] = JOURNAL_VERSION + 1
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(CheckpointError, match="version"):
            CheckpointJournal(path, fingerprint=FP)

    def test_foreign_file_is_refused(self, tmp_path):
        path = tmp_path / "j.ckpt"
        path.write_text('{"kind": "something-else"}\n')
        with pytest.raises(CheckpointError):
            CheckpointJournal(path, fingerprint=FP)

    def test_workload_fingerprint_tracks_cells_and_streams(self):
        cells = [{"n": 16, "seed": 0}, {"n": 32, "seed": 1}]
        streams = list(np.random.SeedSequence(7).spawn(2))
        base = workload_fingerprint(_square, cells, streams)
        assert base == workload_fingerprint(_square, cells, streams)
        changed_cells = workload_fingerprint(_square, cells[:1], streams)
        assert changed_cells != base
        other_streams = list(np.random.SeedSequence(8).spawn(2))
        assert workload_fingerprint(_square, cells, other_streams) != base


class TestCrashRecovery:
    def _journal_with_two_records(self, path):
        journal = CheckpointJournal(path, fingerprint=FP)
        journal.record(0, "a")
        journal.record(1, "b")
        journal.close()

    def test_truncated_final_record_is_dropped_with_warning(self, tmp_path):
        path = tmp_path / "j.ckpt"
        self._journal_with_two_records(path)
        raw = path.read_text()
        path.write_text(raw[:-10])  # crash mid-write of the last record
        with pytest.warns(UserWarning, match="corrupt tail"):
            journal = CheckpointJournal(path, fingerprint=FP)
        assert journal.completed() == {0: "a"}
        journal.record(1, "b2")  # journal is writable again after recovery
        journal.close()
        with CheckpointJournal(path, fingerprint=FP) as journal:
            assert journal.completed() == {0: "a", 1: "b2"}

    def test_unterminated_but_parseable_final_line_is_still_dropped(self, tmp_path):
        path = tmp_path / "j.ckpt"
        self._journal_with_two_records(path)
        raw = path.read_text()
        assert raw.endswith("\n")
        path.write_text(raw[:-1])  # valid JSON, missing only the newline
        with pytest.warns(UserWarning, match="truncated final record"):
            journal = CheckpointJournal(path, fingerprint=FP)
        assert journal.completed() == {0: "a"}
        journal.close()

    def test_garbage_record_line_truncates_from_there(self, tmp_path):
        path = tmp_path / "j.ckpt"
        self._journal_with_two_records(path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"cell": 2, "data": "not-base64-pickle!!"}\n')
        with pytest.warns(UserWarning, match="corrupt tail"):
            journal = CheckpointJournal(path, fingerprint=FP)
        assert journal.completed() == {0: "a", 1: "b"}
        journal.close()

    def test_missing_header_is_an_error(self, tmp_path):
        path = tmp_path / "j.ckpt"
        path.write_text("")
        with pytest.raises(CheckpointError, match="no readable header"):
            CheckpointJournal(path, fingerprint=FP)


class TestFsyncPolicies:
    def test_bad_policy_is_refused(self, tmp_path):
        for bad in ("sometimes", "interval:", "interval:x", "interval:-5", "interval:0"):
            with pytest.raises(CheckpointError):
                CheckpointJournal(tmp_path / "p.ckpt", fingerprint=FP, fsync_policy=bad)

    def test_always_has_no_pending(self, tmp_path):
        with CheckpointJournal(tmp_path / "j.ckpt", fingerprint=FP) as journal:
            journal.record(0, "a")
            assert journal.pending == 0

    def test_batch_buffers_until_commit(self, tmp_path):
        path = tmp_path / "j.ckpt"
        with CheckpointJournal(path, fingerprint=FP, fsync_policy="batch") as journal:
            journal.record(0, "a")
            journal.record(1, "b")
            assert journal.pending == 2
            journal.commit()
            assert journal.pending == 0
            journal.record(2, "c")  # left pending: close() must commit it
            assert journal.pending == 1
        with CheckpointJournal(path, fingerprint=FP) as journal:
            assert journal.completed() == {0: "a", 1: "b", 2: "c"}

    def test_record_many_is_one_group_commit(self, tmp_path):
        path = tmp_path / "j.ckpt"
        with CheckpointJournal(path, fingerprint=FP, fsync_policy="batch") as journal:
            journal.record_many([(i, f"v{i}") for i in range(5)])
            assert journal.pending == 0  # the batch committed atomically
            journal.record_many([])      # empty group is a no-op
            assert journal.pending == 0
        with CheckpointJournal(path, fingerprint=FP) as journal:
            assert journal.completed() == {i: f"v{i}" for i in range(5)}

    def test_record_many_under_always_is_durable(self, tmp_path):
        path = tmp_path / "j.ckpt"
        with CheckpointJournal(path, fingerprint=FP) as journal:
            journal.record_many([(0, "a"), (1, "b")])
            assert journal.pending == 0

    def test_interval_policy_syncs_after_elapse(self, tmp_path):
        path = tmp_path / "j.ckpt"
        with CheckpointJournal(
            path, fingerprint=FP, fsync_policy="interval:3600000"
        ) as journal:
            journal.record(0, "a")
            assert journal.pending == 1  # one hour has not elapsed
        # interval:<tiny> syncs on (almost) every record.
        with CheckpointJournal(
            tmp_path / "k.ckpt", fingerprint=FP, fsync_policy="interval:0.0001"
        ) as journal:
            journal.record(0, "a")
            assert journal.pending == 0

    def test_resumed_journal_reads_batched_records(self, tmp_path):
        path = tmp_path / "j.ckpt"
        with CheckpointJournal(path, fingerprint=FP, fsync_policy="batch") as journal:
            journal.record_many([(0, "a"), (1, "b")])
            journal.record(2, "c")
        with CheckpointJournal(path, fingerprint=FP, fsync_policy="always") as journal:
            assert journal.completed() == {0: "a", 1: "b", 2: "c"}

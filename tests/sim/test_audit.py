"""Tests for the independent run auditor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basic import BasicAlgorithm
from repro.core.greedy import GreedyAlgorithm
from repro.core.optimal import OptimalReallocatingAlgorithm
from repro.core.periodic import PeriodicReallocationAlgorithm
from repro.machines.tree import TreeMachine
from repro.sim.audit import audit_run
from repro.sim.engine import Simulator
from repro.tasks.builder import SequenceBuilder, figure1_sequence
from repro.types import TaskId
from tests.conftest import task_sequences


def _run(machine, algorithm, sequence):
    sim = Simulator(machine, algorithm)
    for ev in sequence:
        sim.step(ev)
    return sim


class TestCleanRunsPass:
    @pytest.mark.parametrize(
        "make",
        [
            GreedyAlgorithm,
            BasicAlgorithm,
            OptimalReallocatingAlgorithm,
            lambda m: PeriodicReallocationAlgorithm(m, 1),
            lambda m: PeriodicReallocationAlgorithm(m, 1, lazy=True),
        ],
    )
    def test_figure1_audits_clean(self, make):
        m = TreeMachine(4)
        seq = figure1_sequence()
        sim = _run(m, make(m), seq)
        report = audit_run(m, seq, sim.placement_intervals())
        report.raise_if_failed()
        assert report.max_load == sim.metrics.max_load

    @given(task_sequences(num_pes=16, max_events=40), st.sampled_from([0, 1, 3]))
    @settings(max_examples=40, deadline=None)
    def test_auditor_agrees_with_engine(self, seq, d):
        m = TreeMachine(16)
        sim = _run(m, PeriodicReallocationAlgorithm(m, d), seq)
        report = audit_run(m, seq, sim.placement_intervals())
        report.raise_if_failed()
        assert report.max_load == sim.metrics.max_load


class TestViolationsDetected:
    def _base(self):
        m = TreeMachine(4)
        seq = SequenceBuilder().arrive("a", size=2).depart("a").build()
        sim = _run(m, GreedyAlgorithm(m), seq)
        return m, seq, sim.placement_intervals()

    def test_missing_task(self):
        m, seq, intervals = self._base()
        intervals.pop(TaskId(0))
        report = audit_run(m, seq, intervals)
        assert not report.ok
        assert any("no placement" in v for v in report.violations)

    def test_wrong_size_node(self):
        m, seq, intervals = self._base()
        seg = intervals[TaskId(0)][0]
        intervals[TaskId(0)] = [(seg[0], seg[1], 1)]  # 4-PE node for size 2
        report = audit_run(m, seq, intervals)
        assert not report.ok

    def test_coverage_gap(self):
        m, seq, intervals = self._base()
        start, end, node = intervals[TaskId(0)][0]
        mid = (start + end) / 2
        intervals[TaskId(0)] = [(start, mid - 0.1, node), (mid, end, node)]
        report = audit_run(m, seq, intervals)
        assert not report.ok
        assert any("gap" in v for v in report.violations)

    def test_late_start(self):
        m, seq, intervals = self._base()
        start, end, node = intervals[TaskId(0)][0]
        intervals[TaskId(0)] = [(start + 0.5, end, node)]
        report = audit_run(m, seq, intervals)
        assert not report.ok

    def test_raise_if_failed(self):
        m, seq, intervals = self._base()
        intervals.pop(TaskId(0))
        with pytest.raises(AssertionError):
            audit_run(m, seq, intervals).raise_if_failed()

    def test_empty_run(self):
        from repro.tasks.sequence import TaskSequence

        m = TreeMachine(4)
        report = audit_run(m, TaskSequence([]), {})
        assert report.ok
        assert report.max_load == 0

"""Unit tests for the numeric helpers in repro.types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.types import (
    ceil_div,
    ceil_log2,
    ilog2,
    is_power_of_two,
    round_to_power_of_two,
)


class TestIsPowerOfTwo:
    def test_small_values(self):
        assert [is_power_of_two(v) for v in range(9)] == [
            False, True, True, False, True, False, False, False, True,
        ]

    def test_large_power(self):
        assert is_power_of_two(1 << 60)

    def test_negative(self):
        assert not is_power_of_two(-4)

    def test_non_integer_rejected(self):
        assert not is_power_of_two(2.0)  # type: ignore[arg-type]

    @given(st.integers(0, 62))
    def test_all_powers_accepted(self, x):
        assert is_power_of_two(1 << x)

    @given(st.integers(3, 1 << 40))
    def test_characterisation(self, v):
        assert is_power_of_two(v) == (bin(v).count("1") == 1)


class TestIlog2:
    @given(st.integers(0, 62))
    def test_roundtrip(self, x):
        assert ilog2(1 << x) == x

    @pytest.mark.parametrize("bad", [0, 3, 6, -2, 100])
    def test_rejects_non_powers(self, bad):
        with pytest.raises(ValueError):
            ilog2(bad)


class TestCeilDiv:
    @pytest.mark.parametrize(
        "a,b,expected",
        [(0, 5, 0), (1, 5, 1), (5, 5, 1), (6, 5, 2), (10, 3, 4), (12, 4, 3)],
    )
    def test_examples(self, a, b, expected):
        assert ceil_div(a, b) == expected

    @given(st.integers(0, 10**9), st.integers(1, 10**6))
    def test_matches_math(self, a, b):
        import math

        assert ceil_div(a, b) == math.ceil(a / b) or a / b != a // b  # guard fp
        assert ceil_div(a, b) == (a + b - 1) // b

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)
        with pytest.raises(ValueError):
            ceil_div(-1, 2)


class TestCeilLog2:
    @pytest.mark.parametrize(
        "x,expected", [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (1024, 10), (1025, 11)]
    )
    def test_examples(self, x, expected):
        assert ceil_log2(x) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ceil_log2(0)

    @given(st.integers(1, 1 << 50))
    def test_defining_property(self, x):
        k = ceil_log2(x)
        assert (1 << k) >= x
        assert k == 0 or (1 << (k - 1)) < x


class TestRoundToPowerOfTwo:
    @pytest.mark.parametrize(
        "x,expected",
        [(1, 1), (2, 2), (3, 4), (2.8, 2), (2.9, 4), (6, 8), (5.6, 4), (1.4, 1), (1.5, 2)],
    )
    def test_examples(self, x, expected):
        # geometric midpoint between 2^k and 2^{k+1} is 2^k * sqrt(2)
        assert round_to_power_of_two(x) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            round_to_power_of_two(0)
        with pytest.raises(ValueError):
            round_to_power_of_two(-1.0)

    def test_sub_unit_inputs_clamp_to_one(self):
        # Task sizes are >= 1, so anything below 1 rounds up to 1.
        assert round_to_power_of_two(0.5) == 1
        assert round_to_power_of_two(1e-9) == 1

    @given(st.floats(min_value=1.0, max_value=1e12, allow_nan=False))
    def test_result_is_power_and_within_factor_sqrt2(self, x):
        result = round_to_power_of_two(x)
        assert is_power_of_two(result)
        ratio = max(result / x, x / result)
        assert ratio <= 2 ** 0.5 + 1e-9

    @given(st.integers(0, 40))
    def test_exact_powers_unchanged(self, k):
        assert round_to_power_of_two(float(1 << k)) == 1 << k

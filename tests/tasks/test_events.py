"""Unit tests for sequence events and their ordering convention."""

from repro.tasks.events import Arrival, Departure, EventKind, event_sort_key
from repro.tasks.task import Task
from repro.types import TaskId


def _task(tid=0, size=1, arrival=0.0, departure=10.0):
    return Task(TaskId(tid), size, arrival, departure)


class TestEventBasics:
    def test_arrival_kind_and_id(self):
        ev = Arrival(0.0, _task(3))
        assert ev.kind is EventKind.ARRIVAL
        assert ev.task_id == 3

    def test_departure_kind(self):
        ev = Departure(1.0, TaskId(3))
        assert ev.kind is EventKind.DEPARTURE
        assert ev.task_id == 3

    def test_events_hashable(self):
        assert len({Arrival(0.0, _task()), Arrival(0.0, _task())}) == 1


class TestOrdering:
    def test_departure_before_arrival_at_same_time(self):
        dep = Departure(5.0, TaskId(0))
        arr = Arrival(5.0, _task(1, arrival=5.0))
        assert sorted([arr, dep], key=event_sort_key) == [dep, arr]

    def test_chronological_first(self):
        early = Arrival(1.0, _task(0, arrival=1.0))
        late = Departure(2.0, TaskId(0))
        assert sorted([late, early], key=event_sort_key) == [early, late]

    def test_stability_among_same_kind(self):
        a1 = Arrival(1.0, _task(0, arrival=1.0))
        a2 = Arrival(1.0, _task(1, arrival=1.0))
        assert sorted([a1, a2], key=event_sort_key) == [a1, a2]
        assert sorted([a2, a1], key=event_sort_key) == [a2, a1]

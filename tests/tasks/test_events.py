"""Unit tests for sequence events and their ordering convention."""

from repro.tasks.events import Arrival, Departure, EventKind, event_sort_key
from repro.tasks.task import Task
from repro.types import TaskId


def _task(tid=0, size=1, arrival=0.0, departure=10.0):
    return Task(TaskId(tid), size, arrival, departure)


class TestEventBasics:
    def test_arrival_kind_and_id(self):
        ev = Arrival(0.0, _task(3))
        assert ev.kind is EventKind.ARRIVAL
        assert ev.task_id == 3

    def test_departure_kind(self):
        ev = Departure(1.0, TaskId(3))
        assert ev.kind is EventKind.DEPARTURE
        assert ev.task_id == 3

    def test_events_hashable(self):
        assert len({Arrival(0.0, _task()), Arrival(0.0, _task())}) == 1


class TestOrdering:
    def test_departure_before_arrival_at_same_time(self):
        dep = Departure(5.0, TaskId(0))
        arr = Arrival(5.0, _task(1, arrival=5.0))
        assert sorted([arr, dep], key=event_sort_key) == [dep, arr]

    def test_chronological_first(self):
        early = Arrival(1.0, _task(0, arrival=1.0))
        late = Departure(2.0, TaskId(0))
        assert sorted([late, early], key=event_sort_key) == [early, late]

    def test_stability_among_same_kind(self):
        a1 = Arrival(1.0, _task(0, arrival=1.0))
        a2 = Arrival(1.0, _task(1, arrival=1.0))
        assert sorted([a1, a2], key=event_sort_key) == [a1, a2]
        assert sorted([a2, a1], key=event_sort_key) == [a2, a1]


class TestCanonicalTieOrder:
    """The repo-wide same-timestamp convention, pinned.

    Departures free capacity first, arrivals are placed on the pre-fault
    machine, and fault events strike last — the convention both the batch
    event merge and the audit referees assume.
    """

    def test_departures_then_arrivals_then_faults(self):
        from repro.faults.plan import PEFailure, PERepair, TaskKill
        from repro.tasks.events import event_priority

        t = 5.0
        dep = Departure(t, TaskId(0))
        arr = Arrival(t, _task(1, arrival=t))
        fail = PEFailure(t, 3)
        rep = PERepair(t, 3)
        kill = TaskKill(t, TaskId(1))
        events = [kill, arr, rep, fail, dep]
        ordered = sorted(events, key=event_sort_key)
        assert ordered[0] is dep
        assert ordered[1] is arr
        # Fault events share one priority; stable sort keeps their input
        # order (kill, rep, fail here).
        assert ordered[2:] == [kill, rep, fail]
        assert [event_priority(e) for e in ordered] == [0, 1, 2, 2, 2]

    def test_merge_events_uses_the_canonical_key(self):
        from repro.faults.plan import FaultPlan, PEFailure, merge_events
        from repro.tasks.sequence import TaskSequence

        seq = TaskSequence.from_tasks(
            [Task(TaskId(0), 1, 0.0, 5.0), Task(TaskId(1), 1, 5.0, 9.0)]
        )
        plan = FaultPlan((PEFailure(5.0, 5),))
        merged = list(merge_events(seq, plan))
        at_five = [e for e in merged if e.time == 5.0]
        kinds = [
            e.kind.value if hasattr(e.kind, "value") else e.kind
            for e in at_five
        ]
        assert kinds == ["departure", "arrival", "failure"]

    def test_fault_priority_constant_matches_table(self):
        from repro.faults.plan import FAULT_EVENT_PRIORITY, PEFailure
        from repro.tasks.events import event_priority

        assert event_priority(PEFailure(0.0, 1)) == FAULT_EVENT_PRIORITY

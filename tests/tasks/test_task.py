"""Unit tests for the Task model."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidTaskError
from repro.tasks.task import Task
from repro.types import TaskId


class TestConstruction:
    def test_basic(self):
        t = Task(TaskId(0), 4, 1.0, 5.0)
        assert t.size == 4
        assert t.arrival == 1.0
        assert t.departure == 5.0
        assert t.work == 1.0

    def test_default_departure_is_inf(self):
        t = Task(TaskId(0), 1, 0.0)
        assert math.isinf(t.departure)
        assert math.isinf(t.duration)

    @pytest.mark.parametrize("bad", [0, 3, 5, 6, 7, -1, -4])
    def test_rejects_non_power_of_two_sizes(self, bad):
        with pytest.raises(InvalidTaskError):
            Task(TaskId(0), bad, 0.0, 1.0)

    def test_rejects_departure_not_after_arrival(self):
        with pytest.raises(InvalidTaskError):
            Task(TaskId(0), 1, 2.0, 2.0)
        with pytest.raises(InvalidTaskError):
            Task(TaskId(0), 1, 2.0, 1.0)

    def test_rejects_negative_work(self):
        with pytest.raises(InvalidTaskError):
            Task(TaskId(0), 1, 0.0, 1.0, work=-0.5)

    def test_frozen(self):
        t = Task(TaskId(0), 2, 0.0, 1.0)
        with pytest.raises(AttributeError):
            t.size = 4  # type: ignore[misc]


class TestProperties:
    @given(st.integers(0, 20))
    def test_log_size(self, x):
        assert Task(TaskId(0), 1 << x, 0.0, 1.0).log_size == x

    def test_duration(self):
        assert Task(TaskId(0), 1, 1.5, 4.0).duration == 2.5

    def test_is_active_boundaries(self):
        t = Task(TaskId(0), 1, 1.0, 3.0)
        assert not t.is_active(0.99)
        assert t.is_active(1.0)       # arrival inclusive
        assert t.is_active(2.5)
        assert not t.is_active(3.0)   # departure exclusive
        assert not t.is_active(10.0)

    def test_immortal_task_active_forever(self):
        t = Task(TaskId(0), 1, 0.0)
        assert t.is_active(1e18)

    def test_with_departure(self):
        t = Task(TaskId(7), 8, 1.0, work=3.0)
        t2 = t.with_departure(9.0)
        assert t2.departure == 9.0
        assert (t2.task_id, t2.size, t2.arrival, t2.work) == (7, 8, 1.0, 3.0)
        assert math.isinf(t.departure)  # original untouched

    def test_equality_and_hash(self):
        a = Task(TaskId(1), 2, 0.0, 5.0)
        b = Task(TaskId(1), 2, 0.0, 5.0)
        assert a == b
        assert hash(a) == hash(b)

"""Unit and property tests for TaskSequence and its paper statistics."""

import math

import pytest
from hypothesis import given, settings

from repro.errors import InvalidSequenceError
from repro.tasks.events import Arrival, Departure
from repro.tasks.sequence import TaskSequence
from repro.tasks.task import Task
from repro.types import TaskId
from tests.conftest import task_sequences


def _task(tid, size=1, arrival=0.0, departure=math.inf):
    return Task(TaskId(tid), size, arrival, departure)


def _simple_sequence():
    t0 = _task(0, size=2, arrival=1.0, departure=3.0)
    t1 = _task(1, size=4, arrival=2.0)
    return TaskSequence(
        [Arrival(1.0, t0), Arrival(2.0, t1), Departure(3.0, TaskId(0))]
    )


class TestValidation:
    def test_duplicate_arrival_rejected(self):
        t = _task(0)
        with pytest.raises(InvalidSequenceError):
            TaskSequence([Arrival(0.0, t), Arrival(0.0, t)])

    def test_departure_of_unknown_task_rejected(self):
        with pytest.raises(InvalidSequenceError):
            TaskSequence([Departure(1.0, TaskId(9))])

    def test_double_departure_rejected(self):
        t = _task(0, departure=2.0)
        with pytest.raises(InvalidSequenceError):
            TaskSequence([Arrival(0.0, t), Departure(2.0, TaskId(0)),
                          Departure(2.0, TaskId(0))])

    def test_event_time_must_match_task_fields(self):
        t = _task(0, arrival=1.0)
        with pytest.raises(InvalidSequenceError):
            TaskSequence([Arrival(2.0, t)])
        t2 = _task(1, arrival=0.0, departure=5.0)
        with pytest.raises(InvalidSequenceError):
            TaskSequence([Arrival(0.0, t2), Departure(4.0, TaskId(1))])

    def test_constructor_sorts_events(self):
        t0 = _task(0, arrival=1.0, departure=3.0)
        t1 = _task(1, arrival=2.0)
        seq = TaskSequence(
            [Departure(3.0, TaskId(0)), Arrival(2.0, t1), Arrival(1.0, t0)]
        )
        assert [ev.time for ev in seq] == [1.0, 2.0, 3.0]

    def test_empty_sequence_ok(self):
        seq = TaskSequence([])
        assert len(seq) == 0
        assert seq.peak_active_size == 0
        assert seq.optimal_load(8) == 0


class TestStatistics:
    def test_peak_active_size(self):
        # t0 (2) and t1 (4) overlap during [2, 3) -> peak 6.
        assert _simple_sequence().peak_active_size == 6

    def test_total_arrival_size(self):
        assert _simple_sequence().total_arrival_size == 6

    def test_active_size_at(self):
        seq = _simple_sequence()
        assert seq.active_size_at(0.5) == 0
        assert seq.active_size_at(1.0) == 2
        assert seq.active_size_at(2.5) == 6
        assert seq.active_size_at(3.0) == 4  # t0 departed (exclusive)

    def test_optimal_load_is_ceiling(self):
        seq = _simple_sequence()  # peak 6
        assert seq.optimal_load(4) == 2
        assert seq.optimal_load(8) == 1
        assert seq.optimal_load(2) == 3

    def test_peak_after_prefix(self):
        seq = _simple_sequence()
        assert seq.peak_after_prefix(0) == 0
        assert seq.peak_after_prefix(1) == 2
        assert seq.peak_after_prefix(2) == 6
        assert seq.peak_after_prefix(3) == 6
        assert seq.peak_after_prefix(99) == seq.peak_active_size

    def test_max_task_size_and_horizon(self):
        seq = _simple_sequence()
        assert seq.max_task_size() == 4
        assert seq.horizon() == 3.0

    def test_num_tasks_and_task_lookup(self):
        seq = _simple_sequence()
        assert seq.num_tasks == 2
        assert seq.task(TaskId(1)).size == 4
        with pytest.raises(KeyError):
            seq.task(TaskId(42))


class TestViews:
    def test_arrivals_and_departures_iterators(self):
        seq = _simple_sequence()
        assert [a.task_id for a in seq.arrivals()] == [0, 1]
        assert [d.task_id for d in seq.departures()] == [0]

    def test_from_tasks_roundtrip(self):
        tasks = [_task(0, 2, 0.0, 4.0), _task(1, 1, 1.0)]
        seq = TaskSequence.from_tasks(tasks)
        assert seq.num_tasks == 2
        assert len(list(seq.departures())) == 1  # inf departure omitted

    def test_restricted_to_horizon(self):
        seq = _simple_sequence()
        prefix = seq.restricted_to_horizon(2.0)
        assert len(prefix) == 2
        assert prefix.peak_active_size == 6

    def test_slicing_returns_sequence(self):
        seq = _simple_sequence()
        assert isinstance(seq[:2], TaskSequence)
        assert len(seq[:2]) == 2

    def test_equality_and_hash(self):
        assert _simple_sequence() == _simple_sequence()
        assert hash(_simple_sequence()) == hash(_simple_sequence())

    def test_concatenated_with_shifts_ids_and_times(self):
        a = _simple_sequence()
        b = _simple_sequence()
        both = a.concatenated_with(b)
        assert both.num_tasks == 4
        assert both.peak_active_size >= a.peak_active_size
        # Original ids 0,1 plus shifted 2,3.
        assert sorted(int(t) for t in both.tasks) == [0, 1, 2, 3]


class TestProperties:
    @given(task_sequences(num_pes=16))
    @settings(max_examples=60, deadline=None)
    def test_peak_is_max_of_active_sizes(self, seq):
        times = sorted({ev.time for ev in seq})
        measured = max((seq.active_size_at(t) for t in times), default=0)
        assert measured == seq.peak_active_size

    @given(task_sequences(num_pes=16))
    @settings(max_examples=60, deadline=None)
    def test_peak_bounded_by_total_arrivals(self, seq):
        assert seq.peak_active_size <= seq.total_arrival_size

    @given(task_sequences(num_pes=8, max_events=40))
    @settings(max_examples=60, deadline=None)
    def test_prefix_peaks_monotone(self, seq):
        peaks = [seq.peak_after_prefix(k) for k in range(len(seq) + 1)]
        assert all(a <= b for a, b in zip(peaks, peaks[1:]))

    @given(task_sequences(num_pes=8))
    @settings(max_examples=40, deadline=None)
    def test_optimal_load_monotone_in_machine_size(self, seq):
        assert seq.optimal_load(4) >= seq.optimal_load(8) >= seq.optimal_load(16)

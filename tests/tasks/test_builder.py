"""Unit tests for the fluent SequenceBuilder and the Figure 1 sequence."""

import math

import pytest

from repro.errors import InvalidSequenceError
from repro.tasks.builder import SequenceBuilder, figure1_sequence
from repro.tasks.events import Arrival, Departure


class TestBuilder:
    def test_times_advance_automatically(self):
        seq = SequenceBuilder().arrive("a", size=1).arrive("b", size=2).build()
        assert [ev.time for ev in seq] == [1.0, 2.0]

    def test_explicit_times(self):
        seq = (
            SequenceBuilder()
            .arrive("a", size=1, at=0.5)
            .depart("a", at=9.0)
            .build()
        )
        assert [ev.time for ev in seq] == [0.5, 9.0]

    def test_unfinished_tasks_never_depart(self):
        seq = SequenceBuilder().arrive("a", size=4).build()
        (task,) = seq.tasks.values()
        assert math.isinf(task.departure)

    def test_work_passthrough(self):
        seq = SequenceBuilder().arrive("a", size=1, work=7.5).build()
        assert next(iter(seq.tasks.values())).work == 7.5

    def test_task_id_lookup(self):
        b = SequenceBuilder().arrive("x", size=1).arrive("y", size=1)
        assert b.task_id("x") != b.task_id("y")

    def test_duplicate_name_rejected(self):
        b = SequenceBuilder().arrive("a", size=1)
        with pytest.raises(InvalidSequenceError):
            b.arrive("a", size=1)

    def test_departure_of_unknown_name_rejected(self):
        with pytest.raises(InvalidSequenceError):
            SequenceBuilder().depart("ghost")

    def test_double_departure_rejected(self):
        b = SequenceBuilder().arrive("a", size=1).depart("a")
        with pytest.raises(InvalidSequenceError):
            b.depart("a")

    def test_time_travel_rejected(self):
        b = SequenceBuilder().arrive("a", size=1, at=5.0)
        with pytest.raises(InvalidSequenceError):
            b.arrive("b", size=1, at=1.0)

    def test_nonpositive_step_rejected(self):
        with pytest.raises(InvalidSequenceError):
            SequenceBuilder(time_step=0.0)


class TestFigure1:
    def test_shape(self):
        seq = figure1_sequence()
        assert seq.num_tasks == 5
        kinds = ["A" if isinstance(e, Arrival) else "D" for e in seq]
        assert kinds == ["A", "A", "A", "A", "D", "D", "A"]

    def test_sizes(self):
        seq = figure1_sequence()
        sizes = sorted(t.size for t in seq.tasks.values())
        assert sizes == [1, 1, 1, 1, 2]

    def test_paper_statistics(self):
        seq = figure1_sequence()
        # Four unit tasks active simultaneously -> s(sigma) = 4 on N = 4.
        assert seq.peak_active_size == 4
        assert seq.optimal_load(4) == 1

"""Tests for sequence transformations."""

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import InvalidSequenceError
from repro.tasks.builder import figure1_sequence
from repro.tasks.transforms import (
    filter_tasks,
    scale_sizes,
    scale_time,
    subsample,
    superpose,
    truncate_tasks,
)
from tests.conftest import task_sequences


class TestScaleTime:
    def test_dilation(self):
        seq = figure1_sequence()
        slow = scale_time(seq, 2.0)
        assert slow.horizon() == 2 * seq.horizon()
        assert slow.peak_active_size == seq.peak_active_size

    def test_compression(self):
        seq = figure1_sequence()
        fast = scale_time(seq, 0.5)
        assert fast.horizon() == pytest.approx(seq.horizon() / 2)

    def test_immortals_stay_immortal(self):
        seq = figure1_sequence()
        assert sum(
            math.isinf(t.departure) for t in scale_time(seq, 3.0).tasks.values()
        ) == 3

    def test_validation(self):
        with pytest.raises(InvalidSequenceError):
            scale_time(figure1_sequence(), 0)

    @given(task_sequences(num_pes=8, max_events=30))
    @settings(max_examples=30, deadline=None)
    def test_load_structure_invariant(self, seq):
        """Peak active size is invariant under time dilation."""
        assert scale_time(seq, 3.5).peak_active_size == seq.peak_active_size


class TestScaleSizes:
    def test_doubling(self):
        seq = figure1_sequence()
        big = scale_sizes(seq, 2, max_size=8)
        sizes = sorted(t.size for t in big.tasks.values())
        assert sizes == [2, 2, 2, 2, 4]
        assert big.peak_active_size == 2 * seq.peak_active_size

    def test_cap(self):
        seq = figure1_sequence()
        capped = scale_sizes(seq, 8, max_size=4)
        assert all(t.size <= 4 for t in capped.tasks.values())

    def test_validation(self):
        with pytest.raises(InvalidSequenceError):
            scale_sizes(figure1_sequence(), 3, max_size=8)
        with pytest.raises(InvalidSequenceError):
            scale_sizes(figure1_sequence(), 2, max_size=6)


class TestFilterAndSubsample:
    def test_filter_by_size(self):
        seq = figure1_sequence()
        only_small = filter_tasks(seq, lambda t: t.size == 1)
        assert only_small.num_tasks == 4

    def test_subsample_fraction_extremes(self):
        seq = figure1_sequence()
        rng = np.random.default_rng(0)
        assert subsample(seq, 1.0, rng).num_tasks == 5
        assert subsample(seq, 0.0, rng).num_tasks == 0

    def test_subsample_reproducible(self):
        seq = figure1_sequence()
        a = subsample(seq, 0.5, np.random.default_rng(3))
        b = subsample(seq, 0.5, np.random.default_rng(3))
        assert a == b

    def test_subsample_validation(self):
        with pytest.raises(InvalidSequenceError):
            subsample(figure1_sequence(), 1.5, np.random.default_rng(0))


class TestSuperposeAndTruncate:
    def test_superpose_overlays_in_time(self):
        seq = figure1_sequence()
        doubled = superpose(seq, seq)
        assert doubled.num_tasks == 10
        assert doubled.peak_active_size == 2 * seq.peak_active_size
        assert doubled.horizon() == seq.horizon()  # simultaneous, not appended

    def test_superpose_remaps_ids(self):
        seq = figure1_sequence()
        doubled = superpose(seq, seq)
        assert len({int(t) for t in doubled.tasks}) == 10

    def test_truncate(self):
        seq = figure1_sequence()
        first3 = truncate_tasks(seq, 3)
        assert first3.num_tasks == 3
        assert truncate_tasks(seq, 0).num_tasks == 0
        assert truncate_tasks(seq, 99).num_tasks == 5

    def test_truncate_validation(self):
        with pytest.raises(InvalidSequenceError):
            truncate_tasks(figure1_sequence(), -1)

    @given(task_sequences(num_pes=8, max_events=25))
    @settings(max_examples=30, deadline=None)
    def test_superpose_peak_subadditive(self, seq):
        """Peak of the overlay is between max and sum of the peaks."""
        combo = superpose(seq, seq)
        assert seq.peak_active_size <= combo.peak_active_size
        assert combo.peak_active_size <= 2 * seq.peak_active_size

"""Unit tests for the shared AllocationKernel.

The kernel is the single owner of allocation state; these tests pin its
two load-bearing contracts: (1) ``snapshot()``/``restore()`` round-trips
exactly, on every topology, including mid-run under an active fault plan;
(2) the state machine rejects malformed snapshots loudly instead of
restoring garbage.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.core.registry import make_algorithm
from repro.errors import CheckpointError, SimulationError
from repro.kernel import (
    KERNEL_STATE_KIND,
    KERNEL_STATE_VERSION,
    AllocationKernel,
)
from repro.machines.butterfly import Butterfly
from repro.machines.fattree import FatTree
from repro.machines.hypercube import Hypercube
from repro.machines.mesh import Mesh2D
from repro.machines.tree import TreeMachine
from repro.tasks.events import Arrival, Departure
from repro.tasks.task import Task
from repro.types import NodeId, TaskId
from repro.workloads.generators import poisson_sequence

TOPOLOGIES = {
    "tree": TreeMachine,
    "hypercube": Hypercube,
    "hypercube-gray": lambda n: Hypercube(n, layout="gray"),
    "mesh": Mesh2D,
    "butterfly": Butterfly,
    "fattree": lambda n: FatTree(n, fatness=2.0),
}


def _digest(state) -> str:
    return hashlib.sha256(
        json.dumps(state, sort_keys=True, default=repr).encode()
    ).hexdigest()


def _drive(machine, events):
    kernel = AllocationKernel(machine, make_algorithm("greedy", machine))
    for event in events:
        kernel.apply(event)
    return kernel


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    def test_round_trip_every_topology(self, topology):
        machine = TOPOLOGIES[topology](16)
        rng = np.random.default_rng(7)
        events = list(poisson_sequence(16, 40, rng))
        kernel = _drive(machine, events[: len(events) // 2])
        snap = kernel.snapshot()

        fresh = AllocationKernel(TOPOLOGIES[topology](16))
        fresh.restore(snap)
        assert _digest(fresh.snapshot()) == _digest(snap)
        assert fresh.placements == kernel.placements
        assert fresh.current_max_load == kernel.current_max_load
        assert fresh.optimal_load == kernel.optimal_load
        assert (fresh.leaf_loads() == kernel.leaf_loads()).all()
        assert fresh.metrics.max_load == kernel.metrics.max_load
        fresh.check_consistency()

    def test_snapshot_is_json_serialisable(self):
        machine = TreeMachine(8)
        kernel = _drive(
            machine,
            [Arrival(0.0, Task(TaskId(0), 2, 0.0)),
             Arrival(1.0, Task(TaskId(1), 4, 1.0))],
        )
        snap = kernel.snapshot()
        assert snap["kind"] == KERNEL_STATE_KIND
        assert snap["version"] == KERNEL_STATE_VERSION
        assert json.loads(json.dumps(snap)) == snap

    def test_restored_kernel_keeps_stepping(self):
        machine = TreeMachine(8)
        kernel = _drive(
            machine,
            [Arrival(0.0, Task(TaskId(0), 2, 0.0)),
             Arrival(1.0, Task(TaskId(1), 2, 1.0))],
        )
        fresh = AllocationKernel(TreeMachine(8))
        fresh.restore(kernel.snapshot())
        decision = fresh.apply(Departure(2.0, TaskId(0)))
        assert decision.task_id == TaskId(0)
        assert TaskId(0) not in fresh.placements
        fresh.check_consistency()

    def test_round_trip_mid_run_under_faults(self):
        from repro.faults.injector import FaultAwareSimulator
        from repro.faults.plan import generate_fault_plan, merge_events
        from repro.machines.degraded import DegradedView

        machine = TreeMachine(16)
        rng = np.random.default_rng(11)
        sequence = poisson_sequence(16, 60, rng, utilization=0.6)
        plan = generate_fault_plan(16, sequence, np.random.default_rng(5))
        assert not plan.is_empty
        sim = FaultAwareSimulator(
            machine, make_algorithm("greedy", machine), plan
        )
        merged = list(merge_events(sequence, plan))
        cut = len(merged) // 2
        for event in merged[:cut]:
            sim.step(event)
        snap = sim.kernel.snapshot()

        machine2 = TreeMachine(16)
        fresh = AllocationKernel(machine2, view=DegradedView(machine2))
        fresh.restore(snap)
        assert _digest(fresh.snapshot()) == _digest(snap)
        assert fresh.view.failed_nodes == sim.kernel.view.failed_nodes
        assert fresh.metrics.faults.num_failures == snap["metrics"]["faults"]["num_failures"]
        fresh.check_consistency()


class TestRestoreRejections:
    def _snap(self):
        machine = TreeMachine(8)
        return _drive(
            machine, [Arrival(0.0, Task(TaskId(0), 2, 0.0))]
        ).snapshot()

    def test_wrong_kind_and_version(self):
        kernel = AllocationKernel(TreeMachine(8))
        bad = dict(self._snap())
        bad["kind"] = "something-else"
        with pytest.raises(CheckpointError):
            kernel.restore(bad)
        bad = dict(self._snap())
        bad["version"] = 99
        with pytest.raises(CheckpointError):
            kernel.restore(bad)

    def test_wrong_machine(self):
        kernel = AllocationKernel(TreeMachine(16))
        with pytest.raises(CheckpointError):
            kernel.restore(self._snap())

    def test_placement_of_unknown_task(self):
        bad = dict(self._snap())
        bad["placements"] = dict(bad["placements"], **{"99": 1})
        kernel = AllocationKernel(TreeMachine(8))
        with pytest.raises(CheckpointError):
            kernel.restore(bad)

    def test_failed_nodes_need_a_view(self):
        bad = dict(self._snap())
        bad["failed_nodes"] = [4]
        kernel = AllocationKernel(TreeMachine(8))
        with pytest.raises(CheckpointError):
            kernel.restore(bad)


class TestKernelStateMachine:
    def test_external_placement_mode(self):
        machine = TreeMachine(8)
        kernel = AllocationKernel(machine)
        decision = kernel.apply_placed(
            0.0, Task(TaskId(0), 2, 0.0), NodeId(4)
        )
        assert decision.node == NodeId(4)
        assert kernel.current_max_load == 1
        kernel.apply(Departure(1.0, TaskId(0)))
        assert kernel.current_max_load == 0

    def test_fault_event_without_view_is_rejected(self):
        from repro.faults.plan import PEFailure

        machine = TreeMachine(8)
        kernel = AllocationKernel(machine, make_algorithm("greedy", machine))
        with pytest.raises(SimulationError, match="unknown event type"):
            kernel.apply(PEFailure(0.0, NodeId(4)))

    def test_duplicate_arrival_message_is_stable(self):
        machine = TreeMachine(8)
        kernel = AllocationKernel(machine, make_algorithm("greedy", machine))
        kernel.apply(Arrival(0.0, Task(TaskId(0), 1, 0.0)))
        with pytest.raises(SimulationError, match="duplicate arrival of task 0"):
            kernel.apply(Arrival(1.0, Task(TaskId(0), 1, 1.0)))

"""Columnar backends are an *encoding* of the per-event path, not a fork.

Every test here pits a columnar-backend kernel against the per-event
oracle kernel on the same event stream and demands strict bit-identity:
decision tuples, metrics series, peak snapshots, state digests, error
types and messages, even where mid-batch failures stop.  The suite runs
for every backend usable in this environment (``numpy`` always; ``numba``
joins automatically when the optional package is installed), across all
six machine topologies, under fault plans (where the engine must fall
back, not misbehave), and through ``snapshot()``/``restore()`` cycles.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.core.registry import make_algorithm
from repro.errors import (
    BatchError,
    InvalidMachineError,
    SimulationError,
)
from repro.faults.plan import generate_fault_plan, merge_events
from repro.faults.salvage import FaultTolerantAlgorithm
from repro.kernel import AllocationKernel
from repro.kernel.columnar import (
    BACKENDS,
    RUN_MIN,
    available_backends,
    resolve_backend,
)
from repro.machines.butterfly import Butterfly
from repro.machines.fattree import FatTree
from repro.machines.hypercube import Hypercube
from repro.machines.mesh import Mesh2D
from repro.machines.tree import TreeMachine
from repro.tasks.events import Arrival, Departure
from repro.tasks.sequence import TaskSequence
from repro.tasks.task import Task
from repro.types import TaskId
from repro.verify.backends import check_backend_parity
from repro.verify.corpus import load_corpus
from repro.verify.fuzzer import SequenceFuzzer
from repro.workloads.generators import churn_sequence

N = 32

#: Backends under test: everything usable here except the per-event oracle.
COLUMNAR = [b for b in available_backends() if b != "python"]

#: All six CLI topologies at a size every one of them accepts (Mesh2D
#: needs a 4**k PE count).
TOPOLOGIES = {
    "tree": TreeMachine,
    "fattree": lambda n: FatTree(n, fatness=2.0),
    "hypercube": Hypercube,
    "hypercube-gray": lambda n: Hypercube(n, layout="gray"),
    "butterfly": Butterfly,
    "mesh": Mesh2D,
}
TOPOLOGY_N = 16


def _digest(state) -> str:
    return hashlib.sha256(
        json.dumps(state, sort_keys=True, default=repr).encode()
    ).hexdigest()


def _kernel(backend: str, machine=None, *, n: int = N):
    machine = machine if machine is not None else TreeMachine(n)
    algo = make_algorithm("greedy", machine, d=1)
    return AllocationKernel(machine, algo, batch_backend=backend)


def _random_splits(num_events: int, rng) -> list[slice]:
    cuts = [0]
    while cuts[-1] < num_events:
        cuts.append(cuts[-1] + int(rng.integers(1, 24)))
    cuts[-1] = num_events
    return [slice(a, b) for a, b in zip(cuts, cuts[1:]) if b > a]


def _assert_same_state(columnar: AllocationKernel, oracle: AllocationKernel):
    assert _digest(columnar.snapshot()) == _digest(oracle.snapshot())
    assert columnar.metrics.series.times == oracle.metrics.series.times
    assert columnar.metrics.series.max_loads == oracle.metrics.series.max_loads
    assert columnar.metrics.events_processed == oracle.metrics.events_processed
    a, b = columnar.metrics.peak_snapshot, oracle.metrics.peak_snapshot
    assert (a is None) == (b is None)
    if a is not None:
        assert np.array_equal(a, b)
        assert (
            columnar.metrics.peak_snapshot_time == oracle.metrics.peak_snapshot_time
        )
    columnar.check_consistency()


def _run_pair(backend, events, rng, machine_factory=TreeMachine, *, n: int = N):
    """Per-event oracle vs random-split batched columnar run; full diff."""
    oracle = _kernel("python", machine_factory(n), n=n)
    expected = [oracle.apply(e) for e in events]
    columnar = _kernel(backend, machine_factory(n), n=n)
    got = []
    for sl in _random_splits(len(events), rng):
        got.extend(columnar.apply_batch(events[sl]).decisions)
    assert got == expected
    _assert_same_state(columnar, oracle)


# -- Backend registry ---------------------------------------------------------


class TestBackendRegistry:
    def test_available_is_subset_of_known(self):
        avail = available_backends()
        assert set(avail) <= set(BACKENDS)
        assert avail[0] == "python"
        assert "numpy" in avail

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError, match="unknown batch backend"):
            resolve_backend("fortran")

    def test_numba_backend_gated_on_import(self):
        if "numba" in available_backends():
            assert resolve_backend("numba") == "numba"
        else:
            with pytest.raises(SimulationError, match="optional numba package"):
                resolve_backend("numba")

    def test_python_backend_has_no_engine(self):
        kernel = _kernel("python")
        assert kernel._columnar is None


# -- Bit-identity across topologies and workloads -----------------------------


@pytest.mark.parametrize("backend", COLUMNAR)
class TestColumnarParity:
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    def test_all_topologies(self, backend, topology):
        rng = np.random.default_rng(13)
        events = list(churn_sequence(TOPOLOGY_N, 120, np.random.default_rng(7)))
        _run_pair(backend, events, rng, TOPOLOGIES[topology], n=TOPOLOGY_N)

    def test_fuzzed_sequences_random_splits(self, backend):
        fuzzer = SequenceFuzzer(N, seed=23)
        rng = np.random.default_rng(23)
        for _ in range(6):
            _run_pair(backend, list(fuzzer.generate()), rng)

    def test_same_size_bursts_hit_the_run_path(self, backend):
        # Bursts of >= RUN_MIN same-class arrivals engage the vectorised
        # waterfill; interleaved departures break them back to singletons.
        tasks = []
        tid = 0
        t = 0.0
        for wave, size in enumerate((2, 4, 2, 1)):
            for _ in range(RUN_MIN + 4):
                tasks.append(
                    Task(TaskId(tid), size, t, t + 3.0 + (tid % 5))
                )
                tid += 1
                t += 0.125
            t += 1.0
        events = list(TaskSequence.from_tasks(tasks))
        assert len(events) >= 2 * (RUN_MIN + 4)
        rng = np.random.default_rng(3)
        _run_pair(backend, events, rng)
        # Whole stream as one batch, too: maximal run lengths.
        oracle = _kernel("python")
        expected = [oracle.apply(e) for e in events]
        whole = _kernel(backend)
        assert list(whole.apply_batch(events).decisions) == expected
        _assert_same_state(whole, oracle)

    def test_fault_plan_falls_back_bit_identically(self, backend):
        # A kernel with a degraded view never takes the columnar path,
        # but constructing it with a columnar backend must stay exact.
        rng = np.random.default_rng(5)
        for seed in range(3):
            sigma = churn_sequence(N, 50, np.random.default_rng(seed))
            plan = generate_fault_plan(N, sigma, np.random.default_rng(seed))
            events = merge_events(sigma, plan)

            def fault_kernel(backend_name):
                machine = TreeMachine(N)
                algo = make_algorithm("greedy", machine, d=1)
                wrapper = FaultTolerantAlgorithm(
                    machine, algo, machine.degraded_view()
                )
                return AllocationKernel(
                    machine, wrapper, view=wrapper.view, batch_backend=backend_name
                )

            oracle = fault_kernel("python")
            expected = [oracle.apply(e) for e in events]
            columnar = fault_kernel(backend)
            got = []
            for sl in _random_splits(len(events), rng):
                got.extend(columnar.apply_batch(events[sl]).decisions)
            assert got == expected
            _assert_same_state(columnar, oracle)

    def test_resize_bearing_batch_falls_back_bit_identically(self, backend):
        # Online grow/shrink is outside the columnar alphabet: a batch
        # carrying a resize must be declined to the per-event path, not
        # silently mis-absorbed — and stay bit-identical end to end.
        from repro.scenarios import ChurnProcess

        rng = np.random.default_rng(17)
        scenario = ChurnProcess(
            num_pes=N, seed=13, horizon=25.0, task_rate=1.5,
            pe_mttf=10.0, mttr=2.0, storm_rate=0.2, storm_depth=5,
            resizes=((9.0, "grow", 2), (18.0, "shrink", 2)),
        ).build()
        events = list(scenario.merged_events())
        assert any(type(e).__name__ == "MachineResize" for e in events)

        def churn_kernel(backend_name):
            machine = TreeMachine(N)
            algo = make_algorithm("greedy", machine, d=1)
            wrapper = FaultTolerantAlgorithm(
                machine, algo, machine.degraded_view()
            )
            return AllocationKernel(
                machine, wrapper, view=wrapper.view, batch_backend=backend_name
            )

        oracle = churn_kernel("python")
        expected = [oracle.apply(e) for e in events]
        columnar = churn_kernel(backend)
        got = []
        for sl in _random_splits(len(events), rng):
            got.extend(columnar.apply_batch(events[sl]).decisions)
        assert got == expected
        assert columnar.machine.num_pes == oracle.machine.num_pes == N
        _assert_same_state(columnar, oracle)

    def test_snapshot_restore_mid_stream(self, backend):
        events = list(churn_sequence(N, 100, np.random.default_rng(41)))
        half = len(events) // 2
        oracle = _kernel("python")
        expected_first = [oracle.apply(e) for e in events[:half]]
        mid_digest = _digest(oracle.snapshot())

        first = _kernel(backend)
        decisions = list(first.apply_batch(events[:half]).decisions)
        assert decisions == expected_first
        state = first.snapshot()
        assert _digest(state) == mid_digest

        # The backend is engine configuration, not kernel state: a snapshot
        # written under one backend restores under any other (the session
        # layer's resume contract digest-verifies exactly this).
        for resume_backend in ("python", backend):
            resumed = AllocationKernel(
                TreeMachine(N), batch_backend=resume_backend
            )
            resumed.restore(state)
            assert _digest(resumed.snapshot()) == mid_digest
            resumed.check_consistency()

        # Taking the snapshot must not perturb the engine: the original
        # columnar kernel keeps streaming and stays bit-identical.
        expected_rest = [oracle.apply(e) for e in events[half:]]
        got_rest = list(first.apply_batch(events[half:]).decisions)
        assert got_rest == expected_rest
        _assert_same_state(first, oracle)

    def test_mid_batch_failure_leaves_prefix_state(self, backend):
        events = list(churn_sequence(N, 60, np.random.default_rng(2)))
        k = len(events) // 2
        # Poison: a duplicate arrival of a task still active at index k
        # (arrived in the prefix, departs in the suffix).
        departed_early = {
            e.task_id for e in events[:k] if isinstance(e, Departure)
        }
        victim = next(
            e.task
            for e in events[:k]
            if isinstance(e, Arrival) and e.task_id not in departed_early
        )
        bad = Arrival(events[k].time, victim)
        batch = events[:k] + [bad] + events[k:]

        oracle = _kernel("python")
        with pytest.raises(BatchError) as oracle_err:
            oracle.apply_batch(batch)
        columnar = _kernel(backend)
        with pytest.raises(BatchError) as columnar_err:
            columnar.apply_batch(batch)

        assert str(columnar_err.value) == str(oracle_err.value)
        assert columnar_err.value.applied == oracle_err.value.applied == k
        assert list(columnar_err.value.decisions) == list(oracle_err.value.decisions)
        _assert_same_state(columnar, oracle)
        # Both kernels remain usable after the failed batch.
        tail = events[k:]
        expected_tail = [oracle.apply(e) for e in tail]
        got_tail = list(columnar.apply_batch(tail).decisions)
        assert got_tail == expected_tail
        _assert_same_state(columnar, oracle)

    def test_error_semantics_match(self, backend):
        cases = []

        # Duplicate arrival.
        seq = TaskSequence.from_tasks(
            [Task(TaskId(1), 2, 0.0, 10.0), Task(TaskId(2), 2, 1.0, 11.0)]
        )
        arrivals = [e for e in seq if isinstance(e, Arrival)]
        cases.append(
            (arrivals + [arrivals[0]], SimulationError, "duplicate arrival")
        )

        # Departure of a task nobody placed.
        lone = TaskSequence.from_tasks([Task(TaskId(7), 1, 0.0, 5.0)])
        departures = [e for e in lone if isinstance(e, Departure)]
        cases.append((departures, SimulationError, "unknown task"))

        # Oversized task (> N): rejected by machine validation.
        big = TaskSequence.from_tasks([Task(TaskId(9), 2 * N, 0.0, 5.0)])
        cases.append(([list(big)[0]], InvalidMachineError, ""))

        for batch, exc_type, needle in cases:
            oracle = _kernel("python")
            with pytest.raises(BatchError) as a:
                oracle.apply_batch(batch)
            columnar = _kernel(backend)
            with pytest.raises(BatchError) as b:
                columnar.apply_batch(batch)
            assert str(a.value) == str(b.value)
            assert needle in str(b.value)
            assert isinstance(a.value.__cause__, exc_type)
            assert type(b.value.__cause__) is type(a.value.__cause__)
            _assert_same_state(columnar, oracle)

    def test_corpus_replay(self, backend, corpus_dir):
        entries = [e for e in load_corpus(corpus_dir) if not e.fault_events]
        assert entries, "committed regression corpus is missing"
        for entry in entries:
            violations = check_backend_parity(
                entry.algorithm,
                entry.num_pes,
                entry.d,
                entry.seed,
                entry.sequence(),
                backends=("python", backend),
            )
            assert violations == []


@pytest.fixture(scope="session")
def corpus_dir():
    from pathlib import Path

    return Path(__file__).resolve().parents[1] / "corpus"


# -- The harness referee ------------------------------------------------------


class TestHarnessAxis:
    def test_check_backend_parity_clean_run(self):
        sigma = churn_sequence(64, 80, np.random.default_rng(19))
        assert check_backend_parity("greedy", 64, 2.0, 1, sigma) == []

    def test_single_backend_short_circuits(self):
        sigma = churn_sequence(16, 10, np.random.default_rng(1))
        assert (
            check_backend_parity("greedy", 16, 2.0, 1, sigma, backends=("python",))
            == []
        )

    def test_divergence_is_reported(self):
        # A non-columnar "backend" pair would be vacuous; instead check the
        # diff logic itself by comparing against a different algorithm seed
        # through the private runner.
        from repro.verify.backends import _run_backend

        sigma = churn_sequence(16, 30, np.random.default_rng(4))
        events = list(sigma)
        a = _run_backend("python", "greedy", 16, 2.0, 1, events, 16)
        b = _run_backend("numpy", "greedy", 16, 2.0, 1, events, 16)
        assert a.decisions == b.decisions
        assert a.digest == b.digest
        assert a.series == b.series

"""``apply_batch`` is an amortisation of ``apply``, not a different path.

The contract under test: for ANY split of ANY event sequence into
batches, the batched kernel ends bit-identical to the per-event kernel —
same per-event decisions, same metrics (series, peak snapshot, counters),
same versioned state snapshot.  Fuzzer-generated sequences and generated
fault plans feed the property; a mid-batch failure must leave the kernel
exactly where the per-event path would have stopped.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.core.registry import make_algorithm
from repro.errors import BatchError
from repro.faults.plan import generate_fault_plan, merge_events
from repro.faults.salvage import FaultTolerantAlgorithm
from repro.kernel import AllocationKernel, BatchDecision
from repro.machines.tree import TreeMachine
from repro.verify.fuzzer import SequenceFuzzer
from repro.workloads.generators import churn_sequence, poisson_sequence

N = 16


def _digest(state) -> str:
    return hashlib.sha256(
        json.dumps(state, sort_keys=True, default=repr).encode()
    ).hexdigest()


def _make_kernel(algorithm_name: str, *, fault_tolerant: bool = False):
    machine = TreeMachine(N)
    algo = make_algorithm(algorithm_name, machine, d=1)
    if fault_tolerant:
        wrapper = FaultTolerantAlgorithm(machine, algo, machine.degraded_view())
        return AllocationKernel(machine, wrapper, view=wrapper.view)
    return AllocationKernel(machine, algo)


def _random_splits(num_events: int, rng) -> list[slice]:
    """Cut [0, num_events) into contiguous batches of random sizes."""
    cuts = [0]
    while cuts[-1] < num_events:
        cuts.append(cuts[-1] + int(rng.integers(1, 8)))
    cuts[-1] = num_events
    return [slice(a, b) for a, b in zip(cuts, cuts[1:]) if b > a]


def _assert_same_state(batched: AllocationKernel, serial: AllocationKernel):
    assert _digest(batched.snapshot()) == _digest(serial.snapshot())
    assert batched.metrics.series.times == serial.metrics.series.times
    assert batched.metrics.series.max_loads == serial.metrics.series.max_loads
    a, b = batched.metrics.peak_snapshot, serial.metrics.peak_snapshot
    assert (a is None) == (b is None)
    if a is not None:
        assert np.array_equal(a, b)
        assert batched.metrics.peak_snapshot_time == serial.metrics.peak_snapshot_time
    batched.check_consistency()


class TestBatchEquivalence:
    @pytest.mark.parametrize("algorithm", ["greedy", "periodic", "optimal"])
    def test_fuzzed_sequences_random_splits(self, algorithm):
        fuzzer = SequenceFuzzer(N, seed=11)
        rng = np.random.default_rng(11)
        for _ in range(8):
            events = list(fuzzer.generate())
            serial = _make_kernel(algorithm)
            expected = [serial.apply(e) for e in events]
            batched = _make_kernel(algorithm)
            got = []
            for sl in _random_splits(len(events), rng):
                result = batched.apply_batch(events[sl])
                assert isinstance(result, BatchDecision)
                assert result.count == sl.stop - sl.start
                got.extend(result.decisions)
            assert got == expected
            _assert_same_state(batched, serial)

    @pytest.mark.parametrize("algorithm", ["greedy", "periodic"])
    def test_under_fault_plans(self, algorithm):
        rng = np.random.default_rng(5)
        for seed in range(4):
            sigma = churn_sequence(N, 40, np.random.default_rng(seed))
            plan = generate_fault_plan(N, sigma, np.random.default_rng(seed))
            events = merge_events(sigma, plan)
            serial = _make_kernel(algorithm, fault_tolerant=True)
            expected = [serial.apply(e) for e in events]
            batched = _make_kernel(algorithm, fault_tolerant=True)
            got = []
            for sl in _random_splits(len(events), rng):
                got.extend(batched.apply_batch(events[sl]).decisions)
            assert got == expected
            _assert_same_state(batched, serial)

    def test_single_batch_and_single_event_batches(self):
        sigma = poisson_sequence(N, 60, np.random.default_rng(3))
        events = list(sigma)
        serial = _make_kernel("periodic")
        expected = [serial.apply(e) for e in events]
        whole = _make_kernel("periodic")
        assert list(whole.apply_batch(events).decisions) == expected
        _assert_same_state(whole, serial)
        singles = _make_kernel("periodic")
        got = [singles.apply_batch([e]).decisions[0] for e in events]
        assert got == expected
        _assert_same_state(singles, serial)

    def test_empty_batch_is_a_noop(self):
        kernel = _make_kernel("greedy")
        before = _digest(kernel.snapshot())
        result = kernel.apply_batch([])
        assert result.count == 0
        assert result.max_load == 0
        assert _digest(kernel.snapshot()) == before

    def test_summary_fields(self):
        sigma = poisson_sequence(N, 50, np.random.default_rng(9))
        events = list(sigma)
        kernel = _make_kernel("periodic")
        result = kernel.apply_batch(events)
        assert result.count == len(events)
        assert result.arrivals == sum(1 for d in result.decisions if d.kind == "arrival")
        assert result.departures == result.count - result.arrivals
        assert result.peak_max_load == max(d.max_load for d in result.decisions)
        assert result.max_load == result.decisions[-1].max_load
        assert result.reallocations == sum(1 for d in result.decisions if d.reallocated)
        assert result.migrations == sum(d.migrations for d in result.decisions)
        payload = result.to_dict()
        assert payload["kind"] == "batch"
        assert payload["count"] == result.count


class TestBatchFailure:
    def test_mid_batch_failure_leaves_prefix_state(self):
        sigma = poisson_sequence(N, 30, np.random.default_rng(2))
        events = list(sigma)
        # A fault event without a degraded view is rejected by dispatch.
        from repro.faults.plan import TaskKill

        bad = TaskKill(events[-1].time + 1.0, events[0].task.task_id)
        k = len(events) // 2
        batch = events[:k] + [bad] + events[k:]
        serial = _make_kernel("greedy")
        for e in events[:k]:
            serial.apply(e)
        batched = _make_kernel("greedy")
        with pytest.raises(BatchError) as info:
            batched.apply_batch(batch)
        assert info.value.applied == k
        assert len(info.value.decisions) == k
        _assert_same_state(batched, serial)
        # The kernel is still usable: the remaining valid events apply.
        for e in events[k:]:
            serial.apply(e)
            batched.apply(e)
        _assert_same_state(batched, serial)

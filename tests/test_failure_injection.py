"""Failure injection: every defensive check must actually fire.

The simulator's claim to be "the source of truth" rests on its rejection
paths.  Each test here builds a deliberately misbehaving component —
algorithms that lie, leak, or overstep — and asserts the harness refuses
loudly rather than producing flattering numbers.
"""

import pytest

from repro.core.base import AllocationAlgorithm, Placement, Reallocation
from repro.core.greedy import GreedyAlgorithm
from repro.errors import (
    PlacementError,
    ReallocationError,
    SimulationError,
)
from repro.machines.tree import TreeMachine
from repro.sim.engine import Simulator
from repro.tasks.builder import SequenceBuilder
from repro.tasks.events import Arrival, Departure
from repro.tasks.task import Task
from repro.types import TaskId


class _Misbehaving(AllocationAlgorithm):
    """Configurable bad actor."""

    def __init__(self, machine, mode):
        super().__init__(machine)
        self.mode = mode
        self._count = 0

    @property
    def name(self):
        return f"evil:{self.mode}"

    @property
    def reallocation_parameter(self):
        return 0.0 if self.mode.startswith("realloc") else float("inf")

    def on_arrival(self, task):
        self._count += 1
        h = self.machine.hierarchy
        if self.mode == "oversize":
            return Placement(task.task_id, 1)  # root regardless of size
        if self.mode == "offmachine":
            return Placement(task.task_id, 2 * self.machine.num_pes + 5)
        if self.mode == "wrong-id":
            return Placement(TaskId(10_000 + self._count), h.leaf_node(0))
        # Honest placement for the realloc modes.
        return Placement(task.task_id, h.enclosing_node(0, task.size))

    def on_departure(self, task):
        pass

    def maybe_reallocate(self, arrived_since_last):
        if self.mode == "realloc-drop":
            return Reallocation({})  # forgets every active task
        if self.mode == "realloc-phantom":
            return Reallocation(
                {TaskId(99_999): 1}
            )  # remaps a task that doesn't exist
        if self.mode == "realloc-resize":
            # Remap the (single, size-1) active task to the root.
            return Reallocation({TaskId(0): 1})
        return None


def _one_unit_arrival():
    return SequenceBuilder().arrive("a", size=1).build()


class TestPlacementRejections:
    @pytest.mark.parametrize("mode", ["oversize", "offmachine", "wrong-id"])
    def test_bad_placements_rejected(self, mode):
        m = TreeMachine(8)
        sim = Simulator(m, _Misbehaving(m, mode))
        with pytest.raises(PlacementError):
            sim.run(_one_unit_arrival())


class TestReallocationRejections:
    @pytest.mark.parametrize(
        "mode,exc",
        [
            ("realloc-drop", ReallocationError),
            ("realloc-phantom", ReallocationError),
            ("realloc-resize", PlacementError),
        ],
    )
    def test_bad_reallocations_rejected(self, mode, exc):
        m = TreeMachine(8)
        sim = Simulator(m, _Misbehaving(m, mode))
        with pytest.raises(exc):
            sim.run(_one_unit_arrival())

    def test_budget_overstep_rejected(self):
        class Impatient(GreedyAlgorithm):
            @property
            def reallocation_parameter(self):
                return 5.0  # claims d = 5 ...

            def maybe_reallocate(self, arrived_since_last):
                # ... but tries to repack on the very first arrival.
                return Reallocation(dict(self._placement))

        m = TreeMachine(8)
        sim = Simulator(m, Impatient(m))
        with pytest.raises(ReallocationError, match="budget"):
            sim.run(_one_unit_arrival())


class TestSequenceLevelRejections:
    def test_duplicate_arrival(self):
        m = TreeMachine(8)
        sim = Simulator(m, GreedyAlgorithm(m))
        t = Task(TaskId(0), 1, 0.0)
        sim.step(Arrival(0.0, t))
        with pytest.raises(SimulationError, match="duplicate"):
            sim.step(Arrival(0.0, t))

    def test_phantom_departure(self):
        m = TreeMachine(8)
        sim = Simulator(m, GreedyAlgorithm(m))
        with pytest.raises(SimulationError, match="unknown"):
            sim.step(Departure(1.0, TaskId(3)))


class TestStateCorruptionDetection:
    def test_loadtracker_detects_tampering(self):
        from repro.machines.hierarchy import Hierarchy
        from repro.machines.loads import LoadTracker

        tracker = LoadTracker(Hierarchy(8))
        tracker.place(2, 4)
        tracker._max_below[1] += 1  # corrupt the aggregate
        with pytest.raises(AssertionError):
            tracker.check_invariants()

    def test_buddycopy_detects_tampering(self):
        from repro.machines.copies import BuddyCopy
        from repro.machines.hierarchy import Hierarchy

        copy = BuddyCopy(Hierarchy(8))
        copy.allocate(2)
        copy._max_vacant[1] = 8  # pretend the copy is empty
        with pytest.raises(AssertionError):
            copy.check_invariants()

    def test_simulator_consistency_check_detects_drift(self):
        m = TreeMachine(8)
        sim = Simulator(m, GreedyAlgorithm(m))
        sim.step(Arrival(0.0, Task(TaskId(0), 2, 0.0)))
        sim._placements[TaskId(0)] = 3  # divert the record, not the tracker
        with pytest.raises(SimulationError):
            sim.check_consistency()

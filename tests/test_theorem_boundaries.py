"""Boundary cases of the theorem expressions — asserted as equalities.

The main theorem suite checks the bounds as inequalities on random
workloads; here the degenerate corners are pinned to the *exact* values
the formulas take, so a silent off-by-one in a ceiling or a min() cannot
hide behind slack:

* ``d = 0``      — Theorem 4.2's factor is exactly 1 (A_M degenerates to
  the always-repacking A_C, Theorem 3.1's regime);
* ``d = inf``    — the factor is exactly the greedy ``g = ceil((log N+1)/2)``
  and A_M *is* A_G, run for run;
* ``N = 1``      — ``log N = 0``, so ``g = 1`` and every bound collapses
  to ``L*`` itself;
* a single task of size ``N`` — ``s(sigma) = N``, ``L* = 1``, and every
  bounded algorithm must land exactly on load 1.
"""

import math

import pytest

from repro.core.bounds import (
    basic_copy_bound,
    deterministic_lower_factor,
    deterministic_upper_factor,
    greedy_upper_bound_factor,
    optimal_load,
)
from repro.core.greedy import GreedyAlgorithm
from repro.core.periodic import PeriodicReallocationAlgorithm
from repro.core.registry import make_algorithm
from repro.machines.tree import TreeMachine
from repro.sim.runner import run
from repro.tasks.sequence import TaskSequence
from repro.tasks.task import Task
from repro.types import TaskId
from repro.workloads.generators import churn_sequence

import numpy as np


class TestDZero:
    """d = 0: Theorem 4.2 reads min{0 + 1, g} * L* = L* exactly."""

    @pytest.mark.parametrize("n", [1, 2, 4, 16, 256, 1024])
    def test_factor_is_exactly_one(self, n):
        assert deterministic_upper_factor(n, 0.0) == 1.0

    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_am_with_d_zero_achieves_lstar_exactly(self, n):
        sigma = churn_sequence(n, 120, np.random.default_rng(3))
        machine = TreeMachine(n)
        result = run(machine, PeriodicReallocationAlgorithm(machine, d=0.0), sigma)
        # <= is Theorem 4.2 at d=0; >= holds for every valid placement —
        # together the factor-1 bound forces equality, not mere compliance.
        assert result.max_load == result.optimal_load == sigma.optimal_load(n)

    def test_lower_bound_agrees_at_d_zero(self):
        # Theorem 4.3: ceil((min{0, log N} + 1)/2) = 1 — upper and lower
        # factors coincide, so the d=0 trade-off point is completely tight.
        for n in (2, 16, 256):
            assert deterministic_lower_factor(n, 0.0) == 1
            assert deterministic_upper_factor(n, 0.0) == deterministic_lower_factor(
                n, 0.0
            )


class TestDInfinity:
    """d = inf: reallocation is free-budget-never-used; A_M == A_G exactly."""

    @pytest.mark.parametrize("n", [1, 2, 4, 16, 256, 1024])
    def test_factor_is_exactly_greedy_g(self, n):
        assert deterministic_upper_factor(n, math.inf) == float(
            greedy_upper_bound_factor(n)
        )

    @pytest.mark.parametrize("n", [8, 16, 64])
    def test_am_with_d_inf_is_greedy_run_for_run(self, n):
        sigma = churn_sequence(n, 150, np.random.default_rng(7))
        m1, m2 = TreeMachine(n), TreeMachine(n)
        am = PeriodicReallocationAlgorithm(m1, d=math.inf)
        assert am.uses_greedy_branch
        r_am = run(m1, am, sigma)
        r_greedy = run(m2, GreedyAlgorithm(m2), sigma)
        assert r_am.max_load == r_greedy.max_load
        assert r_am.metrics.realloc.num_reallocations == 0


class TestSinglePEMachine:
    """N = 1: log N = 0, so g = ceil(1/2) = 1 and all bounds equal L*."""

    def test_greedy_factor_is_one(self):
        assert greedy_upper_bound_factor(1) == 1

    def test_all_factors_collapse_to_lstar(self):
        for d in (0.0, 1.0, 7.5, math.inf):
            assert deterministic_upper_factor(1, d) == 1.0
            assert deterministic_lower_factor(1, d) == 1

    def test_loads_on_one_pe_are_exactly_the_active_count(self):
        # k unit tasks on N=1: L* = k and every deterministic bounded
        # algorithm must report exactly k (factor 1 forces equality).
        k = 5
        sigma = TaskSequence.from_tasks(
            [Task(TaskId(i), 1, float(i), math.inf) for i in range(k)]
        )
        assert sigma.optimal_load(1) == k
        for name in ("optimal", "greedy", "basic", "periodic"):
            machine = TreeMachine(1)
            result = run(machine, make_algorithm(name, machine, d=0.0), sigma)
            assert result.max_load == k, name

    def test_lemma2_on_one_pe_counts_total_volume(self):
        assert basic_copy_bound(7, 1) == 7


class TestSingleFullMachineTask:
    """One task of size N: s(sigma) = N, L* = 1, load exactly 1 everywhere."""

    @pytest.mark.parametrize("n", [1, 2, 16, 64])
    def test_lstar_is_one(self, n):
        assert optimal_load(n, n) == 1

    @pytest.mark.parametrize("n", [2, 16, 64])
    @pytest.mark.parametrize("name", ["optimal", "greedy", "basic", "periodic"])
    def test_every_bounded_algorithm_lands_exactly_on_one(self, n, name):
        sigma = TaskSequence.from_tasks([Task(TaskId(0), n, 0.0, math.inf)])
        machine = TreeMachine(n)
        result = run(machine, make_algorithm(name, machine, d=1.0), sigma)
        assert result.max_load == 1
        assert result.optimal_load == 1
        # Exact theorem expressions at this corner, not just <=:
        assert result.max_load == optimal_load(sigma.peak_active_size, n)  # Thm 3.1
        assert (
            result.max_load
            <= deterministic_upper_factor(n, 1.0) * result.optimal_load
        )  # Thm 4.2 with zero slack possible only at equality of L* terms

    @pytest.mark.parametrize("n", [2, 16])
    def test_back_to_back_full_machine_tasks_stack_to_two(self, n):
        # Two overlapping size-N tasks: s = 2N, L* = 2 — the exact ceiling
        # arithmetic at the boundary s(sigma) % N == 0.
        sigma = TaskSequence.from_tasks(
            [
                Task(TaskId(0), n, 0.0, math.inf),
                Task(TaskId(1), n, 1.0, math.inf),
            ]
        )
        assert sigma.optimal_load(n) == 2
        machine = TreeMachine(n)
        result = run(machine, make_algorithm("optimal", machine), sigma)
        assert result.max_load == 2

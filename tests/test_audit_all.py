"""Whole-system property: every registry algorithm survives the auditor.

For each algorithm in the registry, on hypothesis-generated sequences:
run it through the validating simulator, then hand the recorded placement
history to the *independent* auditor (:mod:`repro.sim.audit`) and require
a clean verdict with an identical recomputed max load.  Two separately
implemented accountings agreeing on arbitrary inputs is the strongest
integrity check in the suite.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import algorithm_names, make_algorithm
from repro.machines.tree import TreeMachine
from repro.sim.audit import audit_run
from repro.sim.engine import Simulator
from tests.conftest import task_sequences

ALL_NAMES = algorithm_names()


@pytest.mark.parametrize("name", ALL_NAMES)
@given(data=st.data())
@settings(max_examples=15, deadline=None)
def test_every_algorithm_passes_independent_audit(name, data):
    seq = data.draw(task_sequences(num_pes=16, max_events=40))
    machine = TreeMachine(16)
    algorithm = make_algorithm(name, machine, d=1, seed=11)
    sim = Simulator(machine, algorithm)
    for event in seq:
        sim.step(event)
    report = audit_run(machine, seq, sim.placement_intervals())
    report.raise_if_failed()
    assert report.max_load == sim.metrics.max_load
    sim.check_consistency()

"""Unit tests for the named workload scenarios."""

import numpy as np
import pytest

from repro.workloads.scenarios import (
    SCENARIOS,
    fragmentation_storm,
    long_tail,
    overload,
    steady_state,
    wave_and_drain,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestRegistry:
    def test_all_registered(self):
        assert set(SCENARIOS) == {
            "steady_state",
            "overload",
            "fragmentation_storm",
            "wave_and_drain",
            "long_tail",
            "production_1996",
        }

    @pytest.mark.parametrize("name", sorted(["steady_state", "overload",
                                             "fragmentation_storm",
                                             "wave_and_drain", "long_tail",
                                             "production_1996"]))
    def test_every_scenario_valid_on_small_machine(self, name, rng):
        seq = SCENARIOS[name](32, rng, scale=0.2)
        assert seq.num_tasks > 0
        assert all(t.size <= 32 for t in seq.tasks.values())

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_reproducible(self, name):
        a = SCENARIOS[name](16, np.random.default_rng(7), scale=0.2)
        b = SCENARIOS[name](16, np.random.default_rng(7), scale=0.2)
        assert a == b


class TestShapes:
    def test_overload_exceeds_machine(self, rng):
        seq = overload(64, rng)
        assert seq.optimal_load(64) > 1

    def test_steady_state_moderate(self, rng):
        seq = steady_state(64, rng)
        assert seq.optimal_load(64) <= 3

    def test_fragmentation_storm_volume_bounded(self, rng):
        seq = fragmentation_storm(64, rng, scale=0.5)
        # Churn holds the active volume near N.
        assert seq.peak_active_size <= 3 * 64
        assert seq.total_arrival_size > 2 * seq.peak_active_size

    def test_wave_and_drain_two_phases(self, rng):
        seq = wave_and_drain(64, rng)
        sizes = {t.size for t in seq.tasks.values()}
        assert max(sizes) >= 16  # second wave requests large blocks

    def test_long_tail_has_stragglers(self, rng):
        seq = long_tail(64, rng)
        durations = [
            t.departure - t.arrival
            for t in seq.tasks.values()
            if t.departure != float("inf")
        ]
        assert max(durations) > 20 * float(np.median(durations))

    def test_scale_controls_size(self, rng):
        small = steady_state(16, np.random.default_rng(1), scale=0.1)
        large = steady_state(16, np.random.default_rng(1), scale=1.0)
        assert large.num_tasks > 3 * small.num_tasks

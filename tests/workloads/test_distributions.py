"""Unit tests for size and duration distributions."""

import numpy as np
import pytest

from repro.types import is_power_of_two
from repro.workloads.distributions import (
    ExponentialDurations,
    FixedDuration,
    FixedSize,
    GeometricSizes,
    LognormalDurations,
    ParetoDurations,
    UniformLogSizes,
    WeightedSizes,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestSizeDistributions:
    def test_uniform_log_all_powers(self, rng):
        dist = UniformLogSizes(max_size=16)
        samples = set(dist.sample_many(rng, 500))
        assert samples == {1, 2, 4, 8, 16}

    def test_uniform_log_validates(self):
        with pytest.raises(ValueError):
            UniformLogSizes(max_size=12)

    def test_geometric_favours_small(self, rng):
        dist = GeometricSizes(max_size=16, ratio=0.5)
        samples = dist.sample_many(rng, 2000)
        counts = {s: samples.count(s) for s in (1, 16)}
        assert counts[1] > 5 * counts[16]

    def test_geometric_validates(self):
        with pytest.raises(ValueError):
            GeometricSizes(max_size=10)
        with pytest.raises(ValueError):
            GeometricSizes(max_size=8, ratio=0.0)

    def test_fixed_size(self, rng):
        dist = FixedSize(4)
        assert set(dist.sample_many(rng, 10)) == {4}
        with pytest.raises(ValueError):
            FixedSize(3)

    def test_weighted_sizes(self, rng):
        dist = WeightedSizes(sizes=[1, 8], weights=[1.0, 0.0])
        assert set(dist.sample_many(rng, 20)) == {1}

    def test_weighted_validates(self):
        with pytest.raises(ValueError):
            WeightedSizes(sizes=[], weights=[])
        with pytest.raises(ValueError):
            WeightedSizes(sizes=[3], weights=[1.0])
        with pytest.raises(ValueError):
            WeightedSizes(sizes=[2], weights=[-1.0])
        with pytest.raises(ValueError):
            WeightedSizes(sizes=[2, 4], weights=[1.0])

    @pytest.mark.parametrize(
        "dist",
        [
            UniformLogSizes(64),
            GeometricSizes(64),
            FixedSize(8),
            WeightedSizes([2, 16], [1, 2]),
        ],
    )
    def test_all_samples_are_powers_of_two(self, dist, rng):
        for s in dist.sample_many(rng, 200):
            assert is_power_of_two(s)


class TestDurationDistributions:
    @pytest.mark.parametrize(
        "dist",
        [
            ExponentialDurations(2.0),
            ParetoDurations(),
            LognormalDurations(),
            FixedDuration(1.5),
        ],
    )
    def test_strictly_positive(self, dist, rng):
        for _ in range(500):
            assert dist.sample(rng) > 0

    def test_exponential_mean(self, rng):
        dist = ExponentialDurations(mean=3.0)
        samples = [dist.sample(rng) for _ in range(5000)]
        assert np.mean(samples) == pytest.approx(3.0, rel=0.1)

    def test_exponential_validates(self):
        with pytest.raises(ValueError):
            ExponentialDurations(mean=0.0)

    def test_pareto_cap(self, rng):
        dist = ParetoDurations(alpha=0.5, xm=1.0, cap=10.0)
        assert max(dist.sample(rng) for _ in range(2000)) <= 10.0

    def test_pareto_validates(self):
        with pytest.raises(ValueError):
            ParetoDurations(alpha=0.0)
        with pytest.raises(ValueError):
            ParetoDurations(xm=1.0, cap=0.5)

    def test_lognormal_validates(self):
        with pytest.raises(ValueError):
            LognormalDurations(sigma=0.0)

    def test_fixed_duration(self, rng):
        assert FixedDuration(2.5).sample(rng) == 2.5
        with pytest.raises(ValueError):
            FixedDuration(0.0)

"""Unit tests for JSONL trace IO."""

import math

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.tasks.task import Task
from repro.tasks.sequence import TaskSequence
from repro.types import TaskId
from repro.workloads.generators import poisson_sequence
from repro.workloads.traces import read_trace, trace_line, write_trace


class TestRoundtrip:
    def test_write_read_identity(self, tmp_path):
        seq = poisson_sequence(16, 60, np.random.default_rng(3))
        path = tmp_path / "trace.jsonl"
        write_trace(path, seq)
        loaded = read_trace(path)
        assert loaded == seq

    def test_immortal_tasks_roundtrip(self, tmp_path):
        seq = TaskSequence.from_tasks([Task(TaskId(0), 4, 1.0)])
        path = tmp_path / "t.jsonl"
        write_trace(path, seq)
        loaded = read_trace(path)
        assert math.isinf(next(iter(loaded.tasks.values())).departure)

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            "# a comment\n\n"
            '{"id": 0, "size": 2, "arrival": 0.0, "departure": 5.0}\n'
        )
        seq = read_trace(path)
        assert seq.num_tasks == 1

    def test_work_field_preserved(self, tmp_path):
        seq = TaskSequence.from_tasks([Task(TaskId(1), 2, 0.0, 3.0, work=9.0)])
        path = tmp_path / "t.jsonl"
        write_trace(path, seq)
        assert read_trace(path).task(TaskId(1)).work == 9.0


class TestErrors:
    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(TraceFormatError, match="line 1"):
            read_trace(path)

    def test_non_object_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_missing_field(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"id": 0, "arrival": 0.0}\n')
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_invalid_task_values(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"id": 0, "size": 3, "arrival": 0.0}\n')
        with pytest.raises(TraceFormatError):
            read_trace(path)


class TestTraceLine:
    def test_finite_departure(self):
        line = trace_line(Task(TaskId(2), 4, 1.0, 2.5))
        assert '"departure":2.5' in line

    def test_infinite_departure(self):
        line = trace_line(Task(TaskId(2), 4, 1.0))
        assert '"departure":"inf"' in line

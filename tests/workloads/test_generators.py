"""Unit tests for the arrival-process generators."""

import math

import numpy as np
import pytest

from repro.tasks.events import Arrival
from repro.workloads.distributions import FixedSize, FixedDuration
from repro.workloads.generators import (
    arrivals_only_sequence,
    burst_sequence,
    churn_sequence,
    poisson_sequence,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestPoisson:
    def test_task_count(self, rng):
        seq = poisson_sequence(16, 100, rng)
        assert seq.num_tasks == 100

    def test_all_sizes_admissible(self, rng):
        seq = poisson_sequence(16, 200, rng)
        assert all(1 <= t.size <= 16 for t in seq.tasks.values())

    def test_utilization_controls_volume(self):
        lows, highs = [], []
        for seed in range(5):
            low = poisson_sequence(
                64, 400, np.random.default_rng(seed), utilization=0.3,
                sizes=FixedSize(1), durations=FixedDuration(1.0),
            )
            high = poisson_sequence(
                64, 400, np.random.default_rng(seed), utilization=3.0,
                sizes=FixedSize(1), durations=FixedDuration(1.0),
            )
            lows.append(low.peak_active_size)
            highs.append(high.peak_active_size)
        assert np.mean(highs) > 2 * np.mean(lows)

    def test_validates(self, rng):
        with pytest.raises(ValueError):
            poisson_sequence(16, 0, rng)
        with pytest.raises(ValueError):
            poisson_sequence(16, 10, rng, utilization=0.0)

    def test_reproducible(self):
        a = poisson_sequence(16, 50, np.random.default_rng(9))
        b = poisson_sequence(16, 50, np.random.default_rng(9))
        assert a == b


class TestBurst:
    def test_all_arrive_before_departures(self, rng):
        seq = burst_sequence(16, 50, rng, depart_fraction=0.5)
        arrival_times = [ev.time for ev in seq if isinstance(ev, Arrival)]
        departure_times = [ev.time for ev in seq if not isinstance(ev, Arrival)]
        assert max(arrival_times) < min(departure_times)

    def test_depart_fraction(self, rng):
        seq = burst_sequence(16, 100, rng, depart_fraction=0.25)
        immortal = sum(1 for t in seq.tasks.values() if math.isinf(t.departure))
        assert immortal == 75

    def test_zero_fraction_no_departures(self, rng):
        seq = burst_sequence(16, 30, rng)
        assert all(math.isinf(t.departure) for t in seq.tasks.values())

    def test_validates_fraction(self, rng):
        with pytest.raises(ValueError):
            burst_sequence(16, 10, rng, depart_fraction=1.5)


class TestChurn:
    def test_event_count(self, rng):
        seq = churn_sequence(16, 200, rng)
        assert len(seq) == 200

    def test_volume_hovers_near_target(self, rng):
        seq = churn_sequence(64, 2000, rng, target_volume=64)
        # Peak should overshoot the target only modestly.
        assert 32 <= seq.peak_active_size <= 160

    def test_arrival_volume_grows_with_events(self, rng):
        short = churn_sequence(16, 200, np.random.default_rng(0))
        long = churn_sequence(16, 2000, np.random.default_rng(0))
        assert long.total_arrival_size > 3 * short.total_arrival_size

    def test_validates_target(self, rng):
        with pytest.raises(ValueError):
            churn_sequence(16, 10, rng, target_volume=0)


class TestArrivalsOnly:
    def test_no_departures(self, rng):
        seq = arrivals_only_sequence(16, 40, rng)
        assert seq.num_tasks == 40
        assert len(seq) == 40
        assert all(math.isinf(t.departure) for t in seq.tasks.values())

    def test_peak_equals_total(self, rng):
        seq = arrivals_only_sequence(16, 40, rng)
        assert seq.peak_active_size == seq.total_arrival_size


class TestFeitelson:
    def test_basic(self):
        from repro.workloads.generators import feitelson_sequence

        seq = feitelson_sequence(64, 300, np.random.default_rng(0))
        assert seq.num_tasks == 300
        assert all(1 <= t.size <= 64 for t in seq.tasks.values())

    def test_small_sizes_dominate(self):
        from repro.workloads.generators import feitelson_sequence

        seq = feitelson_sequence(64, 2000, np.random.default_rng(1))
        sizes = [t.size for t in seq.tasks.values()]
        assert sizes.count(1) > 3 * sizes.count(64)

    def test_runtime_size_correlation(self):
        from repro.workloads.generators import feitelson_sequence

        seq = feitelson_sequence(
            64, 3000, np.random.default_rng(2), runtime_size_correlation=1.0
        )
        small = [t.duration for t in seq.tasks.values() if t.size == 1]
        large = [t.duration for t in seq.tasks.values() if t.size >= 32]
        assert np.median(large) > np.median(small)

    def test_zero_correlation_flattens(self):
        from repro.workloads.generators import feitelson_sequence

        seq = feitelson_sequence(
            64, 3000, np.random.default_rng(3), runtime_size_correlation=0.0
        )
        small = [t.duration for t in seq.tasks.values() if t.size == 1]
        large = [t.duration for t in seq.tasks.values() if t.size >= 16]
        # Without correlation, medians agree within noise (log-uniform).
        assert 0.3 < np.median(large) / np.median(small) < 3.0

    def test_runtimes_span_orders_of_magnitude(self):
        from repro.workloads.generators import feitelson_sequence

        seq = feitelson_sequence(64, 2000, np.random.default_rng(4))
        durations = [t.duration for t in seq.tasks.values()]
        assert max(durations) / min(durations) > 100

    def test_validation(self):
        from repro.workloads.generators import feitelson_sequence

        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            feitelson_sequence(64, 0, rng)
        with pytest.raises(ValueError):
            feitelson_sequence(64, 10, rng, runtime_size_correlation=2.0)
        with pytest.raises(ValueError):
            feitelson_sequence(64, 10, rng, runtime_spread=0)

    def test_reproducible(self):
        from repro.workloads.generators import feitelson_sequence

        a = feitelson_sequence(32, 100, np.random.default_rng(9))
        b = feitelson_sequence(32, 100, np.random.default_rng(9))
        assert a == b

"""Tests for the workload profiler."""

import math

import numpy as np
import pytest

from repro.tasks.builder import SequenceBuilder, figure1_sequence
from repro.tasks.sequence import TaskSequence
from repro.workloads.generators import poisson_sequence
from repro.workloads.profiles import describe_sequence


class TestDescribeSequence:
    def test_figure1_profile(self):
        profile = describe_sequence(figure1_sequence())
        assert profile.num_tasks == 5
        assert profile.num_events == 7
        assert profile.size_histogram == {1: 4, 2: 1}
        assert profile.peak_active_size == 4
        assert profile.total_arrival_size == 6
        assert profile.optimal_load(4) == 1
        # t2 and t4 depart; three tasks are immortal.
        assert profile.immortal_fraction == pytest.approx(3 / 5)

    def test_durations(self):
        seq = (
            SequenceBuilder()
            .arrive("a", size=1, at=0.0)
            .arrive("b", size=1, at=0.0)
            .depart("a", at=2.0)
            .depart("b", at=4.0)
            .build()
        )
        profile = describe_sequence(seq)
        assert profile.mean_duration == pytest.approx(3.0)
        assert profile.immortal_fraction == 0.0
        assert profile.horizon == 4.0
        assert profile.arrival_rate == pytest.approx(2 / 4.0)

    def test_empty_sequence(self):
        profile = describe_sequence(TaskSequence([]))
        assert profile.num_tasks == 0
        assert profile.arrival_rate == 0.0
        assert math.isnan(profile.mean_duration)
        assert profile.mean_size == 0.0

    def test_render_contains_key_fields(self):
        profile = describe_sequence(figure1_sequence())
        text = profile.render(num_pes=4)
        assert "peak active volume" in text
        assert "L* on N=4" in text
        assert "1:4 2:1" in text

    def test_generator_profile_sane(self):
        seq = poisson_sequence(32, 200, np.random.default_rng(0), utilization=0.8)
        profile = describe_sequence(seq)
        assert profile.num_tasks == 200
        assert profile.arrival_rate > 0
        assert sum(profile.size_histogram.values()) == 200


class TestCompareHelper:
    def test_compare_runs_and_ranks(self):
        from repro.analysis.compare import compare_algorithms
        from repro.machines.tree import TreeMachine

        seq = figure1_sequence()
        comparison = compare_algorithms(
            lambda: TreeMachine(4), seq, ("optimal", "greedy"), d=1
        )
        assert comparison.optimal_load == 1
        by_name = {r.result.algorithm_name: r for r in comparison.rows}
        assert by_name["A_C"].result.max_load == 1
        assert by_name["A_G"].result.max_load == 2
        assert by_name["A_C"].within_bound is True
        assert comparison.best().result.algorithm_name == "A_C"
        text = comparison.render(title="x")
        assert "A_C" in text and "within?" in text

    def test_randomized_has_no_bound(self):
        from repro.analysis.compare import compare_algorithms
        from repro.machines.tree import TreeMachine

        comparison = compare_algorithms(
            lambda: TreeMachine(4), figure1_sequence(), ("random",), seed=1
        )
        (row,) = comparison.rows
        assert row.bound_factor is None
        assert row.within_bound is None


class TestCLICommands:
    def test_describe(self, capsys):
        from repro.cli import main

        assert main(["describe", "--workload", "churn", "--n", "16", "--tasks", "80"]) == 0
        assert "workload profile" in capsys.readouterr().out

    def test_compare(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "compare", "--workload", "burst", "--n", "16",
                    "--tasks", "30", "--algorithms", "greedy,optimal",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "best:" in out

    def test_sweep(self, capsys):
        from repro.cli import main

        assert (
            main(
                ["sweep", "--n", "16", "--workload", "churn", "--tasks", "200",
                 "--d-values", "0,2"]
            )
            == 0
        )
        assert "load-vs-d sweep" in capsys.readouterr().out

"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.machines.tree import TreeMachine
from repro.tasks.events import Arrival, Departure
from repro.tasks.sequence import TaskSequence
from repro.tasks.task import Task
from repro.types import TaskId


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(params=[4, 16, 64])
def machine(request) -> TreeMachine:
    return TreeMachine(request.param)


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------


def power_of_two_sizes(max_size: int) -> st.SearchStrategy[int]:
    """Task sizes: 2**x with x uniform over the admissible exponents."""
    max_exp = max_size.bit_length() - 1
    return st.integers(0, max_exp).map(lambda x: 1 << x)


@st.composite
def task_sequences(
    draw,
    *,
    num_pes: int = 16,
    max_events: int = 60,
    max_size: int | None = None,
) -> TaskSequence:
    """Random interleaved arrival/departure sequences, always valid.

    Each step either (a) arrives a new task of a random power-of-two size,
    or (b) departs a uniformly chosen active task (if any).  Tasks that
    remain active at the end never depart (departure = inf), matching the
    paper's open-ended sequences.
    """
    max_size = max_size or num_pes
    num_events = draw(st.integers(1, max_events))
    sizes = power_of_two_sizes(max_size)
    active: list[tuple[int, int, float]] = []  # (task_id, size, arrival)
    records: list[tuple[str, int, int, float]] = []
    next_id = 0
    clock = 0.0
    for _ in range(num_events):
        clock += 1.0
        arrive = not active or draw(st.booleans())
        if arrive:
            size = draw(sizes)
            records.append(("arrive", next_id, size, clock))
            active.append((next_id, size, clock))
            next_id += 1
        else:
            idx = draw(st.integers(0, len(active) - 1))
            tid, size, _arr = active.pop(idx)
            records.append(("depart", tid, size, clock))
    departures = {tid: t for kind, tid, _s, t in records if kind == "depart"}
    tasks: dict[int, Task] = {}
    for kind, tid, size, t in records:
        if kind == "arrive":
            dep = departures.get(tid, math.inf)
            tasks[tid] = Task(TaskId(tid), size, t, dep)
    events = []
    for kind, tid, _size, t in records:
        if kind == "arrive":
            events.append(Arrival(t, tasks[tid]))
        else:
            events.append(Departure(t, tid))
    return TaskSequence(events)


@st.composite
def wave_drain_sequences(
    draw,
    *,
    num_pes: int = 16,
    max_waves: int = 3,
) -> TaskSequence:
    """Structured wave/drain/wave sequences — the fragmentation-prone shape.

    Each wave is a burst of same-or-mixed-size arrivals; each drain departs
    a hypothesis-chosen subset of the survivors.  This complements the
    uniform strategy in :func:`task_sequences`: the Theorem 4.1/4.2 bounds
    are hardest exactly on this pattern (Figure 1 at scale), so property
    tests get adversarial-ish coverage without hand-written cases.
    """
    num_waves = draw(st.integers(1, max_waves))
    sizes = power_of_two_sizes(num_pes // 2 if num_pes > 1 else 1)
    clock = 0.0
    next_id = 0
    alive: list[tuple[int, int, float]] = []  # (id, size, arrival)
    records: list[tuple[str, int, int, float]] = []
    for _wave in range(num_waves):
        burst = draw(st.integers(1, max(2, num_pes // 2)))
        for _ in range(burst):
            clock += 1.0
            size = draw(sizes)
            records.append(("arrive", next_id, size, clock))
            alive.append((next_id, size, clock))
            next_id += 1
        if alive:
            departing_mask = draw(
                st.lists(st.booleans(), min_size=len(alive), max_size=len(alive))
            )
            survivors = []
            for (tid, size, arr), leave in zip(alive, departing_mask):
                if leave:
                    clock += 1.0
                    records.append(("depart", tid, size, clock))
                else:
                    survivors.append((tid, size, arr))
            alive = survivors
    departures = {tid: t for kind, tid, _s, t in records if kind == "depart"}
    tasks: dict[int, Task] = {}
    for kind, tid, size, t in records:
        if kind == "arrive":
            dep = departures.get(tid, math.inf)
            tasks[tid] = Task(TaskId(tid), size, t, dep)
    events = []
    for kind, tid, _size, t in records:
        if kind == "arrive":
            events.append(Arrival(t, tasks[tid]))
        else:
            events.append(Departure(t, tid))
    return TaskSequence(events)

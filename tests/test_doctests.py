"""Run the doctests embedded in library docstrings.

A handful of modules carry executable examples (``>>>``); this keeps them
honest without enabling --doctest-modules globally (which would execute
every module's import-time examples in unrelated CI configurations).
"""

import doctest

import pytest

import repro.analysis.plots
import repro.analysis.tables
import repro.types

MODULES = [
    repro.types,
    repro.analysis.tables,
    repro.analysis.plots,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    failures, attempted = doctest.testmod(
        module, verbose=False, raise_on_error=False
    ).failed, doctest.testmod(module, verbose=False).attempted
    assert attempted > 0, f"{module.__name__} has no doctests to run"
    assert failures == 0

"""Unit tests for the JSONL streaming wire format."""

import io
import json

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.service.stream import (
    EVENT_KINDS,
    decision_line,
    iter_event_records,
    parse_event_record,
    records_from_events,
    sequence_records,
)
from repro.tasks.sequence import TaskSequence
from repro.tasks.task import Task
from repro.types import TaskId
from repro.workloads.generators import poisson_sequence


class TestParseEventRecord:
    def test_parses_line_and_mapping(self):
        rec = parse_event_record('{"kind": "arrival", "size": 4}')
        assert rec == {"kind": "arrival", "size": 4}
        assert parse_event_record({"kind": "departure", "id": 3})["id"] == 3

    def test_invalid_json(self):
        with pytest.raises(TraceFormatError, match="invalid event JSON"):
            parse_event_record("{nope")

    def test_non_object(self):
        with pytest.raises(TraceFormatError, match="must be a JSON object"):
            parse_event_record("[1, 2]")

    def test_unknown_kind(self):
        with pytest.raises(TraceFormatError, match="unknown event kind"):
            parse_event_record({"kind": "explode"})

    @pytest.mark.parametrize(
        "kind,field",
        [("arrival", "size"), ("departure", "id"),
         ("failure", "node"), ("repair", "node"), ("kill", "id"),
         ("resize", "op")],
    )
    def test_missing_required_field(self, kind, field):
        with pytest.raises(TraceFormatError, match=field):
            parse_event_record({"kind": kind})

    def test_every_kind_is_known(self):
        for kind in EVENT_KINDS:
            assert kind in (
                "arrival", "departure", "failure", "repair", "kill", "resize"
            )


class TestIterEventRecords:
    def test_skips_blanks_and_comments(self):
        stream = io.StringIO(
            "# a comment\n\n"
            '{"kind": "arrival", "size": 2}\n'
            "   \n"
            '{"kind": "departure", "id": 0}\n'
        )
        records = list(iter_event_records(stream))
        assert [r["kind"] for r in records] == ["arrival", "departure"]

    def test_reports_line_number(self):
        stream = io.StringIO('{"kind": "arrival", "size": 2}\n{broken\n')
        it = iter_event_records(stream)
        next(it)
        with pytest.raises(TraceFormatError, match="line 2"):
            next(it)


class TestRoundTrips:
    def test_sequence_records_cover_the_sequence(self):
        sigma = poisson_sequence(8, 20, np.random.default_rng(0))
        records = [parse_event_record(r) for r in sequence_records(sigma)]
        arrivals = [r for r in records if r["kind"] == "arrival"]
        assert len(arrivals) == sigma.num_tasks
        # Each line survives a JSON round trip unchanged.
        for rec in records:
            assert json.loads(json.dumps(rec)) == rec

    def test_never_departing_tasks_emit_no_departure(self):
        sigma = TaskSequence.from_tasks([Task(TaskId(0), 2, 0.0)])
        records = list(sequence_records(sigma))
        assert [r["kind"] for r in records] == ["arrival"]

    def test_records_from_events_round_trip(self):
        sigma = poisson_sequence(8, 15, np.random.default_rng(3))
        direct = list(sequence_records(sigma))
        via_events = records_from_events(list(sigma))
        # Same wire records either way (modulo never-departing omissions,
        # absent in this workload).
        assert via_events == direct

    def test_decision_line_is_compact_json(self):
        from repro.kernel import AllocationKernel
        from repro.machines.tree import TreeMachine
        from repro.types import NodeId

        kernel = AllocationKernel(TreeMachine(4))
        decision = kernel.apply_placed(0.0, Task(TaskId(0), 1, 0.0), NodeId(4))
        line = decision_line(decision)
        assert "\n" not in line and " " not in line
        assert json.loads(line)["kind"] == "arrival"

"""Sharded crash-resume: SIGKILL a worker or the coordinator, reconcile.

The sharded service journals one logical history across ``K + 1`` files
(coordinator + one per shard), each fsync'd on its own schedule.  A
crash can therefore leave the files at *different* durable lengths; the
reconciliation contract (:func:`repro.service.shard.reconcile_journals`)
is that reopening the cluster finds the longest hole-free global-gsn
prefix, truncates every journal to it, and resumes **bit-identically**
to a single session that absorbed exactly that prefix — under all three
fsync policies.  Same driver pattern as ``test_churn_resume.py``: the
child process dies by SIGKILL (no close, no flush), the parent reopens.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.core.registry import make_algorithm
from repro.machines.tree import TreeMachine
from repro.service import AllocationSession, sequence_records
from repro.service.shard.worker import create_process_cluster
from repro.workloads.generators import churn_sequence

SRC = str(Path(__file__).resolve().parents[2] / "src")
N = 64
SHARDS = 2

_KILL_WORKER_CHILD = textwrap.dedent(
    """
    import json, os, signal, sys

    from repro.core.registry import make_algorithm
    from repro.errors import ShardError
    from repro.machines.tree import TreeMachine
    from repro.service.shard.worker import create_process_cluster

    records_path, journal_dir, policy, cut = sys.argv[1:5]
    records = json.loads(open(records_path).read())
    machine = TreeMachine(64)
    cluster = create_process_cluster(
        machine, make_algorithm("greedy", machine, d=2.0),
        num_shards=2, journal_dir=journal_dir, fsync_policy=policy,
        snapshot_interval=16,
    )
    for record in records[: int(cut)]:
        cluster.apply(record)
    # flush() is the durability barrier: apply() pipelines frames to the
    # workers without waiting for acks, so only a flushed prefix is
    # guaranteed on disk (under every fsync policy).
    cluster.flush()
    os.kill(cluster.shards[0].process.pid, signal.SIGKILL)
    # Keep routing until the dead worker surfaces; surviving shards and
    # the coordinator journal keep absorbing events in the meantime.
    try:
        for record in records[int(cut):]:
            cluster.apply(record)
            cluster.flush()
    except ShardError:
        os.kill(os.getpid(), signal.SIGKILL)  # die too: no close, no flush
    raise SystemExit("worker death never surfaced")
    """
)

_KILL_COORDINATOR_CHILD = textwrap.dedent(
    """
    import json, os, signal, sys

    from repro.core.registry import make_algorithm
    from repro.machines.tree import TreeMachine
    from repro.service.shard.worker import create_process_cluster

    records_path, journal_dir, policy, cut = sys.argv[1:5]
    records = json.loads(open(records_path).read())
    machine = TreeMachine(64)
    cluster = create_process_cluster(
        machine, make_algorithm("greedy", machine, d=2.0),
        num_shards=2, journal_dir=journal_dir, fsync_policy=policy,
        snapshot_interval=16,
    )
    for record in records[: int(cut)]:
        cluster.apply(record)
    os.kill(os.getpid(), signal.SIGKILL)  # mid-routing: workers die with us
    """
)


def _records(tasks=150, seed=5):
    records = list(
        sequence_records(churn_sequence(N, tasks, np.random.default_rng(seed)))
    )
    # A few shard-straddling arrivals so the coordinator journal carries
    # events of its own (reconciliation must merge all K+1 files).
    out = []
    for i, record in enumerate(records):
        out.append(record)
        if i % 19 == 18:
            t = float(record["time"])
            out.append({"kind": "arrival", "time": t, "id": 10**6 + i,
                        "size": N, "work": 1.0})
            out.append({"kind": "departure", "time": t, "id": 10**6 + i})
    return out


def _oracle_after(records, count):
    machine = TreeMachine(N)
    session = AllocationSession(machine, make_algorithm("greedy", machine, d=2.0))
    for record in records[:count]:
        session.push(dict(record))
    return session


def _run_child(child_src, records, tmp_path, policy, cut):
    records_path = tmp_path / "records.json"
    records_path.write_text(json.dumps(records))
    journal_dir = tmp_path / f"cluster-{policy.replace(':', '-')}"
    # stderr goes to a file, not a pipe: worker grandchildren inherit the
    # child's stdio, and a pipe would only EOF once every orphan exits.
    stderr_path = tmp_path / f"stderr-{policy.replace(':', '-')}.txt"
    with stderr_path.open("wb") as stderr:
        proc = subprocess.run(
            [sys.executable, "-c", child_src,
             str(records_path), str(journal_dir), policy, str(cut)],
            env={**os.environ, "PYTHONPATH": SRC},
            stdout=subprocess.DEVNULL,
            stderr=stderr,
            timeout=120,
        )
    assert proc.returncode == -signal.SIGKILL, stderr_path.read_text()
    return journal_dir


def _reopen(journal_dir, policy):
    machine = TreeMachine(N)
    return create_process_cluster(
        machine, make_algorithm("greedy", machine, d=2.0),
        num_shards=SHARDS, journal_dir=journal_dir, fsync_policy=policy,
        snapshot_interval=16,
    )


@pytest.mark.parametrize("policy", ["always", "batch", "interval:20"])
def test_sigkill_worker_reconciles_durable_prefix(tmp_path, policy):
    records = _records()
    cut = len(records) // 2
    journal_dir = _run_child(_KILL_WORKER_CHILD, records, tmp_path, policy, cut)

    resumed = _reopen(journal_dir, policy)
    try:
        gsn = resumed.status()["aggregate"]["gsn"]
        # One gsn per wire event: the durable prefix is records[:gsn].
        assert 0 < gsn <= len(records)
        # The child flushed before the kill: everything up to the cut is
        # durable under every fsync policy (flush is the barrier).
        assert gsn >= cut
        oracle = _oracle_after(records, gsn)
        assert resumed.snapshot() == oracle.snapshot()
        aggregate = resumed.status()["aggregate"]
        for key, value in oracle.status().items():
            assert aggregate[key] == value, key

        # The resumed cluster is live: drive both to the end of the
        # stream and require full parity (the bit-identity contract).
        for record in records[gsn:]:
            expected = oracle.push(dict(record))
            got = resumed.apply(dict(record))
            assert expected.to_dict() == got.to_dict()
        resumed.flush()
        assert resumed.snapshot() == oracle.snapshot()
        oracle.close()
    finally:
        resumed.close()

    # Resume is idempotent: reopening again replays the same history.
    reopened = _reopen(journal_dir, policy)
    try:
        assert reopened.status()["aggregate"]["gsn"] == len(records)
    finally:
        reopened.close()


@pytest.mark.parametrize("policy", ["always", "batch"])
def test_sigkill_coordinator_reconciles_durable_prefix(tmp_path, policy):
    records = _records(tasks=100, seed=9)
    cut = (2 * len(records)) // 3
    journal_dir = _run_child(
        _KILL_COORDINATOR_CHILD, records, tmp_path, policy, cut
    )

    resumed = _reopen(journal_dir, policy)
    try:
        gsn = resumed.status()["aggregate"]["gsn"]
        assert 0 < gsn <= cut
        oracle = _oracle_after(records, gsn)
        assert resumed.snapshot() == oracle.snapshot()
        for record in records[gsn:]:
            expected = oracle.push(dict(record))
            got = resumed.apply(dict(record))
            assert expected.to_dict() == got.to_dict()
        resumed.flush()
        assert resumed.snapshot() == oracle.snapshot()
        assert resumed.status()["aggregate"]["gsn"] == len(records)
        oracle.close()
    finally:
        resumed.close()

"""Crash-resume under overload: SIGKILL with arrivals waiting in the
admission queue, every fsync policy.

The SLO twist on tests/service/test_churn_resume.py: the journaled
session runs behind an admission gate tight enough that a flash-crowd
storm fills the FIFO queue, then the process is SIGKILLed with tasks
still waiting (the riskiest state — queued arrivals exist only as
``"slo"``-marked journal records, never in kernel placements).  The
resumed session must reproduce the queue contents, every admission
decision, and the final metrics bit-identically against an uninterrupted
reference under all three fsync policies.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
from collections import Counter
from pathlib import Path

import pytest

from repro.core.registry import make_algorithm
from repro.machines.tree import TreeMachine
from repro.scenarios import ChurnProcess
from repro.service import AllocationSession, SLOPolicy
from repro.service.stream import records_from_events

SRC = str(Path(__file__).resolve().parents[2] / "src")

TARGET = 2.0
QUEUE = 8

_CHILD = textwrap.dedent(
    """
    import json, os, signal, sys

    from repro.core.registry import make_algorithm
    from repro.machines.tree import TreeMachine
    from repro.service import AllocationSession, SLOPolicy

    records_path, journal, policy, cut = sys.argv[1:5]
    records = json.loads(open(records_path).read())
    machine = TreeMachine(16)
    slo = SLOPolicy(slowdown_target=%(target)r, queue_capacity=%(queue)d)
    session = AllocationSession(
        machine,
        make_algorithm("greedy", machine, d=2.0, load_target=slo.load_target),
        fault_tolerant=True, journal_path=journal,
        snapshot_interval=8, fsync_policy=policy, slo=slo,
    )
    for record in records[: int(cut)]:
        session.offer(record)
    assert session.status()["queued_tasks"] > 0, "cut missed the queue"
    os.kill(os.getpid(), signal.SIGKILL)  # no close(), no flush()
    """
    % {"target": TARGET, "queue": QUEUE}
)


def _records():
    scenario = ChurnProcess(
        num_pes=16, seed=21, horizon=30.0, task_rate=1.5,
        pe_mttf=12.0, mttr=2.5, kill_rate=0.08,
        storm_rate=0.4, storm_depth=8,
    ).build()
    return records_from_events(list(scenario.merged_events()))


def _session(journal_path=None, policy="always"):
    machine = TreeMachine(16)
    slo = SLOPolicy(slowdown_target=TARGET, queue_capacity=QUEUE)
    return AllocationSession(
        machine,
        make_algorithm("greedy", machine, d=2.0, load_target=slo.load_target),
        fault_tolerant=True, journal_path=journal_path,
        snapshot_interval=8, fsync_policy=policy, slo=slo,
    )


def _queued_cut(records):
    """An offer index at which the admission queue is non-empty, inside
    the biggest same-timestamp arrival storm."""
    arrivals = [r["time"] for r in records if r["kind"] == "arrival"]
    storm_time, depth = Counter(arrivals).most_common(1)[0]
    assert depth >= 4, "scenario has no storm to die inside"
    first = next(
        i for i, r in enumerate(records)
        if r["kind"] == "arrival" and r["time"] == storm_time
    )
    probe = _session()
    for i, record in enumerate(records):
        probe.offer(record)
        if i >= first and probe.status()["queued_tasks"] > 0:
            return i + 1
    pytest.fail("admission queue never filled during the storm")


@pytest.mark.parametrize("policy", ["always", "batch", "interval:20"])
def test_sigkill_with_queued_arrivals_resumes_bit_identically(
    tmp_path, policy
):
    records = _records()
    cut = _queued_cut(records)

    reference = _session()
    ref_verdicts = [reference.offer(r).verdict for r in records]

    records_path = tmp_path / "records.json"
    records_path.write_text(json.dumps(records))
    journal = tmp_path / f"overload-{policy.replace(':', '-')}.journal"
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD,
         str(records_path), str(journal), policy, str(cut)],
        env={**os.environ, "PYTHONPATH": SRC},
        capture_output=True,
        timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()
    assert journal.exists()

    resumed = _session(journal_path=journal, policy=policy)
    # Durability contract: committed offers survive; batch/interval may
    # lose an uncommitted tail, never more than that.  The resume cursor
    # is num_offers — queued and rejected records consumed wire input
    # without becoming kernel events.
    assert resumed.num_offers <= cut
    if policy == "always":
        assert resumed.num_offers == cut
        # The queue contents the child saw survived the SIGKILL verbatim.
        assert resumed.status()["queued_tasks"] > 0
    got_verdicts = [
        resumed.offer(r).verdict for r in records[resumed.num_offers:]
    ]
    resumed.flush()

    # Every post-resume admission decision matches the uninterrupted run.
    assert got_verdicts == ref_verdicts[len(records) - len(got_verdicts):]
    assert resumed.num_offers == reference.num_offers
    assert resumed.admission_queue() == reference.admission_queue()
    assert resumed.status() == reference.status()
    assert (
        resumed.kernel.metrics.to_state() == reference.kernel.metrics.to_state()
    )
    assert resumed.snapshot() == reference.snapshot()
    assert resumed.placements == reference.placements
    resumed.close()

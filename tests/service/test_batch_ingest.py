"""Batched ingest through the service layer: push_batch + group commit.

Three contracts: (1) ``push_batch`` is bit-identical to per-event
``push`` — decisions, kernel state, journal resumability; (2) a batch
that fails part-way applies and journals exactly the per-event prefix;
(3) under every fsync policy, a SIGKILLed session resumes to identical
final metrics after replaying the lost tail, losing at most the records
since the last commit — one uncommitted batch.
"""

import hashlib
import json
import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.core.registry import make_algorithm
from repro.errors import BatchError
from repro.machines.tree import TreeMachine
from repro.service import AllocationSession, sequence_records
from repro.workloads.generators import churn_sequence, poisson_sequence


def _digest(state) -> str:
    return hashlib.sha256(
        json.dumps(state, sort_keys=True, default=repr).encode()
    ).hexdigest()


def _session(n=8, name="greedy", **kw):
    machine = TreeMachine(n)
    return AllocationSession(machine, make_algorithm(name, machine, d=2.0), **kw)


def _records(n=8, tasks=30, seed=0, generator=poisson_sequence):
    sigma = generator(n, tasks, np.random.default_rng(seed))
    return list(sequence_records(sigma))


def _chunks(items, rng):
    out, i = [], 0
    while i < len(items):
        k = int(rng.integers(1, 9))
        out.append(items[i : i + k])
        i += k
    return out


class TestPushBatchEquivalence:
    @pytest.mark.parametrize("name", ["greedy", "periodic"])
    def test_matches_per_event_push(self, name):
        records = _records(tasks=40, seed=3, generator=churn_sequence)
        serial = _session(name=name)
        expected = [serial.push(rec) for rec in records]
        batched = _session(name=name)
        got = []
        for chunk in _chunks(records, np.random.default_rng(3)):
            got.extend(batched.push_batch(chunk).decisions)
        assert got == expected
        assert _digest(batched.snapshot()) == _digest(serial.snapshot())
        assert batched.status() == serial.status()
        assert batched.now == serial.now
        assert batched._next_task_id == serial._next_task_id

    def test_auto_clock_and_ids_match(self):
        """Records without time/id get the same assignments either way."""
        bare = [{"kind": "arrival", "size": 2} for _ in range(6)]
        bare += [{"kind": "departure", "id": i} for i in range(3)]
        serial = _session()
        expected = [serial.push(dict(rec)) for rec in bare]
        batched = _session()
        got = list(batched.push_batch(bare).decisions)
        got += list(batched.push_batch([]).decisions)  # empty batch: no-op
        assert got == expected
        assert _digest(batched.snapshot()) == _digest(serial.snapshot())

    def test_batched_journal_resumes_identically(self, tmp_path):
        records = _records(tasks=30, seed=7)
        reference = _session()
        for rec in records:
            reference.push(rec)

        journal = tmp_path / "batched.journal"
        writer = _session(
            journal_path=journal, snapshot_interval=4, fsync_policy="batch"
        )
        for chunk in _chunks(records, np.random.default_rng(7)):
            writer.push_batch(chunk)
        writer.close()

        resumed = _session(journal_path=journal, snapshot_interval=4)
        assert resumed.num_events == len(records)
        assert _digest(resumed.snapshot()) == _digest(reference.snapshot())
        assert resumed.kernel.metrics.to_state() == reference.kernel.metrics.to_state()

    def test_fault_records_in_batches(self):
        serial = _session(fault_tolerant=True)
        batched = _session(fault_tolerant=True)
        script = [
            {"kind": "arrival", "size": 2, "id": 0},
            {"kind": "arrival", "size": 2, "id": 1},
            {"kind": "failure", "node": 4},
            {"kind": "kill", "id": 0},
            {"kind": "repair", "node": 4},
        ]
        expected = [serial.push(dict(rec)) for rec in script]
        got = list(batched.push_batch(script).decisions)
        assert got == expected
        assert _digest(batched.snapshot()) == _digest(serial.snapshot())


class TestPushBatchFailure:
    def test_invalid_record_applies_prefix(self, tmp_path):
        records = _records(tasks=10, seed=1)
        k = 4
        batch = records[:k] + [{"kind": "nonsense"}] + records[k:]

        serial = _session()
        for rec in records[:k]:
            serial.push(rec)

        journal = tmp_path / "fail.journal"
        batched = _session(journal_path=journal, fsync_policy="batch")
        with pytest.raises(BatchError) as info:
            batched.push_batch(batch)
        assert info.value.applied == k
        assert len(info.value.decisions) == k
        assert _digest(batched.snapshot()) == _digest(serial.snapshot())
        batched.close()
        # The journaled prefix is replayable.
        resumed = _session(journal_path=journal)
        assert resumed.num_events == k
        assert _digest(resumed.snapshot()) == _digest(serial.snapshot())

    def test_kernel_rejection_applies_prefix(self):
        serial = _session()
        serial.push({"kind": "arrival", "size": 2, "id": 0})
        batched = _session()
        with pytest.raises(BatchError) as info:
            batched.push_batch(
                [
                    {"kind": "arrival", "size": 2, "id": 0},
                    {"kind": "departure", "id": 42},  # unknown task
                    {"kind": "arrival", "size": 2, "id": 1},
                ]
            )
        assert info.value.applied == 1
        assert _digest(batched.snapshot()) == _digest(serial.snapshot())


_KILL_CHILD = textwrap.dedent(
    """
    import json, os, signal, sys

    import numpy as np

    from repro.core.registry import make_algorithm
    from repro.machines.tree import TreeMachine
    from repro.service import AllocationSession

    journal, policy, records_path, committed = sys.argv[1:5]
    records = json.loads(open(records_path).read())
    committed = int(committed)
    machine = TreeMachine(8)
    session = AllocationSession(
        machine,
        make_algorithm("greedy", machine, d=2.0),
        journal_path=journal,
        snapshot_interval=4,
        fsync_policy=policy,
    )
    for i in range(0, committed, 5):
        session.push_batch(records[i : i + 5])
    session.flush()  # commit point: everything before here must survive
    print("READY", flush=True)
    for rec in records[committed:]:
        session.push(rec)  # uncommitted tail — fair game for the crash
    os.kill(os.getpid(), signal.SIGKILL)
    """
)


class TestKillResumeEveryPolicy:
    @pytest.mark.parametrize(
        "policy", ["always", "batch", "interval:3600000"]
    )
    def test_sigkill_loses_at_most_uncommitted_tail(self, tmp_path, policy):
        records = _records(tasks=25, seed=13)
        committed = 15
        reference = _session()
        for rec in records:
            reference.push(rec)

        records_path = tmp_path / "records.json"
        records_path.write_text(json.dumps(records))
        journal = tmp_path / "killed.journal"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(_repo_src()), env.get("PYTHONPATH")) if p
        )
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                _KILL_CHILD,
                str(journal),
                policy,
                str(records_path),
                str(committed),
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        assert "READY" in proc.stdout

        with pytest.warns(UserWarning) if _has_partial_tail(journal) else _noop():
            resumed = _session(
                journal_path=journal, snapshot_interval=4, fsync_policy=policy
            )
        # Loss window: everything up to the last flush() survived; at most
        # the uncommitted tail (one batch) is gone.
        assert committed <= resumed.num_events <= len(records)
        for rec in records[resumed.num_events:]:
            resumed.push(rec)
        assert _digest(resumed.snapshot()) == _digest(reference.snapshot())
        assert resumed.kernel.metrics.to_state() == reference.kernel.metrics.to_state()


def _repo_src():
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _has_partial_tail(journal) -> bool:
    from repro.sim.frames import JOURNAL_MAGIC, scan_frames

    data = journal.read_bytes()
    if data.startswith(JOURNAL_MAGIC):
        _frames, good_end, reason = scan_frames(data, len(JOURNAL_MAGIC))
        return reason is not None and good_end < len(data)
    text = data.decode("utf-8")
    return bool(text) and not text.endswith("\n")


def _noop():
    import contextlib

    return contextlib.nullcontext()

"""Journal format v2 torture tests: frames, deltas, negotiation, kills.

The binary journal's contracts, attacked one at a time: a torn tail or
flipped CRC byte must surrender exactly the intact prefix with a
warning; a v1 journal reopened by v2-default code must stay v1 and
resume bit-identically; tampered records must fail the delta-digest
check; and a SIGKILL landing *inside a delta-snapshot window* (after a
delta rider, before the next full snapshot) must resume to the same
final state as an uninterrupted run under every fsync policy.
"""

import hashlib
import json
import os
import pickle
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.core.registry import make_algorithm
from repro.errors import CheckpointError
from repro.machines.tree import TreeMachine
from repro.service import AllocationSession, sequence_records
from repro.sim.frames import (
    JOURNAL_MAGIC,
    frame_bytes,
    iter_journal_payloads,
    scan_frames,
)
from repro.workloads.generators import poisson_sequence

SNAP, FULL = 4, 16


def _digest(state) -> str:
    return hashlib.sha256(
        json.dumps(state, sort_keys=True, default=repr).encode()
    ).hexdigest()


def _session(n=8, name="greedy", **kw):
    machine = TreeMachine(n)
    kw.setdefault("snapshot_interval", SNAP)
    kw.setdefault("full_snapshot_interval", FULL)
    return AllocationSession(machine, make_algorithm(name, machine, d=2.0), **kw)


def _records(n=8, tasks=30, seed=0):
    sigma = poisson_sequence(n, tasks, np.random.default_rng(seed))
    return list(sequence_records(sigma))


def _fill(journal, records, batch=5, **kw):
    session = _session(journal_path=journal, fsync_policy="batch", **kw)
    for i in range(0, len(records), batch):
        session.push_batch([dict(r) for r in records[i : i + batch]])
    session.close()
    return session


class TestFormatLayout:
    def test_v2_journal_is_framed_binary(self, tmp_path):
        journal = tmp_path / "s.journal"
        _fill(journal, _records(tasks=40, seed=1))
        data = journal.read_bytes()
        assert data.startswith(JOURNAL_MAGIC)
        _frames, good_end, reason = scan_frames(data, len(JOURNAL_MAGIC))
        assert reason is None and good_end == len(data)

    def test_delta_riders_between_full_snapshots(self, tmp_path):
        journal = tmp_path / "s.journal"
        _fill(journal, _records(tasks=40, seed=1))
        payloads = dict(iter_journal_payloads(journal))
        fulls = [i for i, p in payloads.items() if "snapshot" in p]
        deltas = [i for i, p in payloads.items() if "delta" in p]
        assert fulls and deltas
        # Full snapshots land only on full-interval crossings; deltas fill
        # the snapshot-interval crossings in between, and never coincide.
        assert not set(fulls) & set(deltas)
        assert len(deltas) > len(fulls)  # most crossings are cheap deltas

    def test_v1_requested_stays_jsonl(self, tmp_path):
        journal = tmp_path / "s.journal"
        _fill(journal, _records(tasks=10, seed=2), journal_format="v1")
        text = journal.read_text()
        assert text.startswith("{")
        # v1 raw-JSON records: plain payloads keep their JSON shape
        # instead of the old pickle+base64 double encoding.
        body = text.splitlines()[1:]
        assert any('"json"' in line for line in body)
        assert not any('"data"' in line for line in body)


class TestFormatNegotiation:
    def test_v1_reopened_by_v2_default_stays_v1(self, tmp_path):
        records = _records(tasks=30, seed=3)
        cut = len(records) // 2
        reference = _session()
        for rec in records:
            reference.push(rec)

        journal = tmp_path / "old.journal"
        _fill(journal, records[:cut], journal_format="v1")

        resumed = _session(journal_path=journal)  # journal_format="v2"
        assert resumed.num_events == cut
        for rec in records[cut:]:
            resumed.push(rec)
        resumed.close()
        assert _digest(resumed.snapshot()) == _digest(reference.snapshot())
        # The appended tail is still JSONL — a journal never mixes formats.
        assert not journal.read_bytes().startswith(JOURNAL_MAGIC)
        assert journal.read_text().endswith("\n")

    def test_v2_reopened_with_v1_request_stays_v2(self, tmp_path):
        records = _records(tasks=20, seed=4)
        journal = tmp_path / "new.journal"
        _fill(journal, records)
        resumed = _session(journal_path=journal, journal_format="v1")
        assert resumed.num_events == len(records)
        resumed.submit(2)
        resumed.close()
        data = journal.read_bytes()
        assert data.startswith(JOURNAL_MAGIC)
        _frames, _end, reason = scan_frames(data, len(JOURNAL_MAGIC))
        assert reason is None


class TestCorruptTails:
    def _filled(self, tmp_path, tasks=40):
        journal = tmp_path / "s.journal"
        records = _records(tasks=tasks, seed=5)
        _fill(journal, records)
        reference = _session()
        for rec in records:
            reference.push(rec)
        return journal, records, reference

    @staticmethod
    def _last_batch_frame(data):
        frames, _end, _r = scan_frames(data, len(JOURNAL_MAGIC))
        batches = [f for f in frames if f[0] == 4]  # FRAME_BATCH
        return batches[-1]

    def _recovers(self, journal, records, reference, match):
        with pytest.warns(UserWarning, match=match):
            resumed = _session(journal_path=journal, fsync_policy="batch")
        survived = resumed.num_events
        assert survived < len(records)  # the lost batch really is lost
        for rec in records[survived:]:
            resumed.push(rec)
        assert _digest(resumed.snapshot()) == _digest(reference.snapshot())
        assert (
            resumed.kernel.metrics.to_state() == reference.kernel.metrics.to_state()
        )
        resumed.close()

    def test_torn_tail_mid_frame(self, tmp_path):
        journal, records, reference = self._filled(tmp_path)
        data = journal.read_bytes()
        _k, payload, start = self._last_batch_frame(data)
        journal.write_bytes(data[: start + 9 + len(payload) // 2])
        self._recovers(journal, records, reference, "torn payload")

    def test_truncated_length_prefix(self, tmp_path):
        journal, records, reference = self._filled(tmp_path)
        data = journal.read_bytes()
        _k, _payload, start = self._last_batch_frame(data)
        journal.write_bytes(data[: start + 4])  # 4 bytes of its header
        self._recovers(journal, records, reference, "truncated header")

    def test_corrupted_crc_byte(self, tmp_path):
        journal, records, reference = self._filled(tmp_path)
        data = bytearray(journal.read_bytes())
        _k, _payload, start = self._last_batch_frame(bytes(data))
        data[start + 9] ^= 0x40  # flip one payload byte: CRC fails
        journal.write_bytes(bytes(data))
        self._recovers(journal, records, reference, "crc mismatch")


class TestTamperDetection:
    def test_tampered_record_fails_the_delta_check(self, tmp_path):
        """Rewriting an event (with a *valid* CRC) still cannot forge
        history: replay diverges from the journaled delta digest."""
        journal = tmp_path / "s.journal"
        session = _session(
            journal_path=journal, snapshot_interval=2, full_snapshot_interval=64
        )
        for rec in _records(tasks=12, seed=6):
            session.push(rec)
        session.close()

        data = journal.read_bytes()
        frames, _end, _r = scan_frames(data, len(JOURNAL_MAGIC))
        out = bytearray(JOURNAL_MAGIC)
        tampered = False
        for kind, payload, _pos in frames:
            if kind == 3 and not tampered:  # FRAME_PICKLE
                index, value = pickle.loads(payload)
                rec = value.get("record", {}) if isinstance(value, dict) else {}
                if rec.get("kind") == "arrival":
                    rec["size"] = max(1, rec["size"] // 2)
                    payload = pickle.dumps((index, value))
                    tampered = True
            out += frame_bytes(kind, payload)
        assert tampered
        journal.write_bytes(bytes(out))
        with pytest.raises(CheckpointError, match="diverges from the"):
            _session(
                journal_path=journal, snapshot_interval=2,
                full_snapshot_interval=64,
            )


_KILL_CHILD = textwrap.dedent(
    """
    import json, os, signal, sys

    from repro.core.registry import make_algorithm
    from repro.machines.tree import TreeMachine
    from repro.service import AllocationSession

    journal, policy, records_path, committed = sys.argv[1:5]
    records = json.loads(open(records_path).read())
    committed = int(committed)
    machine = TreeMachine(8)
    session = AllocationSession(
        machine,
        make_algorithm("greedy", machine, d=2.0),
        journal_path=journal,
        snapshot_interval=4,
        full_snapshot_interval=16,
        fsync_policy=policy,
    )
    for i in range(0, committed, 5):
        session.push_batch(records[i : i + 5])
    session.flush()  # commit point: everything before here must survive
    print("READY", flush=True)
    for rec in records[committed:]:
        session.push(rec)  # uncommitted tail — fair game for the crash
    os.kill(os.getpid(), signal.SIGKILL)
    """
)


class TestKillInsideDeltaWindow:
    """SIGKILL with the last full snapshot 9 events stale.

    ``committed=25`` of a 29-event stream with ``snapshot_interval=4``
    and ``full_snapshot_interval=16``: the last full snapshot rides the
    batch that crosses event 16, the last delta rides event 24, and the
    stream *ends* before the next full crossing — so wherever in
    ``[25, 29]`` the surviving journal stops (lazier fsync policies can
    leak OS-buffered tail writes past the kill), the crash lands
    mid-delta-window and resume must replay through the delta digest.
    """

    @pytest.mark.parametrize("policy", ["always", "batch", "interval:3600000"])
    def test_resumes_bit_identically(self, tmp_path, policy):
        records = _records(tasks=35, seed=7)[:29]
        committed = 25
        reference = _session()
        for rec in records:
            reference.push(rec)

        records_path = tmp_path / "records.json"
        records_path.write_text(json.dumps(records))
        journal = tmp_path / "killed.journal"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(_repo_src()), env.get("PYTHONPATH")) if p
        )
        proc = subprocess.run(
            [sys.executable, "-c", _KILL_CHILD, str(journal), policy,
             str(records_path), str(committed)],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        assert "READY" in proc.stdout

        # The surviving journal really is mid-window: a delta rider comes
        # after the last full snapshot.
        payloads = dict(iter_journal_payloads(journal))
        fulls = [i for i, p in payloads.items() if "snapshot" in p]
        deltas = [i for i, p in payloads.items() if "delta" in p]
        assert fulls and deltas and max(deltas) > max(fulls)

        with pytest.warns(UserWarning) if _has_partial_tail(journal) else _noop():
            resumed = _session(journal_path=journal, fsync_policy=policy)
        assert committed <= resumed.num_events <= len(records)
        for rec in records[resumed.num_events:]:
            resumed.push(rec)
        assert _digest(resumed.snapshot()) == _digest(reference.snapshot())
        assert (
            resumed.kernel.metrics.to_state() == reference.kernel.metrics.to_state()
        )


def _repo_src():
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _has_partial_tail(journal) -> bool:
    data = journal.read_bytes()
    if data.startswith(JOURNAL_MAGIC):
        _frames, good_end, reason = scan_frames(data, len(JOURNAL_MAGIC))
        return reason is not None and good_end < len(data)
    text = data.decode("utf-8")
    return bool(text) and not text.endswith("\n")


def _noop():
    import contextlib

    return contextlib.nullcontext()

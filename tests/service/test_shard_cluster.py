"""Sharded coordinator vs. one session: bit-identity and the contract.

The referee (:mod:`repro.verify.sharding`) fuzzes this at scale; these
tests pin the individual contract points — per-event parity, the batch
path, cross-shard routing, SLO admission, the reallocation gate, and the
unroutable-kind refusals.
"""

import numpy as np
import pytest

from repro.core.registry import make_algorithm
from repro.errors import ShardError, SimulationError
from repro.machines.tree import TreeMachine
from repro.service import AllocationSession, SLOPolicy, sequence_records
from repro.service.shard import ShardedCoordinator
from repro.service.shard.coordinator import COORDINATOR_OWNED
from repro.workloads.generators import churn_sequence

N = 64


def _records(tasks=120, seed=3, wide_every=7):
    """Churn plus periodic shard-straddling arrivals (size N/2 and N)."""
    records = list(
        sequence_records(churn_sequence(N, tasks, np.random.default_rng(seed)))
    )
    out = []
    next_wide = 10**6
    t = 0.0
    for i, record in enumerate(records):
        t = max(t, float(record["time"]))
        out.append(record)
        if i % wide_every == wide_every - 1:
            out.append(
                {"kind": "arrival", "time": t, "id": next_wide,
                 "size": N // 2 if i % 2 else N, "work": 1.0}
            )
            out.append({"kind": "departure", "time": t, "id": next_wide})
            next_wide += 1
    return out


def _oracle(slo=None):
    machine = TreeMachine(N)
    return AllocationSession(
        machine, make_algorithm("greedy", machine, d=2.0), slo=slo
    )


def _cluster(num_shards=4, slo=None, **kwargs):
    machine = TreeMachine(N)
    return ShardedCoordinator.create_local(
        machine,
        make_algorithm("greedy", machine, d=2.0),
        num_shards=num_shards,
        slo=slo,
        **kwargs,
    )


class TestParity:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_per_event_decisions_match(self, num_shards):
        oracle, cluster = _oracle(), _cluster(num_shards)
        cross = 0
        for record in _records():
            expected = oracle.push(dict(record))
            got = cluster.apply(dict(record))
            assert expected.to_dict() == got.to_dict()
            if (
                record["kind"] == "arrival"
                and record["size"] > N // num_shards
            ):
                cross += 1
        assert cross > 0 or num_shards == 1
        assert oracle.snapshot() == cluster.snapshot()
        oracle.close(), cluster.close()

    def test_batch_path_matches_per_event_oracle(self):
        oracle, cluster = _oracle(), _cluster(4)
        records = _records()
        expected = [oracle.push(dict(r)) for r in records]
        got = []
        for i in range(0, len(records), 32):
            got.extend(cluster.apply_batch(records[i : i + 32]).decisions)
        assert [d.to_dict() for d in expected] == [d.to_dict() for d in got]
        oracle.close(), cluster.close()

    def test_status_aggregate_matches_oracle(self):
        oracle, cluster = _oracle(), _cluster(4)
        for record in _records(tasks=60):
            oracle.push(dict(record))
            cluster.apply(dict(record))
        status = cluster.status()
        aggregate = status["aggregate"]
        for key, value in oracle.status().items():
            assert aggregate[key] == value, key
        assert aggregate["shards"] == 4
        assert len(status["shards"]) == 4
        assert aggregate["gsn"] == oracle.num_events
        oracle.close(), cluster.close()

    def test_cross_shard_tasks_are_coordinator_owned(self):
        cluster = _cluster(4)
        cluster.apply({"kind": "arrival", "time": 0.0, "id": 7, "size": N})
        assert cluster._owner[7] == COORDINATOR_OWNED
        assert cluster.status()["aggregate"]["cross_shard_tasks"] == 1
        # No shard holds it; departures still route correctly.
        assert all(7 not in h.placements() for h in cluster.shards)
        cluster.apply({"kind": "departure", "time": 1.0, "id": 7})
        assert cluster.status()["aggregate"]["cross_shard_tasks"] == 0
        cluster.close()

    def test_merged_shard_placements_lift_to_oracle(self):
        oracle, cluster = _oracle(), _cluster(4)
        for record in _records(tasks=80):
            oracle.push(dict(record))
            cluster.apply(dict(record))
        merged = {}
        for handle in cluster.shards:
            for tid, local in handle.placements().items():
                merged[tid] = int(cluster.plan.to_global(local, handle.index))
        cross = {
            tid for tid, owner in cluster._owner.items()
            if owner == COORDINATOR_OWNED
        }
        expected = {
            int(tid): int(node)
            for tid, node in oracle.placements.items()
            if int(tid) not in cross
        }
        assert merged == expected
        oracle.close(), cluster.close()


class TestSLO:
    def test_admission_outcomes_match_oracle(self):
        policy = SLOPolicy(slowdown_target=1.5, queue_capacity=8)
        oracle, cluster = _oracle(slo=policy), _cluster(4, slo=policy)
        kinds = []
        for record in _records(tasks=100, seed=11):
            expected = oracle.offer(dict(record))
            got = cluster.apply(dict(record))
            assert type(expected) is type(got)
            assert expected.record == got.record
            kinds.append(type(got).__name__)
        # The tight policy must actually exercise queueing/rejection.
        assert {"Admit", "Queue"} <= set(kinds) or "Reject" in kinds
        assert oracle.status() == {
            k: v for k, v in cluster.status()["aggregate"].items()
            if k in oracle.status()
        }
        oracle.close(), cluster.close()


class TestContract:
    def test_reallocating_algorithm_refused(self):
        machine = TreeMachine(N)
        with pytest.raises(SimulationError, match="reallocat"):
            ShardedCoordinator.create_local(
                machine,
                make_algorithm("optimal", machine, d=2.0),
                num_shards=4,
            )

    def test_unroutable_kinds_refused(self):
        cluster = _cluster(2)
        for kind in ("failure", "repair", "resize"):
            with pytest.raises(SimulationError, match="not routable"):
                cluster.apply({"kind": kind, "time": 0.0, "node": 1, "op": "grow"})
        cluster.close()

    def test_close_is_idempotent(self):
        cluster = _cluster(2)
        cluster.apply({"kind": "arrival", "time": 0.0, "id": 0, "size": 1})
        cluster.close()
        cluster.close()

    def test_metrics_include_rate_and_shards(self):
        cluster = _cluster(2)
        cluster.apply({"kind": "arrival", "time": 0.0, "id": 0, "size": 1})
        full = cluster.metrics()
        assert "events_per_second" in full["aggregate"]
        assert len(full["shards"]) == 2
        cluster.close()


class TestProcessCluster:
    def test_process_workers_match_local(self, tmp_path):
        from repro.service.shard.worker import create_process_cluster

        machine = TreeMachine(N)
        cluster = create_process_cluster(
            machine,
            make_algorithm("greedy", machine, d=2.0),
            num_shards=2,
            journal_dir=tmp_path / "cluster",
            fsync_policy="batch",
        )
        oracle = _oracle()
        try:
            records = _records(tasks=60)
            for i in range(0, len(records), 16):
                chunk = records[i : i + 16]
                expected = [oracle.push(dict(r)) for r in chunk]
                got = cluster.apply_batch(chunk).decisions
                assert [d.to_dict() for d in expected] == [
                    d.to_dict() for d in got
                ]
            cluster.flush()
            assert oracle.snapshot() == cluster.snapshot()
        finally:
            oracle.close()
            cluster.close()

    def test_dead_worker_raises_shard_error(self, tmp_path):
        from repro.service.shard.worker import create_process_cluster

        machine = TreeMachine(N)
        cluster = create_process_cluster(
            machine,
            make_algorithm("greedy", machine, d=2.0),
            num_shards=2,
            journal_dir=tmp_path / "cluster",
        )
        try:
            cluster.shards[0].process.kill()
            cluster.shards[0].process.join()
            with pytest.raises(ShardError, match="died|gone"):
                for i in range(200):
                    cluster.apply(
                        {"kind": "arrival", "time": float(i), "id": i, "size": 1}
                    )
                    cluster.flush()
        finally:
            cluster.close()

"""Asyncio socket front-end: protocol, errors, scrape, sharded backend.

Each test spins up a real :class:`~repro.service.shard.server.ServiceServer`
on an ephemeral port inside ``asyncio.run`` and talks to it over a plain
socket — the same wire a ``repro serve --listen`` client sees.
"""

import asyncio
import json

from repro.core.registry import make_algorithm
from repro.machines.tree import TreeMachine
from repro.service import AllocationSession, parse_exposition
from repro.service.shard import ShardedCoordinator
from repro.service.shard.server import ServiceServer

N = 64


def _session_backend():
    machine = TreeMachine(N)
    return AllocationSession(machine, make_algorithm("greedy", machine, d=2.0))


def _sharded_backend(num_shards=2):
    machine = TreeMachine(N)
    return ShardedCoordinator.create_local(
        machine, make_algorithm("greedy", machine, d=2.0), num_shards=num_shards
    )


async def _roundtrip(server, lines):
    """Send ``lines`` to a started server, return every reply line."""
    host, port = await server.start()
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for line in lines:
            writer.write(line.encode() + b"\n")
        await writer.drain()
        writer.write_eof()
        replies = []
        while True:
            raw = await asyncio.wait_for(reader.readline(), timeout=10)
            if not raw:
                return replies
            replies.append(json.loads(raw))
    finally:
        writer.close()
        await server.close()


def _serve(backend, lines, **kwargs):
    async def scenario():
        server = ServiceServer(backend, **kwargs)
        try:
            return await _roundtrip(server, lines)
        finally:
            backend.close()

    return asyncio.run(scenario())


class TestEventStream:
    def test_decisions_match_oracle(self):
        records = [
            {"kind": "arrival", "time": 0.0, "id": 0, "size": 4},
            {"kind": "arrival", "time": 1.0, "id": 1, "size": N},
            {"kind": "departure", "time": 2.0, "id": 0},
        ]
        oracle = _session_backend()
        expected = [oracle.push(dict(r)).to_dict() for r in records]
        oracle.close()
        replies = _serve(
            _sharded_backend(), [json.dumps(r) for r in records]
        )
        assert replies == expected

    def test_blank_and_comment_lines_skipped(self):
        replies = _serve(
            _sharded_backend(),
            ["", "# comment",
             json.dumps({"kind": "arrival", "time": 0.0, "id": 0, "size": 1})],
        )
        assert len(replies) == 1 and replies[0]["task_id"] == 0

    def test_status_and_snapshot_ops(self):
        replies = _serve(
            _sharded_backend(),
            [json.dumps({"kind": "arrival", "time": 0.0, "id": 0, "size": 1}),
             json.dumps({"op": "status"})],
        )
        assert replies[1]["aggregate"]["events"] == 1
        assert replies[1]["aggregate"]["shards"] == 2


class TestStructuredErrors:
    def test_unroutable_kind_names_the_op(self):
        replies = _serve(
            _sharded_backend(),
            [json.dumps({"kind": "failure", "time": 0.0, "node": 1})],
        )
        assert replies == [
            {"error": replies[0]["error"], "op": "failure", "line": 1}
        ]
        assert "not routable" in replies[0]["error"]

    def test_unknown_op_names_the_op_and_line(self):
        replies = _serve(
            _sharded_backend(),
            ["# leading comment", json.dumps({"op": "explode"})],
        )
        assert replies[0]["op"] == "explode"
        assert replies[0]["line"] == 2

    def test_invalid_json_reports_line(self):
        replies = _serve(_sharded_backend(), ["{not json"])
        assert replies[0]["op"] is None
        assert replies[0]["line"] == 1
        assert "invalid JSON" in replies[0]["error"]

    def test_single_session_backend_same_protocol(self):
        replies = _serve(
            _session_backend(),
            [json.dumps({"kind": "arrival", "time": 0.0, "id": 0, "size": 2}),
             json.dumps({"kind": "bogus", "time": 0.0})],
        )
        assert replies[0]["task_id"] == 0
        assert replies[1]["op"] == "bogus" and replies[1]["line"] == 2


class TestMetrics:
    def test_metrics_op_returns_exposition(self):
        replies = _serve(
            _sharded_backend(),
            [json.dumps({"kind": "arrival", "time": 0.0, "id": 0, "size": 1}),
             json.dumps({"op": "metrics"})],
        )
        samples = parse_exposition(replies[1]["metrics"])
        by_name = {(s.name, s.labels): s.value for s in samples}
        assert by_name[("repro_events_total", ())] == 1.0
        assert by_name[("repro_shards", ())] == 2.0
        assert ("repro_shard_events_total", (("shard", "0"),)) in by_name

    def test_http_scrape(self):
        async def scenario():
            backend = _sharded_backend()
            server = ServiceServer(backend, metrics_port=0)
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                json.dumps(
                    {"kind": "arrival", "time": 0.0, "id": 0, "size": 1}
                ).encode() + b"\n"
            )
            await writer.drain()
            await asyncio.wait_for(reader.readline(), timeout=10)

            mhost, mport = server.metrics_address
            sreader, swriter = await asyncio.open_connection(mhost, mport)
            swriter.write(b"GET /metrics HTTP/1.0\r\n\r\n")
            await swriter.drain()
            payload = await asyncio.wait_for(sreader.read(), timeout=10)
            swriter.close()
            writer.close()
            await server.close()
            backend.close()
            return payload.decode()

        page = asyncio.run(scenario())
        head, _, body = page.partition("\r\n\r\n")
        assert head.startswith("HTTP/1.0 200 OK")
        assert "text/plain" in head
        names = {s.name for s in parse_exposition(body)}
        assert "repro_events_total" in names

    def test_scrape_rejects_non_get(self):
        async def scenario():
            backend = _sharded_backend()
            server = ServiceServer(backend, metrics_port=0)
            await server.start()
            mhost, mport = server.metrics_address
            reader, writer = await asyncio.open_connection(mhost, mport)
            writer.write(b"POST /metrics HTTP/1.0\r\n\r\n")
            await writer.drain()
            reply = await asyncio.wait_for(reader.read(), timeout=10)
            writer.close()
            await server.close()
            backend.close()
            return reply.decode()

        assert asyncio.run(scenario()).startswith("HTTP/1.0 405")


class TestConcurrentClients:
    def test_interleaved_clients_share_one_history(self):
        async def scenario():
            backend = _sharded_backend()
            server = ServiceServer(backend)
            host, port = await server.start()

            async def client(base):
                reader, writer = await asyncio.open_connection(host, port)
                decisions = []
                for i in range(20):
                    writer.write(
                        json.dumps(
                            {"kind": "arrival", "time": float(i),
                             "id": base + i, "size": 1}
                        ).encode() + b"\n"
                    )
                    await writer.drain()
                    decisions.append(
                        json.loads(await asyncio.wait_for(
                            reader.readline(), timeout=10
                        ))
                    )
                writer.close()
                return decisions

            results = await asyncio.gather(client(0), client(1000))
            status = backend.status()["aggregate"]
            await server.close()
            backend.close()
            return results, status

        (a, b), status = asyncio.run(scenario())
        assert status["events"] == 40
        assert status["gsn"] == 40
        # Every client got a decision for every one of its own records.
        assert [d["task_id"] for d in a] == list(range(20))
        assert [d["task_id"] for d in b] == list(range(1000, 1020))

    def test_connection_counter(self):
        async def scenario():
            backend = _sharded_backend()
            server = ServiceServer(backend)
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                json.dumps(
                    {"kind": "arrival", "time": 0.0, "id": 0, "size": 1}
                ).encode() + b"\n"
            )
            await writer.drain()
            await asyncio.wait_for(reader.readline(), timeout=10)
            during = server.connections
            writer.close()
            await server.close()
            backend.close()
            return during

        assert asyncio.run(scenario()) == 1

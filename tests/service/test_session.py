"""Online session tests: live metrics, durability, and crash resume.

The acceptance bar for the service layer: a streaming session killed
mid-run and resumed from its journal reaches exactly the same final
metrics as an uninterrupted run, and a session's event history replayed
through the batch simulator agrees bit-for-bit.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.core.registry import make_algorithm
from repro.errors import CheckpointError, SimulationError
from repro.machines.tree import TreeMachine
from repro.service import AllocationSession, sequence_records
from repro.workloads.generators import poisson_sequence


def _digest(state) -> str:
    return hashlib.sha256(
        json.dumps(state, sort_keys=True, default=repr).encode()
    ).hexdigest()


def _session(n=8, name="greedy", **kw):
    machine = TreeMachine(n)
    return AllocationSession(machine, make_algorithm(name, machine, d=2.0), **kw)


def _records(n=8, tasks=30, seed=0):
    sigma = poisson_sequence(n, tasks, np.random.default_rng(seed))
    return list(sequence_records(sigma))


class TestLiveSession:
    def test_running_metrics_any_instant(self):
        s = _session()
        s.submit(4)
        assert (s.max_load, s.optimal_load) == (1, 1)
        s.submit(8, time=0.5)
        s.submit(8, time=0.5)
        # Two machine-spanning tasks over the size-4 task's half: load 3.
        assert s.max_load == 3
        assert s.optimal_load == 3  # ceil(20 / 8) peak active volume
        assert s.competitive_ratio == pytest.approx(1.0)
        status = s.status()
        assert status["events"] == 3 and status["active_tasks"] == 3

    def test_clock_is_monotonic(self):
        s = _session()
        s.submit(1, time=5.0)
        with pytest.raises(SimulationError, match="precedes the session clock"):
            s.submit(1, time=4.0)

    def test_auto_ids_skip_past_explicit_ones(self):
        s = _session()
        s.submit(1, task_id=10)
        decision = s.submit(1)
        assert decision.task_id == 11

    def test_fault_events_need_fault_tolerance(self):
        s = _session()
        with pytest.raises(SimulationError, match="fault-tolerant session"):
            s.fail(4)

    def test_fault_tolerant_session_salvages(self):
        s = _session(n=8, fault_tolerant=True)
        s.submit(2)
        s.submit(2)
        decision = s.fail(4)  # a leaf-level subtree
        assert decision.kind == "failure"
        assert s.status()["failures"] == 1
        assert s.status()["min_surviving_pes"] < 8
        s.repair(4)
        s.kill(0)
        assert s.status()["kills"] == 1

    def test_push_matches_named_methods(self):
        a, b = _session(), _session()
        a.submit(4, time=1.0, task_id=0)
        a.depart(0, time=2.0)
        b.push({"kind": "arrival", "size": 4, "time": 1.0, "id": 0})
        b.push({"kind": "departure", "id": 0, "time": 2.0})
        assert _digest(a.snapshot()) == _digest(b.snapshot())


class TestBatchAgreement:
    def test_streamed_run_equals_batch_run(self):
        """The same events through the session and the batch simulator
        produce identical metrics — one kernel, two drivers."""
        from repro.sim.engine import Simulator

        n, records = 8, _records(tasks=40, seed=2)
        session = _session(n)
        for rec in records:
            session.push(rec)

        machine = TreeMachine(n)
        sim = Simulator(machine, make_algorithm("greedy", machine, d=2.0))
        result = sim.run(session.sequence())
        assert result.metrics.to_state() == session.kernel.metrics.to_state()
        assert result.final_placements == session.placements
        assert result.optimal_load == session.optimal_load

    def test_save_run_archives_and_audits(self, tmp_path):
        from repro.sim.archive import load_run, load_run_events
        from repro.sim.audit import audit_run

        session = _session()
        records = _records(tasks=25, seed=4)
        for rec in records:
            session.push(rec)
        path = tmp_path / "run.json"
        session.save_run(path, metadata={"origin": "test"})

        machine, sequence, intervals = load_run(path)
        audit_run(machine, sequence, intervals).raise_if_failed()
        embedded = load_run_events(path)
        assert embedded == records
        # A batch archive has no embedded events — loader returns [].
        from repro.sim.engine import Simulator
        from repro.sim.archive import save_run

        m2 = TreeMachine(8)
        sim = Simulator(m2, make_algorithm("greedy", m2))
        sim.run(sequence)
        batch_path = tmp_path / "batch.json"
        save_run(batch_path, m2, sequence, sim)
        assert load_run_events(batch_path) == []


class TestResume:
    def test_kill_and_resume_reaches_identical_final_state(self, tmp_path):
        records = _records(tasks=40, seed=9)
        cut = len(records) // 2

        # The uninterrupted reference run.
        reference = _session()
        for rec in records:
            reference.push(rec)

        # The crashed run: journal, absorb half, vanish without close().
        journal = tmp_path / "session.journal"
        first = _session(journal_path=journal, snapshot_interval=4)
        for rec in records[:cut]:
            first.push(rec)
        del first  # no close: the crash case

        resumed = _session(journal_path=journal, snapshot_interval=4)
        assert resumed.num_events == cut
        for rec in records[cut:]:
            resumed.push(rec)
        assert _digest(resumed.snapshot()) == _digest(reference.snapshot())
        assert resumed.kernel.metrics.to_state() == reference.kernel.metrics.to_state()
        assert resumed.status() == reference.status()

    def test_resume_with_faults(self, tmp_path):
        journal = tmp_path / "faulty.journal"
        first = _session(fault_tolerant=True, journal_path=journal,
                         snapshot_interval=2)
        first.submit(2)
        first.submit(2)
        first.fail(4)
        first.kill(0)
        snap = first.snapshot()
        first.close()

        resumed = _session(fault_tolerant=True, journal_path=journal,
                           snapshot_interval=2)
        assert _digest(resumed.snapshot()) == _digest(snap)
        assert resumed.status()["failures"] == 1
        resumed.repair(4)
        assert resumed.status()["min_surviving_pes"] == 6

    def test_resume_refuses_different_configuration(self, tmp_path):
        journal = tmp_path / "cfg.journal"
        s = _session(name="greedy", journal_path=journal)
        s.submit(1)
        s.close()
        with pytest.raises(CheckpointError, match="different workload"):
            _session(name="firstfit", journal_path=journal)

    def test_resume_detects_divergent_replay(self, tmp_path):
        """Tampered journal records fail the embedded-snapshot digest check."""
        journal = tmp_path / "tamper.journal"
        s = _session(
            journal_path=journal, snapshot_interval=2, journal_format="v1"
        )
        s.submit(2)
        s.submit(4)
        s.close()

        lines = journal.read_text().splitlines()
        rec = json.loads(lines[1])  # first event record
        rec["json"]["record"]["size"] = 1  # not what the snapshot saw
        lines[1] = json.dumps(rec)
        journal.write_text("\n".join(lines) + "\n")

        with pytest.raises(CheckpointError, match="diverges from the snapshot"):
            _session(
                journal_path=journal, snapshot_interval=2, journal_format="v1"
            )

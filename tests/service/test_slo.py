"""SLO admission-control tests: gate, queue, drain, cancel, backpressure.

The contract under test (docs/SLO.md): an arrival is admitted only when
its best placement keeps every PE in its submachine at or below the load
target; otherwise it waits in a bounded FIFO queue (head-blocking) or is
rejected with a retry hint.  Departures and repairs drain the queue in
strict FIFO order, every decision is journaled, and a resumed session
reproduces the same queue, counters, and placements bit-identically.
"""

import json

import pytest

from repro.core.registry import make_algorithm
from repro.errors import SimulationError
from repro.machines.tree import TreeMachine
from repro.service import (
    Admit,
    AllocationSession,
    Cancel,
    Queue,
    Reject,
    SLOPolicy,
    admission_lines,
)
from repro.sim.slowdown import load_target_for_slowdown


def _session(n=16, name="greedy", slo=None, **kw):
    machine = TreeMachine(n)
    target = None if slo is None else slo.load_target
    algorithm = make_algorithm(name, machine, d=2.0, load_target=target)
    return AllocationSession(machine, algorithm, slo=slo, **kw)


def _fill(session, n, target):
    """Admit machine-spanning tasks until every PE sits at the target."""
    for _ in range(target):
        outcome = session.submit(n)
        assert isinstance(outcome, Admit)


class TestPolicy:
    def test_slowdown_maps_to_integer_load_target(self):
        assert SLOPolicy(slowdown_target=1.0).load_target == 1
        assert SLOPolicy(slowdown_target=2.0).load_target == 2
        assert SLOPolicy(slowdown_target=2.9).load_target == 2
        assert SLOPolicy(slowdown_target=3.0).load_target == 3
        assert SLOPolicy(slowdown_target=4.0).load_target == (
            load_target_for_slowdown(4.0)
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"slowdown_target": 0.5},
            {"slowdown_target": 2.0, "queue_capacity": -1},
            {"slowdown_target": 2.0, "retry_after": 0.0},
            {"slowdown_target": 2.0, "low_watermark": 0},
            {"slowdown_target": 2.0, "low_watermark": 10, "high_watermark": 5},
            {
                "slowdown_target": 2.0,
                "low_watermark_bytes": 8,
                "high_watermark_bytes": 4,
            },
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            SLOPolicy(**kwargs)


class TestAdmissionGate:
    def test_admit_until_target_then_queue_then_reject(self):
        slo = SLOPolicy(slowdown_target=2.0, queue_capacity=2)
        s = _session(n=16, slo=slo)
        _fill(s, 16, 2)  # every PE at the target
        q1 = s.submit(4)
        q2 = s.submit(4)
        assert isinstance(q1, Queue) and q1.position == 0
        assert isinstance(q2, Queue) and q2.position == 1
        r = s.submit(4)
        assert isinstance(r, Reject)
        assert r.reason.startswith("admission queue full")
        assert r.retry_after == slo.retry_after
        st = s.status()
        assert st["queued_tasks"] == 2
        assert st["rejected_total"] == 1
        assert st["slo"]["admitted_total"] == 2
        assert st["slo_violations"] == 0

    def test_departure_drains_fifo(self):
        slo = SLOPolicy(slowdown_target=1.0, queue_capacity=8)
        s = _session(n=8, slo=slo)
        a = s.submit(8)  # load 1 everywhere: machine is full at target 1
        q1 = s.submit(2)
        q2 = s.submit(2)
        assert isinstance(q1, Queue) and isinstance(q2, Queue)
        out = s.depart(a.decision.task_id)
        assert isinstance(out, Admit)
        # Both queued tasks fit side by side now; drained strictly FIFO.
        assert [d.task_id for d in out.drained] == [q1.task_id, q2.task_id]
        assert s.status()["queued_tasks"] == 0
        assert s.status()["slo"]["drained_total"] == 2

    def test_head_blocking_holds_small_tasks_behind_big_head(self):
        slo = SLOPolicy(slowdown_target=1.0, queue_capacity=8)
        s = _session(n=8, slo=slo)
        half = s.submit(4)  # one half busy, other half free
        assert isinstance(half, Admit)
        big = s.submit(8)  # cannot fit: whole machine would hit load 2
        assert isinstance(big, Queue)
        # A size-2 task WOULD fit in the free half, but FIFO head-blocks it.
        small = s.submit(2)
        assert isinstance(small, Queue) and small.position == 1
        # Freeing the half admits the big head first, then the small one.
        out = s.depart(half.decision.task_id)
        assert [d.task_id for d in out.drained] == [big.task_id]
        assert s.status()["queued_tasks"] == 1

    def test_cancel_queued_task_frees_slot_and_drains(self):
        slo = SLOPolicy(slowdown_target=1.0, queue_capacity=8)
        s = _session(n=8, slo=slo)
        s.submit(8)
        q1 = s.submit(8)
        q2 = s.submit(4)
        out = s.kill(q1.task_id)
        assert isinstance(out, Cancel)
        assert out.dequeued and out.task_id == q1.task_id
        # q2 is still head-blocked by the full machine, not by q1.
        assert s.admission_queue()[0]["id"] == q2.task_id
        assert s.status()["slo"]["canceled_total"] == 1

    def test_departure_of_rejected_task_is_noop_cancel(self):
        slo = SLOPolicy(slowdown_target=1.0, queue_capacity=0)
        s = _session(n=8, slo=slo)
        s.submit(8)
        r = s.submit(8)
        assert isinstance(r, Reject)
        out = s.depart(r.task_id)
        assert isinstance(out, Cancel) and not out.dequeued
        assert s.status()["slo"]["canceled_total"] == 0  # nothing dequeued

    def test_retried_rejected_id_routes_like_a_fresh_task(self):
        """A client that retries a rejected id must get full service —
        including a real departure once the retry is admitted."""
        slo = SLOPolicy(slowdown_target=1.0, queue_capacity=0)
        s = _session(n=8, slo=slo)
        a = s.submit(8)
        r = s.submit(8, task_id=77)
        assert isinstance(r, Reject)
        s.depart(a.decision.task_id)
        retry = s.submit(8, task_id=77)
        assert isinstance(retry, Admit)
        out = s.depart(77)
        assert isinstance(out, Admit)  # a real departure, not a noop Cancel
        assert s.status()["active_tasks"] == 0

    def test_gated_sessions_never_count_violations(self):
        slo = SLOPolicy(slowdown_target=2.0, queue_capacity=4)
        s = _session(n=16, name="twochoice", slo=slo)
        for size in (4, 8, 2, 16, 4, 8, 16, 2, 4):
            s.submit(size)
        assert s.status()["slo_violations"] == 0

    def test_oblivious_random_can_violate_and_is_counted(self):
        """`random` places without looking at loads, so the violation
        counter (the referee's tripwire) must eventually fire."""
        for seed in range(30):
            slo = SLOPolicy(slowdown_target=1.0, queue_capacity=64)
            machine = TreeMachine(8)
            algorithm = make_algorithm("random", machine, d=2.0, seed=seed)
            s = AllocationSession(machine, algorithm, slo=slo)
            for _ in range(6):
                s.submit(2)
            if s.status()["slo_violations"] > 0:
                return
        pytest.fail("oblivious random never produced an SLO violation")


class TestStatusAndWire:
    def test_status_keys_zero_valued_without_slo(self):
        s = _session(n=8)
        s.submit(4)
        st = s.status()
        assert st["journal_pending"] == 0
        assert st["queued_tasks"] == 0
        assert st["rejected_total"] == 0
        assert st["slo_violations"] == 0
        assert "slo" not in st

    def test_status_slo_block_schema(self):
        slo = SLOPolicy(slowdown_target=2.5, queue_capacity=3)
        s = _session(n=8, slo=slo)
        st = s.status()["slo"]
        assert st["slowdown_target"] == 2.5
        assert st["load_target"] == 2
        assert st["queue_capacity"] == 3
        assert st["overloaded"] is False
        for key in (
            "admitted_total", "drained_total", "queued_total",
            "rejected_total", "canceled_total", "slo_violations",
        ):
            assert st[key] == 0

    def test_admission_lines_wire_format(self):
        slo = SLOPolicy(slowdown_target=1.0, queue_capacity=1)
        s = _session(n=8, slo=slo)
        admit = json.loads(admission_lines(s.submit(8))[0])
        assert admit["kind"] == "arrival" and "node" in admit
        queued = json.loads(admission_lines(s.submit(4))[0])
        assert queued == {"slo": "queued", "id": 1, "position": 0, "queued": 1}
        rejected = json.loads(admission_lines(s.submit(4))[0])
        assert rejected["slo"] == "rejected"
        assert rejected["retry_after"] == slo.retry_after
        lines = admission_lines(s.depart(0))
        records = [json.loads(l) for l in lines]
        assert records[0]["kind"] == "departure"
        assert records[1]["dequeued"] is True and records[1]["task_id"] == 1

    def test_offer_batch_matches_sequential_offers(self):
        slo = SLOPolicy(slowdown_target=1.0, queue_capacity=4)
        records = [
            {"kind": "arrival", "size": 8, "time": 0.0},
            {"kind": "arrival", "size": 4, "time": 1.0},
            {"kind": "departure", "id": 0, "time": 2.0},
            {"kind": "arrival", "size": 2, "time": 3.0},
        ]
        one = _session(n=8, slo=slo)
        verdicts_a = [one.offer(dict(r)).verdict for r in records]
        two = _session(n=8, slo=slo)
        verdicts_b = [o.verdict for o in two.offer_batch(records)]
        assert verdicts_a == verdicts_b
        assert one.status() == two.status()


class TestBackpressure:
    def test_overload_trips_at_high_watermark_and_clears_low(self, tmp_path):
        slo = SLOPolicy(
            slowdown_target=4.0, queue_capacity=4,
            high_watermark=4, low_watermark=2,
        )
        s = _session(
            n=16, slo=slo,
            journal_path=tmp_path / "j", fsync_policy="batch",
        )
        for _ in range(3):
            s.submit(1)
        assert not s.overloaded  # 3 pending < high watermark
        s.submit(1)
        assert s.overloaded  # trips at 4
        s.flush()
        # Hysteresis: pending dropped to 0 <= low watermark, so it clears.
        assert not s.overloaded
        s.close()

    def test_overload_holds_between_watermarks(self, tmp_path):
        """Between low and high the flag keeps its prior value."""
        slo = SLOPolicy(
            slowdown_target=4.0, queue_capacity=4,
            high_watermark=3, low_watermark=1,
        )
        s = _session(
            n=16, slo=slo,
            journal_path=tmp_path / "j", fsync_policy="interval:1000",
        )
        s.submit(1)
        s.submit(1)
        assert not s.overloaded  # rising through 2: not yet tripped
        s.submit(1)
        assert s.overloaded  # 3 >= high
        s.submit(1)
        assert s.overloaded  # still above low: stays tripped
        s.close()

    def test_no_journal_means_never_overloaded(self):
        slo = SLOPolicy(slowdown_target=1.0, high_watermark=1, low_watermark=1)
        s = _session(n=8, slo=slo)
        s.submit(8)
        assert not s.overloaded


class TestJournaledAdmission:
    def _storm(self, s):
        s.submit(8, time=0.0)          # admitted
        s.submit(4, time=1.0)          # queued
        s.submit(4, time=1.0)          # queued
        s.submit(2, time=1.0)          # queued
        s.submit(2, time=1.0)          # rejected (capacity 3)
        s.kill(2, time=2.0)            # cancel a queued task
        s.depart(0, time=3.0)          # drains the remaining queue

    def test_resume_reproduces_queue_counters_and_placements(self, tmp_path):
        slo = SLOPolicy(slowdown_target=1.0, queue_capacity=3)
        path = tmp_path / "slo.journal"
        live = _session(n=8, slo=slo, journal_path=path)
        self._storm(live)
        want_status = live.status()
        want_queue = live.admission_queue()
        want_snapshot = live.snapshot()
        want_offers = live.num_offers
        live.close()

        resumed = _session(n=8, slo=slo, journal_path=path)
        assert resumed.num_offers == want_offers
        assert resumed.admission_queue() == want_queue
        assert resumed.status() == want_status
        assert resumed.snapshot() == want_snapshot
        resumed.close()

    def test_resume_continues_identically_to_uninterrupted(self, tmp_path):
        slo = SLOPolicy(slowdown_target=1.0, queue_capacity=3)
        path = tmp_path / "slo.journal"
        live = _session(n=8, slo=slo, journal_path=path)
        self._storm(live)
        live.close()
        resumed = _session(n=8, slo=slo, journal_path=path)
        tail = resumed.submit(4, time=4.0)

        ref = _session(n=8, slo=slo)
        self._storm(ref)
        expected = ref.submit(4, time=4.0)
        assert tail.verdict == expected.verdict
        assert resumed.kernel.metrics.to_state() == ref.kernel.metrics.to_state()
        resumed.close()

    def test_policy_change_across_resume_is_rejected(self, tmp_path):
        from repro.errors import CheckpointError

        path = tmp_path / "slo.journal"
        live = _session(n=8, slo=SLOPolicy(slowdown_target=1.0), journal_path=path)
        live.submit(4)
        live.close()
        with pytest.raises(CheckpointError):
            _session(n=8, slo=SLOPolicy(slowdown_target=2.0), journal_path=path)

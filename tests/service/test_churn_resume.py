"""Crash-resume under churn: SIGKILL mid-storm, every fsync policy.

Extends the executor-level kill tests (tests/sim/test_resilience.py) to
the service layer with the full churn alphabet: a journaled session
absorbing arrivals, departures, failures, repairs, kills, *and* online
resizes is SIGKILLed in the middle of a flash-crowd storm (a run of
same-timestamp arrivals — the worst place to die), then resumed from its
journal and driven to the end.  The resumed session must reach the exact
final state of an uninterrupted run under all three fsync policies: a
crash may lose uncommitted tail records (``batch`` / ``interval``), never
corrupt or diverge.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
from collections import Counter
from pathlib import Path

import pytest

from repro.core.registry import make_algorithm
from repro.machines.tree import TreeMachine
from repro.scenarios import ChurnProcess
from repro.service import AllocationSession
from repro.service.stream import records_from_events

SRC = str(Path(__file__).resolve().parents[2] / "src")

_CHILD = textwrap.dedent(
    """
    import json, os, signal, sys

    from repro.core.registry import make_algorithm
    from repro.machines.tree import TreeMachine
    from repro.service import AllocationSession

    records_path, journal, policy, cut = sys.argv[1:5]
    records = json.loads(open(records_path).read())
    machine = TreeMachine(16)
    session = AllocationSession(
        machine, make_algorithm("optimal", machine, d=2.0),
        fault_tolerant=True, journal_path=journal,
        snapshot_interval=8, fsync_policy=policy,
    )
    for record in records[: int(cut)]:
        session.push(record)
    os.kill(os.getpid(), signal.SIGKILL)  # no close(), no flush()
    """
)


def _records():
    scenario = ChurnProcess(
        num_pes=16, seed=21, horizon=30.0, task_rate=1.5,
        pe_mttf=12.0, mttr=2.5, kill_rate=0.08,
        storm_rate=0.25, storm_depth=6,
        resizes=((12.0, "grow", 2), (24.0, "shrink", 2)),
    ).build()
    return records_from_events(list(scenario.merged_events()))


def _storm_cut(records):
    """An index in the middle of the biggest same-timestamp arrival run."""
    arrivals = [r["time"] for r in records if r["kind"] == "arrival"]
    storm_time, depth = Counter(arrivals).most_common(1)[0]
    assert depth >= 3, "scenario has no storm to die inside"
    first = next(
        i for i, r in enumerate(records)
        if r["kind"] == "arrival" and r["time"] == storm_time
    )
    return first + depth // 2


def _session(journal_path=None, policy="always"):
    machine = TreeMachine(16)
    return AllocationSession(
        machine, make_algorithm("optimal", machine, d=2.0),
        fault_tolerant=True, journal_path=journal_path,
        snapshot_interval=8, fsync_policy=policy,
    )


@pytest.mark.parametrize("policy", ["always", "batch", "interval:20"])
def test_sigkill_mid_storm_resumes_to_identical_metrics(tmp_path, policy):
    records = _records()
    cut = _storm_cut(records)

    reference = _session()
    for record in records:
        reference.push(record)

    records_path = tmp_path / "records.json"
    records_path.write_text(json.dumps(records))
    journal = tmp_path / f"churn-{policy.replace(':', '-')}.journal"
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD,
         str(records_path), str(journal), policy, str(cut)],
        env={**os.environ, "PYTHONPATH": SRC},
        capture_output=True,
        timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()
    assert journal.exists()

    resumed = _session(journal_path=journal, policy=policy)
    # Durability contract: everything acknowledged as committed survives;
    # batch/interval may lose an uncommitted tail, never more than that.
    assert resumed.num_events <= cut
    if policy == "always":
        assert resumed.num_events == cut
    for record in records[resumed.num_events:]:
        resumed.push(record)
    resumed.flush()

    assert resumed.num_events == reference.num_events
    assert resumed.status() == reference.status()
    assert resumed.kernel.metrics.to_state() == reference.kernel.metrics.to_state()
    assert resumed.snapshot() == reference.snapshot()
    assert resumed.placements == reference.placements
    # The resumed session lived through both resizes: trajectory intact.
    assert resumed.kernel.machine.num_pes == 16
    assert resumed.kernel.num_resizes == 2
    resumed.close()

"""Prometheus text exposition: rendering, parsing, and the round trip."""

import math

import pytest

from repro.core.registry import make_algorithm
from repro.errors import TraceFormatError
from repro.machines.tree import TreeMachine
from repro.service import (
    AllocationSession,
    Sample,
    parse_exposition,
    render_exposition,
    service_samples,
)


def _samples_roundtrip(samples):
    return parse_exposition(render_exposition(samples))


class TestRoundTrip:
    def test_plain_gauges(self):
        samples = [
            Sample("repro_now", 12.5),
            Sample("repro_events_total", 240),
            Sample("repro_competitive_ratio", 1.3333333333333333),
        ]
        assert _samples_roundtrip(samples) == samples

    def test_labeled_series_stay_contiguous(self):
        samples = [
            Sample("repro_shard_events_total", 10, (("shard", "0"),)),
            Sample("repro_now", 1.0),
            Sample("repro_shard_events_total", 20, (("shard", "1"),)),
        ]
        text = render_exposition(samples)
        # The format requires one block per metric; order inside the
        # block is first-appearance.
        assert text.index('shard="0"') < text.index('shard="1"')
        assert set(_samples_roundtrip(samples)) == set(samples)

    def test_nan_and_inf_spelling(self):
        text = render_exposition(
            [Sample("repro_competitive_ratio", float("nan")),
             Sample("repro_optimal_load", float("inf"))]
        )
        assert "repro_competitive_ratio NaN" in text
        assert "repro_optimal_load +Inf" in text
        back = parse_exposition(text)
        assert math.isnan(back[0].value)
        assert math.isinf(back[1].value)

    def test_label_escaping(self):
        tricky = 'a"b\\c\nd'
        samples = [Sample("repro_shard_max_load", 1, (("shard", tricky),))]
        assert _samples_roundtrip(samples) == samples

    def test_help_and_type_headers(self):
        text = render_exposition([Sample("repro_events_total", 3)])
        assert "# HELP repro_events_total" in text
        assert "# TYPE repro_events_total counter" in text

    def test_malformed_line_raises(self):
        with pytest.raises(TraceFormatError):
            parse_exposition("repro_now\n")
        with pytest.raises(TraceFormatError):
            parse_exposition("repro_now not-a-number\n")


class TestServiceSamples:
    def test_session_status_maps_to_series(self):
        machine = TreeMachine(16)
        session = AllocationSession(machine, make_algorithm("greedy", machine, d=2.0))
        session.push({"kind": "arrival", "time": 0.0, "id": 0, "size": 2})
        by_name = {s.name: s.value for s in service_samples(session.status())}
        assert by_name["repro_events_total"] == 1
        assert by_name["repro_active_tasks"] == 1
        assert by_name["repro_max_load"] >= 1.0
        # Single-process sessions have no sharded series.
        assert "repro_gsn" not in by_name
        assert "repro_shards" not in by_name
        session.close()

    def test_shard_dicts_become_labeled_series(self):
        shards = [
            {"shard": 0, "events": 5, "active_tasks": 2, "max_load": 1.5,
             "journal_pending": 0},
            {"shard": 1, "events": 7, "active_tasks": 3, "max_load": 2.0,
             "journal_pending": 4},
        ]
        samples = service_samples({"events": 12}, shards)
        labeled = [s for s in samples if s.labels]
        assert (
            Sample("repro_shard_events_total", 7.0, (("shard", "1"),))
            in labeled
        )
        assert (
            Sample("repro_shard_journal_pending", 4.0, (("shard", "1"),))
            in labeled
        )

    def test_missing_keys_are_omitted_not_zeroed(self):
        samples = service_samples({"events": 1})
        names = {s.name for s in samples}
        assert names == {"repro_events_total"}

    def test_overloaded_bool_renders_as_01(self):
        on = service_samples({"slo": {"overloaded": True}})
        off = service_samples({"slo": {"overloaded": False}})
        assert (on[0].name, on[0].value) == ("repro_overloaded", 1.0)
        assert (off[0].name, off[0].value) == ("repro_overloaded", 0.0)

"""Multi-session ClusterManager tests."""

import pytest

from repro.core.registry import make_algorithm
from repro.errors import SimulationError
from repro.machines.tree import TreeMachine
from repro.service import ClusterManager


def _open(mgr, name, n=8):
    machine = TreeMachine(n)
    return mgr.create(name, machine, make_algorithm("greedy", machine))


class TestClusterManager:
    def test_create_get_close(self):
        with ClusterManager() as mgr:
            session = _open(mgr, "alpha")
            assert mgr.get("alpha") is session
            assert "alpha" in mgr and mgr.names() == ["alpha"]
            mgr.close("alpha")
            assert "alpha" not in mgr
            with pytest.raises(SimulationError, match="no open session"):
                mgr.get("alpha")

    def test_duplicate_and_bad_names(self):
        with ClusterManager() as mgr:
            _open(mgr, "alpha")
            with pytest.raises(SimulationError, match="already open"):
                _open(mgr, "alpha")
            with pytest.raises(SimulationError, match="path-safe"):
                _open(mgr, "not/safe")

    def test_status_aggregates_sessions(self):
        with ClusterManager() as mgr:
            _open(mgr, "a").submit(2)
            b = _open(mgr, "b")
            b.submit(4)
            b.submit(4)
            status = mgr.status()
            assert sorted(status) == ["a", "b"]
            assert status["a"]["events"] == 1
            assert status["b"]["events"] == 2

    def test_overloaded_names_slo_sessions_past_watermark(self, tmp_path):
        from repro.service import SLOPolicy

        with ClusterManager(journal_dir=tmp_path) as mgr:
            machine = TreeMachine(8)
            slo = SLOPolicy(
                slowdown_target=4.0, high_watermark=2, low_watermark=1
            )
            tenant = mgr.create(
                "tenant", machine, make_algorithm("greedy", machine),
                slo=slo, fsync_policy="batch",
            )
            _open(mgr, "calm").submit(2)  # no SLO: never overloaded
            assert mgr.overloaded() == []
            tenant.submit(1)
            tenant.submit(1)  # 2 pending records >= high watermark
            assert mgr.overloaded() == ["tenant"]
            tenant.flush()
            assert mgr.overloaded() == []

    def test_journal_dir_resumes_by_name(self, tmp_path):
        with ClusterManager(journal_dir=tmp_path) as mgr:
            session = _open(mgr, "tenant")
            session.submit(2)
            session.submit(2, time=1.0)
        # New manager, same directory: the named session resumes.
        with ClusterManager(journal_dir=tmp_path) as mgr:
            resumed = _open(mgr, "tenant")
            assert resumed.num_events == 2
            assert resumed.now == 1.0

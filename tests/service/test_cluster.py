"""Multi-session ClusterManager tests."""

import pytest

from repro.core.registry import make_algorithm
from repro.errors import SimulationError
from repro.machines.tree import TreeMachine
from repro.service import ClusterManager


def _open(mgr, name, n=8):
    machine = TreeMachine(n)
    return mgr.create(name, machine, make_algorithm("greedy", machine))


class TestClusterManager:
    def test_create_get_close(self):
        with ClusterManager() as mgr:
            session = _open(mgr, "alpha")
            assert mgr.get("alpha") is session
            assert "alpha" in mgr and mgr.names() == ["alpha"]
            mgr.close("alpha")
            assert "alpha" not in mgr
            with pytest.raises(SimulationError, match="no open session"):
                mgr.get("alpha")

    def test_duplicate_and_bad_names(self):
        with ClusterManager() as mgr:
            _open(mgr, "alpha")
            with pytest.raises(SimulationError, match="already open"):
                _open(mgr, "alpha")
            with pytest.raises(SimulationError, match="path-safe"):
                _open(mgr, "not/safe")

    def test_status_aggregates_sessions(self):
        with ClusterManager() as mgr:
            _open(mgr, "a").submit(2)
            b = _open(mgr, "b")
            b.submit(4)
            b.submit(4)
            status = mgr.status()
            assert sorted(status) == ["a", "b"]
            assert status["a"]["events"] == 1
            assert status["b"]["events"] == 2

    def test_journal_dir_resumes_by_name(self, tmp_path):
        with ClusterManager(journal_dir=tmp_path) as mgr:
            session = _open(mgr, "tenant")
            session.submit(2)
            session.submit(2, time=1.0)
        # New manager, same directory: the named session resumes.
        with ClusterManager(journal_dir=tmp_path) as mgr:
            resumed = _open(mgr, "tenant")
            assert resumed.num_events == 2
            assert resumed.now == 1.0

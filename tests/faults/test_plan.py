"""Fault plans: admissibility, derived views, merging, and generation."""

import math

import numpy as np
import pytest

from repro.errors import FaultPlanError
from repro.faults.plan import (
    FaultPlan,
    PEFailure,
    PERepair,
    TaskKill,
    generate_fault_plan,
    merge_events,
)
from repro.tasks.builder import SequenceBuilder
from repro.tasks.events import Arrival, Departure


def _sequence(n=16):
    b = SequenceBuilder()
    b.arrive(1, size=4, at=0.0)
    b.arrive(2, size=4, at=1.0)
    b.depart(1, at=5.0)
    b.arrive(3, size=2, at=5.0)
    b.depart(2, at=8.0)
    b.depart(3, at=9.0)
    return b.build()


class TestFaultPlan:
    def test_events_must_be_time_ordered(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(events=(PEFailure(5.0, 2), PERepair(1.0, 2)))

    def test_empty_plan(self):
        plan = FaultPlan.empty()
        assert plan.is_empty
        assert plan.num_failures == plan.num_repairs == plan.num_kills == 0
        assert plan.min_surviving_pes(16) == 16

    def test_validate_rejects_overlapping_failures(self):
        # Node 2 is the left half of N=16; node 4 is inside it.
        plan = FaultPlan(events=(PEFailure(1.0, 2), PEFailure(2.0, 4)))
        with pytest.raises(FaultPlanError):
            plan.validate_for(16)

    def test_validate_rejects_killing_the_whole_machine(self):
        plan = FaultPlan(events=(PEFailure(1.0, 2), PEFailure(2.0, 3)))
        with pytest.raises(FaultPlanError):
            plan.validate_for(16)

    def test_validate_enforces_granularity_floor(self):
        # Failing a single leaf is inadmissible when max_task_size = 4.
        plan = FaultPlan(events=(PEFailure(1.0, 16),))
        plan.validate_for(16)  # fine with the default floor of 1
        with pytest.raises(FaultPlanError):
            plan.validate_for(16, max_task_size=4)

    def test_validate_rejects_repair_of_healthy_node(self):
        plan = FaultPlan(events=(PERepair(1.0, 2),))
        with pytest.raises(FaultPlanError):
            plan.validate_for(16)

    def test_failure_intervals_matches_repairs_to_earliest_open(self):
        plan = FaultPlan(
            events=(
                PEFailure(1.0, 2),
                PERepair(3.0, 2),
                PEFailure(5.0, 2),
            )
        )
        plan.validate_for(16)
        assert plan.failure_intervals() == [(2, 1.0, 3.0), (2, 5.0, math.inf)]

    def test_min_surviving_pes_tracks_the_low_water_mark(self):
        plan = FaultPlan(
            events=(PEFailure(1.0, 2), PEFailure(2.0, 6), PERepair(3.0, 2))
        )
        plan.validate_for(16)
        # After both failures: 16 - 8 - 4 = 4 surviving.
        assert plan.min_surviving_pes(16) == 4

    def test_roundtrip_dict(self):
        plan = FaultPlan(
            events=(PEFailure(1.0, 2), TaskKill(2.0, 7), PERepair(3.0, 2))
        )
        again = FaultPlan.from_dict(plan.to_dict())
        assert again == plan

    def test_kills_view(self):
        plan = FaultPlan(events=(TaskKill(2.0, 7), TaskKill(4.0, 9)))
        assert plan.kills() == [(7, 2.0), (9, 4.0)]


class TestMergeEvents:
    def test_faults_sort_after_task_events_at_a_tied_time(self):
        sigma = _sequence()
        plan = FaultPlan(events=(PEFailure(5.0, 2),))
        merged = merge_events(sigma, plan)
        at_five = [e for e in merged if e.time == 5.0]
        assert isinstance(at_five[0], Departure)
        assert isinstance(at_five[1], Arrival)
        assert isinstance(at_five[2], PEFailure)

    def test_merge_preserves_all_events(self):
        sigma = _sequence()
        plan = FaultPlan(events=(PEFailure(2.0, 2), PERepair(6.0, 2)))
        merged = merge_events(sigma, plan)
        assert len(merged) == len(sigma) + 2
        times = [e.time for e in merged]
        assert times == sorted(times)


class TestGenerateFaultPlan:
    def test_generated_plans_are_admissible_and_deterministic(self):
        sigma = _sequence()
        for seed in range(20):
            plan = generate_fault_plan(16, sigma, np.random.default_rng(seed))
            plan.validate_for(16, max_task_size=4)
            again = generate_fault_plan(16, sigma, np.random.default_rng(seed))
            assert plan == again

    def test_full_machine_tasks_force_empty_plan(self):
        b = SequenceBuilder()
        b.arrive(1, size=16, at=0.0)
        b.depart(1, at=2.0)
        sigma = b.build()
        plan = generate_fault_plan(16, sigma, np.random.default_rng(0))
        assert plan.num_failures == 0

    def test_kills_reference_live_tasks(self):
        sigma = _sequence()
        tasks = sigma.tasks
        for seed in range(30):
            plan = generate_fault_plan(16, sigma, np.random.default_rng(seed))
            for tid, t in plan.kills():
                task = tasks[tid]
                assert task.arrival <= t < task.departure

"""Fault-mode differential fuzzing, corpus roundtrips, tolerant replay."""

import warnings

import numpy as np
import pytest

from repro.faults import FaultPlan, generate_fault_plan
from repro.faults.plan import PEFailure, TaskKill
from repro.verify.corpus import (
    CorpusEntry,
    CorpusLoadWarning,
    load_corpus,
    replay_corpus,
    write_counterexample,
)
from repro.verify.harness import DifferentialHarness, check_algorithm_under_faults
from repro.workloads.generators import churn_sequence

N = 16


class TestFaultFuzz:
    def test_small_campaign_is_clean(self, tmp_path):
        harness = DifferentialHarness(N, seed=11, corpus_dir=tmp_path / "corpus")
        report = harness.fuzz(max_sequences=4, faults=True)
        assert report.ok, report.violations
        assert report.faulted_checks == report.checks_run
        assert report.fault_summary  # degradation metrics were aggregated
        assert not list((tmp_path / "corpus").glob("*.json")) or True

    def test_fault_plans_are_deterministic_per_index(self):
        harness = DifferentialHarness(N, seed=11)
        sigma = churn_sequence(N, 60, np.random.default_rng(1))
        assert harness._plan_for(sigma, 3) == harness._plan_for(sigma, 3)
        # Different indices draw from different streams (overwhelmingly).
        plans = {
            tuple(harness._plan_for(sigma, i).events) for i in range(8)
        }
        assert len(plans) > 1

    def test_check_sequence_accepts_a_plan(self):
        harness = DifferentialHarness(N, seed=4, algorithms=["greedy", "basic"])
        sigma = churn_sequence(N, 60, np.random.default_rng(2))
        plan = generate_fault_plan(N, sigma, np.random.default_rng(9))
        outcomes = harness.check_sequence(sigma, d=1.0, plan=plan)
        assert len(outcomes) == 2
        for outcome in outcomes:
            assert outcome.faulted == (not plan.is_empty)
            assert outcome.ok, outcome.violations

    def test_faulted_outcomes_carry_degradation(self):
        sigma = churn_sequence(N, 60, np.random.default_rng(5))
        plan = FaultPlan(events=(PEFailure(1.0, 2),))
        outcome = check_algorithm_under_faults("greedy", N, 1.0, 0, sigma, plan)
        assert outcome.ok, outcome.violations
        assert outcome.faulted
        assert outcome.degradation is not None
        assert outcome.degradation["failures"] == 1
        assert outcome.degradation["min_surviving_pes"] == N // 2


class TestFaultCorpus:
    def _entry(self):
        sigma = churn_sequence(N, 40, np.random.default_rng(7))
        plan = generate_fault_plan(N, sigma, np.random.default_rng(8))
        return CorpusEntry.from_sequence(
            sigma,
            algorithm="greedy",
            num_pes=N,
            d=1.0,
            seed=0,
            check="fault-mode witness",
            fault_plan=plan,
        ), plan

    def test_fault_plan_roundtrips_through_json(self):
        entry, plan = self._entry()
        again = CorpusEntry.from_json(entry.to_json())
        assert again == entry
        if plan.is_empty:
            assert again.fault_plan() is None
        else:
            assert again.fault_plan() == plan

    def test_healthy_entries_have_no_faults_key(self):
        sigma = churn_sequence(N, 40, np.random.default_rng(7))
        entry = CorpusEntry.from_sequence(
            sigma, algorithm="greedy", num_pes=N, d=1.0, seed=0, check="x"
        )
        assert '"faults"' not in entry.to_json()
        assert entry.fault_plan() is None

    def test_replay_runs_fault_entries_under_their_plan(self, tmp_path):
        sigma = churn_sequence(N, 40, np.random.default_rng(3))
        plan = FaultPlan(
            events=(PEFailure(1.0, 2), TaskKill(2.0, 0))
        )
        entry = CorpusEntry.from_sequence(
            sigma,
            algorithm="greedy",
            num_pes=N,
            d=1.0,
            seed=0,
            check="regression",
            fault_plan=plan,
        )
        write_counterexample(entry, tmp_path)
        replayed = replay_corpus(tmp_path)
        assert len(replayed) == 1
        loaded, outcome = replayed[0]
        assert loaded == entry
        assert outcome.faulted
        assert outcome.ok, outcome.violations


class TestTolerantLoading:
    def _write_good(self, directory):
        sigma = churn_sequence(N, 30, np.random.default_rng(1))
        entry = CorpusEntry.from_sequence(
            sigma, algorithm="greedy", num_pes=N, d=1.0, seed=0, check="ok"
        )
        return write_counterexample(entry, directory)

    def test_corrupt_file_skipped_with_warning(self, tmp_path):
        self._write_good(tmp_path)
        (tmp_path / "zz-corrupt.json").write_text("{not json")
        with pytest.warns(CorpusLoadWarning, match="zz-corrupt.json"):
            entries = load_corpus(tmp_path)
        assert len(entries) == 1

    def test_schema_mismatch_skipped_with_warning(self, tmp_path):
        self._write_good(tmp_path)
        (tmp_path / "zz-old.json").write_text('{"version": 99, "tasks": []}\n')
        with pytest.warns(CorpusLoadWarning, match="version"):
            entries = load_corpus(tmp_path)
        assert len(entries) == 1

    def test_strict_mode_raises_with_path(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="bad.json"):
            load_corpus(tmp_path, strict=True)

    def test_replay_tolerates_corrupt_entries(self, tmp_path):
        self._write_good(tmp_path)
        (tmp_path / "zz-corrupt.json").write_text("]]")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", CorpusLoadWarning)
            replayed = replay_corpus(tmp_path)
        assert len(replayed) == 1
        assert replayed[0][1].ok

"""FaultAwareSimulator: semantics, equivalence, and referee agreement."""

import math

import numpy as np
import pytest

from repro.core.registry import algorithm_names, make_algorithm
from repro.faults import (
    FaultAwareSimulator,
    FaultPlan,
    generate_fault_plan,
    run_traced_with_faults,
)
from repro.faults.plan import PEFailure, PERepair, TaskKill
from repro.machines.tree import TreeMachine
from repro.sim.audit import audit_run, effective_end_times
from repro.sim.runner import run_traced
from repro.tasks.builder import SequenceBuilder
from repro.verify.oracle import faults_table, oracle_audit, tasks_table
from repro.workloads.generators import churn_sequence

N = 16


def _small_sequence():
    b = SequenceBuilder()
    b.arrive("a", size=4, at=0.0)
    b.arrive("b", size=4, at=1.0)
    b.arrive("c", size=2, at=2.0)
    b.depart("a", at=6.0)
    b.arrive("d", size=2, at=7.0)
    b.depart("b", at=9.0)
    b.depart("c", at=10.0)
    b.depart("d", at=11.0)
    return b.build()


def _plan():
    return FaultPlan(
        events=(
            PEFailure(3.0, 2),   # left half fails: orphans move right
            TaskKill(5.0, 1),    # task "b" killed before its departure
            PERepair(8.0, 2),    # capacity comes back
        )
    )


class TestEmptyPlanEquivalence:
    @pytest.mark.parametrize("name", algorithm_names())
    def test_identical_to_plain_simulator(self, name):
        sigma = churn_sequence(N, 120, np.random.default_rng(3))
        m1, m2 = TreeMachine(N), TreeMachine(N)
        a1 = make_algorithm(name, m1, d=1.0, seed=5)
        a2 = make_algorithm(name, m2, d=1.0, seed=5)
        base, base_intervals = run_traced(m1, a1, sigma)
        faulted, faulted_intervals = run_traced_with_faults(
            m2, a2, sigma, FaultPlan.empty()
        )
        assert faulted.max_load == base.max_load
        assert faulted_intervals == base_intervals
        assert not faulted.metrics.faults.any_faults


class TestKillSemantics:
    def test_killed_task_ends_at_kill_time(self):
        sigma = _small_sequence()
        machine = TreeMachine(N)
        algo = make_algorithm("greedy", machine, d=1.0)
        result, intervals = run_traced_with_faults(machine, algo, sigma, _plan())
        # Task id 1 ("b") was killed at t=5 < departure 9.
        assert intervals[1][-1][1] == 5.0
        assert result.metrics.faults.num_kills == 1

    def test_kill_of_departed_task_is_noop(self):
        sigma = _small_sequence()
        plan = FaultPlan(events=(TaskKill(6.0, 0),))  # "a" departs at 6.0
        machine = TreeMachine(N)
        algo = make_algorithm("greedy", machine, d=1.0)
        result, intervals = run_traced_with_faults(machine, algo, sigma, plan)
        assert result.metrics.faults.num_kills == 0
        assert intervals[0][-1][1] == 6.0

    def test_effective_end_times_rules(self):
        sigma = _small_sequence()
        ends = effective_end_times(sigma.tasks, [(1, 5.0), (0, 6.0), (2, 1.0)])
        assert ends[1] == 5.0          # effective kill
        assert ends[0] == 6.0          # kill at departure instant: void
        assert ends[2] == 10.0         # kill before arrival: void


class TestDegradedExecution:
    @pytest.mark.parametrize("name", algorithm_names())
    def test_referees_agree_for_every_algorithm(self, name):
        sigma = _small_sequence()
        plan = _plan()
        machine = TreeMachine(N)
        algo = make_algorithm(name, machine, d=1.0, seed=2)
        result, intervals = run_traced_with_faults(machine, algo, sigma, plan)
        audit = audit_run(machine, sigma, intervals, fault_plan=plan)
        assert audit.ok, audit.violations
        oracle = oracle_audit(
            N, tasks_table(sigma), intervals, faults=faults_table(plan)
        )
        assert oracle.ok, oracle.violations
        assert audit.max_load == oracle.max_load
        assert result.max_load >= audit.max_load

    def test_orphans_are_salvaged_off_the_dead_half(self):
        sigma = _small_sequence()
        machine = TreeMachine(N)
        algo = make_algorithm("basic", machine)
        result, intervals = run_traced_with_faults(machine, algo, sigma, _plan())
        stats = result.metrics.faults
        assert stats.num_failures == 1
        assert stats.orphaned_tasks >= 1
        assert stats.num_salvage_repacks >= 1
        h = machine.hierarchy
        for tid, segs in intervals.items():
            for start, end, node in segs:
                if max(start, 3.0) < min(end, 8.0):  # during the failure
                    assert not h.contains(2, node) and not h.contains(node, 2)

    def test_salvage_metered_separately_from_reallocations(self):
        sigma = _small_sequence()
        machine = TreeMachine(N)
        algo = make_algorithm("periodic", machine, d=math.inf)
        result, _ = run_traced_with_faults(machine, algo, sigma, _plan())
        # d = inf: the algorithm itself never reallocates; every move is
        # salvage, charged to FaultStats.
        assert result.metrics.realloc.num_reallocations == 0
        assert result.metrics.faults.num_salvage_repacks >= 1

    def test_degradation_gauges(self):
        sigma = _small_sequence()
        machine = TreeMachine(N)
        algo = make_algorithm("greedy", machine, d=1.0)
        result, _ = run_traced_with_faults(machine, algo, sigma, _plan())
        stats = result.metrics.faults
        assert stats.min_surviving_pes == N // 2
        assert stats.peak_degraded_lstar >= 1
        assert stats.load_overshoot_vs_degraded >= 0

    def test_generated_plans_run_clean_for_all_algorithms(self):
        for seed in range(4):
            rng = np.random.default_rng(seed)
            sigma = churn_sequence(N, 80, np.random.default_rng(100 + seed))
            plan = generate_fault_plan(N, sigma, rng)
            for name in algorithm_names():
                machine = TreeMachine(N)
                algo = make_algorithm(name, machine, d=1.0, seed=seed)
                result, intervals = run_traced_with_faults(
                    machine, algo, sigma, plan
                )
                audit = audit_run(machine, sigma, intervals, fault_plan=plan)
                assert audit.ok, (name, seed, audit.violations)

"""Salvage repacking: the degraded Lemma 1, exactly."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SalvageError
from repro.faults.salvage import DegradedCopySet, salvage_repack
from repro.machines.tree import TreeMachine
from repro.tasks.task import Task
from repro.types import TaskId, ceil_div


def _tasks(sizes):
    return [Task(TaskId(i), s, 0.0, math.inf) for i, s in enumerate(sizes)]


class TestDegradedCopySet:
    def test_copies_exclude_failed_subtrees(self):
        machine = TreeMachine(16)
        copies = DegradedCopySet(machine.hierarchy, blocked_nodes=(2,))
        placed = []
        # Only the right half (8 PEs) is usable per copy.
        for size in (4, 4, 4):
            _copy, node = copies.first_fit(size)
            placed.append(node)
        assert copies.num_copies == 2
        h = machine.hierarchy
        for node in placed:
            assert not h.contains(2, node) and not h.contains(node, 2)


class TestSalvageRepack:
    def test_uses_exactly_degraded_lemma1_copies(self):
        machine = TreeMachine(16)
        # Fail the left half: 8 survivors, w_max = 4 respects granularity.
        for sizes in ([4, 4, 4], [4, 2, 2, 1, 1], [2] * 9, [1] * 17):
            tasks = _tasks(sizes)
            result = salvage_repack(machine.hierarchy, tasks, failed_nodes=(2,))
            volume = sum(sizes)
            assert result.num_copies == ceil_div(volume, 8)
            assert set(result.mapping) == {t.task_id for t in tasks}

    def test_granularity_violation_raises_salvage_error(self):
        machine = TreeMachine(8)
        # Alternating failed leaves: 4 survivors but no alive size-4 subtree.
        failed = (8, 10, 12, 14)
        tasks = _tasks([4])
        with pytest.raises(SalvageError):
            salvage_repack(machine.hierarchy, tasks, failed_nodes=failed)

    @given(
        data=st.data(),
        num_tasks=st.integers(min_value=0, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_salvage_never_lands_on_failed_pes(self, data, num_tasks):
        machine = TreeMachine(16)
        h = machine.hierarchy
        failed_node = data.draw(st.sampled_from([2, 3, 4, 5, 6, 7]))
        w_max = min(4, h.subtree_size(failed_node))
        sizes = [
            data.draw(st.sampled_from([1, 2, w_max])) for _ in range(num_tasks)
        ]
        tasks = _tasks(sizes)
        result = salvage_repack(h, tasks, failed_nodes=(failed_node,))
        for tid, node in result.mapping.items():
            assert not h.contains(failed_node, node)
            assert not h.contains(node, failed_node)
        # Peak load is the copy count: exactly ceil(S / N_surviving).
        surviving = 16 - h.subtree_size(failed_node)
        expected = ceil_div(sum(sizes), surviving) if sizes else 0
        assert result.num_copies == expected

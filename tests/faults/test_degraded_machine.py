"""DegradedView: failure bookkeeping vs a brute-force leaf-mask oracle."""

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.errors import FaultPlanError, PlacementError
from repro.machines.tree import TreeMachine
from repro.types import ceil_div

N = 16


def _leaf_span(node, n=N):
    lo, hi = node, node
    while lo < n:
        lo, hi = 2 * lo, 2 * hi + 1
    return lo - n, hi - n + 1


class TestDegradedView:
    def test_healthy_view(self):
        view = TreeMachine(N).degraded_view()
        assert not view.is_degraded
        assert view.surviving_pes == N
        assert view.failed_nodes == ()
        assert view.alive_leaf_mask().all()
        assert view.maximal_alive_subtrees() == [1]
        assert view.min_alive_subtree_size() == N

    def test_fail_and_repair(self):
        view = TreeMachine(N).degraded_view()
        view.fail(2)  # left half
        assert view.is_degraded
        assert view.surviving_pes == N // 2
        assert not view.alive_leaf_mask()[: N // 2].any()
        assert view.maximal_alive_subtrees() == [3]
        view.repair(2)
        assert not view.is_degraded
        assert view.surviving_pes == N

    def test_overlapping_failures_rejected(self):
        view = TreeMachine(N).degraded_view()
        view.fail(2)
        with pytest.raises(FaultPlanError):
            view.fail(4)  # inside the failed subtree
        with pytest.raises(FaultPlanError):
            view.fail(1)  # contains the failed subtree

    def test_cannot_fail_everything(self):
        view = TreeMachine(N).degraded_view()
        view.fail(2)
        with pytest.raises(FaultPlanError):
            view.fail(3)

    def test_repair_of_unfailed_node_rejected(self):
        view = TreeMachine(N).degraded_view()
        with pytest.raises(FaultPlanError):
            view.repair(2)

    def test_validate_placement(self):
        view = TreeMachine(N).degraded_view()
        view.fail(2)
        with pytest.raises(PlacementError):
            view.validate_placement(4)  # inside the dead half
        view.validate_placement(3)  # alive half is fine

    def test_degraded_optimal_load(self):
        view = TreeMachine(N).degraded_view()
        view.fail(2)
        assert view.degraded_optimal_load(0) == 0
        assert view.degraded_optimal_load(8) == 1
        assert view.degraded_optimal_load(9) == 2


class DegradedViewMachine(RuleBasedStateMachine):
    """Stateful check: the view vs an independent boolean leaf mask."""

    def __init__(self):
        super().__init__()
        self.view = TreeMachine(N).degraded_view()
        self.dead = np.zeros(N, dtype=bool)
        self.failed: set[int] = set()

    @rule(node=st.integers(min_value=1, max_value=2 * N - 1))
    def fail_node(self, node):
        lo, hi = _leaf_span(node)
        would_die = self.dead.copy()
        would_die[lo:hi] = True
        overlaps = any(
            (_leaf_span(f)[0] < hi and lo < _leaf_span(f)[1]) for f in self.failed
        )
        if overlaps or would_die.all():
            with pytest.raises(FaultPlanError):
                self.view.fail(node)
        else:
            self.view.fail(node)
            self.dead = would_die
            self.failed.add(node)

    @precondition(lambda self: self.failed)
    @rule(data=st.data())
    def repair_node(self, data):
        node = data.draw(st.sampled_from(sorted(self.failed)))
        self.view.repair(node)
        lo, hi = _leaf_span(node)
        self.dead[lo:hi] = False
        self.failed.discard(node)

    @invariant()
    def masks_agree(self):
        assert np.array_equal(self.view.alive_leaf_mask(), ~self.dead)
        assert self.view.surviving_pes == int((~self.dead).sum())
        assert self.view.is_degraded == bool(self.dead.any())
        assert set(self.view.failed_nodes) == self.failed

    @invariant()
    def maximal_alive_subtrees_cover_exactly_the_alive_leaves(self):
        covered = np.zeros(N, dtype=bool)
        for node in self.view.maximal_alive_subtrees():
            lo, hi = _leaf_span(node)
            assert not covered[lo:hi].any(), "subtrees overlap"
            covered[lo:hi] = True
        assert np.array_equal(covered, ~self.dead)

    @invariant()
    def degraded_lstar_matches_ceiling(self):
        surviving = int((~self.dead).sum())
        if surviving:
            for volume in (0, 1, surviving, surviving + 1, 3 * N):
                expected = ceil_div(volume, surviving) if volume else 0
                assert self.view.degraded_optimal_load(volume) == expected


DegradedViewMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestDegradedViewStateful = DegradedViewMachine.TestCase

"""Metamorphic and cross-model property tests.

These don't test one function against an oracle; they test that *pairs* of
independently implemented models agree where theory says they must:

* the discrete scheduler converges to the fluid slowdown model when its
  overhead knobs are zero;
* doubling a workload (two copies of every task) doubles L* and exactly
  doubles A_C's load;
* replaying a run through the simulator twice gives identical traces
  (no hidden global state);
* the lazy A_M never reallocates more often than the eager A_M on the same
  sequence;
* running any algorithm on a sequence and on its restriction to a prefix
  horizon gives identical prefixes of the load series.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.greedy import GreedyAlgorithm
from repro.core.optimal import OptimalReallocatingAlgorithm
from repro.core.periodic import PeriodicReallocationAlgorithm
from repro.machines.tree import TreeMachine
from repro.sim.runner import run
from repro.tasks.events import Arrival, Departure
from repro.tasks.sequence import TaskSequence
from repro.tasks.task import Task
from repro.types import TaskId
from tests.conftest import task_sequences


class TestSchedulerVsFluid:
    @given(st.integers(1, 5), st.integers(1, 4))
    @settings(max_examples=15, deadline=None)
    def test_zero_overhead_scheduler_matches_fluid_slowdown(
        self, num_tasks, work_quanta
    ):
        """Same batch, same placements: discrete completion times approach
        the fluid model's prediction within one quantum per task."""
        from repro.sched.roundrobin import SchedulerConfig, simulate_round_robin
        from repro.sim.slowdown import measure_slowdowns_dynamic

        m = TreeMachine(4)
        work = float(work_quanta)
        tasks = [Task(TaskId(i), 1, 0.0, work=work) for i in range(num_tasks)]
        leaf = m.hierarchy.leaf_node(0)
        placements = {t.task_id: leaf for t in tasks}
        config = SchedulerConfig(quantum=0.25)
        discrete = simulate_round_robin(m, tasks, placements, config)

        # Fluid: all share leaf 0; the batch drains together at rate 1/k
        # with k shrinking as tasks complete.  For identical works the
        # fluid completion time of every task is num_tasks * work.
        fluid_completion = num_tasks * work
        for tid in placements:
            measured = discrete.per_task[tid].completion_time
            assert measured == pytest.approx(fluid_completion, abs=num_tasks * 0.25)


class TestWorkloadScaling:
    @given(task_sequences(num_pes=8, max_events=30))
    @settings(max_examples=40, deadline=None)
    def test_doubling_tasks_doubles_optimal(self, seq):
        doubled = _doubled(seq)
        assert doubled.peak_active_size == 2 * seq.peak_active_size
        n = 8
        m1, m2 = TreeMachine(n), TreeMachine(n)
        base = run(m1, OptimalReallocatingAlgorithm(m1), seq)
        double = run(m2, OptimalReallocatingAlgorithm(m2), doubled)
        # A_C is exactly optimal on both, and ceil(2s/N) <= 2 ceil(s/N).
        assert double.max_load <= 2 * max(base.max_load, 1)
        assert double.max_load == doubled.optimal_load(n)


def _doubled(seq: TaskSequence) -> TaskSequence:
    """Two copies of every task, co-located in time."""
    events = []
    offset = max((int(t) for t in seq.tasks), default=-1) + 1
    for ev in seq:
        if isinstance(ev, Arrival):
            t = ev.task
            clone = Task(TaskId(int(t.task_id) + offset), t.size, t.arrival,
                         t.departure, t.work)
            events.append(ev)
            events.append(Arrival(ev.time, clone))
        else:
            events.append(ev)
            events.append(Departure(ev.time, TaskId(int(ev.task_id) + offset)))
    return TaskSequence(events)


class TestDeterminism:
    @given(task_sequences(num_pes=16, max_events=40))
    @settings(max_examples=30, deadline=None)
    def test_identical_reruns(self, seq):
        loads = []
        for _ in range(2):
            m = TreeMachine(16)
            result = run(m, PeriodicReallocationAlgorithm(m, 1), seq)
            loads.append(result.metrics.series.max_loads)
        assert loads[0] == loads[1]


class TestLazyVsEager:
    @given(task_sequences(num_pes=16, max_events=50), st.sampled_from([1, 2]))
    @settings(max_examples=40, deadline=None)
    def test_lazy_repacks_at_most_as_often(self, seq, d):
        m1, m2 = TreeMachine(16), TreeMachine(16)
        eager = run(m1, PeriodicReallocationAlgorithm(m1, d), seq)
        lazy = run(m2, PeriodicReallocationAlgorithm(m2, d, lazy=True), seq)
        assert (
            lazy.metrics.realloc.num_reallocations
            <= eager.metrics.realloc.num_reallocations
        )

    @given(task_sequences(num_pes=8, max_events=40), st.sampled_from([1, 2]))
    @settings(max_examples=40, deadline=None)
    def test_both_meet_the_thm42_bound(self, seq, d):
        from repro.core.bounds import deterministic_upper_factor

        factor = deterministic_upper_factor(8, d)
        for lazy in (False, True):
            m = TreeMachine(8)
            result = run(m, PeriodicReallocationAlgorithm(m, d, lazy=lazy), seq)
            assert result.max_load <= factor * max(1, result.optimal_load)


class TestPrefixConsistency:
    @given(task_sequences(num_pes=8, max_events=40), st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_prefix_run_matches_full_run_prefix(self, seq, frac):
        if len(seq) == 0:
            return
        horizon = seq[max(0, int(frac * (len(seq) - 1)))].time
        prefix = seq.restricted_to_horizon(horizon)
        m1, m2 = TreeMachine(8), TreeMachine(8)
        full = run(m1, GreedyAlgorithm(m1), seq)
        part = run(m2, GreedyAlgorithm(m2), prefix)
        k = len(prefix)
        assert full.metrics.series.max_loads[:k] == part.metrics.series.max_loads

"""Property-based verification of every theorem in the paper.

Each test runs an algorithm over randomly generated (or adversarially
constructed) task sequences and asserts the corresponding bound *exactly* —
these are theorems, not tendencies, so any violation is a bug in either the
implementation or the understanding of the paper.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.deterministic import DeterministicAdversary
from repro.adversary.randomized import sigma_r_sequence
from repro.core.basic import BasicAlgorithm
from repro.core.bounds import (
    basic_copy_bound,
    deterministic_lower_factor,
    deterministic_upper_factor,
    greedy_upper_bound_factor,
    randomized_upper_factor,
)
from repro.core.greedy import GreedyAlgorithm
from repro.core.optimal import OptimalReallocatingAlgorithm
from repro.core.periodic import PeriodicReallocationAlgorithm
from repro.core.randomized import ObliviousRandomAlgorithm
from repro.machines.tree import TreeMachine
from repro.sim.runner import run
from tests.conftest import task_sequences

MACHINE_SIZES = [4, 8, 16, 32]


class TestTheorem31_OptimalAlgorithm:
    """A_C achieves exactly L* on every task sequence."""

    @given(st.sampled_from(MACHINE_SIZES), st.data())
    @settings(max_examples=80, deadline=None)
    def test_load_equals_lstar(self, n, data):
        seq = data.draw(task_sequences(num_pes=n, max_events=50))
        machine = TreeMachine(n)
        result = run(machine, OptimalReallocatingAlgorithm(machine), seq)
        assert result.max_load == seq.optimal_load(n)

    def test_exactness_not_just_upper_bound(self):
        """L* is a lower bound for *any* algorithm, so equality is exact."""
        n = 8
        machine = TreeMachine(n)
        rng = np.random.default_rng(0)
        from repro.workloads.generators import poisson_sequence

        seq = poisson_sequence(n, 200, rng, utilization=2.0)
        result = run(machine, OptimalReallocatingAlgorithm(machine), seq)
        assert result.max_load == result.optimal_load > 1


class TestTheorem41_Greedy:
    """A_G <= ceil((log N + 1)/2) * L* on every task sequence."""

    @given(st.sampled_from(MACHINE_SIZES), st.data())
    @settings(max_examples=80, deadline=None)
    def test_upper_bound(self, n, data):
        seq = data.draw(task_sequences(num_pes=n, max_events=60))
        machine = TreeMachine(n)
        result = run(machine, GreedyAlgorithm(machine), seq)
        bound = greedy_upper_bound_factor(n)
        assert result.max_load <= bound * result.optimal_load

    def test_bound_is_reached_by_the_adversary(self):
        """The factor is tight: the Thm 4.3 construction attains it."""
        for n in (4, 16, 64, 256):
            adversary = DeterministicAdversary(TreeMachine(n), float("inf"))
            outcome = adversary.run(GreedyAlgorithm(adversary.machine))
            assert outcome.optimal_load == 1
            assert outcome.max_load >= deterministic_lower_factor(
                n, float(adversary.machine.log_num_pes)
            )


class TestLemma2_Basic:
    """A_B uses at most ceil(S/N) copies, S = total arrival volume."""

    @given(st.sampled_from(MACHINE_SIZES), st.data())
    @settings(max_examples=80, deadline=None)
    def test_load_bound(self, n, data):
        seq = data.draw(task_sequences(num_pes=n, max_events=60))
        machine = TreeMachine(n)
        algo = BasicAlgorithm(machine)
        result = run(machine, algo, seq)
        bound = basic_copy_bound(seq.total_arrival_size, n)
        assert algo.num_copies <= bound
        assert result.max_load <= bound


class TestTheorem42_Periodic:
    """A_M <= min{d+1, ceil((log N + 1)/2)} * L* for every d."""

    @given(
        st.sampled_from(MACHINE_SIZES),
        st.sampled_from([0, 1, 2, 3, 5, float("inf")]),
        st.booleans(),
        st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_upper_bound(self, n, d, lazy, data):
        seq = data.draw(task_sequences(num_pes=n, max_events=50))
        machine = TreeMachine(n)
        algo = PeriodicReallocationAlgorithm(machine, d, lazy=lazy)
        result = run(machine, algo, seq)
        factor = deterministic_upper_factor(n, d)
        assert result.max_load <= factor * max(result.optimal_load, 1)

    @given(st.sampled_from(MACHINE_SIZES), st.data())
    @settings(max_examples=40, deadline=None)
    def test_d_zero_is_optimal(self, n, data):
        seq = data.draw(task_sequences(num_pes=n, max_events=40))
        machine = TreeMachine(n)
        result = run(machine, PeriodicReallocationAlgorithm(machine, 0), seq)
        assert result.max_load == seq.optimal_load(n)

    @given(st.sampled_from(MACHINE_SIZES), st.data())
    @settings(max_examples=40, deadline=None)
    def test_large_d_matches_greedy(self, n, data):
        """d >= g makes A_M literally A_G."""
        seq = data.draw(task_sequences(num_pes=n, max_events=40))
        m1, m2 = TreeMachine(n), TreeMachine(n)
        load_am = run(m1, PeriodicReallocationAlgorithm(m1, 99), seq).max_load
        load_ag = run(m2, GreedyAlgorithm(m2), seq).max_load
        assert load_am == load_ag


class TestTheorem43_Adversary:
    """The adversary forces >= ceil((min{d, log N} + 1)/2) with L* = 1."""

    @pytest.mark.parametrize("n", [4, 16, 64, 256])
    @pytest.mark.parametrize("d", [1, 2, 3, 4, 8, float("inf")])
    def test_forces_lower_bound_on_am(self, n, d):
        adversary = DeterministicAdversary(TreeMachine(n), d)
        algo = PeriodicReallocationAlgorithm(adversary.machine, d)
        outcome = adversary.run(algo)
        effective_d = d if not math.isinf(d) else float(adversary.machine.log_num_pes)
        assert outcome.optimal_load == 1
        assert outcome.max_load >= deterministic_lower_factor(n, effective_d)

    @pytest.mark.parametrize("n", [16, 64])
    def test_forces_lower_bound_on_greedy(self, n):
        adversary = DeterministicAdversary(TreeMachine(n), float("inf"))
        outcome = adversary.run(GreedyAlgorithm(adversary.machine))
        assert outcome.max_load >= deterministic_lower_factor(
            n, float(adversary.machine.log_num_pes)
        )

    @pytest.mark.parametrize("n", [16, 64])
    def test_forces_lower_bound_on_basic(self, n):
        adversary = DeterministicAdversary(TreeMachine(n), float("inf"))
        outcome = adversary.run(BasicAlgorithm(adversary.machine))
        assert outcome.max_load >= deterministic_lower_factor(
            n, float(adversary.machine.log_num_pes)
        )

    def test_volume_never_exceeds_n(self):
        n = 64
        adversary = DeterministicAdversary(TreeMachine(n), float("inf"))
        outcome = adversary.run(GreedyAlgorithm(adversary.machine))
        assert outcome.peak_active_size <= n

    def test_recorded_sequence_is_replayable(self):
        """The emitted static sequence forces the same load on a replay."""
        n = 16
        adversary = DeterministicAdversary(TreeMachine(n), float("inf"))
        outcome = adversary.run(GreedyAlgorithm(adversary.machine))
        machine = TreeMachine(n)
        replay = run(machine, GreedyAlgorithm(machine), outcome.sequence)
        assert replay.max_load == outcome.max_load

    def test_respects_reallocation_budget(self):
        """Against A_M(d) the sequence volume stays within the no-realloc regime."""
        n = 64
        for d in (2, 3, 4):
            adversary = DeterministicAdversary(TreeMachine(n), d)
            algo = PeriodicReallocationAlgorithm(adversary.machine, d)
            outcome = adversary.run(algo)
            # Lemma: total arrivals <= p*N <= d*N.
            assert outcome.sequence.total_arrival_size <= d * n


class TestTheorem51_Randomized:
    """E[max load] of oblivious random placement <= (3logN/loglogN + 1) L*."""

    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_expected_load_within_bound(self, n):
        from repro.tasks.builder import SequenceBuilder

        b = SequenceBuilder()
        for i in range(n):
            b.arrive(f"t{i}", size=1)
        seq = b.build()  # L* = 1
        peaks = []
        for seed in range(25):
            machine = TreeMachine(n)
            algo = ObliviousRandomAlgorithm(machine, np.random.default_rng(seed))
            peaks.append(run(machine, algo, seq).max_load)
        assert float(np.mean(peaks)) <= randomized_upper_factor(n)

    @given(st.sampled_from([8, 16, 32]), st.integers(0, 100), st.data())
    @settings(max_examples=30, deadline=None)
    def test_every_single_run_is_legal(self, n, seed, data):
        """Even the worst random draw yields valid placements (no bound on a
        single run, but the run must complete and be consistent)."""
        seq = data.draw(task_sequences(num_pes=n, max_events=40))
        machine = TreeMachine(n)
        algo = ObliviousRandomAlgorithm(machine, np.random.default_rng(seed))
        result = run(machine, algo, seq)
        assert result.max_load >= seq.optimal_load(n) * 0  # completed


class TestTheorem52_SigmaR:
    """sigma_r keeps L* small while randomized placement suffers."""

    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_lstar_stays_small(self, n):
        """Lemma 5: s(sigma_r) <= N (whp); at these sizes it always holds."""
        for seed in range(10):
            seq = sigma_r_sequence(n, np.random.default_rng(seed))
            assert seq.peak_active_size <= n

    def test_oblivious_suffers_more_than_lstar(self):
        n = 256
        ratios = []
        for seed in range(15):
            seq = sigma_r_sequence(n, np.random.default_rng(seed), num_phases=3)
            machine = TreeMachine(n)
            algo = ObliviousRandomAlgorithm(machine, np.random.default_rng(seed + 1000))
            result = run(machine, algo, seq)
            ratios.append(result.max_load / max(1, result.optimal_load))
        assert float(np.mean(ratios)) > 1.5

    def test_phases_and_sizes(self):
        from repro.adversary.randomized import sigma_r_phase_sizes

        # N = 256, log N = 8: sizes 1, 8, 64 for 3 phases.
        assert sigma_r_phase_sizes(256, 3) == [1, 8, 64]

    def test_survival_probability_validated(self):
        with pytest.raises(ValueError):
            sigma_r_sequence(16, np.random.default_rng(0), survival_probability=1.5)


class TestTheoremsOnWaveDrainPatterns:
    """The same invariants on structured (fragmentation-prone) inputs."""

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_greedy_bound_on_waves(self, data):
        from tests.conftest import wave_drain_sequences

        seq = data.draw(wave_drain_sequences(num_pes=16))
        machine = TreeMachine(16)
        result = run(machine, GreedyAlgorithm(machine), seq)
        assert result.max_load <= greedy_upper_bound_factor(16) * max(
            1, result.optimal_load
        )

    @given(st.sampled_from([0, 1, 2]), st.booleans(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_periodic_bound_on_waves(self, d, lazy, data):
        from tests.conftest import wave_drain_sequences

        seq = data.draw(wave_drain_sequences(num_pes=16))
        machine = TreeMachine(16)
        algo = PeriodicReallocationAlgorithm(machine, d, lazy=lazy)
        result = run(machine, algo, seq)
        factor = deterministic_upper_factor(16, d)
        assert result.max_load <= factor * max(1, result.optimal_load)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_optimal_exact_on_waves(self, data):
        from tests.conftest import wave_drain_sequences

        seq = data.draw(wave_drain_sequences(num_pes=16))
        machine = TreeMachine(16)
        result = run(machine, OptimalReallocatingAlgorithm(machine), seq)
        assert result.max_load == seq.optimal_load(16)


class TestTheorem51_HoeffdingTail:
    """Distributional validation: the Hoeffding tail the proof actually uses.

    The Theorem 5.1 proof bounds, for a fixed PE, Pr[load >= k*L*] by
    (e/k)^(k*L*).  We check the *empirical* tail of the max-load (which is
    what a union bound over PEs turns the per-PE tail into: N times the
    per-PE bound) against N * (e/k)^k on the L* = 1 unit-task workload.
    """

    def test_empirical_tail_under_union_bound(self):
        import math as _math

        from repro.tasks.builder import SequenceBuilder

        n = 64
        b = SequenceBuilder()
        for i in range(n):
            b.arrive(f"t{i}", size=1)
        seq = b.build()
        reps = 300
        peaks = []
        for seed in range(reps):
            machine = TreeMachine(n)
            algo = ObliviousRandomAlgorithm(machine, np.random.default_rng(seed))
            peaks.append(run(machine, algo, seq).max_load)
        peaks = np.asarray(peaks)
        for k in (6, 8, 10):
            empirical = float((peaks >= k).mean())
            union_bound = min(1.0, n * (_math.e / k) ** k)
            # Generous slack for 300-sample noise on small probabilities.
            assert empirical <= union_bound + 0.02, (
                f"k={k}: empirical {empirical} vs bound {union_bound}"
            )

    def test_tail_decays_with_k(self):
        from repro.tasks.builder import SequenceBuilder

        n = 64
        b = SequenceBuilder()
        for i in range(n):
            b.arrive(f"t{i}", size=1)
        seq = b.build()
        peaks = []
        for seed in range(200):
            machine = TreeMachine(n)
            algo = ObliviousRandomAlgorithm(machine, np.random.default_rng(seed + 10_000))
            peaks.append(run(machine, algo, seq).max_load)
        peaks = np.asarray(peaks)
        tails = [float((peaks >= k).mean()) for k in (3, 5, 7, 9)]
        assert all(a >= b for a, b in zip(tails, tails[1:]))
        assert tails[-1] < 0.1  # far tail is rare, as Hoeffding demands


class TestHierarchicallyDecomposableClaim:
    """The paper's §1 claim: every result holds on any hierarchically
    decomposable machine, not just the tree — verified by running the
    theorem invariants on all five topologies."""

    @staticmethod
    def _machines(n):
        from repro.machines.butterfly import Butterfly
        from repro.machines.fattree import FatTree
        from repro.machines.hypercube import Hypercube
        from repro.machines.mesh import Mesh2D

        return [
            TreeMachine(n),
            FatTree(n),
            Hypercube(n),
            Hypercube(n, layout="gray"),
            Butterfly(n),
            Mesh2D(n),
        ]

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_theorem31_on_every_topology(self, data):
        seq = data.draw(task_sequences(num_pes=16, max_events=35))
        for machine in self._machines(16):
            result = run(machine, OptimalReallocatingAlgorithm(machine), seq)
            assert result.max_load == seq.optimal_load(16), machine.topology_name

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_theorem41_on_every_topology(self, data):
        seq = data.draw(task_sequences(num_pes=16, max_events=35))
        bound = greedy_upper_bound_factor(16)
        for machine in self._machines(16):
            result = run(machine, GreedyAlgorithm(machine), seq)
            assert result.max_load <= bound * max(1, result.optimal_load), (
                machine.topology_name
            )

    @given(st.sampled_from([1, 2]), st.data())
    @settings(max_examples=25, deadline=None)
    def test_theorem42_on_every_topology(self, d, data):
        seq = data.draw(task_sequences(num_pes=16, max_events=35))
        factor = deterministic_upper_factor(16, d)
        for machine in self._machines(16):
            algo = PeriodicReallocationAlgorithm(machine, d)
            result = run(machine, algo, seq)
            assert result.max_load <= factor * max(1, result.optimal_load), (
                machine.topology_name
            )

    def test_adversary_forces_bound_on_every_topology(self):
        for machine in self._machines(64):
            adversary = DeterministicAdversary(machine, float("inf"))
            outcome = adversary.run(GreedyAlgorithm(machine))
            assert outcome.optimal_load == 1, machine.topology_name
            assert outcome.max_load >= deterministic_lower_factor(
                64, float(machine.log_num_pes)
            ), machine.topology_name

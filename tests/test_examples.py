"""Smoke tests for the example scripts.

Every example must import cleanly and expose a ``main()``; the two
fastest ones are executed end to end so a public-API break that only
manifests in example code is caught by the suite (the slower examples are
exercised implicitly — they share all their drivers with the benches).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))
FAST_EXAMPLES = ["quickstart", "fragmentation_story"]


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_expected_set_present(self):
        assert set(ALL_EXAMPLES) == {
            "quickstart",
            "tradeoff_study",
            "adversarial_analysis",
            "datacenter_timesharing",
            "topology_comparison",
            "capacity_planning",
            "fragmentation_story",
        }

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_imports_and_has_main(self, name):
        module = _load(name)
        assert callable(getattr(module, "main", None)), f"{name} lacks main()"

    @pytest.mark.parametrize("name", FAST_EXAMPLES)
    def test_fast_examples_run(self, name, capsys):
        module = _load(name)
        module.main()
        out = capsys.readouterr().out
        assert len(out) > 200  # produced a real report, not a stub

"""Tests for the algorithm registry."""

import numpy as np
import pytest

from repro.core.registry import (
    ALGORITHM_SPECS,
    algorithm_names,
    make_algorithm,
)
from repro.machines.tree import TreeMachine
from repro.sim.runner import run
from repro.tasks.builder import figure1_sequence


class TestRegistry:
    def test_names_sorted_and_complete(self):
        names = algorithm_names()
        assert names == sorted(names)
        assert {"optimal", "greedy", "basic", "periodic", "random"} <= set(names)

    def test_every_spec_constructs_and_runs(self):
        seq = figure1_sequence()
        for name in algorithm_names():
            machine = TreeMachine(4)
            algo = make_algorithm(name, machine, d=1, seed=5)
            result = run(machine, algo, seq)
            assert result.max_load >= 1, name

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            make_algorithm("nope", TreeMachine(4))

    def test_options_routed(self):
        m = TreeMachine(16)
        lazy = make_algorithm("periodic", m, d=3, lazy=True)
        assert lazy.reallocation_parameter == 3
        assert "lazy" in lazy.name
        inc = make_algorithm("incremental", TreeMachine(16), d=2, moves=7)
        assert "k=7" in inc.name
        ff = make_algorithm("firstfit", TreeMachine(16), threshold=3)
        assert "<3" in ff.name

    def test_irrelevant_options_ignored(self):
        m = TreeMachine(4)
        algo = make_algorithm("greedy", m, d=99, lazy=True, moves=3, seed=1)
        assert algo.name == "A_G"

    def test_rng_override(self):
        m = TreeMachine(8)
        a = make_algorithm("random", m, rng=np.random.default_rng(7))
        b = make_algorithm("random", TreeMachine(8), rng=np.random.default_rng(7))
        from repro.tasks.task import Task
        from repro.types import TaskId

        t = Task(TaskId(0), 2, 0.0)
        assert a.on_arrival(t).node == b.on_arrival(t).node

    def test_metadata_consistency(self):
        for name, spec in ALGORITHM_SPECS.items():
            assert spec.name == name
            machine = TreeMachine(8)
            algo = spec.build(machine)
            assert algo.is_randomized == spec.randomized, name

    def test_reallocates_flag_matches_behaviour(self):
        """Specs marked non-reallocating must have d = inf."""
        import math

        for name, spec in ALGORITHM_SPECS.items():
            algo = spec.build(TreeMachine(8), d=1)
            if not spec.reallocates:
                assert math.isinf(algo.reallocation_parameter), name


class TestLoadBounds:
    """The registry's machine-checkable bound table (used by repro.verify)."""

    def test_bounded_names_are_the_deterministic_guaranteed_ones(self):
        from repro.core.registry import bounded_algorithm_names

        assert bounded_algorithm_names() == ["basic", "greedy", "optimal", "periodic"]

    def test_randomized_and_baselines_carry_no_bound(self):
        for name in ("random", "twochoice", "hybrid", "roundrobin", "worstfit"):
            assert ALGORITHM_SPECS[name].load_bound is None, name

    def test_bound_values_match_the_closed_forms(self):
        import math

        from repro.core.bounds import (
            basic_copy_bound,
            deterministic_upper_factor,
            greedy_upper_bound_factor,
        )

        n, d, lstar, total = 64, 2.0, 3, 200
        assert ALGORITHM_SPECS["optimal"].load_bound(n, d, lstar, total) == lstar
        assert ALGORITHM_SPECS["greedy"].load_bound(n, d, lstar, total) == (
            greedy_upper_bound_factor(n) * lstar
        )
        assert ALGORITHM_SPECS["basic"].load_bound(n, d, lstar, total) == (
            basic_copy_bound(total, n)
        )
        assert ALGORITHM_SPECS["periodic"].load_bound(n, d, lstar, total) == (
            deterministic_upper_factor(n, d) * lstar
        )
        assert ALGORITHM_SPECS["periodic"].load_bound(n, math.inf, lstar, total) == (
            greedy_upper_bound_factor(n) * lstar
        )

    def test_only_optimal_is_exact(self):
        exact = [n for n, s in ALGORITHM_SPECS.items() if s.bound_exact]
        assert exact == ["optimal"]

"""Unit and property tests for the reallocation procedure A_R (Lemma 1)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.repack import repack
from repro.machines.hierarchy import Hierarchy
from repro.tasks.task import Task
from repro.types import TaskId, ceil_div


def _tasks(sizes):
    return [Task(TaskId(i), s, float(i)) for i, s in enumerate(sizes)]


class TestRepackBasics:
    def test_empty_set(self):
        result = repack(Hierarchy(8), [])
        assert result.num_copies == 0
        assert result.mapping == {}

    def test_single_task(self):
        result = repack(Hierarchy(8), _tasks([4]))
        assert result.num_copies == 1
        assert result.mapping[TaskId(0)] == 2  # leftmost 4-PE submachine

    def test_perfect_packing_one_copy(self):
        # 4 + 2 + 1 + 1 = 8 fits one copy of an 8-PE machine exactly.
        result = repack(Hierarchy(8), _tasks([1, 2, 4, 1]))
        assert result.num_copies == 1

    def test_decreasing_size_order_determines_layout(self):
        result = repack(Hierarchy(8), _tasks([1, 4, 2]))
        h = Hierarchy(8)
        # Largest first: size 4 at node 2 (PEs 0-3), size 2 at node 6
        # (PEs 4-5), size 1 at leaf PE 6.
        assert result.mapping[TaskId(1)] == 2
        assert result.mapping[TaskId(2)] == 6
        assert h.leaf_span(result.mapping[TaskId(0)]) == (6, 7)

    def test_overflow_creates_second_copy(self):
        result = repack(Hierarchy(4), _tasks([4, 1]))
        assert result.num_copies == 2
        assert result.copy_of[TaskId(0)] == 0
        assert result.copy_of[TaskId(1)] == 1

    def test_deterministic_tie_break_by_id(self):
        a = repack(Hierarchy(8), _tasks([2, 2, 2]))
        b = repack(Hierarchy(8), list(reversed(_tasks([2, 2, 2]))))
        assert a.mapping == b.mapping


class TestLemma1:
    @given(st.lists(st.integers(0, 3).map(lambda x: 1 << x), min_size=0, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_copy_count_is_exactly_ceil_s_over_n(self, sizes):
        """Lemma 1: A_R uses exactly ceil(S/N) copies."""
        n = 8
        result = repack(Hierarchy(n), _tasks(sizes))
        assert result.num_copies == ceil_div(sum(sizes), n)

    @given(st.lists(st.integers(0, 4).map(lambda x: 1 << x), min_size=1, max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_no_overlap_within_copy(self, sizes):
        n = 16
        h = Hierarchy(n)
        result = repack(h, _tasks(sizes))
        per_copy: dict[int, list[tuple[int, int]]] = {}
        for tid, node in result.mapping.items():
            assert h.subtree_size(node) == dict(
                (t.task_id, t.size) for t in _tasks(sizes)
            )[tid]
            per_copy.setdefault(result.copy_of[tid], []).append(h.leaf_span(node))
        for spans in per_copy.values():
            spans.sort()
            for (a, b), (c, d) in zip(spans, spans[1:]):
                assert b <= c

    @given(st.lists(st.integers(0, 3).map(lambda x: 1 << x), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_all_tasks_mapped(self, sizes):
        result = repack(Hierarchy(8), _tasks(sizes))
        assert set(result.mapping) == {TaskId(i) for i in range(len(sizes))}
        assert set(result.copy_of) == set(result.mapping)

    @given(st.lists(st.integers(0, 3).map(lambda x: 1 << x), min_size=1, max_size=24))
    @settings(max_examples=60, deadline=None)
    def test_claim1_no_holes_except_last_copy(self, sizes):
        """Lemma 1 Claim 1: only the last copy may contain vacant space."""
        n = 8
        h = Hierarchy(n)
        result = repack(h, _tasks(sizes))
        occupancy = [0] * result.num_copies
        for tid, node in result.mapping.items():
            lo, hi = h.leaf_span(node)
            occupancy[result.copy_of[tid]] += hi - lo
        for filled in occupancy[:-1]:
            assert filled == n

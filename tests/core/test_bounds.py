"""Unit tests for the closed-form bound formulas (repro.core.bounds)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bounds import (
    basic_copy_bound,
    deterministic_lower_factor,
    deterministic_upper_factor,
    greedy_upper_bound_factor,
    optimal_load,
    randomized_lower_factor,
    randomized_upper_factor,
    sigma_r_lower_ell,
    sigma_r_num_phases,
    tightness_gap,
)

machine_exponents = st.integers(2, 20)


class TestOptimalLoad:
    @pytest.mark.parametrize("peak,n,expected", [(0, 4, 0), (4, 4, 1), (5, 4, 2), (9, 4, 3)])
    def test_examples(self, peak, n, expected):
        assert optimal_load(peak, n) == expected


class TestGreedyFactor:
    @pytest.mark.parametrize(
        "n,expected", [(2, 1), (4, 2), (8, 2), (16, 3), (64, 4), (256, 5), (1024, 6)]
    )
    def test_examples(self, n, expected):
        assert greedy_upper_bound_factor(n) == expected

    @given(machine_exponents)
    def test_formula(self, k):
        assert greedy_upper_bound_factor(1 << k) == math.ceil((k + 1) / 2)


class TestBasicCopyBound:
    def test_matches_ceiling(self):
        assert basic_copy_bound(17, 8) == 3
        assert basic_copy_bound(16, 8) == 2
        assert basic_copy_bound(0, 8) == 0


class TestDeterministicFactors:
    def test_upper_min_structure(self):
        n = 256  # g = 5
        assert deterministic_upper_factor(n, 0) == 1.0
        assert deterministic_upper_factor(n, 3) == 4.0
        assert deterministic_upper_factor(n, 4) == 5.0
        assert deterministic_upper_factor(n, 100) == 5.0
        assert deterministic_upper_factor(n, float("inf")) == 5.0

    def test_lower_min_structure(self):
        n = 256  # log N = 8
        assert deterministic_lower_factor(n, 0) == 1
        assert deterministic_lower_factor(n, 1) == 1
        assert deterministic_lower_factor(n, 2) == 2
        assert deterministic_lower_factor(n, 8) == 5
        assert deterministic_lower_factor(n, 100) == 5

    def test_negative_d_rejected(self):
        with pytest.raises(ValueError):
            deterministic_upper_factor(16, -1)
        with pytest.raises(ValueError):
            deterministic_lower_factor(16, -0.5)

    @given(machine_exponents, st.integers(0, 40))
    def test_paper_tightness_within_two(self, k, d):
        """The paper: upper and lower bounds are tight within a factor of 2."""
        n = 1 << k
        gap = tightness_gap(n, d)
        assert 1.0 <= gap <= 2.0 + 1e-9

    @given(machine_exponents, st.integers(0, 40))
    def test_lower_never_exceeds_upper(self, k, d):
        n = 1 << k
        assert deterministic_lower_factor(n, d) <= deterministic_upper_factor(n, d)


class TestRandomizedFactors:
    def test_upper_example(self):
        # N = 2^16: 3*16/4 + 1 = 13.
        assert randomized_upper_factor(1 << 16) == pytest.approx(13.0)

    def test_lower_example(self):
        # N = 2^16: (16/4)^(1/3) / 7.
        assert randomized_lower_factor(1 << 16) == pytest.approx((4.0) ** (1 / 3) / 7)

    def test_small_machines_rejected(self):
        for fn in (randomized_upper_factor, randomized_lower_factor, sigma_r_lower_ell,
                   sigma_r_num_phases):
            with pytest.raises(ValueError):
                fn(2)

    @given(machine_exponents)
    def test_upper_dominates_lower(self, k):
        n = 1 << k
        assert randomized_upper_factor(n) > randomized_lower_factor(n)

    @given(st.integers(3, 30))
    def test_monotone_growth(self, k):
        # k/log2(k) is increasing only for k > e, so start at k = 3; the
        # k = 2 -> 3 dip (7 -> 6.68) is a genuine artifact of log log N.
        n, n2 = 1 << k, 1 << (k + 1)
        assert randomized_upper_factor(n2) >= randomized_upper_factor(n)

    def test_sigma_r_phases(self):
        # log N/(2 log log N): N=2^16 -> 16/8 = 2.
        assert sigma_r_num_phases(1 << 16) == 2
        assert sigma_r_num_phases(16) == 1  # degenerate clamp to 1

    def test_lemma7_ell_example(self):
        # N = 2^16: (16/(240*4))^(1/3).
        assert sigma_r_lower_ell(1 << 16) == pytest.approx((16 / 960) ** (1 / 3))

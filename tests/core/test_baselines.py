"""Unit tests for the baseline allocation strategies."""

import pytest

from repro.core.baselines import (
    FirstFitLevelAlgorithm,
    RoundRobinAlgorithm,
    WorstFitAlgorithm,
)
from repro.errors import AllocationError
from repro.machines.tree import TreeMachine
from repro.tasks.task import Task
from repro.types import TaskId


def _task(tid, size):
    return Task(TaskId(tid), size, 0.0)


class TestRoundRobin:
    def test_cycles_submachines(self):
        m = TreeMachine(4)
        algo = RoundRobinAlgorithm(m)
        nodes = [algo.on_arrival(_task(i, 1)).node for i in range(6)]
        assert nodes == [4, 5, 6, 7, 4, 5]

    def test_separate_cursor_per_size(self):
        m = TreeMachine(4)
        algo = RoundRobinAlgorithm(m)
        assert algo.on_arrival(_task(0, 1)).node == 4
        assert algo.on_arrival(_task(1, 2)).node == 2
        assert algo.on_arrival(_task(2, 1)).node == 5

    def test_reset_restarts_cycle(self):
        m = TreeMachine(4)
        algo = RoundRobinAlgorithm(m)
        algo.on_arrival(_task(0, 1))
        algo.reset()
        assert algo.on_arrival(_task(1, 1)).node == 4

    def test_departure(self):
        m = TreeMachine(4)
        algo = RoundRobinAlgorithm(m)
        t = _task(0, 2)
        algo.on_arrival(t)
        algo.on_departure(t)
        with pytest.raises(AllocationError):
            algo.on_departure(t)


class TestWorstFit:
    def test_picks_smallest_total_load(self):
        m = TreeMachine(4)
        algo = WorstFitAlgorithm(m)
        algo.on_arrival(_task(0, 2))         # left half total 2
        p = algo.on_arrival(_task(1, 2))
        assert p.node == 3                   # right half total 0

    def test_average_criterion_can_stack(self):
        # Three unit tasks on the left leaf make its *average* still small
        # relative to a half-filled right side — worst-fit by sum can pick
        # the side with a taller stack, unlike the max-based greedy.
        m = TreeMachine(4)
        algo = WorstFitAlgorithm(m)
        for i in range(2):
            algo.on_arrival(_task(i, 1))     # PEs 0 and 1 (sum 2 left)
        algo.on_arrival(_task(2, 2))         # right half (sum 2 right)
        p = algo.on_arrival(_task(3, 1))     # sums tie; argmin -> leftmost PE
        assert m.hierarchy.leaf_span(p.node) == (0, 1)


class TestFirstFitLevel:
    def test_takes_first_below_threshold(self):
        m = TreeMachine(4)
        algo = FirstFitLevelAlgorithm(m, threshold=1)
        assert algo.on_arrival(_task(0, 1)).node == 4
        assert algo.on_arrival(_task(1, 1)).node == 5

    def test_falls_back_to_minimum(self):
        m = TreeMachine(4)
        algo = FirstFitLevelAlgorithm(m, threshold=1)
        for i in range(4):
            algo.on_arrival(_task(i, 1))
        # Everything at load 1 >= threshold; falls back to global min (leftmost).
        assert algo.on_arrival(_task(9, 1)).node == 4

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            FirstFitLevelAlgorithm(TreeMachine(4), threshold=0)

    def test_name_contains_threshold(self):
        assert "2" in FirstFitLevelAlgorithm(TreeMachine(4), threshold=2).name

"""Tests for the extension algorithms: hybrid randomized+realloc and
budget-limited incremental reallocation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hybrid import RandomizedPeriodicAlgorithm
from repro.core.incremental import IncrementalReallocationAlgorithm
from repro.errors import AllocationError
from repro.machines.tree import TreeMachine
from repro.sim.runner import run
from repro.tasks.builder import SequenceBuilder, figure1_sequence
from repro.tasks.task import Task
from repro.types import TaskId
from tests.conftest import task_sequences


def _task(tid, size):
    return Task(TaskId(tid), size, 0.0)


class TestRandomizedPeriodic:
    def test_flags(self):
        m = TreeMachine(16)
        algo = RandomizedPeriodicAlgorithm(m, 2, np.random.default_rng(0))
        assert algo.is_randomized
        assert algo.reallocation_parameter == 2
        assert "A_randM" in algo.name

    def test_negative_d_rejected(self):
        with pytest.raises(ValueError):
            RandomizedPeriodicAlgorithm(TreeMachine(4), -1, np.random.default_rng(0))

    def test_repack_only_at_budget(self):
        m = TreeMachine(4)
        algo = RandomizedPeriodicAlgorithm(m, 1, np.random.default_rng(0))
        for i in range(3):
            algo.on_arrival(_task(i, 1))
        assert algo.maybe_reallocate(3) is None
        algo.on_arrival(_task(3, 1))
        remap = algo.maybe_reallocate(4)
        assert remap is not None and len(remap.mapping) == 4

    def test_infinite_d_never_reallocates(self):
        m = TreeMachine(4)
        algo = RandomizedPeriodicAlgorithm(m, float("inf"), np.random.default_rng(0))
        algo.on_arrival(_task(0, 4))
        assert algo.maybe_reallocate(10**9) is None

    def test_repack_achieves_optimal_packing(self):
        """After each repack the hybrid's load equals ceil(active/N)."""
        m = TreeMachine(8)
        algo = RandomizedPeriodicAlgorithm(m, 1, np.random.default_rng(1))
        seq = SequenceBuilder()
        for i in range(16):
            seq.arrive(f"t{i}", size=1)
        result = run(m, algo, seq.build())
        # Final state: 16 unit tasks on 8 PEs, repacked at 8 and 16 -> the
        # last repack leaves max load exactly 2.
        assert result.metrics.realloc.num_reallocations == 2
        assert result.final_placements  # all still active

    @given(st.sampled_from([8, 16]), st.sampled_from([1, 2]), st.data())
    @settings(max_examples=30, deadline=None)
    def test_bound_d_plus_one_holds_per_run(self, n, d, data):
        """Single-run sanity: load <= (d + E6-ish random layer) * L* never
        exceeding the trivially safe (d + 1) * L* + random spill; we assert
        the provable deterministic part: right after any repack the load is
        at most L*_instant, so the run peak is bounded by the volume that
        can arrive between repacks plus the packed base."""
        seq = data.draw(task_sequences(num_pes=n, max_events=40))
        m = TreeMachine(n)
        algo = RandomizedPeriodicAlgorithm(m, d, np.random.default_rng(7))
        result = run(m, algo, seq)
        lstar = max(1, seq.optimal_load(n))
        # Random layer on <= dN arrivals can stack at most that many tasks
        # on one PE; the packed base adds L*: generous but finite envelope.
        assert result.max_load <= lstar + d * n

    def test_departure_bookkeeping(self):
        m = TreeMachine(4)
        algo = RandomizedPeriodicAlgorithm(m, 2, np.random.default_rng(0))
        t = _task(0, 2)
        algo.on_arrival(t)
        algo.on_departure(t)
        with pytest.raises(AllocationError):
            algo.on_departure(t)


class TestIncremental:
    def test_validation(self):
        with pytest.raises(ValueError):
            IncrementalReallocationAlgorithm(TreeMachine(4), -1, 1)
        with pytest.raises(ValueError):
            IncrementalReallocationAlgorithm(TreeMachine(4), 1, -1)

    def test_zero_budget_never_moves(self):
        m = TreeMachine(4)
        algo = IncrementalReallocationAlgorithm(m, 1, 0)
        result = run(m, algo, figure1_sequence())
        assert result.metrics.realloc.num_migrations == 0

    def test_behaves_like_greedy_until_repack(self):
        m1, m2 = TreeMachine(8), TreeMachine(8)
        from repro.core.greedy import GreedyAlgorithm

        seq = SequenceBuilder()
        for i in range(6):
            seq.arrive(f"t{i}", size=2)
        sigma = seq.build()  # volume 12 < dN = 16 for d = 2: no repack
        inc = run(m1, IncrementalReallocationAlgorithm(m1, 2, 4), sigma)
        greedy = run(m2, GreedyAlgorithm(m2), sigma)
        assert inc.max_load == greedy.max_load
        assert inc.metrics.realloc.num_reallocations == 0

    def test_single_move_fixes_figure1(self):
        """On the Figure 1 sequence one migration suffices for load 1."""
        m = TreeMachine(4)
        algo = IncrementalReallocationAlgorithm(m, 1, 1)
        result = run(m, algo, figure1_sequence())
        assert result.max_load == 1
        assert result.metrics.realloc.num_migrations <= 2

    def test_budget_caps_migrations_per_repack(self):
        m = TreeMachine(8)
        algo = IncrementalReallocationAlgorithm(m, 1, 2)
        seq = SequenceBuilder()
        # Stack everything badly then trigger one repack.
        for i in range(16):
            seq.arrive(f"t{i}", size=1)
        result = run(m, algo, seq.build())
        # Two repack opportunities (volume 8 and 16), each <= 2 moves.
        assert result.metrics.realloc.num_migrations <= 4

    @given(st.sampled_from([8, 16]), st.integers(0, 4), st.data())
    @settings(max_examples=30, deadline=None)
    def test_more_budget_never_hurts_peak(self, n, k, data):
        """Monotonicity in spirit: with k vs 0 moves, peak load never worse
        on the same sequence (greedy base is identical; moves only lower
        the instantaneous max)."""
        seq = data.draw(task_sequences(num_pes=n, max_events=40))
        m0, mk = TreeMachine(n), TreeMachine(n)
        base = run(m0, IncrementalReallocationAlgorithm(m0, 1, 0), seq)
        inc = run(mk, IncrementalReallocationAlgorithm(mk, 1, k), seq)
        assert inc.max_load <= base.max_load + 1  # one-arrival transient slack

    def test_moves_reduce_load_toward_target(self):
        m = TreeMachine(4)
        algo = IncrementalReallocationAlgorithm(m, 1, 8)
        result = run(m, algo, figure1_sequence())
        # Generous budget: ends at the packing optimum like a full repack.
        assert result.max_load == 1

"""Behavioural unit tests for the individual allocation algorithms.

(Theorem-level bound compliance over random sequences lives in
``tests/test_theorems.py``; these tests pin down the concrete mechanics of
each algorithm on hand-constructed inputs.)
"""

import math

import numpy as np
import pytest

from repro.core.base import Placement
from repro.core.basic import BasicAlgorithm
from repro.core.greedy import GreedyAlgorithm
from repro.core.optimal import OptimalReallocatingAlgorithm
from repro.core.periodic import PeriodicReallocationAlgorithm
from repro.core.randomized import ObliviousRandomAlgorithm
from repro.core.twochoice import TwoChoiceAlgorithm
from repro.errors import AllocationError
from repro.machines.tree import TreeMachine
from repro.sim.runner import run
from repro.tasks.builder import SequenceBuilder, figure1_sequence
from repro.tasks.task import Task
from repro.types import TaskId


def _task(tid, size, arrival=0.0):
    return Task(TaskId(tid), size, arrival)


class TestGreedy:
    def test_name(self):
        assert GreedyAlgorithm(TreeMachine(4)).name == "A_G"

    def test_leftmost_tie_break(self):
        m = TreeMachine(4)
        algo = GreedyAlgorithm(m)
        p1 = algo.on_arrival(_task(0, 1))
        assert m.hierarchy.leaf_span(p1.node) == (0, 1)
        p2 = algo.on_arrival(_task(1, 1))
        assert m.hierarchy.leaf_span(p2.node) == (1, 2)

    def test_picks_least_loaded_submachine(self):
        m = TreeMachine(4)
        algo = GreedyAlgorithm(m)
        algo.on_arrival(_task(0, 2))  # left 2-PE submachine now at load 1
        p = algo.on_arrival(_task(1, 2))
        assert m.hierarchy.leaf_span(p.node) == (2, 4)  # strictly less loaded

    def test_submachine_load_is_max_not_sum(self):
        m = TreeMachine(4)
        algo = GreedyAlgorithm(m)
        for i in range(3):
            algo.on_arrival(_task(i, 1))
        # Leaves 0,1,2 at load 1; both 2-PE halves have max load 1 -> tie,
        # and the paper's tie-break picks the leftmost.
        p = algo.on_arrival(_task(3, 2))
        assert m.hierarchy.leaf_span(p.node) == (0, 2)

    def test_departure_frees_load(self):
        m = TreeMachine(4)
        algo = GreedyAlgorithm(m)
        t = _task(0, 4)
        algo.on_arrival(t)
        assert algo.current_max_load == 1
        algo.on_departure(t)
        assert algo.current_max_load == 0

    def test_figure1_load_two(self):
        m = TreeMachine(4)
        assert run(m, GreedyAlgorithm(m), figure1_sequence()).max_load == 2

    def test_duplicate_arrival_rejected(self):
        m = TreeMachine(4)
        algo = GreedyAlgorithm(m)
        algo.on_arrival(_task(0, 1))
        with pytest.raises(AllocationError):
            algo.on_arrival(_task(0, 1))

    def test_departure_of_unknown_rejected(self):
        m = TreeMachine(4)
        with pytest.raises(AllocationError):
            GreedyAlgorithm(m).on_departure(_task(0, 1))

    def test_reset(self):
        m = TreeMachine(4)
        algo = GreedyAlgorithm(m)
        algo.on_arrival(_task(0, 4))
        algo.reset()
        assert algo.current_max_load == 0
        algo.on_arrival(_task(0, 4))  # same id accepted again

    def test_never_reallocates(self):
        m = TreeMachine(4)
        algo = GreedyAlgorithm(m)
        assert math.isinf(algo.reallocation_parameter)
        assert algo.maybe_reallocate(10**9) is None


class TestBasic:
    def test_first_fit_packs_tightly(self):
        m = TreeMachine(4)
        algo = BasicAlgorithm(m)
        nodes = [algo.on_arrival(_task(i, 1)).node for i in range(4)]
        spans = [m.hierarchy.leaf_span(n) for n in nodes]
        assert spans == [(0, 1), (1, 2), (2, 3), (3, 4)]
        assert algo.num_copies == 1

    def test_second_copy_when_full(self):
        m = TreeMachine(4)
        algo = BasicAlgorithm(m)
        algo.on_arrival(_task(0, 4))
        algo.on_arrival(_task(1, 1))
        assert algo.num_copies == 2

    def test_departure_reopens_slot(self):
        m = TreeMachine(4)
        algo = BasicAlgorithm(m)
        t0 = _task(0, 2)
        algo.on_arrival(t0)
        algo.on_departure(t0)
        p = algo.on_arrival(_task(1, 2))
        assert m.hierarchy.leaf_span(p.node) == (0, 2)
        assert algo.num_copies == 1

    def test_fragmentation_weakness(self):
        """The behaviour Figure 1 criticises: holes don't coalesce."""
        m = TreeMachine(4)
        algo = BasicAlgorithm(m)
        tasks = [_task(i, 1) for i in range(4)]
        for t in tasks:
            algo.on_arrival(t)
        algo.on_departure(tasks[1])
        algo.on_departure(tasks[3])
        # Two scattered unit holes cannot host a size-2 task in copy 0.
        algo.on_arrival(_task(9, 2))
        assert algo.num_copies == 2

    def test_placement_lookup(self):
        m = TreeMachine(4)
        algo = BasicAlgorithm(m)
        p = algo.on_arrival(_task(0, 2))
        assert algo.placement_of(TaskId(0)) == p.node

    def test_nonempty_copy_count(self):
        m = TreeMachine(4)
        algo = BasicAlgorithm(m)
        t = _task(0, 4)
        algo.on_arrival(t)
        algo.on_arrival(_task(1, 4))
        algo.on_departure(t)
        assert algo.num_copies == 2
        assert algo.num_nonempty_copies == 1


class TestOptimal:
    def test_d_is_zero(self):
        assert OptimalReallocatingAlgorithm(TreeMachine(4)).reallocation_parameter == 0

    def test_always_optimal_on_figure1(self):
        m = TreeMachine(4)
        assert run(m, OptimalReallocatingAlgorithm(m), figure1_sequence()).max_load == 1

    def test_repack_consumes_pending(self):
        m = TreeMachine(4)
        algo = OptimalReallocatingAlgorithm(m)
        algo.on_arrival(_task(0, 1))
        assert algo.maybe_reallocate(1) is not None
        assert algo.maybe_reallocate(1) is None  # consumed

    def test_departure_without_arrival_rejected(self):
        m = TreeMachine(4)
        with pytest.raises(AllocationError):
            OptimalReallocatingAlgorithm(m).on_departure(_task(3, 1))


class TestPeriodic:
    def test_branch_selection(self):
        m = TreeMachine(16)  # g = ceil((4+1)/2) = 3
        assert not PeriodicReallocationAlgorithm(m, 2).uses_greedy_branch
        assert PeriodicReallocationAlgorithm(m, 3).uses_greedy_branch
        assert PeriodicReallocationAlgorithm(m, float("inf")).uses_greedy_branch

    def test_name_formats(self):
        m = TreeMachine(16)
        assert PeriodicReallocationAlgorithm(m, 2).name == "A_M(d=2)"
        assert PeriodicReallocationAlgorithm(m, 2, lazy=True).name == "A_M(d=2,lazy)"
        assert "inf" in PeriodicReallocationAlgorithm(m, float("inf")).name

    def test_rejects_negative_d(self):
        with pytest.raises(ValueError):
            PeriodicReallocationAlgorithm(TreeMachine(4), -1)

    def test_greedy_branch_never_reallocates(self):
        m = TreeMachine(16)
        algo = PeriodicReallocationAlgorithm(m, 99)
        algo.on_arrival(_task(0, 16))
        assert algo.maybe_reallocate(10**9) is None

    def test_basic_branch_reallocates_at_budget(self):
        m = TreeMachine(4)
        algo = PeriodicReallocationAlgorithm(m, 1)
        for i in range(4):
            algo.on_arrival(_task(i, 1))
        assert algo.maybe_reallocate(3) is None      # below budget d*N = 4
        remap = algo.maybe_reallocate(4)
        assert remap is not None
        assert set(remap.mapping) == {TaskId(i) for i in range(4)}

    def test_lazy_skips_pointless_repack(self):
        m = TreeMachine(4)
        algo = PeriodicReallocationAlgorithm(m, 1, lazy=True)
        for i in range(4):
            algo.on_arrival(_task(i, 1))
        # Load is already optimal (1 = ceil(4/4)); lazy declines.
        assert algo.maybe_reallocate(4) is None

    def test_lazy_reproduces_figure1(self):
        m = TreeMachine(4)
        algo = PeriodicReallocationAlgorithm(m, 1, lazy=True)
        assert run(m, algo, figure1_sequence()).max_load == 1

    def test_d_zero_equals_optimal(self):
        seq = figure1_sequence()
        m1, m2 = TreeMachine(4), TreeMachine(4)
        load_d0 = run(m1, PeriodicReallocationAlgorithm(m1, 0), seq).max_load
        load_ac = run(m2, OptimalReallocatingAlgorithm(m2), seq).max_load
        assert load_d0 == load_ac == 1


class TestRandomized:
    def test_is_randomized_flag(self):
        m = TreeMachine(8)
        assert ObliviousRandomAlgorithm(m, np.random.default_rng(0)).is_randomized
        assert not GreedyAlgorithm(m).is_randomized

    def test_placement_is_valid_submachine(self):
        m = TreeMachine(8)
        algo = ObliviousRandomAlgorithm(m, np.random.default_rng(0))
        for i in range(50):
            p = algo.on_arrival(_task(i, 2))
            assert m.hierarchy.subtree_size(p.node) == 2

    def test_seeded_reproducibility(self):
        m = TreeMachine(8)
        def play(seed):
            algo = ObliviousRandomAlgorithm(m, np.random.default_rng(seed))
            return [algo.on_arrival(_task(i, 2)).node for i in range(20)]
        assert play(7) == play(7)
        assert play(7) != play(8)  # overwhelmingly likely

    def test_distribution_uniform(self):
        m = TreeMachine(4)
        algo = ObliviousRandomAlgorithm(m, np.random.default_rng(3))
        counts = {4: 0, 5: 0, 6: 0, 7: 0}
        for i in range(4000):
            counts[algo.on_arrival(_task(i, 1)).node] += 1
        for c in counts.values():
            assert 800 < c < 1200  # ~1000 each

    def test_departure_bookkeeping(self):
        m = TreeMachine(4)
        algo = ObliviousRandomAlgorithm(m, np.random.default_rng(0))
        t = _task(0, 1)
        algo.on_arrival(t)
        algo.on_departure(t)
        with pytest.raises(AllocationError):
            algo.on_departure(t)


class TestTwoChoice:
    def test_prefers_less_loaded(self):
        m = TreeMachine(4)
        algo = TwoChoiceAlgorithm(m, np.random.default_rng(0))
        seen = set()
        for i in range(4):
            seen.add(algo.on_arrival(_task(i, 2)).node)
        # With 2 submachines and 2 choices it must alternate perfectly.
        assert seen == {2, 3}

    def test_num_choices_validated(self):
        with pytest.raises(ValueError):
            TwoChoiceAlgorithm(TreeMachine(4), np.random.default_rng(0), num_choices=0)

    def test_single_submachine_size(self):
        m = TreeMachine(4)
        algo = TwoChoiceAlgorithm(m, np.random.default_rng(0))
        p = algo.on_arrival(_task(0, 4))
        assert p.node == 1

    def test_beats_oblivious_on_average(self):
        n = 64
        loads = {}
        for label, cls in (("one", ObliviousRandomAlgorithm), ("two", TwoChoiceAlgorithm)):
            peaks = []
            for seed in range(15):
                m = TreeMachine(n)
                algo = cls(m, np.random.default_rng(seed))
                seq = SequenceBuilder()
                for i in range(n):
                    seq.arrive(f"t{i}", size=1)
                peaks.append(run(m, algo, seq.build()).max_load)
            loads[label] = float(np.mean(peaks))
        assert loads["two"] < loads["one"]

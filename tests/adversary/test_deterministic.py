"""Unit tests for the Theorem 4.3 adaptive adversary (mechanics).

Bound-level outcomes are covered in tests/test_theorems.py; here we test
the construction itself: phase structure, volumes, Q computation.
"""

import math

import pytest

from repro.adversary.deterministic import DeterministicAdversary
from repro.core.greedy import GreedyAlgorithm
from repro.core.periodic import PeriodicReallocationAlgorithm
from repro.machines.tree import TreeMachine
from repro.tasks.events import Arrival


class TestConstruction:
    def test_phase_count_is_min_d_logn(self):
        m = TreeMachine(64)  # log N = 6
        assert DeterministicAdversary(m, 3).num_phases == 3
        assert DeterministicAdversary(m, 6).num_phases == 6
        assert DeterministicAdversary(m, 100).num_phases == 6
        assert DeterministicAdversary(m, float("inf")).num_phases == 6

    def test_minimum_one_phase(self):
        m = TreeMachine(4)
        assert DeterministicAdversary(m, 0).num_phases == 1

    def test_negative_d_rejected(self):
        with pytest.raises(ValueError):
            DeterministicAdversary(TreeMachine(4), -1)

    def test_phase0_has_n_unit_tasks(self):
        m = TreeMachine(16)
        adversary = DeterministicAdversary(m, 1)  # only phase 0
        outcome = adversary.run(GreedyAlgorithm(m))
        arrivals = [ev for ev in outcome.sequence if isinstance(ev, Arrival)]
        assert len(arrivals) == 16
        assert all(a.task.size == 1 for a in arrivals)

    def test_phase_i_task_sizes_double(self):
        m = TreeMachine(16)
        adversary = DeterministicAdversary(m, float("inf"))
        outcome = adversary.run(GreedyAlgorithm(m))
        sizes = sorted({a.task.size for a in outcome.sequence if isinstance(a, Arrival)})
        # Phases 0..3 on log N = 4: sizes 1, 2, 4, 8.
        assert sizes == [1, 2, 4, 8]

    def test_wrong_machine_rejected(self):
        adversary = DeterministicAdversary(TreeMachine(8), 2)
        other = TreeMachine(8)
        with pytest.raises(ValueError):
            adversary.run(GreedyAlgorithm(other))


class TestOutcome:
    def test_result_fields(self):
        m = TreeMachine(16)
        adversary = DeterministicAdversary(m, float("inf"))
        outcome = adversary.run(GreedyAlgorithm(m))
        assert outcome.algorithm_name == "A_G"
        assert outcome.num_pes == 16
        assert outcome.num_phases == 4
        assert outcome.optimal_load == 1
        assert outcome.ratio == outcome.max_load

    def test_total_arrival_volume_within_pn(self):
        m = TreeMachine(64)
        for d in (2, 4, float("inf")):
            adversary = DeterministicAdversary(m, d)
            outcome = adversary.run(GreedyAlgorithm(adversary.machine))
            p = adversary.num_phases
            assert outcome.sequence.total_arrival_size <= p * 64

    def test_deterministic_repeatability(self):
        outcomes = []
        for _ in range(2):
            m = TreeMachine(32)
            adversary = DeterministicAdversary(m, float("inf"))
            outcomes.append(adversary.run(GreedyAlgorithm(m)))
        assert outcomes[0].max_load == outcomes[1].max_load
        assert outcomes[0].sequence == outcomes[1].sequence

    def test_am_with_realloc_budget_not_triggered(self):
        """Against A_M(d) the adversary keeps total arrivals <= dN, so the
        simulator's reallocation budget is never violated (no exception)."""
        m = TreeMachine(32)
        d = 3
        adversary = DeterministicAdversary(m, d)
        algo = PeriodicReallocationAlgorithm(m, d)
        outcome = adversary.run(algo)
        assert outcome.max_load >= 2  # ceil((3+1)/2)

"""Unit tests for the sigma_r generator (Theorem 5.2 construction)."""

import math

import numpy as np
import pytest

from repro.adversary.randomized import (
    is_exact_sigma_r_machine,
    sigma_r_max_phases,
    sigma_r_phase_sizes,
    sigma_r_sequence,
)
from repro.errors import InvalidMachineError
from repro.tasks.events import Arrival


class TestPhaseSizes:
    def test_exact_machine_detection(self):
        # N = 2^(2^k): 16 (log=4), 256 (log=8), 65536 (log=16).
        assert is_exact_sigma_r_machine(16)
        assert is_exact_sigma_r_machine(256)
        assert is_exact_sigma_r_machine(1 << 16)
        assert not is_exact_sigma_r_machine(64)  # log2(64) = 6, not a power of 2
        assert not is_exact_sigma_r_machine(32)  # log2(32) = 5

    def test_exact_machine_edge(self):
        # log2(4) = 2 which is a power of two, so 4 qualifies.
        assert is_exact_sigma_r_machine(4)

    def test_sizes_are_powers_of_two(self):
        for n in (16, 64, 256, 1024):
            for s in sigma_r_phase_sizes(n, 4):
                assert s & (s - 1) == 0
                assert s <= n

    def test_exact_sizes_match_log_powers(self):
        # N = 256, log N = 8: log^i N = 8^i exactly.
        assert sigma_r_phase_sizes(256, 3) == [1, 8, 64]

    def test_rounded_sizes(self):
        # N = 64, log N = 6: 6^1 = 6 -> rounds up to 8 (6 > sqrt(32)).
        sizes = sigma_r_phase_sizes(64, 2)
        assert sizes[0] == 1
        assert sizes[1] in (4, 8)

    def test_small_machine_rejected(self):
        with pytest.raises(InvalidMachineError):
            sigma_r_phase_sizes(2)

    def test_max_phases(self):
        # N = 256: sizes 1, 8, 64 feasible (counts 85, 10, 1); 512 is not.
        assert sigma_r_max_phases(256) == 3
        assert sigma_r_max_phases(16) >= 2


class TestSequenceGeneration:
    def test_arrival_counts_match_formula(self):
        seq = sigma_r_sequence(256, np.random.default_rng(0), num_phases=3)
        arrivals = [ev for ev in seq if isinstance(ev, Arrival)]
        by_size = {}
        for a in arrivals:
            by_size[a.task.size] = by_size.get(a.task.size, 0) + 1
        assert by_size == {1: 256 // 3, 8: 256 // 24, 64: 256 // 192}

    def test_departure_probability_roughly_respected(self):
        n = 256  # log N = 8 -> survival 1/8
        survivors = 0
        total = 0
        for seed in range(30):
            seq = sigma_r_sequence(n, np.random.default_rng(seed), num_phases=1)
            for t in seq.tasks.values():
                total += 1
                if math.isinf(t.departure):
                    survivors += 1
        rate = survivors / total
        assert 0.08 < rate < 0.17  # ~1/8 with sampling noise

    def test_custom_survival_probability(self):
        seq = sigma_r_sequence(
            64, np.random.default_rng(0), num_phases=1, survival_probability=1.0
        )
        assert all(math.isinf(t.departure) for t in seq.tasks.values())
        seq = sigma_r_sequence(
            64, np.random.default_rng(0), num_phases=1, survival_probability=0.0
        )
        assert not any(math.isinf(t.departure) for t in seq.tasks.values())

    def test_seeded_reproducibility(self):
        a = sigma_r_sequence(64, np.random.default_rng(5))
        b = sigma_r_sequence(64, np.random.default_rng(5))
        assert a == b

    def test_phases_ordered_in_time(self):
        seq = sigma_r_sequence(256, np.random.default_rng(1), num_phases=3)
        # All size-8 arrivals come after all size-1 events of phase 0.
        last_phase0 = max(
            ev.time for ev in seq if isinstance(ev, Arrival) and ev.task.size == 1
        )
        first_phase1 = min(
            ev.time for ev in seq if isinstance(ev, Arrival) and ev.task.size == 8
        )
        assert first_phase1 > last_phase0

    def test_invalid_survival_rejected(self):
        with pytest.raises(ValueError):
            sigma_r_sequence(64, np.random.default_rng(0), survival_probability=-0.1)

    def test_small_machine_rejected(self):
        with pytest.raises(InvalidMachineError):
            sigma_r_sequence(2, np.random.default_rng(0))


class TestSigmaRPotentials:
    def test_potentials_nondecreasing_for_any_algorithm(self):
        import numpy as np

        from repro.adversary.randomized import (
            measure_sigma_r_potentials,
            sigma_r_max_phases,
            sigma_r_phase_sizes,
            sigma_r_sequence,
        )
        from repro.core.greedy import GreedyAlgorithm
        from repro.core.randomized import ObliviousRandomAlgorithm
        from repro.machines.tree import TreeMachine

        n = 256
        phases = sigma_r_max_phases(n)
        sizes = sigma_r_phase_sizes(n, phases)
        seq = sigma_r_sequence(n, np.random.default_rng(3), num_phases=phases)
        for make in (
            lambda m: GreedyAlgorithm(m),
            lambda m: ObliviousRandomAlgorithm(m, np.random.default_rng(4)),
        ):
            machine = TreeMachine(n)
            pots = measure_sigma_r_potentials(machine, make(machine), seq, sizes)
            assert len(pots) == phases
            assert all(a <= b for a, b in zip(pots, pots[1:]))
            assert pots[0] > 0

    def test_oblivious_accumulates_at_least_greedys_potential(self):
        """The Lemma 6 mechanism: load-blind placement fragments faster
        (averaged over draws)."""
        import numpy as np

        from repro.adversary.randomized import (
            measure_sigma_r_potentials,
            sigma_r_max_phases,
            sigma_r_phase_sizes,
            sigma_r_sequence,
        )
        from repro.core.greedy import GreedyAlgorithm
        from repro.core.randomized import ObliviousRandomAlgorithm
        from repro.machines.tree import TreeMachine

        n = 256
        phases = sigma_r_max_phases(n)
        sizes = sigma_r_phase_sizes(n, phases)
        greedy_final, rand_final = [], []
        for seed in range(8):
            seq = sigma_r_sequence(n, np.random.default_rng(seed), num_phases=phases)
            m1 = TreeMachine(n)
            greedy_final.append(
                measure_sigma_r_potentials(m1, GreedyAlgorithm(m1), seq, sizes)[-1]
            )
            m2 = TreeMachine(n)
            rand_final.append(
                measure_sigma_r_potentials(
                    m2,
                    ObliviousRandomAlgorithm(m2, np.random.default_rng(seed + 100)),
                    seq,
                    sizes,
                )[-1]
            )
        import numpy as np

        assert np.mean(rand_final) >= np.mean(greedy_final)

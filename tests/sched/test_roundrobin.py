"""Unit and property tests for the discrete round-robin scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.machines.tree import TreeMachine
from repro.sched.roundrobin import SchedulerConfig, simulate_round_robin
from repro.tasks.task import Task
from repro.types import TaskId


def _task(tid, size, work=4.0):
    return Task(TaskId(tid), size, 0.0, work=work)


def _leaf(machine, pe):
    return machine.hierarchy.leaf_node(pe)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SchedulerConfig(quantum=0)
        with pytest.raises(ValueError):
            SchedulerConfig(context_switch=-1)
        with pytest.raises(ValueError):
            SchedulerConfig(min_efficiency=0)

    def test_efficiency_curve(self):
        cfg = SchedulerConfig(management_tax=0.1)
        assert cfg.efficiency(1) == 1.0
        assert cfg.efficiency(2) == pytest.approx(0.9)
        assert cfg.efficiency(6) == pytest.approx(0.5)
        assert cfg.efficiency(100) == cfg.min_efficiency


class TestIdealConditions:
    """With zero overhead knobs the scheduler matches the fluid model."""

    def test_lone_task_no_slowdown(self):
        m = TreeMachine(4)
        report = simulate_round_robin(
            m, [_task(0, 2, work=5.0)], {TaskId(0): 2}
        )
        s = report.per_task[TaskId(0)]
        assert s.slowdown == pytest.approx(1.0)
        assert report.overhead_fraction == 0.0

    def test_two_tasks_sharing_slow_by_two(self):
        m = TreeMachine(4)
        tasks = [_task(0, 4, work=4.0), _task(1, 4, work=4.0)]
        report = simulate_round_robin(m, tasks, {TaskId(0): 1, TaskId(1): 1})
        # Perfect interleaving: each finishes after ~8 time units.
        for tid in (TaskId(0), TaskId(1)):
            assert report.per_task[tid].slowdown == pytest.approx(2.0, abs=0.3)

    def test_bsp_min_semantics(self):
        """A wide task sharing one PE with a narrow one is held back by it."""
        m = TreeMachine(4)
        tasks = [_task(0, 4, work=4.0), _task(1, 1, work=4.0)]
        placements = {TaskId(0): 1, TaskId(1): _leaf(m, 0)}
        report = simulate_round_robin(m, tasks, placements)
        wide = report.per_task[TaskId(0)]
        # PE 0 serves two threads; the wide task completes only when PE 0
        # has given it 4 units -> ~8 time units, slowdown ~2.
        assert wide.slowdown == pytest.approx(2.0, abs=0.3)

    def test_departure_frees_capacity(self):
        """After the short task finishes, the long one speeds up."""
        m = TreeMachine(4)
        tasks = [_task(0, 4, work=2.0), _task(1, 4, work=8.0)]
        report = simulate_round_robin(m, tasks, {TaskId(0): 1, TaskId(1): 1})
        long = report.per_task[TaskId(1)]
        # Shared for ~4 units (2 each), alone for remaining 6 -> ~10 total.
        assert long.completion_time == pytest.approx(10.0, abs=1.5)


class TestOverheads:
    def test_context_switch_cost_accrues(self):
        m = TreeMachine(4)
        tasks = [_task(0, 1, work=4.0), _task(1, 1, work=4.0)]
        placements = {TaskId(0): _leaf(m, 0), TaskId(1): _leaf(m, 0)}
        cfg = SchedulerConfig(context_switch=0.5)
        report = simulate_round_robin(m, tasks, placements, cfg)
        assert report.switch_overhead > 0
        # Alternating every quantum: a switch nearly every quantum.
        base = simulate_round_robin(m, tasks, placements)
        assert report.makespan > base.makespan

    def test_no_switch_cost_for_lone_task(self):
        m = TreeMachine(4)
        cfg = SchedulerConfig(context_switch=0.5)
        report = simulate_round_robin(
            m, [_task(0, 1, work=5.0)], {TaskId(0): _leaf(m, 0)}, cfg
        )
        assert report.switch_overhead == 0.0

    def test_management_tax_proportional_to_load(self):
        """The paper's motivation: overhead grows with thread count."""
        m = TreeMachine(4)
        cfg = SchedulerConfig(management_tax=0.05)
        fractions = []
        for nthreads in (1, 2, 4, 8):
            tasks = [_task(i, 1, work=2.0) for i in range(nthreads)]
            placements = {TaskId(i): _leaf(m, 0) for i in range(nthreads)}
            report = simulate_round_robin(m, tasks, placements, cfg)
            fractions.append(report.overhead_fraction)
        assert fractions[0] == 0.0
        assert all(a <= b for a, b in zip(fractions, fractions[1:]))
        assert fractions[-1] > 0.2

    def test_tax_slows_completion_superlinearly(self):
        m = TreeMachine(4)
        cfg = SchedulerConfig(management_tax=0.1)
        def worst(nthreads):
            tasks = [_task(i, 1, work=2.0) for i in range(nthreads)]
            placements = {TaskId(i): _leaf(m, 0) for i in range(nthreads)}
            return simulate_round_robin(m, tasks, placements, cfg).worst_slowdown
        s2, s8 = worst(2), worst(8)
        # With tax, 8 threads cost more than 4x the 2-thread slowdown.
        assert s8 > 4 * s2


class TestValidation:
    def test_wrong_size_placement(self):
        m = TreeMachine(4)
        with pytest.raises(SimulationError):
            simulate_round_robin(m, [_task(0, 2)], {TaskId(0): 1})

    def test_zero_work_rejected(self):
        m = TreeMachine(4)
        with pytest.raises(SimulationError):
            simulate_round_robin(m, [_task(0, 4, work=0.0)], {TaskId(0): 1})

    def test_tick_guard(self):
        m = TreeMachine(4)
        cfg = SchedulerConfig(max_ticks=2)
        with pytest.raises(SimulationError):
            simulate_round_robin(m, [_task(0, 4, work=100.0)], {TaskId(0): 1}, cfg)

    def test_empty_batch(self):
        m = TreeMachine(4)
        report = simulate_round_robin(m, [], {})
        assert report.makespan == 0.0
        assert report.worst_slowdown == 0.0


class TestAgainstFluidModel:
    @given(st.integers(1, 6), st.integers(2, 8))
    @settings(max_examples=20, deadline=None)
    def test_slowdown_bounded_by_load(self, nthreads, work_units):
        """Discrete slowdown <= resident load when overheads are zero
        (fluid bound), up to one-quantum granularity."""
        m = TreeMachine(4)
        tasks = [_task(i, 1, work=float(work_units)) for i in range(nthreads)]
        placements = {TaskId(i): _leaf(m, 0) for i in range(nthreads)}
        report = simulate_round_robin(m, tasks, placements)
        assert report.worst_slowdown <= nthreads + 1e-9

"""Tests for gang scheduling over machine copies."""

import numpy as np
import pytest

from repro.core.repack import repack
from repro.errors import SimulationError
from repro.machines.tree import TreeMachine
from repro.sched.gang import simulate_gang_rotation
from repro.tasks.task import Task
from repro.types import CopyId, TaskId, ceil_div


def _task(tid, size, work=4.0):
    return Task(TaskId(tid), size, 0.0, work=work)


def _repacked(machine, tasks):
    result = repack(machine.hierarchy, tasks)
    return dict(result.mapping), dict(result.copy_of), result.num_copies


class TestRotationMechanics:
    def test_single_copy_runs_at_full_speed(self):
        m = TreeMachine(4)
        tasks = [_task(0, 2, 3.0), _task(1, 2, 3.0)]
        placements, copy_of, n_copies = _repacked(m, tasks)
        assert n_copies == 1
        report = simulate_gang_rotation(m, tasks, placements, copy_of)
        assert report.rotation_length == 1
        for t in tasks:
            assert report.per_task[t.task_id].slowdown == pytest.approx(1.0)

    def test_two_copies_slow_by_two(self):
        m = TreeMachine(4)
        tasks = [_task(0, 4, 4.0), _task(1, 4, 4.0)]  # each fills a copy
        placements, copy_of, n_copies = _repacked(m, tasks)
        assert n_copies == 2
        report = simulate_gang_rotation(m, tasks, placements, copy_of)
        # Each task gets every other quantum: slowdown ~2 (within a slot).
        assert report.worst_slowdown == pytest.approx(2.0, abs=0.3)

    def test_slot_reclaimed_when_copy_drains(self):
        m = TreeMachine(4)
        tasks = [_task(0, 4, 2.0), _task(1, 4, 8.0)]
        placements, copy_of, _ = _repacked(m, tasks)
        report = simulate_gang_rotation(m, tasks, placements, copy_of)
        long = report.per_task[TaskId(1)]
        # Shared rotation for ~4 units (2 quanta each), then task 1 alone
        # for its remaining 6 -> completion ~10, not ~16.
        assert long.completion_time == pytest.approx(10.0, abs=1.0)

    def test_slot_overhead_accrues(self):
        m = TreeMachine(4)
        tasks = [_task(0, 4, 4.0), _task(1, 4, 4.0)]
        placements, copy_of, _ = _repacked(m, tasks)
        base = simulate_gang_rotation(m, tasks, placements, copy_of)
        taxed = simulate_gang_rotation(
            m, tasks, placements, copy_of, slot_overhead=0.25
        )
        assert taxed.overhead_time > 0
        assert taxed.makespan > base.makespan


class TestLoadBoundCorrespondence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_rotation_equals_lemma1_copy_count(self, seed):
        """copies == ceil(S/N) (Lemma 1) == rotation length == max slowdown
        bound under gang execution."""
        rng = np.random.default_rng(seed)
        m = TreeMachine(16)
        # Integer works at quantum 1.0 make the slowdown <= rotation bound
        # exact (no quantization waste on a task's final slice).
        tasks = [
            _task(i, int(1 << rng.integers(0, 4)), float(rng.integers(2, 6)))
            for i in range(20)
        ]
        placements, copy_of, n_copies = _repacked(m, tasks)
        total = sum(t.size for t in tasks)
        assert n_copies == ceil_div(total, 16)
        report = simulate_gang_rotation(m, tasks, placements, copy_of)
        assert report.rotation_length == n_copies
        # Gang slowdown never exceeds the rotation length (copies drain).
        assert report.worst_slowdown <= n_copies + 1e-9

    def test_empty_batch(self):
        m = TreeMachine(4)
        report = simulate_gang_rotation(m, [], {}, {})
        assert report.makespan == 0.0
        assert report.rotation_length == 0


class TestValidation:
    def test_overlap_within_copy_rejected(self):
        m = TreeMachine(4)
        tasks = [_task(0, 4), _task(1, 2)]
        placements = {TaskId(0): 1, TaskId(1): 2}
        copy_of = {TaskId(0): CopyId(0), TaskId(1): CopyId(0)}  # both copy 0!
        with pytest.raises(SimulationError, match="overlap"):
            simulate_gang_rotation(m, tasks, placements, copy_of)

    def test_wrong_size_placement_rejected(self):
        m = TreeMachine(4)
        tasks = [_task(0, 2)]
        with pytest.raises(SimulationError):
            simulate_gang_rotation(
                m, tasks, {TaskId(0): 1}, {TaskId(0): CopyId(0)}
            )

    def test_bad_parameters(self):
        m = TreeMachine(4)
        with pytest.raises(SimulationError):
            simulate_gang_rotation(m, [], {}, {}, quantum=0)
        with pytest.raises(SimulationError):
            simulate_gang_rotation(m, [], {}, {}, slot_overhead=-1)

    def test_zero_work_rejected(self):
        m = TreeMachine(4)
        with pytest.raises(SimulationError):
            simulate_gang_rotation(
                m, [Task(TaskId(0), 4, 0.0, work=0.0)],
                {TaskId(0): 1}, {TaskId(0): CopyId(0)},
            )

"""Events/sec throughput of the ingest path, per-event vs. batched.

Not a paper artifact — this suite tracks the streaming implementation
itself.  Three layers are metered:

* kernel-only ingest: ``AllocationKernel.apply`` in a loop vs.
  ``apply_batch`` at several batch sizes (amortised metering/bookkeeping),
* columnar ingest: ``apply_batch`` under every non-python backend the
  environment offers (``numpy`` always, ``numba`` when installed) — the
  structure-of-arrays hot path of :mod:`repro.kernel.columnar`,
* journaled ingest: ``AllocationSession.push`` with ``fsync=always`` vs.
  ``push_batch`` under group commit (``fsync=batch``) and interval
  fsync — the headline events/sec numbers,
* a second topology (hypercube) so the batched win is shown to be
  machine-independent.

Benchmarks whose name contains ``journal`` are fsync/I-O bound and are
exempted from the snapshot regression gate (``scripts/bench_snapshot.py``)
because their variance tracks the storage stack, not the code.  The two
``*_speedup_floor`` tests at the bottom are plain-timing acceptance
assertions (skipped at smoke N); they run without ``--benchmark-only``.

``REPRO_BENCH_N`` overrides the machine size (default 4096) so CI can run
a fast smoke pass at small N while snapshots use the full size.
"""

import itertools
import os
import time

import numpy as np
import pytest

from repro.core.registry import make_algorithm
from repro.kernel import AllocationKernel
from repro.kernel.columnar import available_backends
from repro.machines.hypercube import Hypercube
from repro.machines.tree import TreeMachine
from repro.service import AllocationSession, sequence_records
from repro.workloads.generators import churn_sequence

N_LARGE = int(os.environ.get("REPRO_BENCH_N", "4096"))
TASKS = 500  # churn gives one arrival + one departure per task

_journal_ids = itertools.count()


@pytest.fixture(scope="module")
def sigma():
    return churn_sequence(N_LARGE, TASKS, np.random.default_rng(17))


@pytest.fixture(scope="module")
def records(sigma):
    return list(sequence_records(sigma))


#: Columnar backends usable here (everything but the per-event oracle).
COLUMNAR_BACKENDS = [b for b in available_backends() if b != "python"]


def _fresh_kernel(machine_cls=TreeMachine, backend="python"):
    machine = machine_cls(N_LARGE)
    return AllocationKernel(
        machine, make_algorithm("greedy", machine, d=2.0), batch_backend=backend
    )


def _fresh_session(tmp_path, fsync_policy):
    machine = TreeMachine(N_LARGE)
    return AllocationSession(
        machine,
        make_algorithm("greedy", machine, d=2.0),
        journal_path=tmp_path / f"ingest-{next(_journal_ids)}.journal",
        fsync_policy=fsync_policy,
    )


def _ingest_records(session, records, batch):
    if batch == 1:
        for record in records:
            session.push(record)
    else:
        for i in range(0, len(records), batch):
            session.push_batch(records[i : i + batch])
    session.close()


def _ingest_events(kernel, events, batch):
    if batch == 1:
        for event in events:
            kernel.apply(event)
    else:
        for i in range(0, len(events), batch):
            kernel.apply_batch(events[i : i + batch])


def _note_rate(benchmark, num_events):
    if benchmark.stats is None:  # --benchmark-disable: nothing to annotate
        return
    mean = benchmark.stats.stats.mean
    if mean > 0:
        benchmark.extra_info["events_per_sec"] = round(num_events / mean)


# ---------------------------------------------------------------------------
# Kernel-only ingest (no journal): amortised metering and dispatch.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("batch", [1, 16, 256], ids=lambda b: f"batch{b}")
def test_perf_ingest_kernel(benchmark, sigma, batch):
    events = list(sigma)

    def setup():
        return (_fresh_kernel(), events, batch), {}

    benchmark.pedantic(_ingest_events, setup=setup, rounds=5, iterations=1)
    _note_rate(benchmark, len(events))


def test_perf_ingest_kernel_hypercube_batch256(benchmark, sigma):
    events = list(sigma)

    def setup():
        return (_fresh_kernel(Hypercube), events, 256), {}

    benchmark.pedantic(_ingest_events, setup=setup, rounds=5, iterations=1)
    _note_rate(benchmark, len(events))


# ---------------------------------------------------------------------------
# Columnar ingest: the structure-of-arrays batch engine, per backend.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("batch", [64, 256], ids=lambda b: f"batch{b}")
@pytest.mark.parametrize("backend", COLUMNAR_BACKENDS)
def test_perf_ingest_kernel_columnar(benchmark, sigma, backend, batch):
    events = list(sigma)

    def setup():
        return (_fresh_kernel(backend=backend), events, batch), {}

    benchmark.pedantic(_ingest_events, setup=setup, rounds=5, iterations=1)
    _note_rate(benchmark, len(events))


# ---------------------------------------------------------------------------
# Journaled ingest: the headline events/sec numbers.  fsync-bound — the
# snapshot gate exempts every bench named *journal*.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "fsync_policy,batch",
    [
        ("always", 1),
        ("always", 256),
        ("batch", 256),
        ("interval:100", 1),
        ("interval:100", 256),
    ],
    ids=lambda v: str(v).replace(":", ""),
)
def test_perf_ingest_journal(benchmark, records, tmp_path, fsync_policy, batch):
    def setup():
        return (_fresh_session(tmp_path, fsync_policy), records, batch), {}

    benchmark.pedantic(_ingest_records, setup=setup, rounds=3, iterations=1)
    _note_rate(benchmark, len(records))


# ---------------------------------------------------------------------------
# Acceptance floors (plain timing, not pytest-benchmark): these encode the
# speedup claims the batched path was built for.  Skipped at smoke N where
# constant overheads drown the asymptotics.
# ---------------------------------------------------------------------------


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.skipif(N_LARGE < 1024, reason="floors calibrated for N >= 1024")
def test_batched_journal_ingest_speedup_floor(records, tmp_path):
    """push_batch(256) under group commit beats per-event fsync=always."""
    floor = 3.0 if N_LARGE >= 4096 else 2.0
    per_event = _best_of(
        3, lambda: _ingest_records(_fresh_session(tmp_path, "always"), records, 1)
    )
    batched = _best_of(
        3, lambda: _ingest_records(_fresh_session(tmp_path, "batch"), records, 256)
    )
    ratio = per_event / batched
    assert ratio >= floor, (
        f"batched journaled ingest only {ratio:.2f}x faster than per-event "
        f"(floor {floor}x at N={N_LARGE})"
    )


@pytest.mark.skipif(N_LARGE < 1024, reason="floors calibrated for N >= 1024")
def test_columnar_ingest_speedup_floor(sigma):
    """The numpy columnar backend beats the per-event batch loop >= 2x.

    Measured in-run against the python backend on the same machine, so
    the floor is hardware-independent; the absolute events/sec per
    backend is recorded in the benchmark snapshots (where the numpy
    backend clears 3x the PR-5 unjournaled baseline at N = 4096).
    """
    events = list(sigma)
    python_t = _best_of(
        3, lambda: _ingest_events(_fresh_kernel(), events, 256)
    )
    numpy_t = _best_of(
        3, lambda: _ingest_events(_fresh_kernel(backend="numpy"), events, 256)
    )
    ratio = python_t / numpy_t
    assert ratio >= 2.0, (
        f"columnar numpy ingest only {ratio:.2f}x faster than the "
        f"per-event batch loop (floor 2.0x at N={N_LARGE})"
    )


@pytest.mark.skipif(N_LARGE < 1024, reason="floors calibrated for N >= 1024")
def test_rebuild_adoption_speedup_floor():
    """rebuild_from adoption beats the legacy clear()+place() loop >= 2x."""
    from repro.core.repack import repack
    from repro.machines.hierarchy import Hierarchy
    from repro.machines.loads import LoadTracker
    from repro.tasks.task import Task
    from repro.types import TaskId

    hierarchy = Hierarchy(N_LARGE)
    rng = np.random.default_rng(1)
    tasks = [
        Task(TaskId(i), int(1 << rng.integers(0, 8)), 0.0) for i in range(500)
    ]
    sizes = {task.task_id: task.size for task in tasks}
    mapping = repack(hierarchy, tasks).mapping
    tracker = LoadTracker(hierarchy)

    def legacy():
        tracker.clear()
        for tid, node in mapping.items():
            tracker.place(node, sizes[tid])

    def rebuild():
        tracker.rebuild_from(
            (node, sizes[tid]) for tid, node in mapping.items()
        )

    legacy_t = _best_of(5, legacy)
    rebuild_t = _best_of(5, rebuild)
    ratio = legacy_t / rebuild_t
    assert ratio >= 2.0, (
        f"rebuild_from adoption only {ratio:.2f}x faster than clear+place "
        f"(floor 2.0x at N={N_LARGE})"
    )

"""E3 — Theorem 4.1: greedy A_G stays within ceil((log N + 1)/2) * L*.

The report sweeps N on stochastic (churn) and adversarial inputs; the
timed kernel is greedy's per-arrival work (the vectorized all-submachine
min-load scan) at N = 1024.
"""

import numpy as np

from benchmarks.conftest import record_report
from repro.analysis.experiments import experiment_greedy_scaling
from repro.core.greedy import GreedyAlgorithm
from repro.machines.tree import TreeMachine
from repro.sim.runner import run
from repro.workloads.generators import churn_sequence


def test_e3_greedy_bound(benchmark):
    sigma = churn_sequence(1024, 1000, np.random.default_rng(5))

    def kernel():
        machine = TreeMachine(1024)
        return run(machine, GreedyAlgorithm(machine), sigma)

    result = benchmark(kernel)
    assert result.max_load <= 6 * max(1, result.optimal_load)  # g(1024) = 6

    report = experiment_greedy_scaling()
    record_report(report)
    assert all(v == "yes" for v in report.column("within?"))
    # Tightness (factor-2) of the lower-bound construction.
    for adv, bound in zip(report.column("adversarial ratio"), report.column("bound")):
        assert adv >= bound / 2

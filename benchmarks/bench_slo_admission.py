"""SLO admission under a flash crowd: protection vs. exposure.

Not a paper artifact — this meters the serving-stack robustness layer
(docs/SLO.md).  One flash-crowd churn storm is replayed twice:

* **unprotected** — straight `push` into a greedy session; the storm
  must drive the max PE load to at least twice the slowdown target
  (otherwise the scenario is no overload and the comparison is vacuous);
* **gated** — the same records through the admission controller with a
  target-aware two-choice allocator; zero `slo_violations` and a peak
  at or below the target, by construction.

The timed kernel is the gated offer loop — the admission gate's
O(log N) min-of-max descent per arrival plus drains — so regressions in
the controller's hot path show up here.  ``REPRO_BENCH_N`` overrides
the machine size for CI smoke passes.
"""

import os

import pytest

from repro.core.registry import make_algorithm
from repro.machines.tree import TreeMachine
from repro.scenarios import ChurnProcess
from repro.service import AllocationSession, SLOPolicy
from repro.service.stream import records_from_events

N = int(os.environ.get("REPRO_BENCH_N", "1024"))
TARGET = 2


@pytest.fixture(scope="module")
def storm():
    scenario = ChurnProcess(
        num_pes=N, seed=7, horizon=40.0, task_rate=N / 10.0,
        storm_rate=0.5, storm_depth=max(8, N // 10),
    ).build()
    return records_from_events(list(scenario.merged_events()))


def test_slo_admission_under_storm(benchmark, storm):
    machine = TreeMachine(N)
    plain = AllocationSession(machine, make_algorithm("greedy", machine, d=2.0))
    for record in storm:
        plain.push(record)
    # The storm is a genuine overload: >= 2x the load target unprotected.
    assert plain.max_load >= 2 * TARGET

    def kernel():
        m = TreeMachine(N)
        session = AllocationSession(
            m,
            make_algorithm(
                "twochoice", m, d=2.0, seed=7, load_target=TARGET
            ),
            slo=SLOPolicy(slowdown_target=float(TARGET), queue_capacity=32),
        )
        for record in storm:
            session.offer(record)
        return session

    gated = benchmark(kernel)
    status = gated.status()
    assert status["slo_violations"] == 0
    assert gated.max_load <= TARGET
    assert status["slo"]["admitted_total"] > 0
    assert status["rejected_total"] > 0  # the gate actually gated

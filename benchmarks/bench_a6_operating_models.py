"""A6 — operating models: the paper's shared service vs exclusive queueing.

Work-driven simulation of both regimes on one workload.  Shared service
bounds worst slowdown by the max thread load; exclusive queueing keeps the
load at 1 but can starve short jobs arbitrarily.  Timed kernel: the
closed-loop shared simulation at N = 64.
"""

import numpy as np

from benchmarks.conftest import record_report
from repro.analysis.experiments import experiment_operating_models
from repro.core.greedy import GreedyAlgorithm
from repro.machines.tree import TreeMachine
from repro.sim.closedloop import simulate_shared_closed_loop
from repro.tasks.task import Task
from repro.types import TaskId


def _workload(num_pes, num_tasks, seed):
    rng = np.random.default_rng(seed)
    tasks = []
    clock = 0.0
    for i in range(num_tasks):
        clock += float(rng.exponential(0.25))
        size = int(1 << rng.integers(0, 6))
        tasks.append(Task(TaskId(i), size, clock, work=float(rng.exponential(1.5))))
    return tasks


def test_a6_operating_models(benchmark):
    tasks = _workload(64, 300, 59)

    def kernel():
        machine = TreeMachine(64)
        return simulate_shared_closed_loop(machine, GreedyAlgorithm(machine), tasks)

    shared = benchmark(kernel)
    assert shared.worst_slowdown <= shared.max_load + 1e-9

    report = experiment_operating_models()
    record_report(report)
    worst = [float(row[3]) for row in report.rows]
    # Shared's worst slowdown (row 0) is far below FCFS queueing's (row 1).
    assert worst[0] < worst[1]
    max_loads = report.column("max load")
    assert max_loads[1] == max_loads[2] == 1  # exclusive use by construction

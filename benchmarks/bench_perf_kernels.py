"""Performance micro-benchmarks of the library's hot kernels.

Not a paper artifact — these track the implementation itself, per the HPC
guides ("no optimization without measuring").  The kernels are the ones
every experiment leans on:

* LoadTracker place/remove (O(log N) path re-aggregation),
* the vectorized all-submachine min-load scan (greedy's inner loop),
* procedure A_R packing throughput,
* BuddyCopy allocate/free cycles,
* a full greedy run at N = 4096 (end-to-end event rate).
"""

import numpy as np
import pytest

from repro.core.greedy import GreedyAlgorithm
from repro.core.repack import repack
from repro.machines.copies import BuddyCopy
from repro.machines.hierarchy import Hierarchy
from repro.machines.loads import LoadTracker
from repro.machines.tree import TreeMachine
from repro.sim.runner import run
from repro.tasks.task import Task
from repro.types import TaskId
from repro.workloads.generators import churn_sequence

N_LARGE = 4096


@pytest.fixture(scope="module")
def hierarchy():
    return Hierarchy(N_LARGE)


def test_perf_loadtracker_place_remove(benchmark, hierarchy):
    tracker = LoadTracker(hierarchy)
    node = hierarchy.node_for(64, 3)

    def kernel():
        for _ in range(100):
            tracker.place(node, 64)
        for _ in range(100):
            tracker.remove(node, 64)

    benchmark(kernel)
    assert tracker.max_load == 0


def test_perf_level_min_scan(benchmark, hierarchy):
    tracker = LoadTracker(hierarchy)
    rng = np.random.default_rng(0)
    for _ in range(200):
        level = int(rng.integers(0, hierarchy.height + 1))
        size = N_LARGE >> level
        tracker.place(hierarchy.node_for(size, int(rng.integers(N_LARGE // size))), size)

    result = benchmark(lambda: tracker.leftmost_min_submachine(16))
    assert hierarchy.subtree_size(result[0]) == 16


def test_perf_repack_throughput(benchmark, hierarchy):
    rng = np.random.default_rng(1)
    tasks = [
        Task(TaskId(i), int(1 << rng.integers(0, 8)), 0.0) for i in range(500)
    ]

    result = benchmark(lambda: repack(hierarchy, tasks))
    assert result.num_copies >= 1


def test_perf_buddy_cycle(benchmark, hierarchy):
    copy = BuddyCopy(hierarchy)

    def kernel():
        nodes = [copy.allocate(8) for _ in range(64)]
        for node in nodes:
            copy.free(node)

    benchmark(kernel)
    assert copy.is_empty


def test_perf_greedy_full_run(benchmark):
    sigma = churn_sequence(N_LARGE, 1000, np.random.default_rng(2))

    def kernel():
        machine = TreeMachine(N_LARGE)
        return run(machine, GreedyAlgorithm(machine), sigma)

    result = benchmark.pedantic(kernel, rounds=3, iterations=1)
    assert result.metrics.events_processed == 1000

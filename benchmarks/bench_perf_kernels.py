"""Performance micro-benchmarks of the library's hot kernels.

Not a paper artifact — these track the implementation itself, per the HPC
guides ("no optimization without measuring").  The kernels are the ones
every experiment leans on:

* LoadTracker place/remove (O(log N) path re-aggregation),
* the O(log N) min-load tree descent (greedy's inner loop) and the
  legacy O(N/size) level scan it replaced, side by side,
* the journal-backed leaf-load snapshot,
* procedure A_R packing plus the vectorised LoadTracker adoption
  (``rebuild_from``) and the legacy clear+place loop it replaced,
* BuddyCopy allocate/free cycles,
* a full greedy run (end-to-end event rate).

``REPRO_BENCH_N`` overrides the machine size (default 4096) so CI can run
a fast smoke pass at small N while snapshots use the full size.
"""

import os

import numpy as np
import pytest

from repro.core.greedy import GreedyAlgorithm
from repro.core.repack import repack
from repro.machines.copies import BuddyCopy
from repro.machines.hierarchy import Hierarchy
from repro.machines.loads import LoadTracker
from repro.machines.tree import TreeMachine
from repro.sim.runner import run
from repro.tasks.task import Task
from repro.types import TaskId
from repro.workloads.generators import churn_sequence

N_LARGE = int(os.environ.get("REPRO_BENCH_N", "4096"))


@pytest.fixture(scope="module")
def hierarchy():
    return Hierarchy(N_LARGE)


def test_perf_loadtracker_place_remove(benchmark, hierarchy):
    tracker = LoadTracker(hierarchy)
    node = hierarchy.node_for(64, 3)

    def kernel():
        for _ in range(100):
            tracker.place(node, 64)
        for _ in range(100):
            tracker.remove(node, 64)

    benchmark(kernel)
    assert tracker.max_load == 0


def _churned_tracker(hierarchy):
    tracker = LoadTracker(hierarchy)
    rng = np.random.default_rng(0)
    for _ in range(200):
        level = int(rng.integers(0, hierarchy.height + 1))
        size = N_LARGE >> level
        tracker.place(hierarchy.node_for(size, int(rng.integers(N_LARGE // size))), size)
    return tracker


def test_perf_min_descent(benchmark, hierarchy):
    tracker = _churned_tracker(hierarchy)

    result = benchmark(lambda: tracker.leftmost_min_submachine(16))
    assert hierarchy.subtree_size(result[0]) == 16


def test_perf_min_scan_legacy(benchmark, hierarchy):
    # The O(N/size) level scan the descent replaced — kept benchmarked so
    # one snapshot shows the speedup ratio at the current N.
    tracker = _churned_tracker(hierarchy)

    result = benchmark(lambda: tracker.leftmost_min_submachine_scan(16))
    assert hierarchy.subtree_size(result[0]) == 16
    assert result == tracker.leftmost_min_submachine(16)


def test_perf_leaf_loads(benchmark, hierarchy):
    tracker = _churned_tracker(hierarchy)
    tracker.leaf_loads()  # warm the journal-backed cache

    leaf = hierarchy.node_for(1, 0)

    def kernel():
        tracker.place(leaf, 1)
        loads = tracker.leaf_loads()
        tracker.remove(leaf, 1)
        return loads

    loads = benchmark(kernel)
    assert loads.shape == (N_LARGE,)


def _repack_workload():
    rng = np.random.default_rng(1)
    return [
        Task(TaskId(i), int(1 << rng.integers(0, 8)), 0.0) for i in range(500)
    ]


def test_perf_repack_cycle(benchmark, hierarchy):
    # The production reallocation path: procedure A_R packs the active
    # set, then a warm LoadTracker adopts the new mapping via the
    # vectorised rebuild (what PeriodicAlgorithm and restore() do).
    tasks = _repack_workload()
    sizes = {task.task_id: task.size for task in tasks}
    tracker = _churned_tracker(hierarchy)

    def kernel():
        result = repack(hierarchy, tasks)
        tracker.rebuild_from(
            (node, sizes[tid]) for tid, node in result.mapping.items()
        )
        return result

    result = benchmark(kernel)
    assert result.num_copies >= 1
    assert tracker.max_load >= 1


def test_perf_repack_adopt_rebuild(benchmark, hierarchy):
    # Adoption step in isolation: one vectorised rebuild_from call.
    tasks = _repack_workload()
    sizes = {task.task_id: task.size for task in tasks}
    mapping = repack(hierarchy, tasks).mapping
    tracker = _churned_tracker(hierarchy)

    benchmark(
        lambda: tracker.rebuild_from(
            (node, sizes[tid]) for tid, node in mapping.items()
        )
    )
    assert tracker.max_load >= 1


def test_perf_repack_adopt_legacy(benchmark, hierarchy):
    # The clear() + per-task place() adoption loop that rebuild_from
    # replaced — kept benchmarked so one snapshot shows the adoption
    # speedup ratio at the current N.
    tasks = _repack_workload()
    sizes = {task.task_id: task.size for task in tasks}
    mapping = repack(hierarchy, tasks).mapping
    tracker = _churned_tracker(hierarchy)

    def kernel():
        tracker.clear()
        for tid, node in mapping.items():
            tracker.place(node, sizes[tid])

    benchmark(kernel)
    assert tracker.max_load >= 1


def test_perf_buddy_cycle(benchmark, hierarchy):
    copy = BuddyCopy(hierarchy)

    cycles = min(64, N_LARGE // 8)

    def kernel():
        nodes = [copy.allocate(8) for _ in range(cycles)]
        for node in nodes:
            copy.free(node)

    benchmark(kernel)
    assert copy.is_empty


def test_perf_greedy_full_run(benchmark):
    sigma = churn_sequence(N_LARGE, 1000, np.random.default_rng(2))

    def kernel():
        machine = TreeMachine(N_LARGE)
        return run(machine, GreedyAlgorithm(machine), sigma)

    result = benchmark.pedantic(kernel, rounds=3, iterations=1)
    assert result.metrics.events_processed == 1000


def test_perf_parallel_map_overhead(benchmark):
    # Fan-out fixed cost: serial fallback vs. a 2-worker pool is measured
    # by the snapshot harness over time; here we pin the serial path so
    # the dispatch bookkeeping itself stays cheap.
    from repro.sim.parallel import parallel_map

    items = [(i,) for i in range(64)]
    result = benchmark(lambda: parallel_map(_identity, items, jobs=None))
    assert result == list(range(64))


def _identity(x):
    return x

"""E1 — Figure 1: the paper's worked example on a 4-PE tree.

Paper numbers: greedy A_G reaches load 2; a 1-reallocation algorithm
reaches load 1; the optimal load is 1.  The bench reproduces all three
exactly and times one full simulation of the example sequence.
"""

from benchmarks.conftest import record_report
from repro.analysis.experiments import experiment_figure1
from repro.core.greedy import GreedyAlgorithm
from repro.machines.tree import TreeMachine
from repro.sim.runner import run
from repro.tasks.builder import figure1_sequence


def test_e1_figure1(benchmark):
    sequence = figure1_sequence()

    def kernel():
        machine = TreeMachine(4)
        return run(machine, GreedyAlgorithm(machine), sequence).max_load

    assert benchmark(kernel) == 2

    report = experiment_figure1()
    record_report(report)
    by_algo = {row[0]: row[1] for row in report.rows}
    assert by_algo["A_G"] == 2            # paper: greedy incurs 2
    assert by_algo["A_M(d=1,lazy)"] == 1  # paper: 1-reallocation achieves 1
    assert by_algo["A_C"] == 1            # optimal

"""A8 — related work [9]: buddy vs Gray-code subcube recognition.

Verifies Chen & Shin's 2x-recognition theorem computationally at every
size, then measures the end-to-end effect in the exclusive-queueing regime
(small — part of the paper's case for the shared model).  Timed kernel:
the Gray-strategy allocator under a random alloc/free churn.
"""

import numpy as np

from benchmarks.conftest import record_report
from repro.analysis.experiments import experiment_subcube_recognition
from repro.machines.subcube import SubcubeAllocator


def test_a8_subcube(benchmark):
    rng = np.random.default_rng(67)
    script = []
    for _ in range(300):
        script.append(("alloc", int(1 << rng.integers(0, 4))))
        if rng.random() < 0.5:
            script.append(("free", None))

    def kernel():
        alloc = SubcubeAllocator(64, "gray")
        live = []
        for op, size in script:
            if op == "alloc" and alloc.can_host(size):
                live.append(alloc.allocate(size))
            elif op == "free" and live:
                alloc.free(live.pop())
        return alloc.num_busy

    benchmark(kernel)

    report = experiment_subcube_recognition()
    record_report(report)
    recognition_rows = [r for r in report.rows if str(r[0]).startswith("recognition")]
    for row in recognition_rows:
        assert row[2] == 2 * row[1]  # the 2x theorem, at every size

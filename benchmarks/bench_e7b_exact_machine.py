"""E7b — sigma_r at the paper's *exact* machine size, N = 2^16.

For ``N = 2^(2^k)`` the construction's task sizes ``log^i N`` are exact
powers of two — no rounding substitution at all.  N = 65536 is the first
such machine big enough for 4 phases (sizes 1, 16, 256, 4096), so this is
the purest available instantiation of Theorem 5.2's sequence.  Runs in
lightweight-metrics mode (max load stays exact; per-PE snapshots skipped).

Expected: L* = 1 with margin (Lemma 5), oblivious placement pushed to a
multiple of it, load-aware greedy still comfortable — the asymptotics of
the lower bound remain out of simulable reach, as EXPERIMENTS.md records.
"""

import numpy as np

from benchmarks.conftest import record_report
from repro.adversary.randomized import (
    is_exact_sigma_r_machine,
    sigma_r_max_phases,
    sigma_r_phase_sizes,
    sigma_r_sequence,
)
from repro.analysis.experiments import ExperimentReport
from repro.core.greedy import GreedyAlgorithm
from repro.core.randomized import ObliviousRandomAlgorithm
from repro.machines.tree import TreeMachine
from repro.sim.engine import Simulator

N_EXACT = 1 << 16


def _run_light(machine, algorithm, sequence):
    sim = Simulator(machine, algorithm, collect_leaf_snapshots=False)
    for event in sequence:
        sim.step(event)
    return sim.metrics.max_load


def test_e7b_exact_machine(benchmark):
    assert is_exact_sigma_r_machine(N_EXACT)
    phases = sigma_r_max_phases(N_EXACT)
    sizes = sigma_r_phase_sizes(N_EXACT, phases)
    assert sizes == [1, 16, 256, 4096]  # log^i N exactly, no rounding

    sigma = sigma_r_sequence(N_EXACT, np.random.default_rng(0), num_phases=phases)

    def kernel():
        machine = TreeMachine(N_EXACT)
        algo = ObliviousRandomAlgorithm(machine, np.random.default_rng(1))
        return _run_light(machine, algo, sigma)

    rand_load = benchmark.pedantic(kernel, rounds=2, iterations=1)

    rows = []
    lstar = max(1, sigma.optimal_load(N_EXACT))
    seeds = range(3)
    rand_loads = []
    for seed in seeds:
        machine = TreeMachine(N_EXACT)
        algo = ObliviousRandomAlgorithm(machine, np.random.default_rng(100 + seed))
        rand_loads.append(_run_light(machine, algo, sigma))
    greedy_machine = TreeMachine(N_EXACT)
    greedy_load = _run_light(greedy_machine, GreedyAlgorithm(greedy_machine), sigma)
    rows.append(
        [
            N_EXACT,
            phases,
            "1,16,256,4096",
            lstar,
            f"{np.mean(rand_loads):.1f}",
            greedy_load,
        ]
    )
    report = ExperimentReport(
        experiment_id="e7b",
        title="sigma_r at the exact machine N = 2^16 (no size rounding)",
        params={"seeds": len(list(seeds)), "events": len(sigma)},
        headers=["N", "phases", "sizes", "L*", "E[A_rand load]", "A_G load"],
        rows=rows,
        notes=[
            "The purest Theorem 5.2 instantiation reachable by simulation: "
            "exact log^i N sizes, 4 phases.  Oblivious placement is pushed "
            "well above L*; adaptive greedy is not — the bound's force "
            "against adaptive algorithms is asymptotic (see EXPERIMENTS.md)."
        ],
    )
    record_report(report)
    assert lstar == 1
    assert float(np.mean(rand_loads)) >= 3.0
    assert rand_load >= 2

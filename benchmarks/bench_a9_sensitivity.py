"""A9 — sensitivity: measured load vs d across every workload scenario.

The operators' view of the trade-off: which workload shapes actually pay a
fragmentation penalty for never reallocating, and which reach the d = 0
optimum regardless.  Timed kernel: one A_M(d=1) run on the production-1996
mix.
"""

import numpy as np

from benchmarks.conftest import record_report
from repro.analysis.experiments import experiment_workload_sensitivity
from repro.core.periodic import PeriodicReallocationAlgorithm
from repro.machines.tree import TreeMachine
from repro.sim.runner import run
from repro.workloads.scenarios import production_1996


def test_a9_sensitivity(benchmark):
    sigma = production_1996(128, np.random.default_rng(71), scale=0.5)

    def kernel():
        machine = TreeMachine(128)
        return run(machine, PeriodicReallocationAlgorithm(machine, 1), sigma)

    result = benchmark(kernel)
    assert result.max_load >= result.optimal_load

    report = experiment_workload_sensitivity()
    record_report(report)
    for row in report.rows:
        lstar, load_d0, penalty = row[1], row[2], row[-1]
        assert load_d0 == lstar          # Theorem 3.1 on every shape
        assert penalty >= 0              # never-realloc can't beat optimal
        # Stochastic penalties are small — the worst case needs an adversary.
        assert penalty <= 2

"""A5 — ablation: per-repack migration budget under the Thm 4.3 storm.

k = 0 (no moves) suffers greedy's full ceil((log N + 1)/2) factor; a few
targeted migrations per repack recover most of the full-repack benefit.
Timed kernel: the adversary driving the k = 4 incremental allocator.
"""

from benchmarks.conftest import record_report
from repro.adversary.deterministic import DeterministicAdversary
from repro.analysis.experiments import experiment_incremental
from repro.core.incremental import IncrementalReallocationAlgorithm
from repro.machines.tree import TreeMachine


def test_a5_incremental(benchmark):
    def kernel():
        machine = TreeMachine(256)
        adversary = DeterministicAdversary(machine, float("inf"))
        return adversary.run(IncrementalReallocationAlgorithm(machine, 1, 4))

    outcome = benchmark(kernel)
    assert outcome.optimal_load == 1

    report = experiment_incremental()
    record_report(report)
    loads = [row[1] for row in report.rows]
    # Monotone frontier: more budget never increases the forced load, and
    # the largest budget matches the full-repack reference.
    numeric = loads[:-1]  # last row is the A_M reference
    assert all(a >= b for a, b in zip(numeric, numeric[1:]))
    assert numeric[-1] == loads[-1]
    # k = 0 is greedy: pays the full factor (5 at N = 256).
    assert numeric[0] == 5

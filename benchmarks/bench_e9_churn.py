"""E9 — steady-state load under churn, elasticity, and flash crowds.

The paper prices reallocation against load on a fixed healthy machine;
E9 extends that trade to external perturbations: PE faults with repair,
task kills, flash-crowd arrival storms, and online grow/shrink.  The
timed kernel is :func:`repro.scenarios.run_scenario` on a worst-mix
scenario — the full event alphabet through the production kernel — and
the recorded artifact is the e9 regime table (steady-state load ratio vs
the analytic degraded benchmark, salvage traffic per churn event).
"""

from benchmarks.conftest import record_report
from repro.analysis.experiments import experiment_churn_tradeoff
from repro.scenarios import ChurnProcess, run_scenario


def _worst_mix_scenario():
    return ChurnProcess(
        num_pes=64,
        seed=9,
        horizon=120.0,
        task_rate=1.5,
        pe_mttf=10.0,
        mttr=4.0,
        kill_rate=0.05,
        storm_rate=0.1,
        storm_depth=8,
        resizes=((40.0, "grow", 2), (80.0, "shrink", 2)),
    ).build()


def test_e9_churn(benchmark):
    scenario = _worst_mix_scenario()
    result = benchmark(lambda: run_scenario(scenario, "periodic", d=2.0, seed=9))

    # The machine-size trajectory round-trips: one x2 grow, one x2 shrink.
    assert result.num_resizes == 2
    assert result.final_num_pes == 64
    # Churn actually happened and was salvaged, not ignored.
    faults = result.metrics.faults
    assert faults.num_failures > 0 and faults.num_kills > 0
    assert faults.num_grows == 1 and faults.num_shrinks == 1
    # The steady-state figures are coherent: the time-averaged max load
    # dominates the analytic degraded benchmark (pigeonhole, pointwise).
    steady = result.steady
    assert steady.time_avg_max_load >= steady.time_avg_lstar - 1e-9
    assert steady.churn_events == scenario.num_churn_events

    report = experiment_churn_tradeoff()
    record_report(report)
    by_regime = {row[0]: row for row in report.rows}
    assert set(by_regime) == {
        "calm", "faulty", "hostile", "flash-crowd", "worst-mix"
    }
    # Calm has no faults to salvage; the fault regimes do.
    assert by_regime["calm"][1] == 0 and by_regime["calm"][2] == 0
    assert by_regime["hostile"][1] > 0 and by_regime["hostile"][2] > 0
    # Every regime absorbed both resizes.
    assert all(row[3] == 2 for row in report.rows)

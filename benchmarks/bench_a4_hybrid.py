"""A4 — the paper's open problem: randomization together with reallocation.

Measures the hybrid A_randM (oblivious random placement + periodic A_R
repacking) against its parents.  The expected load should fall from the
never-reallocating randomized level toward the deterministic A_M level as
d shrinks.  Timed kernel: one hybrid run at N = 256, d = 1.
"""

import numpy as np

from benchmarks.conftest import record_report
from repro.analysis.experiments import experiment_hybrid
from repro.core.hybrid import RandomizedPeriodicAlgorithm
from repro.machines.tree import TreeMachine
from repro.sim.runner import run
from repro.workloads.generators import churn_sequence


def test_a4_hybrid(benchmark):
    sigma = churn_sequence(256, 1500, np.random.default_rng(47))

    def kernel():
        machine = TreeMachine(256)
        algo = RandomizedPeriodicAlgorithm(machine, 1, np.random.default_rng(3))
        return run(machine, algo, sigma)

    result = benchmark(kernel)
    assert result.max_load >= result.optimal_load

    report = experiment_hybrid()
    record_report(report)
    hybrid = report.column("E[A_randM load]")
    oblivious = report.column("E[A_rand load]")
    # At the smallest d the hybrid must clearly beat no-reallocation...
    assert hybrid[0] < oblivious[0]
    # ...and the hybrid's load should not decrease as d grows (repacking
    # gets rarer), modulo sampling noise.
    assert hybrid[0] <= hybrid[-1]

"""A7 — thread-management overhead under the discrete round-robin scheduler.

The paper's opening motivation, measured: placements with higher max
thread load burn more context-switch time and management tax and finish
the same batch later.  Timed kernel: one scheduler run of the greedy
placement.
"""

import numpy as np

from benchmarks.conftest import record_report
from repro.analysis.experiments import experiment_thread_overhead
from repro.core.greedy import GreedyAlgorithm
from repro.machines.tree import TreeMachine
from repro.sched.roundrobin import SchedulerConfig, simulate_round_robin
from repro.tasks.task import Task
from repro.types import TaskId


def test_a7_thread_overhead(benchmark):
    rng = np.random.default_rng(61)
    tasks = [
        Task(TaskId(i), int(1 << rng.integers(0, 4)), 0.0, work=float(rng.uniform(2, 6)))
        for i in range(64)
    ]
    machine = TreeMachine(64)
    algo = GreedyAlgorithm(machine)
    placements = {t.task_id: algo.on_arrival(t).node for t in tasks}
    config = SchedulerConfig(quantum=0.5, context_switch=0.05, management_tax=0.04)

    report_obj = benchmark(lambda: simulate_round_robin(machine, tasks, placements, config))
    assert report_obj.makespan > 0

    report = experiment_thread_overhead()
    record_report(report)
    by_placement = {row[0]: row for row in report.rows}
    load_rand = by_placement["A_rand"][1]
    load_greedy = by_placement["A_G greedy"][1]
    assert load_rand >= load_greedy
    # Higher load -> longer makespan and more tax time.
    assert float(by_placement["A_rand"][2]) >= float(by_placement["A_G greedy"][2])
    assert float(by_placement["A_rand"][6]) >= float(by_placement["A_G greedy"][6])

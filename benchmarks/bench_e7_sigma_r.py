"""E7 — Theorem 5.2: the random sequence sigma_r vs no-realloc algorithms.

sigma_r keeps L* ~ 1 yet every online algorithm suffers in expectation; at
simulable N the theorem's explicit constants are < 1, so the reproduced
shape is "ratios exceed the bound and grow with N".  The timed kernel is
sigma_r generation + one oblivious run at N = 1024.
"""

import numpy as np

from benchmarks.conftest import record_report
from repro.adversary.randomized import sigma_r_max_phases, sigma_r_sequence
from repro.analysis.experiments import experiment_sigma_r
from repro.core.randomized import ObliviousRandomAlgorithm
from repro.machines.tree import TreeMachine
from repro.sim.runner import run


def test_e7_sigma_r(benchmark):
    phases = sigma_r_max_phases(1024)

    def kernel():
        rng = np.random.default_rng(3)
        sigma = sigma_r_sequence(1024, rng, num_phases=phases)
        machine = TreeMachine(1024)
        algo = ObliviousRandomAlgorithm(machine, np.random.default_rng(4))
        return run(machine, algo, sigma)

    result = benchmark(kernel)
    assert result.max_load >= 1

    report = experiment_sigma_r()
    record_report(report)
    rand_ratios = report.column("A_rand E[ratio]")
    bounds = report.column("thm bound (1/7)(...)^(1/3)")
    # Measured expected ratios sit above the (tiny-constant) lower bound
    # at every N, and trend upward with N.
    assert all(r >= b for r, b in zip(rand_ratios, bounds))
    assert rand_ratios[-1] > rand_ratios[0]

"""Benchmark-session plumbing.

Each bench file times a representative kernel with pytest-benchmark *and*
runs the corresponding experiment driver, registering its table here.  The
``pytest_terminal_summary`` hook prints every registered table after the
benchmark results, so ``pytest benchmarks/ --benchmark-only | tee
bench_output.txt`` captures the reproduced paper artifacts alongside the
timings.
"""

from __future__ import annotations

_REPORTS: list = []


def record_report(report) -> None:
    """Register an ExperimentReport for end-of-session printing."""
    _REPORTS.append(report)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    tr = terminalreporter
    tr.section("reproduced paper artifacts")
    for report in sorted(_REPORTS, key=lambda r: r.experiment_id):
        tr.write_line("")
        for line in report.render().splitlines():
            tr.write_line(line)
    _REPORTS.clear()

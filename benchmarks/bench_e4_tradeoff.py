"""E4 — Theorem 4.2: the paper's headline trade-off.

One table: as the reallocation parameter d grows, the worst-case load
ratio climbs (~(d+1) until it crosses the greedy plateau, exactly the
min{} in the theorem) while reallocation traffic falls.  The timed kernel
is one eager A_M(d=2) churn run at N = 256.
"""

import math

import numpy as np

from benchmarks.conftest import record_report
from repro.analysis.experiments import experiment_tradeoff
from repro.core.periodic import PeriodicReallocationAlgorithm
from repro.machines.tree import TreeMachine
from repro.sim.runner import run
from repro.workloads.generators import churn_sequence


def test_e4_tradeoff(benchmark):
    sigma = churn_sequence(256, 2000, np.random.default_rng(11))

    def kernel():
        machine = TreeMachine(256)
        return run(machine, PeriodicReallocationAlgorithm(machine, 2), sigma)

    result = benchmark(kernel)
    assert result.max_load <= 3 * max(1, result.optimal_load)  # d+1 = 3

    report = experiment_tradeoff()
    record_report(report)

    worst = report.column("worst ratio")
    lower = report.column("lower")
    bound = report.column("bound")
    # Sandwich: lower <= worst-case ratio <= upper for every d.
    for w, lo, b in zip(worst, lower, bound):
        assert lo <= w <= b
    # The trade-off shape: worst-case load non-decreasing in d ...
    assert all(a <= b for a, b in zip(worst, worst[1:]))
    # ... while reallocation traffic is non-increasing in d.
    traffic = report.column("traffic(pe-hops)")
    assert all(a >= b for a, b in zip(traffic, traffic[1:]))
    # d = 0 achieves the optimal load on the churn workload.
    assert report.rows[0][1] == report.rows[0][2]

"""A2 — ablation: two-choice vs one-choice randomized placement.

The balanced-allocations effect (paper ref [2]) in the submachine setting:
sampling two submachines and taking the less loaded one beats oblivious
placement, increasingly so with N.  Timed kernel: one two-choice run.
"""

import numpy as np

from benchmarks.conftest import record_report
from repro.analysis.experiments import experiment_twochoice
from repro.core.twochoice import TwoChoiceAlgorithm
from repro.machines.tree import TreeMachine
from repro.sim.runner import run
from repro.workloads.distributions import FixedSize
from repro.workloads.generators import arrivals_only_sequence


def test_a2_twochoice(benchmark):
    sigma = arrivals_only_sequence(
        1024, 1024, np.random.default_rng(0), sizes=FixedSize(1)
    )

    def kernel():
        machine = TreeMachine(1024)
        algo = TwoChoiceAlgorithm(machine, np.random.default_rng(1))
        return run(machine, algo, sigma)

    result = benchmark(kernel)
    assert result.max_load >= 1

    report = experiment_twochoice()
    record_report(report)
    for row in report.rows:
        _n, one_choice, two_choice, gain, _logn = row
        assert two_choice <= one_choice
    # The gain should not shrink as N grows (Azar et al.: it widens).
    gains = report.column("gain")
    assert gains[-1] >= gains[0] * 0.9  # allow sampling noise

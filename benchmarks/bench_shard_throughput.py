"""Events/sec throughput of the sharded service vs. one session.

Not a paper artifact — this suite tracks the sharded-service
implementation (:mod:`repro.service.shard`).  Three configurations are
metered over the same churn stream at ``REPRO_BENCH_N`` (default 4096):

* the monolithic journaled session (``push_batch`` under group commit) —
  the single-process baseline the coordinator must route bit-identically
  to,
* a coordinator over in-process :class:`LocalShard` workers — pure
  routing overhead, no IPC,
* a coordinator over :class:`ProcessShard` worker processes — the
  deployment configuration: per-subtree journals written (and fsync'd)
  in ``K`` separate processes.

Every sharded benchmark name contains ``journal`` (where applicable), so
the snapshot gate (``scripts/bench_snapshot.py``) exempts them the same
way it exempts the session's journaled benches: they are fsync/IPC
bound, and their variance tracks the storage stack and the scheduler,
not the code.

**Reading the numbers.**  The sharded design splits the per-event work
in two: the coordinator's global descent (CPU, unjournaled) and the
workers' booking + journal serialisation + fsync (CPU + I/O, one process
per shard).  Those halves only overlap when the machine has cores to run
them on — on a single-CPU host (``os.cpu_count() == 1``) parent and
workers serialise onto one core and the cluster cannot beat the
monolithic session's wall clock, which is why every snapshot records
``cpu_count`` alongside the rates and why the scaling floor below is
skipped on hosts with fewer than four cores.  The per-worker journal
*capacity* benchmark at the bottom measures the other half directly: the
events/sec one worker process absorbs and journals independent of the
coordinator, which is the quantity that multiplies by ``K`` when cores
exist.

``REPRO_BENCH_N`` overrides the machine size (default 4096) so CI can
run a fast smoke pass at small N while snapshots use the full size.
"""

import os
import time

import numpy as np
import pytest

from repro.core.registry import make_algorithm
from repro.machines.tree import TreeMachine
from repro.service import AllocationSession, sequence_records
from repro.service.shard import ShardedCoordinator, ShardPlan
from repro.service.shard.worker import create_process_cluster
from repro.workloads.generators import churn_sequence

N_LARGE = int(os.environ.get("REPRO_BENCH_N", "4096"))
TASKS = 500  # churn gives one arrival + one departure per task

#: Worker journal snapshot cadence.  The 64-event session default is
#: calamitous for a throughput worker (every embedded kernel snapshot
#: pickles the whole subtree state); 1024 amortises it below the
#: per-record serialisation cost and is the shard factories' default.
SNAPSHOT_INTERVAL = 1024


@pytest.fixture(scope="module")
def records():
    sigma = churn_sequence(N_LARGE, TASKS, np.random.default_rng(17))
    return list(sequence_records(sigma))


def _fresh_session(tmp_path, tag):
    machine = TreeMachine(N_LARGE)
    return AllocationSession(
        machine,
        make_algorithm("greedy", machine, d=2.0),
        journal_path=tmp_path / f"mono-{tag}.journal",
        fsync_policy="batch",
        batch_backend="numpy",
    )


def _local_cluster(tmp_path, tag, num_shards, journaled=True):
    machine = TreeMachine(N_LARGE)
    return ShardedCoordinator.create_local(
        machine,
        make_algorithm("greedy", machine, d=2.0),
        num_shards=num_shards,
        journal_dir=(tmp_path / f"local-{tag}") if journaled else None,
        fsync_policy="batch",
        batch_backend="numpy",
        snapshot_interval=SNAPSHOT_INTERVAL,
    )


def _process_cluster(tmp_path, tag, num_shards):
    machine = TreeMachine(N_LARGE)
    return create_process_cluster(
        machine,
        make_algorithm("greedy", machine, d=2.0),
        num_shards=num_shards,
        journal_dir=tmp_path / f"proc-{tag}",
        fsync_policy="batch",
        batch_backend="numpy",
        snapshot_interval=SNAPSHOT_INTERVAL,
    )


def _drive(backend, records, batch):
    try:
        for i in range(0, len(records), batch):
            backend.apply_batch(records[i : i + batch])
        backend.flush()
    finally:
        backend.close()


def _drive_session(session, records, batch):
    try:
        for i in range(0, len(records), batch):
            session.push_batch(records[i : i + batch])
        session.flush()
    finally:
        session.close()


def _note_rate(benchmark, num_events):
    if benchmark.stats is None:  # --benchmark-disable: nothing to annotate
        return
    mean = benchmark.stats.stats.mean
    if mean > 0:
        benchmark.extra_info["events_per_sec"] = round(num_events / mean)
    benchmark.extra_info["cpu_count"] = os.cpu_count()


# ---------------------------------------------------------------------------
# Baseline: the monolithic journaled session the cluster must match.
# ---------------------------------------------------------------------------


def test_perf_shard_journal_baseline(benchmark, records, tmp_path):
    counter = iter(range(10**6))

    def setup():
        return (_fresh_session(tmp_path, next(counter)), records, 256), {}

    benchmark.pedantic(_drive_session, setup=setup, rounds=3, iterations=1)
    _note_rate(benchmark, len(records))


# ---------------------------------------------------------------------------
# Local (in-process) cluster: routing overhead with and without journals.
# ---------------------------------------------------------------------------


def test_perf_shard_route_local(benchmark, records, tmp_path):
    """Coordinator + 4 LocalShards, no journals: pure routing overhead."""
    counter = iter(range(10**6))

    def setup():
        cluster = _local_cluster(tmp_path, next(counter), 4, journaled=False)
        return (cluster, records, 256), {}

    benchmark.pedantic(_drive, setup=setup, rounds=3, iterations=1)
    _note_rate(benchmark, len(records))


def test_perf_shard_journal_local(benchmark, records, tmp_path):
    counter = iter(range(10**6))

    def setup():
        return (_local_cluster(tmp_path, next(counter), 4), records, 256), {}

    benchmark.pedantic(_drive, setup=setup, rounds=3, iterations=1)
    _note_rate(benchmark, len(records))


# ---------------------------------------------------------------------------
# Process cluster: the deployment configuration (K worker processes).
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("num_shards", [2, 4], ids=lambda k: f"shards{k}")
@pytest.mark.parametrize("batch", [256, 1024], ids=lambda b: f"batch{b}")
def test_perf_shard_journal_cluster(
    benchmark, records, tmp_path, num_shards, batch
):
    counter = iter(range(10**6))

    def setup():
        cluster = _process_cluster(
            tmp_path, f"{num_shards}-{batch}-{next(counter)}", num_shards
        )
        return (cluster, records, batch), {}

    benchmark.pedantic(_drive, setup=setup, rounds=3, iterations=1)
    _note_rate(benchmark, len(records))


# ---------------------------------------------------------------------------
# Worker journal capacity: one shard process driven at full tilt.  This
# is the per-shard events/sec that multiplies by K on multi-core hosts.
# ---------------------------------------------------------------------------


def test_perf_shard_journal_worker_capacity(benchmark, records, tmp_path):
    plan = ShardPlan(N_LARGE, 4)
    width = plan.width

    # Pre-route the stream for one shard: unit placements round-robin
    # over the subtree's leaves (local heap ids ``width..2*width-1``) —
    # the worker only validates and books, so this meters its whole
    # steady-state cost (kernel booking + journal serialisation) without
    # any coordinator in the loop.
    routed = []
    active = set()
    gsn = 0
    for record in records:
        if record["kind"] == "arrival":
            routed.append(
                {
                    "kind": "placed",
                    "time": record["time"],
                    "id": record["id"],
                    "size": 1,
                    "work": record.get("work", 1.0),
                    "node": width + (gsn % width),
                    "gsn": gsn,
                }
            )
            active.add(record["id"])
            gsn += 1
        elif record["kind"] == "departure" and record["id"] in active:
            routed.append(
                {
                    "kind": "departure",
                    "time": record["time"],
                    "id": record["id"],
                    "gsn": gsn,
                }
            )
            active.discard(record["id"])
            gsn += 1
    counter = iter(range(10**6))

    def setup():
        machine = plan.shard_machine(TreeMachine(N_LARGE))
        session = AllocationSession(
            machine,
            None,
            journal_path=tmp_path / f"worker-{next(counter)}.journal",
            fsync_policy="batch",
            snapshot_interval=SNAPSHOT_INTERVAL,
        )
        return (session, routed), {}

    def drive(session, routed):
        try:
            for i in range(0, len(routed), 256):
                session.push_routed_batch(routed[i : i + 256])
            session.flush()
        finally:
            session.close()

    benchmark.pedantic(drive, setup=setup, rounds=3, iterations=1)
    _note_rate(benchmark, len(routed))


# ---------------------------------------------------------------------------
# Scaling floor: on hosts with cores to overlap coordinator and workers,
# the 4-shard cluster must beat the monolithic journaled session.
# Single-core hosts serialise the two halves onto one CPU, so the floor
# is meaningless there and the test is skipped (the snapshot still
# records the measured rates and the cpu_count they were taken at).
# ---------------------------------------------------------------------------


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.skipif(N_LARGE < 1024, reason="floors calibrated for N >= 1024")
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="sharded speedup needs >= 4 cores; with fewer, coordinator and "
    "workers serialise onto the same CPUs and wall clock cannot improve",
)
def test_sharded_journal_speedup_floor(records, tmp_path):
    """4 worker processes beat the monolithic journaled session >= 2x."""
    counter = iter(range(10**6))
    mono = _best_of(
        3,
        lambda: _drive_session(
            _fresh_session(tmp_path, f"floor-{next(counter)}"), records, 256
        ),
    )
    sharded = _best_of(
        3,
        lambda: _drive(
            _process_cluster(tmp_path, f"floor-{next(counter)}", 4),
            records,
            256,
        ),
    )
    ratio = mono / sharded
    assert ratio >= 2.0, (
        f"4-shard journaled ingest only {ratio:.2f}x the monolithic session "
        f"(floor 2.0x at N={N_LARGE} on {os.cpu_count()} cores)"
    )

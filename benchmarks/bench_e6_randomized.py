"""E6 — Theorem 5.1: oblivious random placement's expected max load.

E[max load] on an L* = 1 workload must stay under 3 log N / log log N + 1
and grow slowly with N.  The timed kernel is one randomized run at N = 1024.
"""

import numpy as np

from benchmarks.conftest import record_report
from repro.analysis.experiments import experiment_randomized
from repro.core.randomized import ObliviousRandomAlgorithm
from repro.machines.tree import TreeMachine
from repro.sim.runner import run
from repro.workloads.generators import arrivals_only_sequence
from repro.workloads.distributions import FixedSize


def test_e6_randomized(benchmark):
    sigma = arrivals_only_sequence(
        1024, 1024, np.random.default_rng(0), sizes=FixedSize(1)
    )

    def kernel():
        machine = TreeMachine(1024)
        algo = ObliviousRandomAlgorithm(machine, np.random.default_rng(7))
        return run(machine, algo, sigma)

    result = benchmark(kernel)
    assert result.max_load >= 1

    report = experiment_randomized()
    record_report(report)
    assert all(v == "yes" for v in report.column("within?"))
    loads = report.column("E[max load]")
    assert loads[-1] > loads[0]  # grows with N (log/loglog shape)

"""E8 — Section 2 motivation: slowdown tracks max PE load under round-robin.

The paper justifies "load" as the figure of merit by noting that worst
round-robin slowdown is proportional to the max PE load in a task's
submachine; this bench measures both and times the fluid integration.
"""

import numpy as np

from benchmarks.conftest import record_report
from repro.analysis.experiments import experiment_slowdown
from repro.core.greedy import GreedyAlgorithm
from repro.machines.tree import TreeMachine
from repro.sim.engine import Simulator
from repro.sim.slowdown import measure_slowdowns
from repro.workloads.generators import poisson_sequence


def test_e8_slowdown(benchmark):
    machine = TreeMachine(64)
    sigma = poisson_sequence(64, 150, np.random.default_rng(1), utilization=1.5)
    sim = Simulator(machine, GreedyAlgorithm(machine))
    placements = {}
    for event in sigma:
        sim.step(event)
        placements.update(sim.placements)

    report_obj = benchmark(lambda: measure_slowdowns(machine, sigma, placements))
    assert report_obj.worst_slowdown >= 1.0

    report = experiment_slowdown()
    record_report(report)
    for row in report.rows:
        _algo, max_load, worst_task_load, worst_slowdown, mean_slowdown = row
        # Slowdown never exceeds the worst load a task shared (the paper's
        # proportionality, with equality when the peak persists).
        assert worst_slowdown <= worst_task_load + 1e-9
        assert worst_task_load <= max_load

"""A1 — ablation: eager vs lazy reallocation trigger in A_M.

Both satisfy Theorem 4.2; lazy repacks strictly less often (it declines
when the current load already equals ceil(active/N)).  The timed kernel is
the lazy variant at d = 2.
"""

import numpy as np

from benchmarks.conftest import record_report
from repro.analysis.experiments import experiment_copies_ablation
from repro.core.periodic import PeriodicReallocationAlgorithm
from repro.machines.tree import TreeMachine
from repro.sim.runner import run
from repro.workloads.generators import churn_sequence


def test_a1_lazy_trigger(benchmark):
    sigma = churn_sequence(256, 2000, np.random.default_rng(37))

    def kernel():
        machine = TreeMachine(256)
        algo = PeriodicReallocationAlgorithm(machine, 2, lazy=True)
        return run(machine, algo, sigma)

    benchmark(kernel)

    report = experiment_copies_ablation()
    record_report(report)
    for row in report.rows:
        _d, load_eager, load_lazy, re_eager, re_lazy, tr_eager, tr_lazy = row
        assert re_lazy <= re_eager           # lazy never repacks more
        assert tr_lazy <= tr_eager           # and never moves more bytes

"""Scaling validation: the theorems hold (and run fast) at large N.

Everything else in the harness runs at N <= 1024; this bench pushes the
three heaviest code paths to N = 4096 and asserts the theory still holds
exactly:

* the Theorem 4.3 adversary still forces exactly ceil((log N + 1)/2);
* greedy still respects its Theorem 4.1 bound on a long churn run;
* A_C stays exactly optimal while repacking thousands of tasks.
"""

import numpy as np

from repro.adversary.deterministic import DeterministicAdversary
from repro.core.bounds import deterministic_lower_factor, greedy_upper_bound_factor
from repro.core.greedy import GreedyAlgorithm
from repro.core.optimal import OptimalReallocatingAlgorithm
from repro.machines.tree import TreeMachine
from repro.sim.runner import run
from repro.workloads.generators import churn_sequence, poisson_sequence

N_LARGE = 4096


def test_scaling_adversary(benchmark):
    def kernel():
        machine = TreeMachine(N_LARGE)
        adversary = DeterministicAdversary(machine, float("inf"))
        return adversary.run(GreedyAlgorithm(machine))

    outcome = benchmark.pedantic(kernel, rounds=2, iterations=1)
    expected = deterministic_lower_factor(N_LARGE, float(12))
    assert outcome.optimal_load == 1
    assert outcome.max_load == expected == 7  # ceil((12+1)/2)


def test_scaling_greedy_churn(benchmark):
    sigma = churn_sequence(N_LARGE, 4000, np.random.default_rng(71))

    def kernel():
        machine = TreeMachine(N_LARGE)
        return run(machine, GreedyAlgorithm(machine), sigma)

    result = benchmark.pedantic(kernel, rounds=2, iterations=1)
    assert result.max_load <= greedy_upper_bound_factor(N_LARGE) * max(
        1, result.optimal_load
    )


def test_scaling_optimal_repacker(benchmark):
    sigma = poisson_sequence(N_LARGE, 1200, np.random.default_rng(73), utilization=1.1)

    def kernel():
        machine = TreeMachine(N_LARGE)
        return run(machine, OptimalReallocatingAlgorithm(machine), sigma)

    result = benchmark.pedantic(kernel, rounds=2, iterations=1)
    assert result.max_load == result.optimal_load

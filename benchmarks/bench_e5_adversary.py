"""E5 — Theorem 4.3: the adaptive adversary forces the lower bound.

For every d, the adversary drives A_M(d) to at least
ceil((min{d, log N} + 1)/2) * L* with L* = 1.  The timed kernel is one
full adversary interaction against greedy at N = 256.
"""

from benchmarks.conftest import record_report
from repro.adversary.deterministic import DeterministicAdversary
from repro.analysis.experiments import experiment_adversary
from repro.core.greedy import GreedyAlgorithm
from repro.machines.tree import TreeMachine


def test_e5_adversary(benchmark):
    def kernel():
        adversary = DeterministicAdversary(TreeMachine(256), float("inf"))
        return adversary.run(GreedyAlgorithm(adversary.machine))

    outcome = benchmark(kernel)
    assert outcome.optimal_load == 1
    assert outcome.max_load >= outcome.guaranteed_load == 5  # ceil((8+1)/2)

    report = experiment_adversary()
    record_report(report)
    assert all(v == "yes" for v in report.column("sandwiched?"))
    # Forced load is non-decreasing in d (more patience, more damage).
    forced = report.column("forced load")
    assert all(a <= b for a, b in zip(forced, forced[1:]))

"""A3 — ablation: reallocation traffic across physical topologies.

Allocation decisions are topology-independent (same hierarchy), so loads
match exactly; what changes is the distance migrated state travels.  Timed
kernel: A_M(d=2) on the 2D mesh (the worst-dilation topology).
"""

import numpy as np

from benchmarks.conftest import record_report
from repro.analysis.experiments import experiment_topology
from repro.core.periodic import PeriodicReallocationAlgorithm
from repro.machines.mesh import Mesh2D
from repro.sim.runner import run
from repro.workloads.generators import churn_sequence


def test_a3_topology(benchmark):
    sigma = churn_sequence(256, 1500, np.random.default_rng(43))

    def kernel():
        machine = Mesh2D(256)
        return run(machine, PeriodicReallocationAlgorithm(machine, 2), sigma)

    benchmark(kernel)

    report = experiment_topology()
    record_report(report)
    loads = report.column("max_load")
    assert len(set(loads)) == 1  # identical allocation behaviour
    by_topo = {row[0]: row[3] for row in report.rows}
    # The fat-tree shares the plain tree's hop counts; hypercube routes are
    # logarithmic; the mesh pays sqrt-dilation. All see the same migrations.
    assert by_topo["fattree-f2"] == by_topo["tree"]
    assert by_topo["hypercube-binary"] <= by_topo["tree"]

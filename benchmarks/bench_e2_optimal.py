"""E2 — Theorem 3.1: the constantly reallocating A_C achieves exactly L*.

The bench asserts load == L* on every (N, seed) cell and times one full A_C
run (the expensive repack-per-arrival regime, d = 0).
"""

import numpy as np

from benchmarks.conftest import record_report
from repro.analysis.experiments import experiment_optimal
from repro.core.optimal import OptimalReallocatingAlgorithm
from repro.machines.tree import TreeMachine
from repro.sim.runner import run
from repro.workloads.generators import poisson_sequence


def test_e2_optimal_reallocation(benchmark):
    sigma = poisson_sequence(64, 300, np.random.default_rng(0), utilization=1.2)

    def kernel():
        machine = TreeMachine(64)
        return run(machine, OptimalReallocatingAlgorithm(machine), sigma)

    result = benchmark(kernel)
    assert result.max_load == result.optimal_load

    report = experiment_optimal()
    record_report(report)
    assert all(v == "yes" for v in report.column("optimal?"))

"""Journal fast-path benchmarks: frame codec, formats, and durable ingest.

Not a paper artifact — this suite tracks the binary journal (format v2)
against the JSONL format it replaced.  Three layers are metered:

* codec microbenches: columnar encode/decode of wire-record batches and
  the v1 raw-JSON record encoding vs the old pickle+base64 double
  encoding it replaced,
* replay: reopening a journaled session (the resume path) per format —
  v2 decodes batch frames columnar-wise, v1 parses JSONL,
* journaled ingest: ``push_batch`` end-to-end per fsync policy per
  format, including the headline v2 + numpy-backend configuration.

Journal benches are fsync/I-O bound; the snapshot gate holds them to a
looser events/sec-only tolerance (see ``scripts/bench_snapshot.py``).
The ``*_floor`` tests at the bottom are plain-timing acceptance
assertions, hardware-independent because both sides run in-process;
CI's ``journal-smoke`` job runs them at N=256.

``REPRO_BENCH_N`` overrides the machine size (default 4096).
"""

import base64
import itertools
import json
import os
import pickle
import time

import numpy as np
import pytest

from repro.core.registry import make_algorithm
from repro.machines.tree import TreeMachine
from repro.service import AllocationSession, sequence_records
from repro.sim.frames import (
    decode_record_batch,
    encode_wire_records,
    iter_journal_payloads,
)
from repro.workloads.generators import churn_sequence

N_LARGE = int(os.environ.get("REPRO_BENCH_N", "4096"))
TASKS = 500  # churn gives one arrival + one departure per task

_journal_ids = itertools.count()


@pytest.fixture(scope="module")
def records():
    sigma = churn_sequence(N_LARGE, TASKS, np.random.default_rng(17))
    return list(sequence_records(sigma))


@pytest.fixture(scope="module")
def wire_records(records):
    """Records normalised to the strict hot-path schema (explicit work),
    the way the session fills defaults before columnar encoding."""
    return [
        dict(rec, work=float(rec.get("work", 1.0)))
        if rec["kind"] == "arrival"
        else rec
        for rec in records
    ]


def _fresh_session(tmp_path, fsync_policy, journal_format, backend="python"):
    machine = TreeMachine(N_LARGE)
    return AllocationSession(
        machine,
        make_algorithm("greedy", machine, d=2.0),
        journal_path=tmp_path / f"journal-{next(_journal_ids)}.journal",
        fsync_policy=fsync_policy,
        journal_format=journal_format,
        batch_backend=backend,
    )


def _ingest(session, records, batch=256):
    for i in range(0, len(records), batch):
        session.push_batch(records[i : i + batch])
    session.close()


def _note_rate(benchmark, num_events):
    if benchmark.stats is None:  # --benchmark-disable: nothing to annotate
        return
    mean = benchmark.stats.stats.mean
    if mean > 0:
        benchmark.extra_info["events_per_sec"] = round(num_events / mean)


# ---------------------------------------------------------------------------
# Codec microbenches: pure CPU, no I/O.
# ---------------------------------------------------------------------------


def test_perf_journal_encode_columnar(benchmark, wire_records):
    """Columnar-encode the whole stream in 256-record slices."""

    def encode():
        for i in range(0, len(wire_records), 256):
            assert encode_wire_records(wire_records[i : i + 256]) is not None

    benchmark(encode)
    _note_rate(benchmark, len(wire_records))


def test_perf_journal_decode_columnar(benchmark, wire_records):
    blobs = [
        encode_wire_records(wire_records[i : i + 256])
        for i in range(0, len(wire_records), 256)
    ]
    assert all(blobs)

    def decode():
        for blob in blobs:
            decode_record_batch(blob)

    benchmark(decode)
    _note_rate(benchmark, len(wire_records))


@pytest.mark.parametrize("codec", ["rawjson", "pickle64"])
def test_perf_journal_v1_record_encoding(benchmark, records, codec):
    """The v1 raw-JSON record line vs the pickle+base64 double encoding
    it replaced — same payloads, same output shape (a JSONL line)."""
    payloads = [{"record": rec} for rec in records]

    if codec == "rawjson":

        def encode():
            for i, payload in enumerate(payloads):
                json.dumps({"cell": i, "json": payload})

    else:

        def encode():
            for i, payload in enumerate(payloads):
                json.dumps(
                    {
                        "cell": i,
                        "data": base64.b64encode(
                            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
                        ).decode("ascii"),
                    }
                )

    benchmark(encode)
    _note_rate(benchmark, len(records))


# ---------------------------------------------------------------------------
# Replay: the resume path, per format.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("journal_format", ["v1", "v2"])
def test_perf_journal_replay(benchmark, records, tmp_path, journal_format):
    writer = _fresh_session(tmp_path, "batch", journal_format)
    path = writer._journal.path
    _ingest(writer, records)

    def replay():
        machine = TreeMachine(N_LARGE)
        AllocationSession(
            machine,
            make_algorithm("greedy", machine, d=2.0),
            journal_path=path,
            fsync_policy="batch",
            journal_format=journal_format,
        ).close()

    benchmark.pedantic(replay, rounds=3, iterations=1)
    _note_rate(benchmark, len(records))


# ---------------------------------------------------------------------------
# Journaled ingest: end-to-end events/sec per fsync policy per format.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("fsync_policy", ["always", "batch", "interval:100"],
                         ids=lambda v: v.replace(":", ""))
@pytest.mark.parametrize("journal_format", ["v1", "v2"])
def test_perf_ingest_journal_format(
    benchmark, records, tmp_path, journal_format, fsync_policy
):
    def setup():
        return (
            _fresh_session(tmp_path, fsync_policy, journal_format),
            records,
        ), {}

    benchmark.pedantic(_ingest, setup=setup, rounds=3, iterations=1)
    _note_rate(benchmark, len(records))


def test_perf_ingest_journal_v2_numpy(benchmark, records, tmp_path):
    """The headline configuration: v2 batch frames + columnar numpy
    kernel backend + group commit at batch 256."""

    def setup():
        return (
            _fresh_session(tmp_path, "batch", "v2", backend="numpy"),
            records,
        ), {}

    benchmark.pedantic(_ingest, setup=setup, rounds=3, iterations=1)
    _note_rate(benchmark, len(records))


# ---------------------------------------------------------------------------
# Acceptance floors (plain timing, not pytest-benchmark): the claims the
# binary journal was built for, asserted relative so any hardware can
# check them.  CI's journal-smoke job runs these at N=256.
# ---------------------------------------------------------------------------


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_journal_v2_ingest_speedup_floor(records, tmp_path):
    """v2 batch frames beat v1 JSONL >= 1.3x on journaled batch ingest
    (same machine, same stream, same group-commit policy)."""
    v1 = _best_of(
        3, lambda: _ingest(_fresh_session(tmp_path, "batch", "v1"), records)
    )
    v2 = _best_of(
        3, lambda: _ingest(_fresh_session(tmp_path, "batch", "v2"), records)
    )
    ratio = v1 / v2
    assert ratio >= 1.3, (
        f"v2 journaled ingest only {ratio:.2f}x faster than v1 "
        f"(floor 1.3x at N={N_LARGE})"
    )


def test_journal_v2_size_floor(records, tmp_path):
    """v2 batch frames take <= half the bytes of v1 raw-JSON lines for
    the same stream — and both journals replay the same records."""
    v1_session = _fresh_session(tmp_path, "batch", "v1")
    v1_path = v1_session._journal.path
    _ingest(v1_session, records)
    v2_session = _fresh_session(tmp_path, "batch", "v2")
    v2_path = v2_session._journal.path
    _ingest(v2_session, records)
    v1_bytes = v1_path.stat().st_size
    v2_bytes = v2_path.stat().st_size
    assert v2_bytes * 2 <= v1_bytes, (
        f"v2 journal is {v2_bytes} bytes vs v1 {v1_bytes} — "
        "expected at least a 2x size win"
    )
    v1_records = [p["record"] for _i, p in iter_journal_payloads(v1_path)]
    v2_records = [p["record"] for _i, p in iter_journal_payloads(v2_path)]
    assert len(v1_records) == len(records)
    assert v1_records == v2_records

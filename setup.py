"""Legacy setup shim: enables `python setup.py develop` / `pip install -e .`
on environments whose setuptools predates PEP 660 editable wheels."""
from setuptools import setup

setup()

#!/usr/bin/env python
"""Performance-regression harness around the perf benchmark suites.

Runs the kernel micro-benchmarks (``bench_perf_kernels.py``) and the
ingest-throughput suite (``bench_throughput.py``) via pytest-benchmark,
distills the JSON into a compact per-kernel snapshot
(``benchmarks/snapshots/BENCH_<date>_N<k>.json``), and compares it against
the most recent previous snapshot taken at the same machine size.  A
kernel whose mean time grew by more than ``--tolerance`` (fractional,
default 0.25) fails the gate and the script exits 1 — wire it into CI or
run it by hand before merging perf-sensitive changes.

Benchmarks whose name contains ``journal`` are fsync/I-O bound, so
their variance tracks the storage stack of the machine, not the code
under test.  They skip the mean-time gate and are instead held to a
*looser* events/sec-only gate (4x the base tolerance): storage jitter
passes, halving the durable ingest rate does not.  They are recorded in
the snapshot (including the events/sec extra info) as the throughput
record.

Usage:
    python scripts/bench_snapshot.py                 # full N (4096)
    python scripts/bench_snapshot.py --bench-n 256   # fast smoke
    python scripts/bench_snapshot.py --check-only    # compare, don't save
    python scripts/bench_snapshot.py --tolerance 0.5
    python scripts/bench_snapshot.py --out art.json  # also write artifact

Snapshots are plain JSON and meant to be committed: the history of
``benchmarks/snapshots/`` is the project's performance record.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT_DIR = REPO_ROOT / "benchmarks" / "snapshots"
BENCH_FILES = [
    REPO_ROOT / "benchmarks" / "bench_perf_kernels.py",
    REPO_ROOT / "benchmarks" / "bench_throughput.py",
    REPO_ROOT / "benchmarks" / "bench_shard_throughput.py",
    REPO_ROOT / "benchmarks" / "bench_journal.py",
]

#: Substrings marking a benchmark as I/O-bound: no mean-time gate, and
#: the events/sec gate widens by JOURNAL_RATE_SLACK.
GATE_EXEMPT_MARKERS = ("journal",)

#: Multiplier on --tolerance for the I/O-bound events/sec gate.
JOURNAL_RATE_SLACK = 4.0


def run_benchmarks(bench_n: int | None) -> dict:
    """Run the kernel benchmarks, returning pytest-benchmark's raw JSON."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    if bench_n is not None:
        env["REPRO_BENCH_N"] = str(bench_n)
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        raw_path = Path(tmp.name)
    try:
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            *[str(f) for f in BENCH_FILES],
            "--benchmark-only",
            "-q",
            f"--benchmark-json={raw_path}",
        ]
        proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
        if proc.returncode != 0:
            raise SystemExit(f"benchmark run failed (pytest exit {proc.returncode})")
        return json.loads(raw_path.read_text())
    finally:
        raw_path.unlink(missing_ok=True)


def distill(raw: dict, bench_n: int) -> dict:
    """Reduce pytest-benchmark output to a stable, diff-friendly snapshot."""
    kernels = {}
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        entry = {
            "mean_s": stats["mean"],
            "median_s": stats["median"],
            "min_s": stats["min"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
        }
        rate = bench.get("extra_info", {}).get("events_per_sec")
        if rate is not None:
            entry["events_per_sec"] = rate
        kernels[bench["name"]] = entry
    return {
        "schema": 1,
        "date": datetime.date.today().isoformat(),
        "bench_n": bench_n,
        "python": platform.python_version(),
        "machine": platform.machine(),
        # The sharded-service rates only overlap coordinator and worker
        # work when cores exist to run them on — record how many this
        # snapshot's host had so the numbers are interpretable.
        "cpu_count": os.cpu_count(),
        "kernels": dict(sorted(kernels.items())),
    }


def latest_snapshot(
    bench_n: int | None = None, exclude: Path | None = None
) -> Path | None:
    """Most recent snapshot, optionally restricted to one machine size."""
    if not SNAPSHOT_DIR.is_dir():
        return None
    candidates = []
    for path in sorted(SNAPSHOT_DIR.glob("BENCH_*.json")):
        if path == exclude:
            continue
        if bench_n is not None:
            try:
                if json.loads(path.read_text()).get("bench_n") != bench_n:
                    continue
            except (OSError, json.JSONDecodeError):
                continue
        candidates.append(path)
    return candidates[-1] if candidates else None


def gate_exempt(name: str) -> bool:
    return any(marker in name for marker in GATE_EXEMPT_MARKERS)


def compare(previous: dict, current: dict, tolerance: float) -> list[str]:
    """Return regression messages for kernels slower than ``tolerance``.

    Two axes are gated with the same relative tolerance: per-call mean
    time (must not grow past ``1 + tolerance``) and, where both snapshots
    record it, ``events_per_sec`` throughput (must not fall below
    ``prev / (1 + tolerance)``).  The throughput gate catches regressions
    the mean-time gate can miss when a benchmark's event count changes.
    """
    problems = []
    if previous.get("bench_n") != current.get("bench_n"):
        print(
            f"note: previous snapshot used N={previous.get('bench_n')}, "
            f"current uses N={current.get('bench_n')}; skipping the gate."
        )
        return problems
    prev_kernels = previous.get("kernels", {})
    for name, cur in current["kernels"].items():
        prev = prev_kernels.get(name)
        if prev is None:
            print(f"  new kernel (no baseline): {name}")
            continue
        ratio = cur["mean_s"] / prev["mean_s"] if prev["mean_s"] else float("inf")
        if gate_exempt(name):
            marker = "I/O-bound (rate gate only)"
        elif ratio > 1 + tolerance:
            marker = "REGRESSION"
        else:
            marker = "ok"
        print(
            f"  {name}: {prev['mean_s'] * 1e6:.2f}us -> "
            f"{cur['mean_s'] * 1e6:.2f}us  ({ratio:.2f}x)  {marker}"
        )
        if marker == "REGRESSION":
            problems.append(
                f"{name} slowed {ratio:.2f}x "
                f"(tolerance {1 + tolerance:.2f}x)"
            )
        prev_rate, cur_rate = prev.get("events_per_sec"), cur.get("events_per_sec")
        rate_tolerance = (
            tolerance * JOURNAL_RATE_SLACK if gate_exempt(name) else tolerance
        )
        if (
            prev_rate
            and cur_rate is not None
            and cur_rate < prev_rate / (1 + rate_tolerance)
        ):
            print(
                f"  {name}: {prev_rate} ev/s -> {cur_rate} ev/s  "
                f"THROUGHPUT REGRESSION"
            )
            problems.append(
                f"{name} throughput fell {prev_rate} -> {cur_rate} ev/s "
                f"(tolerance {1 + rate_tolerance:.2f}x)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench-n",
        type=int,
        default=None,
        help="machine size for the kernels (sets REPRO_BENCH_N; default 4096)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional mean-time growth per kernel (default 0.25)",
    )
    parser.add_argument(
        "--check-only",
        action="store_true",
        help="compare against the latest snapshot without writing a new one",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="also write the distilled snapshot to this path (CI artifact)",
    )
    args = parser.parse_args(argv)

    raw = run_benchmarks(args.bench_n)
    effective_n = args.bench_n if args.bench_n is not None else int(
        os.environ.get("REPRO_BENCH_N", "4096")
    )
    snapshot = distill(raw, effective_n)

    baseline_path = latest_snapshot(bench_n=effective_n)
    problems: list[str] = []
    if baseline_path is not None:
        print(f"comparing against {baseline_path.relative_to(REPO_ROOT)}:")
        baseline = json.loads(baseline_path.read_text())
        problems = compare(baseline, snapshot, args.tolerance)
    else:
        print(f"no previous N={effective_n} snapshot; this run becomes the baseline.")

    if not args.check_only:
        SNAPSHOT_DIR.mkdir(parents=True, exist_ok=True)
        out = SNAPSHOT_DIR / f"BENCH_{snapshot['date']}_N{effective_n}.json"
        serial = 2
        while out.exists():
            # Same-day rerun: never clobber a committed baseline.  The
            # ``_r<k>`` suffix sorts after the bare name, so
            # latest_snapshot() still picks the newest file.
            out = (
                SNAPSHOT_DIR
                / f"BENCH_{snapshot['date']}_N{effective_n}_r{serial}.json"
            )
            serial += 1
        out.write_text(json.dumps(snapshot, indent=2) + "\n")
        print(f"wrote {out.relative_to(REPO_ROOT)}")

    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(snapshot, indent=2) + "\n")
        print(f"wrote {args.out}")

    if problems:
        print("performance gate FAILED:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("performance gate passed.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

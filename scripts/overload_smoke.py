#!/usr/bin/env python
"""Flash-crowd overload smoke: unprotected vs SLO-gated serving.

The CI `overload-smoke` gate (and the acceptance bar for the SLO layer):
drive one flash-crowd churn storm at N PEs through

1. an **unprotected** session — no admission control; the storm must
   push its max load to at least ``--ratio`` times the slowdown target
   (otherwise the scenario is not an overload and the test is vacuous);
2. an **SLO-gated** session — same records through the admission
   controller; it must finish with **zero** ``slo_violations`` and a
   peak max load at or below the target.

Every admission outcome of the gated run is written to ``--out`` as
JSONL (the admission-decision artifact CI uploads), followed by one
summary record.  Exits nonzero if either side of the bar fails.

Usage::

    python scripts/overload_smoke.py --n 256 --target 2 \
        --out admission-decisions.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.registry import make_algorithm  # noqa: E402
from repro.machines.tree import TreeMachine  # noqa: E402
from repro.scenarios import ChurnProcess  # noqa: E402
from repro.service import (  # noqa: E402
    AllocationSession,
    SLOPolicy,
    admission_lines,
)
from repro.service.stream import records_from_events  # noqa: E402


def storm_records(n: int, seed: int) -> list[dict]:
    """A flash-crowd heavy churn scenario (PR-7's storm generator)."""
    scenario = ChurnProcess(
        num_pes=n, seed=seed, horizon=40.0, task_rate=n / 10.0,
        storm_rate=0.5, storm_depth=max(8, n // 10),
    ).build()
    return records_from_events(list(scenario.merged_events()))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=256)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--target", type=float, default=2.0,
                        help="slowdown target (default 2)")
    parser.add_argument("--queue", type=int, default=32,
                        help="admission queue capacity")
    parser.add_argument("--ratio", type=float, default=2.0,
                        help="overload bar: unprotected max load must "
                             "reach ratio * target")
    parser.add_argument("--algorithm", default="twochoice",
                        help="gated allocator (default twochoice)")
    parser.add_argument("--out", type=Path,
                        default=Path("admission-decisions.jsonl"))
    args = parser.parse_args(argv)

    records = storm_records(args.n, args.seed)
    target = SLOPolicy(slowdown_target=args.target).load_target
    failures: list[str] = []

    # 1. Unprotected: same storm, no gate — establish genuine overload.
    machine = TreeMachine(args.n)
    plain = AllocationSession(
        machine, make_algorithm("greedy", machine, d=2.0)
    )
    for record in records:
        plain.push(record)
    plain_ratio = plain.max_load / target
    print(
        f"unprotected: max_load {plain.max_load} = {plain_ratio:.1f}x "
        f"the load target {target} over {len(records)} records"
    )
    if plain_ratio < args.ratio:
        failures.append(
            f"storm too mild: unprotected ratio {plain_ratio:.2f} < "
            f"required {args.ratio}"
        )

    # 2. Gated: identical records through the admission controller.
    machine = TreeMachine(args.n)
    slo = SLOPolicy(slowdown_target=args.target, queue_capacity=args.queue)
    gated = AllocationSession(
        machine,
        make_algorithm(
            args.algorithm, machine, d=2.0, seed=args.seed,
            load_target=target,
        ),
        slo=slo,
    )
    with open(args.out, "w") as sink:
        for record in records:
            for line in admission_lines(gated.offer(record)):
                sink.write(line + "\n")
        status = gated.status()
        sink.write(json.dumps({"summary": status}) + "\n")

    print(
        f"gated ({gated.algorithm.name}): max_load {gated.max_load}, "
        f"{status['slo']['admitted_total']} admitted, "
        f"{status['slo']['drained_total']} drained, "
        f"{status['rejected_total']} rejected, "
        f"{status['slo_violations']} violation(s)"
    )
    print(f"admission decisions -> {args.out}")
    if status["slo_violations"] != 0:
        failures.append(
            f"gated session admitted {status['slo_violations']} "
            "target-violating arrival(s)"
        )
    if gated.max_load > target:
        failures.append(
            f"gated peak max load {gated.max_load} exceeds target {target}"
        )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("overload smoke: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env bash
# One-shot replication kit: tests, paper artifacts, and a markdown report.
#
# Usage: ./scripts/reproduce_all.sh [output-dir]
set -euo pipefail
out="${1:-reproduction-$(date +%Y%m%d-%H%M%S)}"
mkdir -p "$out"

echo "== 1/4 test suite (theorem properties included) =="
pytest tests/ 2>&1 | tee "$out/test_output.txt"

echo "== 2/4 benchmark harness (regenerates + asserts every artifact) =="
pytest benchmarks/ --benchmark-only 2>&1 | tee "$out/bench_output.txt"

echo "== 3/4 experiment tables =="
python -m repro all 2>&1 | tee "$out/experiments.txt"

echo "== 4/4 markdown report =="
python -m repro report --out "$out/report.md"

echo "done: artifacts in $out/"

#!/usr/bin/env python
"""Socket load generator for ``repro serve --listen``.

Drives N concurrent clients against a running allocation service (single
session or sharded cluster — the wire protocol is the same), measures
per-operation latency, and writes a JSONL artifact: one line per client
with its latency percentiles, then one aggregate line.

Each client plays its own churn-style arrival/departure stream with a
disjoint task-id range (client ``c`` uses ids ``c*10**7 + i``), so any
number of clients can share one backend without id collisions.  Two
load modes:

* ``closed`` (default) — send one record, await its reply, repeat: the
  latency of each operation includes the full round trip, and offered
  load self-adjusts to service capacity.
* ``open`` — send at a fixed per-client rate (``--rate`` records/sec)
  regardless of replies; a reader task matches replies by order (the
  protocol answers strictly in order per connection), so latencies show
  queueing delay building up when the service saturates.

Error replies (``{"error": ...}``) and overload notices
(``{"overloaded": true, ...}``) are counted, not fatal — backpressure is
part of what this tool is for measuring.

Usage:
    python scripts/loadgen.py --addr 127.0.0.1:7341 \
        --clients 8 --events 500 --mode closed --out loadgen.jsonl
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from typing import Any, Optional

import numpy as np


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted latency list."""
    if not sorted_values:
        return float("nan")
    rank = min(len(sorted_values) - 1, int(q / 100.0 * len(sorted_values)))
    return sorted_values[rank]


def client_stream(client: int, events: int, num_pes: int, seed: int):
    """Arrival/departure records for one client (disjoint id range)."""
    rng = np.random.default_rng(seed * 1000003 + client)
    # The seed folds into the id base so runs with different seeds against
    # the same (stateful) server never collide on task ids.
    base = (seed * 997 + client) * 10**7
    max_log = max(0, (num_pes.bit_length() - 1) - 2)
    active: list[int] = []
    t = 0.0
    next_id = 0
    for _ in range(events):
        t += float(rng.random()) * 1e-3
        if active and (rng.random() < 0.5 or len(active) > 64):
            tid = active.pop(int(rng.integers(len(active))))
            yield {"kind": "departure", "id": tid}
        else:
            tid = base + next_id
            next_id += 1
            active.append(tid)
            yield {
                "kind": "arrival",
                "id": tid,
                "size": 1 << int(rng.integers(0, max_log + 1)),
                "work": round(float(rng.random()) * 2 + 0.5, 4),
            }


def classify(line: bytes) -> str:
    """decision | admission | error | overloaded (one reply line)."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError:
        return "error"
    if not isinstance(obj, dict):
        return "error"
    if "error" in obj:
        return "error"
    if obj.get("overloaded"):
        return "overloaded"
    return "decision"


async def run_client(
    client: int, args: argparse.Namespace
) -> dict[str, Any]:
    host, _, port = args.addr.rpartition(":")
    reader, writer = await asyncio.open_connection(host, int(port))
    latencies: list[float] = []
    counts = {"decision": 0, "error": 0, "overloaded": 0}
    records = list(client_stream(client, args.events, args.n, args.seed))
    start = time.perf_counter()

    async def read_reply() -> Optional[str]:
        # Overload notices ride after a decision on the same request —
        # absorb them here so the next reply still pairs with its request.
        line = await reader.readline()
        if not line:
            return None
        kind = classify(line)
        counts[kind] += 1
        return kind

    if args.mode == "closed":
        for record in records:
            sent = time.perf_counter()
            writer.write(json.dumps(record).encode() + b"\n")
            await writer.drain()
            kind = await read_reply()
            if kind is None:
                break
            latencies.append(time.perf_counter() - sent)
            if kind == "overloaded" or (
                counts["overloaded"] and await absorb_pending(reader, counts)
            ):
                await asyncio.sleep(args.backoff)
    else:  # open loop
        send_times: asyncio.Queue[float] = asyncio.Queue()

        async def reader_task() -> None:
            while True:
                kind = await read_reply()
                if kind is None:
                    return
                if kind == "overloaded":
                    continue  # paired with the previous decision
                latencies.append(time.perf_counter() - await send_times.get())

        task = asyncio.create_task(reader_task())
        interval = 1.0 / args.rate if args.rate > 0 else 0.0
        next_send = time.perf_counter()
        for record in records:
            now = time.perf_counter()
            if interval and now < next_send:
                await asyncio.sleep(next_send - now)
            next_send += interval
            await send_times.put(time.perf_counter())
            writer.write(json.dumps(record).encode() + b"\n")
            await writer.drain()
        # Let in-flight replies land, then stop reading.
        deadline = time.perf_counter() + args.drain_timeout
        while not send_times.empty() and time.perf_counter() < deadline:
            await asyncio.sleep(0.01)
        task.cancel()
    elapsed = time.perf_counter() - start
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError, OSError):
        pass
    latencies.sort()
    return {
        "client": client,
        "mode": args.mode,
        "events_sent": len(records),
        "replies": sum(counts.values()),
        "decisions": counts["decision"],
        "errors": counts["error"],
        "overload_notices": counts["overloaded"],
        "elapsed_s": round(elapsed, 6),
        "throughput_eps": round(len(latencies) / elapsed, 1) if elapsed else 0,
        "latency_ms": {
            "p50": round(percentile(latencies, 50) * 1e3, 3),
            "p90": round(percentile(latencies, 90) * 1e3, 3),
            "p99": round(percentile(latencies, 99) * 1e3, 3),
            "max": round(latencies[-1] * 1e3, 3) if latencies else None,
        },
    }


async def absorb_pending(reader, counts) -> bool:
    """Non-blocking sweep for an overload notice trailing a decision."""
    try:
        line = await asyncio.wait_for(reader.readline(), timeout=0.001)
    except asyncio.TimeoutError:
        return False
    if line:
        counts[classify(line)] += 1
    return True


async def main_async(args: argparse.Namespace) -> int:
    results = await asyncio.gather(
        *(run_client(c, args) for c in range(args.clients)),
        return_exceptions=True,
    )
    ok = [r for r in results if isinstance(r, dict)]
    failed = [r for r in results if not isinstance(r, dict)]
    all_lat: list[float] = []
    out_lines = []
    for r in ok:
        out_lines.append(json.dumps(r))
    total_events = sum(r["decisions"] for r in ok)
    elapsed = max((r["elapsed_s"] for r in ok), default=0.0)
    # Aggregate percentiles from per-client p50s would be wrong; reuse
    # the per-client latency medians only for the summary spread and
    # recompute throughput from totals.
    summary = {
        "aggregate": True,
        "clients": args.clients,
        "failed_clients": len(failed),
        "mode": args.mode,
        "decisions": total_events,
        "errors": sum(r["errors"] for r in ok),
        "overload_notices": sum(r["overload_notices"] for r in ok),
        "wall_s": round(elapsed, 6),
        "throughput_eps": round(total_events / elapsed, 1) if elapsed else 0,
        "p99_ms_worst_client": max(
            (r["latency_ms"]["p99"] for r in ok), default=None
        ),
    }
    out_lines.append(json.dumps(summary))
    text = "\n".join(out_lines) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
    sys.stdout.write(text)
    for exc in failed:
        print(f"client failed: {exc!r}", file=sys.stderr)
    del all_lat
    return 1 if failed else 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--addr", required=True, help="HOST:PORT of repro serve --listen")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--events", type=int, default=200, help="records per client")
    parser.add_argument("--mode", choices=("closed", "open"), default="closed")
    parser.add_argument("--rate", type=float, default=200.0,
                        help="per-client records/sec in open mode")
    parser.add_argument("--n", type=int, default=256,
                        help="machine size the server was started with "
                        "(bounds generated task sizes)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--backoff", type=float, default=0.05,
                        help="closed-loop pause after an overload notice")
    parser.add_argument("--drain-timeout", type=float, default=5.0)
    parser.add_argument("--out", help="JSONL artifact path")
    args = parser.parse_args(argv)
    return asyncio.run(main_async(args))


if __name__ == "__main__":
    raise SystemExit(main())

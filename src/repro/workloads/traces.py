"""JSONL workload traces: persist and replay task sequences.

Real evaluation traces from 1996-era machines are unavailable (see
DESIGN.md); this gives experiments a durable, diffable stand-in.  One JSON
object per line:

    {"id": 0, "size": 4, "arrival": 0.0, "departure": 7.5, "work": 1.0}

``departure`` may be the string ``"inf"`` (or be omitted) for tasks that
never leave.  Lines starting with ``#`` are comments.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Iterable, Union

from repro.errors import TraceFormatError
from repro.tasks.sequence import TaskSequence
from repro.tasks.task import Task
from repro.types import TaskId

__all__ = ["write_trace", "read_trace", "trace_line"]


def trace_line(task: Task) -> str:
    """Serialise one task as a JSON line."""
    record = {
        "id": int(task.task_id),
        "size": task.size,
        "arrival": task.arrival,
        "departure": "inf" if math.isinf(task.departure) else task.departure,
        "work": task.work,
    }
    return json.dumps(record, separators=(",", ":"))


def write_trace(path: Union[str, Path], sequence: TaskSequence) -> None:
    """Write every task of the sequence to a JSONL trace file."""
    path = Path(path)
    tasks = sorted(sequence.tasks.values(), key=lambda t: (t.arrival, t.task_id))
    lines = ["# repro task trace v1"]
    lines += [trace_line(t) for t in tasks]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def _parse_line(line: str, lineno: int) -> Task:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"line {lineno}: invalid JSON ({exc})") from exc
    if not isinstance(record, dict):
        raise TraceFormatError(f"line {lineno}: expected an object")
    try:
        tid = TaskId(int(record["id"]))
        size = int(record["size"])
        arrival = float(record["arrival"])
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"line {lineno}: missing/invalid field ({exc})") from exc
    dep_raw = record.get("departure", "inf")
    departure = math.inf if dep_raw in ("inf", None) else float(dep_raw)
    work = float(record.get("work", 1.0))
    try:
        return Task(tid, size, arrival, departure, work)
    except Exception as exc:
        raise TraceFormatError(f"line {lineno}: {exc}") from exc


def read_trace(path: Union[str, Path]) -> TaskSequence:
    """Load a JSONL trace file into a validated :class:`TaskSequence`."""
    path = Path(path)
    tasks: list[Task] = []
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        tasks.append(_parse_line(stripped, lineno))
    return TaskSequence.from_tasks(tasks)

"""Workload synthesis: distributions, arrival-process generators, traces."""

from repro.workloads.distributions import (
    DurationDistribution,
    ExponentialDurations,
    FixedDuration,
    FixedSize,
    GeometricSizes,
    LognormalDurations,
    ParetoDurations,
    SizeDistribution,
    UniformLogSizes,
    WeightedSizes,
)
from repro.workloads.generators import (
    arrivals_only_sequence,
    burst_sequence,
    churn_sequence,
    diurnal_sequence,
    feitelson_sequence,
    poisson_sequence,
)
from repro.workloads.scenarios import (
    SCENARIOS,
    fragmentation_storm,
    long_tail,
    overload,
    steady_state,
    wave_and_drain,
)
from repro.workloads.profiles import SequenceProfile, describe_sequence
from repro.workloads.traces import read_trace, trace_line, write_trace

__all__ = [
    "SizeDistribution",
    "UniformLogSizes",
    "GeometricSizes",
    "FixedSize",
    "WeightedSizes",
    "DurationDistribution",
    "ExponentialDurations",
    "ParetoDurations",
    "LognormalDurations",
    "FixedDuration",
    "poisson_sequence",
    "burst_sequence",
    "churn_sequence",
    "diurnal_sequence",
    "feitelson_sequence",
    "arrivals_only_sequence",
    "SCENARIOS",
    "steady_state",
    "overload",
    "fragmentation_storm",
    "wave_and_drain",
    "long_tail",
    "SequenceProfile",
    "describe_sequence",
    "read_trace",
    "write_trace",
    "trace_line",
]

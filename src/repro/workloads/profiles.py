"""Workload profiling: summarize what a task sequence actually looks like.

Experiments keep answering "what workload was that?" by pointing at
generator parameters; :func:`describe_sequence` answers it from the
sequence itself — arrival rate, size mix, duration statistics, offered
volume versus a machine size — so traces from any source (generators,
JSONL files, adversaries) are characterised uniformly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.tasks.sequence import TaskSequence

__all__ = ["SequenceProfile", "describe_sequence"]


@dataclass(frozen=True)
class SequenceProfile:
    """Aggregate statistics of one task sequence."""

    num_tasks: int
    num_events: int
    horizon: float
    arrival_rate: float              # tasks per unit time (0 if horizon 0)
    size_histogram: Mapping[int, int]
    mean_size: float
    peak_active_size: int            # s(sigma)
    total_arrival_size: int          # S (Lemma 2's volume)
    immortal_fraction: float         # tasks that never depart
    mean_duration: float             # over departing tasks (nan if none)
    p95_duration: float

    def optimal_load(self, num_pes: int) -> int:
        from repro.types import ceil_div

        return ceil_div(self.peak_active_size, num_pes)

    def render(self, num_pes: int | None = None) -> str:
        from repro.analysis.tables import format_kv

        pairs: dict = {
            "tasks": self.num_tasks,
            "events": self.num_events,
            "horizon": self.horizon,
            "arrival rate": round(self.arrival_rate, 3),
            "mean size": round(self.mean_size, 2),
            "size mix": " ".join(
                f"{s}:{c}" for s, c in sorted(self.size_histogram.items())
            ),
            "peak active volume s(sigma)": self.peak_active_size,
            "total arrival volume S": self.total_arrival_size,
            "immortal fraction": round(self.immortal_fraction, 3),
            "mean duration": round(self.mean_duration, 3)
            if not math.isnan(self.mean_duration)
            else "n/a",
            "p95 duration": round(self.p95_duration, 3)
            if not math.isnan(self.p95_duration)
            else "n/a",
        }
        if num_pes is not None:
            pairs["optimal load L* on N=" + str(num_pes)] = self.optimal_load(num_pes)
        return format_kv(pairs, title="workload profile")


def describe_sequence(sequence: TaskSequence) -> SequenceProfile:
    """Compute the profile of a sequence (O(tasks + events))."""
    tasks = list(sequence.tasks.values())
    num_tasks = len(tasks)
    horizon = sequence.horizon()
    sizes = [t.size for t in tasks]
    histogram: dict[int, int] = {}
    for s in sizes:
        histogram[s] = histogram.get(s, 0) + 1
    durations = [t.duration for t in tasks if not math.isinf(t.departure)]
    immortal = num_tasks - len(durations)
    return SequenceProfile(
        num_tasks=num_tasks,
        num_events=len(sequence),
        horizon=horizon,
        arrival_rate=(num_tasks / horizon) if horizon > 0 else 0.0,
        size_histogram=histogram,
        mean_size=float(np.mean(sizes)) if sizes else 0.0,
        peak_active_size=sequence.peak_active_size,
        total_arrival_size=sequence.total_arrival_size,
        immortal_fraction=(immortal / num_tasks) if num_tasks else 0.0,
        mean_duration=float(np.mean(durations)) if durations else float("nan"),
        p95_duration=float(np.percentile(durations, 95))
        if durations
        else float("nan"),
    )

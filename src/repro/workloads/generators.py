"""Synthetic arrival-process generators.

Each generator produces a validated :class:`~repro.tasks.sequence.TaskSequence`
from a seeded RNG.  They cover the regimes the experiments need:

* :func:`poisson_sequence` — the steady-state time-shared machine: Poisson
  arrivals, i.i.d. sizes and durations, with the offered load controlled by
  ``utilization`` (mean active PE-volume as a fraction of N).
* :func:`burst_sequence` — all tasks arrive before any departs; the worst
  regime for fragmentation and the natural "job wave" pattern.
* :func:`churn_sequence` — arrivals and departures interleave at a fixed
  active-volume target; stresses the long-run behaviour of A_B (its
  ``ceil(S/N)`` bound keeps growing while the optimal stays flat).
* :func:`arrivals_only_sequence` — no departures (monotone load), the case
  where every reasonable algorithm should be near-optimal.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.tasks.events import Arrival, Departure, Event
from repro.tasks.sequence import TaskSequence
from repro.tasks.task import Task
from repro.types import TaskId
from repro.workloads.distributions import (
    DurationDistribution,
    ExponentialDurations,
    SizeDistribution,
    UniformLogSizes,
)

__all__ = [
    "poisson_sequence",
    "burst_sequence",
    "churn_sequence",
    "arrivals_only_sequence",
    "diurnal_sequence",
    "feitelson_sequence",
]


def poisson_sequence(
    num_pes: int,
    num_tasks: int,
    rng: np.random.Generator,
    *,
    utilization: float = 0.7,
    sizes: Optional[SizeDistribution] = None,
    durations: Optional[DurationDistribution] = None,
) -> TaskSequence:
    """Poisson arrivals at rate chosen to hit a target mean utilization.

    By Little's law the mean active PE-volume is
    ``arrival_rate * E[size] * E[duration]``; the arrival rate is set so
    that this equals ``utilization * num_pes``.
    """
    if not 0 < utilization:
        raise ValueError(f"utilization must be positive, got {utilization}")
    if num_tasks < 1:
        raise ValueError("num_tasks must be >= 1")
    sizes = sizes or UniformLogSizes(max_size=num_pes)
    durations = durations or ExponentialDurations(mean=1.0)

    # Estimate E[size] and E[duration] empirically from the distributions
    # themselves (cheap, avoids needing analytic means for every class).
    probe_rng = np.random.default_rng(rng.integers(2**63))
    probe = 512
    mean_size = float(np.mean([sizes.sample(probe_rng) for _ in range(probe)]))
    mean_dur = float(np.mean([durations.sample(probe_rng) for _ in range(probe)]))
    rate = utilization * num_pes / (mean_size * mean_dur)

    tasks: list[Task] = []
    clock = 0.0
    for i in range(num_tasks):
        clock += float(rng.exponential(1.0 / rate))
        size = sizes.sample(rng)
        dur = durations.sample(rng)
        tasks.append(Task(TaskId(i), size, clock, clock + dur))
    return TaskSequence.from_tasks(tasks)


def burst_sequence(
    num_pes: int,
    num_tasks: int,
    rng: np.random.Generator,
    *,
    sizes: Optional[SizeDistribution] = None,
    depart_fraction: float = 0.0,
) -> TaskSequence:
    """All tasks arrive (one per time unit); then a fraction depart.

    ``depart_fraction`` of the tasks, chosen uniformly, depart after the
    last arrival — the "wave then drain" pattern that manufactures the
    fragmentation the paper's Figure 1 illustrates.
    """
    if not 0.0 <= depart_fraction <= 1.0:
        raise ValueError("depart_fraction must lie in [0, 1]")
    sizes = sizes or UniformLogSizes(max_size=num_pes)
    tasks: list[Task] = []
    num_departing = int(round(depart_fraction * num_tasks))
    departing = set(rng.choice(num_tasks, size=num_departing, replace=False).tolist())
    for i in range(num_tasks):
        arr = float(i)
        dep = float(num_tasks + 1 + i) if i in departing else math.inf
        tasks.append(Task(TaskId(i), sizes.sample(rng), arr, dep))
    return TaskSequence.from_tasks(tasks)


def churn_sequence(
    num_pes: int,
    num_events: int,
    rng: np.random.Generator,
    *,
    target_volume: Optional[int] = None,
    sizes: Optional[SizeDistribution] = None,
) -> TaskSequence:
    """Interleaved arrivals/departures holding active volume near a target.

    While the active PE-volume is below ``target_volume`` (default ``N``),
    arrivals are more likely; above it, departures are.  The departing task
    is chosen uniformly from the active ones.  Total arrival volume grows
    linearly with ``num_events`` while the optimal load stays ~1 — the
    regime where Lemma 2's ``ceil(S/N)`` bound for A_B is uselessly loose
    but A_M's periodic repacking shines.
    """
    target = target_volume if target_volume is not None else num_pes
    if target < 1:
        raise ValueError("target_volume must be >= 1")
    sizes = sizes or UniformLogSizes(max_size=max(1, num_pes // 4))
    events: list[Event] = []
    active: dict[TaskId, Task] = {}
    volume = 0
    next_id = 0
    clock = 0.0
    for _ in range(num_events):
        clock += 1.0
        p_arrival = 0.9 if volume < target else 0.1
        if not active or rng.random() < p_arrival:
            size = sizes.sample(rng)
            task = Task(TaskId(next_id), size, clock, math.inf)
            next_id += 1
            active[task.task_id] = task
            volume += size
            events.append(("arrive", task))
        else:
            tid = list(active)[int(rng.integers(len(active)))]
            task = active.pop(tid)
            volume -= task.size
            events.append(("depart", task.with_departure(clock)))
    # Materialise: fix departure times recorded above; tasks never departed
    # keep departure = inf.
    final_events: list[Event] = []
    departures: dict[TaskId, float] = {
        t.task_id: t.departure for kind, t in events if kind == "depart"
    }
    for kind, task in events:
        if kind == "arrive":
            dep = departures.get(task.task_id, math.inf)
            fixed = task.with_departure(dep) if dep != math.inf else task
            final_events.append(Arrival(fixed.arrival, fixed))
        else:
            final_events.append(Departure(task.departure, task.task_id))
    return TaskSequence(final_events)


def arrivals_only_sequence(
    num_pes: int,
    num_tasks: int,
    rng: np.random.Generator,
    *,
    sizes: Optional[SizeDistribution] = None,
) -> TaskSequence:
    """Tasks arrive one per time unit and never depart."""
    sizes = sizes or UniformLogSizes(max_size=num_pes)
    tasks = [
        Task(TaskId(i), sizes.sample(rng), float(i), math.inf)
        for i in range(num_tasks)
    ]
    return TaskSequence.from_tasks(tasks)


def diurnal_sequence(
    num_pes: int,
    num_tasks: int,
    rng: np.random.Generator,
    *,
    period: float = 100.0,
    peak_to_trough: float = 4.0,
    utilization: float = 0.7,
    sizes: Optional[SizeDistribution] = None,
    durations: Optional[DurationDistribution] = None,
) -> TaskSequence:
    """Non-homogeneous Poisson arrivals with a sinusoidal daily cycle.

    Shared machines see day/night demand swings; reallocation policy
    interacts with them (fragmentation created at the peak lingers into
    the trough).  The instantaneous rate is

        rate(t) = base * (1 + a * sin(2*pi*t/period)),

    with ``a`` chosen so the peak-to-trough rate ratio equals
    ``peak_to_trough``; arrivals are drawn by thinning a homogeneous
    process at the peak rate.
    """
    if num_tasks < 1:
        raise ValueError("num_tasks must be >= 1")
    if period <= 0:
        raise ValueError("period must be positive")
    if peak_to_trough < 1:
        raise ValueError("peak_to_trough must be >= 1")
    sizes = sizes or UniformLogSizes(max_size=num_pes)
    durations = durations or ExponentialDurations(mean=1.0)
    probe_rng = np.random.default_rng(rng.integers(2**63))
    probe = 512
    mean_size = float(np.mean([sizes.sample(probe_rng) for _ in range(probe)]))
    mean_dur = float(np.mean([durations.sample(probe_rng) for _ in range(probe)]))
    base_rate = utilization * num_pes / (mean_size * mean_dur)
    amplitude = (peak_to_trough - 1.0) / (peak_to_trough + 1.0)
    peak_rate = base_rate * (1.0 + amplitude)

    tasks: list[Task] = []
    clock = 0.0
    tid = 0
    while tid < num_tasks:
        clock += float(rng.exponential(1.0 / peak_rate))
        rate = base_rate * (1.0 + amplitude * math.sin(2.0 * math.pi * clock / period))
        if rng.random() * peak_rate > rate:
            continue  # thinned out
        dur = durations.sample(rng)
        tasks.append(Task(TaskId(tid), sizes.sample(rng), clock, clock + dur))
        tid += 1
    return TaskSequence.from_tasks(tasks)


def feitelson_sequence(
    num_pes: int,
    num_tasks: int,
    rng: np.random.Generator,
    *,
    utilization: float = 0.7,
    runtime_size_correlation: float = 0.5,
    runtime_spread: float = 1.5,
) -> TaskSequence:
    """A 1996-era parallel-workload model (after Feitelson's observations).

    Contemporary analyses of production parallel logs (Feitelson 1996,
    of machines including the paper's own CM-5 and SP2) found:

    * job sizes cluster on powers of two with *small sizes most common*
      (we draw the exponent with a truncated geometric, ratio 0.6);
    * runtimes are roughly log-uniform over several orders of magnitude;
    * runtime correlates positively with size — big jobs run longer.

    ``runtime_size_correlation`` in [0, 1] blends an independent
    log-uniform runtime with a size-proportional component;
    ``runtime_spread`` is the log10 half-width of the runtime
    distribution.  Arrival rate is set by Little's law against
    ``utilization`` like :func:`poisson_sequence`.
    """
    if num_tasks < 1:
        raise ValueError("num_tasks must be >= 1")
    if not 0.0 <= runtime_size_correlation <= 1.0:
        raise ValueError("runtime_size_correlation must be in [0, 1]")
    if runtime_spread <= 0:
        raise ValueError("runtime_spread must be positive")
    max_exp = (num_pes).bit_length() - 1
    ratio = 0.6
    weights = np.asarray([ratio**x for x in range(max_exp + 1)])
    weights /= weights.sum()

    def draw_size() -> int:
        return 1 << int(rng.choice(max_exp + 1, p=weights))

    def draw_runtime(size: int) -> float:
        base = 10.0 ** float(rng.uniform(-runtime_spread, runtime_spread))
        size_factor = (size ** 0.5) / (2.0 ** (max_exp / 4.0))
        c = runtime_size_correlation
        return base * ((1.0 - c) + c * size_factor)

    # Estimate means for Little's law.
    probe_rng = np.random.default_rng(rng.integers(2**63))
    probe_sizes = [1 << int(probe_rng.choice(max_exp + 1, p=weights)) for _ in range(512)]
    mean_size = float(np.mean(probe_sizes))
    probe_durs = []
    for sz in probe_sizes:
        base = 10.0 ** float(probe_rng.uniform(-runtime_spread, runtime_spread))
        size_factor = (sz ** 0.5) / (2.0 ** (max_exp / 4.0))
        c = runtime_size_correlation
        probe_durs.append(base * ((1.0 - c) + c * size_factor))
    mean_dur = float(np.mean(probe_durs))
    rate = utilization * num_pes / (mean_size * mean_dur)

    tasks: list[Task] = []
    clock = 0.0
    for i in range(num_tasks):
        clock += float(rng.exponential(1.0 / rate))
        size = draw_size()
        tasks.append(Task(TaskId(i), size, clock, clock + draw_runtime(size)))
    return TaskSequence.from_tasks(tasks)

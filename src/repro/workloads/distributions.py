"""Task-size and duration distributions for synthetic workloads.

The paper's model constrains sizes to powers of two in ``[1, N]``; these
classes sample within that constraint.  Durations stand in for the
"unpredictable departure times": the allocation algorithms never see them,
only the simulator does.

All sampling flows through an injected :class:`numpy.random.Generator`, so
every workload is reproducible from a seed.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.types import ilog2, is_power_of_two

__all__ = [
    "SizeDistribution",
    "UniformLogSizes",
    "GeometricSizes",
    "FixedSize",
    "WeightedSizes",
    "DurationDistribution",
    "ExponentialDurations",
    "ParetoDurations",
    "LognormalDurations",
    "FixedDuration",
]


# ---------------------------------------------------------------------------
# Sizes
# ---------------------------------------------------------------------------


class SizeDistribution(abc.ABC):
    """Samples power-of-two task sizes in ``[1, max_size]``."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> int:
        """Draw one task size."""

    def sample_many(self, rng: np.random.Generator, count: int) -> list[int]:
        return [self.sample(rng) for _ in range(count)]


@dataclass(frozen=True)
class UniformLogSizes(SizeDistribution):
    """Uniform over the exponents: size ``2^x`` with ``x ~ U{0..log max}``.

    The "scale-free" request mix: as many machine-half requests as
    single-PE requests.  This is the stress mix for fragmentation.
    """

    max_size: int

    def __post_init__(self) -> None:
        if not is_power_of_two(self.max_size):
            raise ValueError(f"max_size must be a power of two, got {self.max_size}")

    def sample(self, rng: np.random.Generator) -> int:
        return 1 << int(rng.integers(ilog2(self.max_size) + 1))


@dataclass(frozen=True)
class GeometricSizes(SizeDistribution):
    """Exponent geometric with ratio ``ratio``: small requests dominate.

    ``P(x) proportional to ratio**x`` for ``x = 0 .. log max``; ``ratio = 0.5``
    halves the frequency with each doubling of size — the empirically common
    "mostly small jobs" mix on shared machines.
    """

    max_size: int
    ratio: float = 0.5

    def __post_init__(self) -> None:
        if not is_power_of_two(self.max_size):
            raise ValueError(f"max_size must be a power of two, got {self.max_size}")
        if not 0.0 < self.ratio:
            raise ValueError(f"ratio must be positive, got {self.ratio}")

    def sample(self, rng: np.random.Generator) -> int:
        xmax = ilog2(self.max_size)
        weights = np.asarray([self.ratio**x for x in range(xmax + 1)])
        weights /= weights.sum()
        return 1 << int(rng.choice(xmax + 1, p=weights))


@dataclass(frozen=True)
class FixedSize(SizeDistribution):
    """Every task requests exactly ``size`` PEs."""

    size: int

    def __post_init__(self) -> None:
        if not is_power_of_two(self.size):
            raise ValueError(f"size must be a power of two, got {self.size}")

    def sample(self, rng: np.random.Generator) -> int:
        return self.size


@dataclass(frozen=True)
class WeightedSizes(SizeDistribution):
    """Explicit (size, weight) table."""

    sizes: Sequence[int]
    weights: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.weights) or not self.sizes:
            raise ValueError("sizes and weights must be equal-length and non-empty")
        for s in self.sizes:
            if not is_power_of_two(s):
                raise ValueError(f"size {s} is not a power of two")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise ValueError("weights must be non-negative with positive sum")

    def sample(self, rng: np.random.Generator) -> int:
        w = np.asarray(self.weights, dtype=float)
        return int(rng.choice(np.asarray(self.sizes), p=w / w.sum()))


# ---------------------------------------------------------------------------
# Durations
# ---------------------------------------------------------------------------


class DurationDistribution(abc.ABC):
    """Samples strictly positive task residence times."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one duration (> 0)."""


@dataclass(frozen=True)
class ExponentialDurations(DurationDistribution):
    """Memoryless residence times with the given mean (M/M-style users)."""

    mean: float = 1.0

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ValueError(f"mean must be positive, got {self.mean}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean)) or np.finfo(float).tiny


@dataclass(frozen=True)
class ParetoDurations(DurationDistribution):
    """Heavy-tailed residence times (shape ``alpha``, scale ``xm``).

    Long-lived jobs are the hard case for never-reallocating algorithms:
    fragmentation created early persists.  ``alpha <= 1`` has infinite mean;
    the generators cap individual draws at ``cap`` to keep horizons finite.
    """

    alpha: float = 1.5
    xm: float = 0.1
    cap: float = 1.0e6

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.xm <= 0 or self.cap <= self.xm:
            raise ValueError("need alpha > 0, xm > 0, cap > xm")

    def sample(self, rng: np.random.Generator) -> float:
        draw = self.xm * (1.0 + rng.pareto(self.alpha))
        return float(min(draw, self.cap))


@dataclass(frozen=True)
class LognormalDurations(DurationDistribution):
    """Lognormal residence times (``mu``, ``sigma`` of the underlying normal)."""

    mu: float = 0.0
    sigma: float = 1.0

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self.mu, self.sigma))


@dataclass(frozen=True)
class FixedDuration(DurationDistribution):
    """Every task stays exactly ``duration``."""

    duration: float = 1.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")

    def sample(self, rng: np.random.Generator) -> float:
        return self.duration

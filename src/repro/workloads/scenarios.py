"""Named workload scenarios — reproducible presets used across the repo.

Examples, benches and ad-hoc studies keep needing the same handful of
workload shapes; naming them here keeps parameters in one place and makes
"which workload was that table measured on?" answerable.  Each scenario is
a function ``(num_pes, rng, scale=1.0) -> TaskSequence``; :data:`SCENARIOS`
is the registry used by the CLI.

Shapes:

* ``steady_state``      — Poisson arrivals, exponential residence, ~70%
  utilisation: the uneventful shared machine.
* ``overload``          — Poisson at 150% utilisation: L* > 1, every
  allocator is volume-bound.
* ``fragmentation_storm`` — churn at volume ~N with scale-free sizes: the
  regime where reallocation policy decides the load (the E4 workload).
* ``wave_and_drain``    — a burst of arrivals, half depart, a second wave:
  the Figure 1 pattern at machine scale.
* ``long_tail``         — mostly short jobs with Pareto stragglers pinning
  fragmentation: the hard case for never-reallocating policies.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.tasks.sequence import TaskSequence
from repro.workloads.distributions import (
    ExponentialDurations,
    GeometricSizes,
    ParetoDurations,
    UniformLogSizes,
)
from repro.workloads.generators import (
    burst_sequence,
    churn_sequence,
    feitelson_sequence,
    poisson_sequence,
)

__all__ = [
    "steady_state",
    "overload",
    "fragmentation_storm",
    "wave_and_drain",
    "long_tail",
    "production_1996",
    "SCENARIOS",
]


def steady_state(
    num_pes: int, rng: np.random.Generator, scale: float = 1.0
) -> TaskSequence:
    """Poisson / exponential at ~70% utilisation; sizes mostly small."""
    return poisson_sequence(
        num_pes,
        max(1, int(400 * scale)),
        rng,
        utilization=0.7,
        sizes=GeometricSizes(max_size=max(1, num_pes // 4)),
        durations=ExponentialDurations(mean=1.0),
    )


def overload(
    num_pes: int, rng: np.random.Generator, scale: float = 1.0
) -> TaskSequence:
    """Poisson at 150% utilisation: demand exceeds the machine (L* > 1)."""
    return poisson_sequence(
        num_pes,
        max(1, int(400 * scale)),
        rng,
        utilization=1.5,
        sizes=UniformLogSizes(max_size=num_pes),
        durations=ExponentialDurations(mean=1.0),
    )


def fragmentation_storm(
    num_pes: int, rng: np.random.Generator, scale: float = 1.0
) -> TaskSequence:
    """Churn at volume ~N with scale-free sizes (the E4 workload)."""
    return churn_sequence(
        num_pes,
        max(1, int(3000 * scale)),
        rng,
        sizes=UniformLogSizes(max_size=max(1, num_pes // 4)),
    )


def wave_and_drain(
    num_pes: int, rng: np.random.Generator, scale: float = 1.0
) -> TaskSequence:
    """A wave of arrivals, half depart, then a second wave arrives.

    The machine-scale version of the paper's Figure 1 pattern: the drain
    leaves scattered holes that the second wave's larger requests cannot
    use without stacking.
    """
    first = burst_sequence(
        num_pes,
        max(2, int(num_pes * scale)),
        rng,
        sizes=UniformLogSizes(max_size=max(1, num_pes // 8)),
        depart_fraction=0.5,
    )
    second = burst_sequence(
        num_pes,
        max(1, int(num_pes * scale) // 4),
        rng,
        sizes=UniformLogSizes(max_size=max(2, num_pes // 2)),
    )
    return first.concatenated_with(second)


def long_tail(
    num_pes: int, rng: np.random.Generator, scale: float = 1.0
) -> TaskSequence:
    """Mostly short jobs with heavy-tailed stragglers pinning fragments."""
    return poisson_sequence(
        num_pes,
        max(1, int(600 * scale)),
        rng,
        utilization=0.9,
        sizes=GeometricSizes(max_size=max(1, num_pes // 2), ratio=0.6),
        durations=ParetoDurations(alpha=1.1, xm=0.2, cap=500.0),
    )


def production_1996(
    num_pes: int, rng: np.random.Generator, scale: float = 1.0
) -> TaskSequence:
    """The Feitelson-style 1996 production mix (CM-5/SP2-era logs).

    Small power-of-two jobs dominate, runtimes are log-uniform over orders
    of magnitude and correlate with size — the workload shape measured on
    the very machines the paper names.
    """
    return feitelson_sequence(
        num_pes,
        max(1, int(500 * scale)),
        rng,
        utilization=0.8,
        runtime_size_correlation=0.5,
    )


SCENARIOS: Dict[str, Callable[..., TaskSequence]] = {
    "steady_state": steady_state,
    "overload": overload,
    "fragmentation_storm": fragmentation_storm,
    "wave_and_drain": wave_and_drain,
    "long_tail": long_tail,
    "production_1996": production_1996,
}

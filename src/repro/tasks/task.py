"""The task (user) model of Section 2 of the paper.

A *task* models one user of the time-shared multiprocessor: it arrives at an
unpredictable time, requests a submachine of a fixed power-of-two size, runs
for an unpredictable duration, and departs.  The allocation algorithm learns
the size at arrival time but never the departure time in advance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import InvalidTaskError
from repro.types import TaskId, Time, ilog2, is_power_of_two

__all__ = ["Task"]


@dataclass(frozen=True, slots=True)
class Task:
    """One user request: a submachine of ``size`` PEs, held over [arrival, departure).

    Parameters
    ----------
    task_id:
        Unique identifier within a sequence.
    size:
        Number of PEs requested; must be a positive power of two.  Whether it
        fits a particular machine (``size <= N``) is checked when the task is
        placed, because a Task is machine-agnostic.
    arrival:
        Time of the arrival event.
    departure:
        Time of the departure event, or ``math.inf`` for a task that never
        departs within the observed horizon.  Must be strictly greater than
        ``arrival`` — the paper's sequences never contain zero-length tasks
        (such a task would contribute nothing to any load).
    work:
        Optional amount of computational work carried by the task, used only
        by the thread-management slowdown model (``repro.sim.slowdown``).
        The allocation theory is oblivious to it.
    """

    task_id: TaskId
    size: int
    arrival: Time = 0.0
    departure: Time = field(default=math.inf)
    work: float = 1.0

    def __post_init__(self) -> None:
        if not is_power_of_two(self.size):
            raise InvalidTaskError(
                f"task {self.task_id}: size must be a positive power of two, "
                f"got {self.size!r}"
            )
        if not self.departure > self.arrival:
            raise InvalidTaskError(
                f"task {self.task_id}: departure ({self.departure}) must be "
                f"strictly after arrival ({self.arrival})"
            )
        if self.work < 0:
            raise InvalidTaskError(
                f"task {self.task_id}: work must be non-negative, got {self.work}"
            )

    @property
    def log_size(self) -> int:
        """``x`` such that ``size == 2**x`` (the paper writes sizes as 2^x)."""
        return ilog2(self.size)

    @property
    def duration(self) -> Time:
        """Residence time of the task (may be ``inf``)."""
        return self.departure - self.arrival

    def is_active(self, tau: Time) -> bool:
        """True iff the task is active at time ``tau``.

        A task is active from its arrival (inclusive) to its departure
        (exclusive): at the instant of departure the submachine has already
        been deallocated, matching the paper's convention that departures
        only ever *decrease* load.
        """
        return self.arrival <= tau < self.departure

    def with_departure(self, departure: Time) -> "Task":
        """Return a copy of this task with the departure time replaced."""
        return Task(self.task_id, self.size, self.arrival, departure, self.work)

"""Task and task-sequence model (Section 2 of the paper).

Public surface:

* :class:`~repro.tasks.task.Task` — one user request.
* :class:`~repro.tasks.events.Arrival` / :class:`~repro.tasks.events.Departure`
  — sequence events.
* :class:`~repro.tasks.sequence.TaskSequence` — validated event sequence with
  the paper's statistics (``s(sigma)``, ``S(sigma; tau)``, ``L*``).
* :class:`~repro.tasks.builder.SequenceBuilder` — fluent construction;
  :func:`~repro.tasks.builder.figure1_sequence` — the paper's Figure 1
  example.
"""

from repro.tasks.builder import SequenceBuilder, figure1_sequence
from repro.tasks.events import Arrival, Departure, Event, EventKind, event_sort_key
from repro.tasks.sequence import TaskSequence
from repro.tasks.task import Task
from repro.tasks.transforms import (
    filter_tasks,
    scale_sizes,
    scale_time,
    subsample,
    superpose,
    truncate_tasks,
)

__all__ = [
    "Task",
    "Arrival",
    "Departure",
    "Event",
    "EventKind",
    "event_sort_key",
    "TaskSequence",
    "SequenceBuilder",
    "figure1_sequence",
    "scale_time",
    "scale_sizes",
    "filter_tasks",
    "subsample",
    "superpose",
    "truncate_tasks",
]

"""Task sequences and their statistics (Section 2 of the paper).

A :class:`TaskSequence` is a validated, chronologically ordered list of
arrival/departure events.  It exposes exactly the quantities the paper's
analysis is phrased in:

* ``S(sigma; tau)`` — cumulative size of tasks active at time ``tau``
  (:meth:`TaskSequence.active_size_at`),
* ``s(sigma)``     — the peak of that quantity over time
  (:attr:`TaskSequence.peak_active_size`),
* ``L*``           — the optimal load ``ceil(s(sigma)/N)`` for a machine of
  N PEs (:meth:`TaskSequence.optimal_load`),
* the total arrival volume ``S`` used by Lemma 2
  (:attr:`TaskSequence.total_arrival_size`).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence as AbcSequence
from typing import Optional

from repro.errors import InvalidSequenceError
from repro.tasks.events import Arrival, Departure, Event, event_sort_key
from repro.tasks.task import Task
from repro.types import TaskId, Time, ceil_div

__all__ = ["TaskSequence"]


class TaskSequence(AbcSequence):
    """An immutable, validated sequence of arrival/departure events.

    Validation enforces the paper's model:

    * events are chronologically ordered (the constructor sorts, stably,
      with same-time departures preceding arrivals);
    * task ids are unique among arrivals;
    * every departure refers to a task that has already arrived and has not
      already departed;
    * a task's event times agree with the ``arrival``/``departure`` fields
      stored on the :class:`Task` itself.

    The class behaves as an immutable ``Sequence[Event]``.
    """

    __slots__ = ("_events", "_tasks", "_prefix_peaks", "_peak", "_total_arrival")

    def __init__(self, events: Iterable[Event]):
        ordered = sorted(events, key=event_sort_key)
        tasks: dict[TaskId, Task] = {}
        departed: set[TaskId] = set()
        active_size = 0
        peak = 0
        total_arrival = 0
        prefix_peaks: list[int] = []
        for ev in ordered:
            if isinstance(ev, Arrival):
                tid = ev.task.task_id
                if tid in tasks:
                    raise InvalidSequenceError(f"duplicate arrival for task {tid}")
                if ev.time != ev.task.arrival:
                    raise InvalidSequenceError(
                        f"task {tid}: arrival event at t={ev.time} disagrees "
                        f"with task.arrival={ev.task.arrival}"
                    )
                tasks[tid] = ev.task
                active_size += ev.task.size
                total_arrival += ev.task.size
            elif isinstance(ev, Departure):
                tid = ev.task_id
                if tid not in tasks:
                    raise InvalidSequenceError(
                        f"departure for unknown task {tid} at t={ev.time}"
                    )
                if tid in departed:
                    raise InvalidSequenceError(f"task {tid} departs twice")
                task = tasks[tid]
                if ev.time != task.departure:
                    raise InvalidSequenceError(
                        f"task {tid}: departure event at t={ev.time} disagrees "
                        f"with task.departure={task.departure}"
                    )
                departed.add(tid)
                active_size -= task.size
            else:  # pragma: no cover - defensive
                raise InvalidSequenceError(f"unknown event type {type(ev)!r}")
            peak = max(peak, active_size)
            prefix_peaks.append(peak)
        self._events: tuple[Event, ...] = tuple(ordered)
        self._tasks: dict[TaskId, Task] = tasks
        self._prefix_peaks = prefix_peaks
        self._peak = peak
        self._total_arrival = total_arrival

    # -- Sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return TaskSequence(self._events[index])
        return self._events[index]

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskSequence):
            return NotImplemented
        return self._events == other._events

    def __hash__(self) -> int:
        return hash(self._events)

    def __repr__(self) -> str:
        return (
            f"TaskSequence({len(self._events)} events, "
            f"{len(self._tasks)} tasks, s(sigma)={self._peak})"
        )

    # -- Task access -------------------------------------------------------

    @property
    def tasks(self) -> dict[TaskId, Task]:
        """All tasks that ever arrive, keyed by id (copy; safe to mutate)."""
        return dict(self._tasks)

    def task(self, task_id: TaskId) -> Task:
        """The task with the given id; raises ``KeyError`` if it never arrives."""
        return self._tasks[task_id]

    @property
    def num_tasks(self) -> int:
        return len(self._tasks)

    # -- Paper statistics ---------------------------------------------------

    @property
    def peak_active_size(self) -> int:
        """``s(sigma)``: max over tau of the cumulative size of active tasks."""
        return self._peak

    @property
    def total_arrival_size(self) -> int:
        """Sum of sizes over *all* arrivals (the ``S`` of Lemma 2)."""
        return self._total_arrival

    def active_size_at(self, tau: Time) -> int:
        """``S(sigma; tau)``: cumulative size of tasks active at time ``tau``.

        Uses the task intervals directly (arrival inclusive, departure
        exclusive), so it is meaningful at any real time, not only at event
        times.
        """
        return sum(t.size for t in self._tasks.values() if t.is_active(tau))

    def peak_after_prefix(self, num_events: int) -> int:
        """Peak active size over the first ``num_events`` events.

        ``peak_after_prefix(len(seq)) == peak_active_size``.  Exposed because
        the d-reallocation analysis (Theorem 4.2) reasons about the sequence
        split at the last reallocation point.
        """
        if num_events <= 0:
            return 0
        if num_events > len(self._prefix_peaks):
            num_events = len(self._prefix_peaks)
        return self._prefix_peaks[num_events - 1]

    def optimal_load(self, num_pes: int) -> int:
        """``L* = ceil(s(sigma) / N)`` — the benchmark of the whole paper.

        This is the load some PE must carry even under perfectly balanced,
        constantly reallocating assignment (Section 2, "Optimal Load").
        An empty sequence has optimal load 0.
        """
        return ceil_div(self._peak, num_pes)

    # -- Derived views -------------------------------------------------------

    def arrivals(self) -> Iterator[Arrival]:
        """Iterate over arrival events in order."""
        return (ev for ev in self._events if isinstance(ev, Arrival))

    def departures(self) -> Iterator[Departure]:
        """Iterate over departure events in order."""
        return (ev for ev in self._events if isinstance(ev, Departure))

    def max_task_size(self) -> int:
        """Largest task size in the sequence (0 if empty)."""
        return max((t.size for t in self._tasks.values()), default=0)

    def horizon(self) -> Time:
        """Time of the last event (``|sigma|``); 0.0 for an empty sequence."""
        return self._events[-1].time if self._events else 0.0

    def restricted_to_horizon(self, tau: Time) -> "TaskSequence":
        """The prefix of the sequence containing only events at time <= tau."""
        return TaskSequence(ev for ev in self._events if ev.time <= tau)

    @staticmethod
    def from_tasks(tasks: Iterable[Task]) -> "TaskSequence":
        """Build the event sequence induced by a set of task intervals.

        Departures at ``math.inf`` are omitted (the task never leaves within
        the observed horizon).
        """
        events: list[Event] = []
        for t in tasks:
            events.append(Arrival(t.arrival, t))
            if t.departure != float("inf"):
                events.append(Departure(t.departure, t.task_id))
        return TaskSequence(events)

    def concatenated_with(
        self, other: "TaskSequence", time_offset: Optional[Time] = None
    ) -> "TaskSequence":
        """Append ``other`` after this sequence, shifting its times.

        ``time_offset`` defaults to just past this sequence's horizon.  Task
        ids in ``other`` are shifted past the maximum id used here so the
        result is a valid sequence.
        """
        if time_offset is None:
            time_offset = self.horizon() + 1.0
        id_offset = max((int(t) for t in self._tasks), default=-1) + 1
        shifted: list[Event] = list(self._events)
        remap: dict[TaskId, Task] = {}
        for t in other.tasks.values():
            dep = t.departure if t.departure == float("inf") else t.departure + time_offset
            remap[t.task_id] = Task(
                TaskId(int(t.task_id) + id_offset),
                t.size,
                t.arrival + time_offset,
                dep,
                t.work,
            )
        for ev in other:
            if isinstance(ev, Arrival):
                nt = remap[ev.task.task_id]
                shifted.append(Arrival(nt.arrival, nt))
            else:
                nt = remap[ev.task_id]
                shifted.append(Departure(nt.departure, nt.task_id))
        return TaskSequence(shifted)

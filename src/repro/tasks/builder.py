"""A fluent builder for hand-written task sequences.

Experiments and tests frequently need small, explicit sequences like the
paper's Figure 1 example ("t1..t4 of size 1 arrive, t2 and t4 depart, t5 of
size 2 arrives").  Writing these as raw event lists is noisy; the builder
assigns event times automatically (one unit apart by default) and keeps the
arrival/departure bookkeeping consistent.
"""

from __future__ import annotations

import math

from repro.errors import InvalidSequenceError
from repro.tasks.events import Arrival, Departure, Event
from repro.tasks.sequence import TaskSequence
from repro.tasks.task import Task
from repro.types import TaskId, Time

__all__ = ["SequenceBuilder", "figure1_sequence"]


class SequenceBuilder:
    """Incrementally assemble a :class:`TaskSequence`.

    Each call to :meth:`arrive` / :meth:`depart` appends an event one time
    unit after the previous one unless an explicit ``at`` time is given.
    Tasks that never depart get ``departure = inf``.

    >>> seq = (SequenceBuilder()
    ...        .arrive("a", size=1).arrive("b", size=1)
    ...        .depart("a").build())
    >>> seq.peak_active_size
    2
    """

    def __init__(self, time_step: Time = 1.0):
        if time_step <= 0:
            raise InvalidSequenceError("time_step must be positive")
        self._time_step = time_step
        self._clock: Time = 0.0
        self._names: dict[str, TaskId] = {}
        self._pending: dict[TaskId, tuple[str, int, Time, float]] = {}
        self._departures: dict[TaskId, Time] = {}
        self._order: list[tuple[str, TaskId, Time]] = []
        self._next_id = 0

    def _advance(self, at: Time | None) -> Time:
        t = self._clock + self._time_step if at is None else at
        if t < self._clock:
            raise InvalidSequenceError(
                f"events must be non-decreasing in time (got {t} after {self._clock})"
            )
        self._clock = t
        return t

    def arrive(
        self, name: str, *, size: int, at: Time | None = None, work: float = 1.0
    ) -> "SequenceBuilder":
        """Append the arrival of a new task identified by ``name``."""
        if name in self._names:
            raise InvalidSequenceError(f"task name {name!r} already used")
        t = self._advance(at)
        tid = TaskId(self._next_id)
        self._next_id += 1
        self._names[name] = tid
        self._pending[tid] = (name, size, t, work)
        self._order.append(("arrive", tid, t))
        return self

    def depart(self, name: str, *, at: Time | None = None) -> "SequenceBuilder":
        """Append the departure of a previously-arrived task."""
        if name not in self._names:
            raise InvalidSequenceError(f"departure of unknown task {name!r}")
        tid = self._names[name]
        if tid in self._departures:
            raise InvalidSequenceError(f"task {name!r} departs twice")
        t = self._advance(at)
        arrived_at = self._pending[tid][2]
        if t <= arrived_at:
            raise InvalidSequenceError(
                f"task {name!r} must depart strictly after its arrival"
            )
        self._departures[tid] = t
        self._order.append(("depart", tid, t))
        return self

    def task_id(self, name: str) -> TaskId:
        """The id assigned to a named task (useful for assertions in tests)."""
        return self._names[name]

    def build(self) -> TaskSequence:
        """Materialise the validated :class:`TaskSequence`."""
        tasks: dict[TaskId, Task] = {}
        for tid, (_name, size, arr, work) in self._pending.items():
            dep = self._departures.get(tid, math.inf)
            tasks[tid] = Task(tid, size, arr, dep, work)
        events: list[Event] = []
        for kind, tid, t in self._order:
            if kind == "arrive":
                events.append(Arrival(t, tasks[tid]))
            else:
                events.append(Departure(t, tid))
        return TaskSequence(events)


def figure1_sequence() -> TaskSequence:
    """The paper's running example sigma* (Section 2, Figure 1).

    t1..t4 of size 1 arrive, then t2 and t4 depart, then t5 of size 2
    arrives, all on a 4-PE tree machine.  The greedy algorithm A_G reaches
    load 2 on this sequence; a 1-reallocation algorithm reaches load 1.
    """
    return (
        SequenceBuilder()
        .arrive("t1", size=1)
        .arrive("t2", size=1)
        .arrive("t3", size=1)
        .arrive("t4", size=1)
        .depart("t2")
        .depart("t4")
        .arrive("t5", size=2)
        .build()
    )

"""Arrival/departure events — the alphabet of a task sequence.

The paper defines a task sequence as "a sequence of task-arrival or
task-departure events that are ordered by time of occurrence".  We realise
events as small frozen dataclasses so that sequences are hashable,
comparable, and safely shareable between algorithms during an experiment.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.tasks.task import Task
from repro.types import TaskId, Time

__all__ = [
    "EventKind",
    "Arrival",
    "Departure",
    "Event",
    "event_priority",
    "event_sort_key",
]


class EventKind(enum.Enum):
    """Discriminator for the two event types."""

    ARRIVAL = "arrival"
    DEPARTURE = "departure"


@dataclass(frozen=True, slots=True)
class Arrival:
    """A task enters the system and must be placed immediately.

    Carries the full :class:`~repro.tasks.task.Task` object; algorithms may
    read only ``task.size`` (the model reveals nothing else at arrival).
    """

    time: Time
    task: Task

    @property
    def kind(self) -> EventKind:
        return EventKind.ARRIVAL

    @property
    def task_id(self) -> TaskId:
        return self.task.task_id


@dataclass(frozen=True, slots=True)
class Departure:
    """A previously-arrived task leaves; its submachine is deallocated."""

    time: Time
    task_id: TaskId

    @property
    def kind(self) -> EventKind:
        return EventKind.DEPARTURE


Event = Union[Arrival, Departure]

#: Canonical same-timestamp ordering for *every* event the library knows:
#: departures (0) before arrivals (1) before fault events (2).  Keyed by the
#: event's ``kind`` so fault events (which live in :mod:`repro.faults.plan`
#: and cannot be imported here without a cycle) participate without an
#: isinstance ladder.  This single table is the one source of truth for
#: tie-ordering — :class:`~repro.tasks.sequence.TaskSequence`,
#: :func:`repro.faults.plan.merge_events`, and the streaming service layer
#: all sort with :func:`event_sort_key`.
_TIE_PRIORITY: dict[str, int] = {
    "departure": 0,
    "arrival": 1,
    "failure": 2,
    "repair": 2,
    "kill": 2,
    # Machine resizes sort after everything else at their instant: a
    # same-time fault is resolved (and a same-time repair lands) on the
    # pre-resize machine, which is what keeps resize epochs self-contained
    # for the piecewise-N referees (repro.verify.churn).
    "resize": 3,
}


def event_priority(event: object) -> int:
    """Tie-break rank of any task or fault event at a shared timestamp.

    Departures first (a slot freed "at the same time" a new task arrives is
    available to that task — the convention that makes the paper's Figure 1
    come out right), then arrivals, then fault events (a placement decided
    "at" a fault time still sees the pre-fault machine and is immediately
    salvaged — the convention the audit referees assume), then machine
    resizes (everything at a resize instant happens on the old machine).
    """
    kind = event.kind  # type: ignore[attr-defined]
    if isinstance(kind, EventKind):
        kind = kind.value
    return _TIE_PRIORITY[kind]


def event_sort_key(event: object) -> tuple[Time, int]:
    """Stable chronological ordering under the canonical tie priority.

    Within the same kind the original order is preserved (``sorted`` is
    stable).  Accepts both task events and fault events.
    """
    return (event.time, event_priority(event))  # type: ignore[attr-defined]

"""Arrival/departure events — the alphabet of a task sequence.

The paper defines a task sequence as "a sequence of task-arrival or
task-departure events that are ordered by time of occurrence".  We realise
events as small frozen dataclasses so that sequences are hashable,
comparable, and safely shareable between algorithms during an experiment.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.tasks.task import Task
from repro.types import TaskId, Time

__all__ = ["EventKind", "Arrival", "Departure", "Event", "event_sort_key"]


class EventKind(enum.Enum):
    """Discriminator for the two event types."""

    ARRIVAL = "arrival"
    DEPARTURE = "departure"


@dataclass(frozen=True, slots=True)
class Arrival:
    """A task enters the system and must be placed immediately.

    Carries the full :class:`~repro.tasks.task.Task` object; algorithms may
    read only ``task.size`` (the model reveals nothing else at arrival).
    """

    time: Time
    task: Task

    @property
    def kind(self) -> EventKind:
        return EventKind.ARRIVAL

    @property
    def task_id(self) -> TaskId:
        return self.task.task_id


@dataclass(frozen=True, slots=True)
class Departure:
    """A previously-arrived task leaves; its submachine is deallocated."""

    time: Time
    task_id: TaskId

    @property
    def kind(self) -> EventKind:
        return EventKind.DEPARTURE


Event = Union[Arrival, Departure]


def event_sort_key(event: Event) -> tuple[Time, int]:
    """Stable chronological ordering with departures before arrivals at ties.

    Processing a simultaneous departure first is the convention that makes
    the paper's worked example (Figure 1) come out right: a slot freed "at
    the same time" a new task arrives is available to that task.  Within the
    same kind the original order is preserved (``sorted`` is stable).
    """
    return (event.time, 0 if isinstance(event, Departure) else 1)

"""Sequence transformations: reshape workloads without regenerating them.

Trace-driven studies constantly need "the same workload, but ..." —
slower, denser, bigger tasks, only the large jobs, twice the load.  These
functions derive new validated :class:`~repro.tasks.sequence.TaskSequence`
objects from existing ones, preserving determinism (no RNG except where a
sampler is explicitly passed).
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.errors import InvalidSequenceError
from repro.tasks.sequence import TaskSequence
from repro.tasks.task import Task
from repro.types import TaskId, is_power_of_two

__all__ = [
    "scale_time",
    "scale_sizes",
    "filter_tasks",
    "subsample",
    "superpose",
    "truncate_tasks",
]


def _rebuild(tasks: list[Task]) -> TaskSequence:
    return TaskSequence.from_tasks(tasks)


def scale_time(sequence: TaskSequence, factor: float) -> TaskSequence:
    """Stretch (factor > 1) or compress (factor < 1) all event times.

    Loads at corresponding instants are unchanged (the allocation problem
    is invariant under time dilation); this matters for slowdown studies,
    where work stays fixed while residence changes.
    """
    if factor <= 0:
        raise InvalidSequenceError(f"time factor must be positive, got {factor}")
    out = []
    for t in sequence.tasks.values():
        dep = t.departure if math.isinf(t.departure) else t.departure * factor
        out.append(Task(t.task_id, t.size, t.arrival * factor, dep, t.work))
    return _rebuild(out)


def scale_sizes(sequence: TaskSequence, factor: int, *, max_size: int) -> TaskSequence:
    """Multiply every task size by a power-of-two ``factor``, capped.

    Useful for porting a workload recorded on a small machine to a larger
    one while keeping its temporal structure.
    """
    if not is_power_of_two(factor):
        raise InvalidSequenceError(f"size factor must be a power of two, got {factor}")
    if not is_power_of_two(max_size):
        raise InvalidSequenceError(f"max_size must be a power of two, got {max_size}")
    out = []
    for t in sequence.tasks.values():
        new_size = min(t.size * factor, max_size)
        out.append(Task(t.task_id, new_size, t.arrival, t.departure, t.work))
    return _rebuild(out)


def filter_tasks(
    sequence: TaskSequence, predicate: Callable[[Task], bool]
) -> TaskSequence:
    """Keep only tasks satisfying ``predicate`` (events follow the tasks)."""
    return _rebuild([t for t in sequence.tasks.values() if predicate(t)])


def subsample(
    sequence: TaskSequence, fraction: float, rng: np.random.Generator
) -> TaskSequence:
    """Keep a uniformly random ``fraction`` of the tasks (thinning).

    Thinning a Poisson workload yields a Poisson workload at reduced rate,
    so this is the principled way to lighten a trace.
    """
    if not 0.0 <= fraction <= 1.0:
        raise InvalidSequenceError(f"fraction must be in [0, 1], got {fraction}")
    return _rebuild(
        [t for t in sequence.tasks.values() if rng.random() < fraction]
    )


def superpose(a: TaskSequence, b: TaskSequence) -> TaskSequence:
    """Overlay two workloads in time (ids of ``b`` are shifted past ``a``'s).

    Unlike :meth:`TaskSequence.concatenated_with`, which plays ``b`` after
    ``a``, superposition runs them *simultaneously* — two user populations
    sharing one machine.
    """
    offset = max((int(t) for t in a.tasks), default=-1) + 1
    out = list(a.tasks.values())
    for t in b.tasks.values():
        out.append(
            Task(TaskId(int(t.task_id) + offset), t.size, t.arrival, t.departure, t.work)
        )
    return _rebuild(out)


def truncate_tasks(sequence: TaskSequence, max_tasks: int) -> TaskSequence:
    """Keep only the first ``max_tasks`` arrivals (by arrival order)."""
    if max_tasks < 0:
        raise InvalidSequenceError(f"max_tasks must be >= 0, got {max_tasks}")
    ordered = sorted(sequence.tasks.values(), key=lambda t: (t.arrival, t.task_id))
    return _rebuild(ordered[:max_tasks])

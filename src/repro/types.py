"""Shared scalar types, aliases, and small numeric helpers.

The whole library works over a complete binary hierarchy on ``N = 2**n``
leaves, so exact power-of-two arithmetic shows up everywhere.  The helpers
here are the single source of truth for that arithmetic; modules should not
re-derive ``log2`` locally.
"""

from __future__ import annotations

from typing import NewType

__all__ = [
    "TaskId",
    "NodeId",
    "PEId",
    "CopyId",
    "Time",
    "is_power_of_two",
    "ilog2",
    "ceil_div",
    "ceil_log2",
    "round_to_power_of_two",
]

#: Identifier of a task (user). Unique within one sequence.
TaskId = NewType("TaskId", int)

#: Heap index of a node in the complete binary hierarchy (root = 1).
NodeId = int

#: Index of a leaf PE, in ``range(N)``.
PEId = int

#: Index of a machine "copy" in the copy-based algorithms (A_R / A_B).
CopyId = int

#: Simulation time. Events are ordered by this value; ties are broken by
#: event insertion order.
Time = float


def is_power_of_two(x: int) -> bool:
    """Return True iff ``x`` is a positive integral power of two.

    >>> [is_power_of_two(v) for v in (0, 1, 2, 3, 4, 1024)]
    [False, True, True, False, True, True]
    """
    return isinstance(x, int) and x > 0 and (x & (x - 1)) == 0


def ilog2(x: int) -> int:
    """Exact integer base-2 logarithm of a power of two.

    Raises ``ValueError`` if ``x`` is not a positive power of two; the
    library never silently truncates a log.
    """
    if not is_power_of_two(x):
        raise ValueError(f"ilog2 requires a positive power of two, got {x!r}")
    return x.bit_length() - 1


def ceil_div(a: int, b: int) -> int:
    """Ceiling of ``a / b`` for non-negative ``a`` and positive ``b``.

    Used pervasively for the optimal load ``L* = ceil(s(sigma) / N)``.
    """
    if b <= 0:
        raise ValueError(f"ceil_div requires positive divisor, got {b}")
    if a < 0:
        raise ValueError(f"ceil_div requires non-negative dividend, got {a}")
    return -(-a // b)


def ceil_log2(x: int) -> int:
    """Smallest ``k`` with ``2**k >= x`` for positive ``x``."""
    if x <= 0:
        raise ValueError(f"ceil_log2 requires positive input, got {x}")
    return (x - 1).bit_length()


def round_to_power_of_two(x: float) -> int:
    """Round a positive real to the nearest power of two (ties go up).

    Used when instantiating the paper's randomized lower-bound sequence
    sigma_r, whose nominal task sizes ``log^i N`` need not be powers of two
    (see DESIGN.md, substitution list).  The comparison is done in log-space
    so that, e.g., 3 rounds to 4 only if it is closer geometrically;
    3 -> 2 or 4 is decided by ``sqrt(2*4) = 2.83 < 3``, hence 4.
    """
    if x <= 0:
        raise ValueError(f"round_to_power_of_two requires positive input, got {x}")
    if x <= 1:
        return 1
    lo = 1 << (int(x).bit_length() - 1)  # largest power of two <= int(x)
    while lo * 2 <= x:
        lo *= 2
    hi = lo * 2
    # Geometric midpoint between lo and hi is lo * sqrt(2).
    return lo if x * x < lo * hi else hi

"""Brute-force load oracle — the third, fully independent referee.

The verification hierarchy has three layers that share progressively less
code with what they check:

1. the **engine** (:class:`~repro.sim.engine.Simulator`) meters loads with
   the production :class:`~repro.machines.loads.LoadTracker`;
2. the **auditor** (:func:`~repro.sim.audit.audit_run`) re-derives loads
   from the placement history with NumPy interval arithmetic, but still
   trusts :class:`~repro.machines.hierarchy.Hierarchy` for node geometry;
3. this **oracle** re-derives everything — node validity, leaf spans, the
   load field, ``s(sigma)`` and ``L*`` — from first principles in plain
   Python.  It imports nothing from ``repro.machines`` or ``repro.sim``,
   so a bug in the shared geometry or tracker code cannot silently cancel
   out of both sides of a comparison.

Model recap (paper, Section 2): an ``N``-PE machine is decomposed by a
complete binary hierarchy, heap-indexed with root 1; the node ``v`` at
level ``l`` (``l = floor(log2 v)``) roots an aligned run of ``N >> l``
PEs starting at PE ``(v - 2**l) * (N >> l)``.  A task placed at ``v``
adds one to the load of every PE in that run for the duration of its
residence.  The oracle evaluates the per-PE load field at every interval
breakpoint with a difference array — interval arithmetic only, no trees,
no aggregation structures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence, Tuple

__all__ = [
    "OracleReport",
    "oracle_audit",
    "oracle_leaf_span",
    "oracle_optimal_load",
    "faults_table",
]

#: One placement segment: the task resided at ``node`` over [start, end).
Segment = Tuple[float, float, int]


@dataclass
class OracleReport:
    """Outcome of the oracle's from-scratch recomputation."""

    ok: bool
    #: Max PE load over time, recomputed by brute force.
    max_load: int
    #: ``L* = ceil(s(sigma)/N)``, recomputed from the task intervals alone.
    optimal_load: int
    #: Peak cumulative active size ``s(sigma)``.
    peak_active_size: int
    violations: list[str] = field(default_factory=list)
    #: Number of breakpoint times the load field was evaluated at.
    checked_times: int = 0
    #: Fewest PEs alive at any checked time (``num_pes`` when no faults).
    min_alive_pes: int = 0
    #: Peak over time of ``ceil(placed_volume / alive_pes)`` — the degraded
    #: pointwise optimum (equals the healthy pointwise optimum sans faults).
    peak_degraded_lstar: int = 0

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise AssertionError("oracle audit failed:\n" + "\n".join(self.violations))


def oracle_leaf_span(node: int, num_pes: int) -> tuple[int, int]:
    """PE range [lo, hi) covered by heap node ``node`` — own arithmetic.

    Independent re-derivation of the hierarchy convention: level
    ``l = bit_length(node) - 1``, span size ``num_pes >> l``, offset
    ``(node - 2**l) * span``.
    """
    level = node.bit_length() - 1
    size = num_pes >> level
    lo = (node - (1 << level)) * size
    return lo, lo + size


def _is_power_of_two(x: int) -> bool:
    return x >= 1 and (x & (x - 1)) == 0


def oracle_optimal_load(
    tasks: Mapping[int, tuple[int, float, float]], num_pes: int
) -> tuple[int, int]:
    """``(s(sigma), L*)`` from task (size, arrival, departure) triples only.

    Sweeps the arrival/departure breakpoints with a running sum — the
    paper's definition executed literally, independent of
    :class:`~repro.tasks.sequence.TaskSequence`'s cached statistics.
    Departures at a time tie with arrivals are applied first, matching the
    model's departures-before-arrivals event order.
    """
    deltas: dict[float, list[int]] = {}
    for size, arrival, departure in tasks.values():
        deltas.setdefault(arrival, [0, 0])[1] += size
        if not math.isinf(departure):
            deltas.setdefault(departure, [0, 0])[0] -= size
    peak = 0
    active = 0
    for t in sorted(deltas):
        down, up = deltas[t]
        active += down  # departures first: they free volume before arrivals
        active += up
        peak = max(peak, active)
    lstar = -(-peak // num_pes)  # ceil division, no helper imports
    return peak, lstar


def _derive_fault_state(
    faults: Optional[Mapping[str, Sequence]],
) -> tuple[list[Tuple[int, float, float]], list[Tuple[int, float]]]:
    """Failure intervals and kill list from a *raw* fault event stream.

    ``faults["events"]`` rows are ``(kind, time, ref)`` with ``kind`` one of
    ``"failure"``/``"repair"`` (``ref`` = node) or ``"kill"`` (``ref`` =
    task id), in chronological order.  Matching repairs to failures is
    re-derived here — each repair closes the earliest still-open failure of
    its node — so the oracle does not trust the fault plan's own interval
    bookkeeping.
    """
    failures: list[list] = []
    open_by_node: dict[int, list[int]] = {}
    kills: list[Tuple[int, float]] = []
    for kind, time, ref in (faults or {}).get("events", ()):
        if kind == "failure":
            failures.append([int(ref), float(time), math.inf])
            open_by_node.setdefault(int(ref), []).append(len(failures) - 1)
        elif kind == "repair":
            stack = open_by_node.get(int(ref), [])
            if stack:
                failures[stack.pop(0)][2] = float(time)
        elif kind == "kill":
            kills.append((int(ref), float(time)))
    return [(n, s, e) for n, s, e in failures], kills


def _effective_ends(
    tasks: Mapping[int, tuple[int, float, float]],
    kills: Sequence[Tuple[int, float]],
) -> dict[int, float]:
    """Own re-derivation of kill semantics: first effective kill wins.

    A kill lands iff the task is alive at the kill time (arrival <= t <
    current end); departures tie-break before faults, so a kill at the
    departure instant is void.
    """
    ends = {tid: departure for tid, (_s, _a, departure) in tasks.items()}
    for tid, t in kills:
        if tid not in tasks:
            continue
        _size, arrival, _departure = tasks[tid]
        if arrival <= t < ends[tid]:
            ends[tid] = t
    return ends


def oracle_audit(
    num_pes: int,
    tasks: Mapping[int, tuple[int, float, float]],
    intervals: Mapping[int, Sequence[Segment]],
    faults: Optional[Mapping[str, Sequence]] = None,
) -> OracleReport:
    """Referee a run from raw data alone.

    Parameters
    ----------
    num_pes:
        Machine size ``N`` (power of two).
    tasks:
        ``task_id -> (size, arrival, departure)`` for every task in the
        sequence (departure may be ``inf``).
    intervals:
        ``task_id -> [(start, end, node), ...]`` placement history, e.g.
        :meth:`repro.sim.engine.Simulator.placement_intervals`.
    faults:
        Optional raw fault data — plain tuples, no fault-plan objects, so
        the oracle's independence extends to the fault model:
        ``{"events": [(kind, time, ref), ...]}`` with ``kind`` in
        ``{"failure", "repair", "kill"}`` and ``ref`` the node (failures/
        repairs) or task id (kills); see :func:`faults_table`.  Failure
        intervals and kill effectiveness are re-derived in here.

    The oracle checks placement geometry, lifetime coverage, and recomputes
    the max-load figure of merit and ``L*`` by brute force.  Under faults
    it additionally re-derives kill semantics, rejects any residence on a
    PE that is down (span intersection with its own leaf arithmetic), and
    enforces the degraded pointwise optimum
    ``max_load(t) >= ceil(placed_volume(t) / alive_pes(t))``.
    """
    violations: list[str] = []
    if not _is_power_of_two(num_pes):
        return OracleReport(
            ok=False,
            max_load=0,
            optimal_load=0,
            peak_active_size=0,
            violations=[f"num_pes {num_pes} is not a power of two"],
        )

    failures, kills = _derive_fault_state(faults)
    ends = _effective_ends(tasks, kills)

    # 1. Geometry and lifetime coverage per task.
    for tid, (size, arrival, departure) in tasks.items():
        segs = list(intervals.get(tid, ()))
        if not segs:
            violations.append(f"task {tid}: never placed")
            continue
        for start, end, node in segs:
            if not 1 <= node < 2 * num_pes:
                violations.append(f"task {tid}: node {node} outside machine")
                continue
            lo, hi = oracle_leaf_span(node, num_pes)
            if hi - lo != size:
                violations.append(
                    f"task {tid}: size {size} placed on node {node} "
                    f"spanning {hi - lo} PEs"
                )
            if end <= start:
                violations.append(f"task {tid}: empty segment [{start}, {end})")
            for fnode, fstart, fend in failures:
                flo, fhi = oracle_leaf_span(int(fnode), num_pes)
                if max(lo, flo) < min(hi, fhi) and max(start, fstart) < min(end, fend):
                    violations.append(
                        f"task {tid}: segment [{start},{end}) on PEs "
                        f"[{lo},{hi}) intersects failed PEs [{flo},{fhi}) "
                        f"down over [{fstart},{fend})"
                    )
        if segs[0][0] != arrival:
            violations.append(
                f"task {tid}: residence starts at {segs[0][0]}, arrival {arrival}"
            )
        last_end = segs[-1][1]
        effective_end = ends[tid]
        if math.isinf(effective_end):
            if not math.isinf(last_end):
                violations.append(
                    f"task {tid}: open-ended task ends residence at {last_end}"
                )
        elif last_end != effective_end:
            violations.append(
                f"task {tid}: residence ends at {last_end}, "
                f"expected end {effective_end}"
            )
        for (s1, e1, _n1), (s2, _e2, _n2) in zip(segs, segs[1:]):
            if e1 != s2:
                violations.append(
                    f"task {tid}: residence gap/overlap at [{e1}, {s2})"
                )

    # 2. Brute-force load field at every breakpoint via difference arrays.
    breakpoints: set[float] = set()
    for segs in intervals.values():
        for start, end, _node in segs:
            breakpoints.add(start)
            if not math.isinf(end):
                breakpoints.add(end)
    for _fnode, fstart, fend in failures:
        breakpoints.add(fstart)
        if not math.isinf(fend):
            breakpoints.add(fend)
    times = sorted(breakpoints)
    max_load = 0
    min_alive = num_pes
    peak_degraded_lstar = 0
    for t in times:
        diff = [0] * (num_pes + 1)
        placed_volume = 0
        for tid, segs in intervals.items():
            for start, end, node in segs:
                if start <= t < end:
                    lo, hi = oracle_leaf_span(node, num_pes)
                    diff[lo] += 1
                    diff[hi] -= 1
                    placed_volume += hi - lo
                    break
        level = 0
        peak_here = 0
        for delta in diff[:num_pes]:
            level += delta
            if level > peak_here:
                peak_here = level
        max_load = max(max_load, peak_here)
        active_volume = sum(
            size
            for tid, (size, arrival, _departure) in tasks.items()
            if arrival <= t < ends[tid]
        )
        if placed_volume != active_volume:
            violations.append(
                f"t={t}: placed volume {placed_volume} != active volume "
                f"{active_volume}"
            )
        dead = [False] * num_pes
        for fnode, fstart, fend in failures:
            if fstart <= t < fend:
                flo, fhi = oracle_leaf_span(int(fnode), num_pes)
                for pe in range(flo, fhi):
                    dead[pe] = True
        alive = num_pes - sum(dead)
        min_alive = min(min_alive, alive)
        if alive > 0 and placed_volume > 0:
            floor = -(-placed_volume // alive)
            peak_degraded_lstar = max(peak_degraded_lstar, floor)
            if peak_here < floor:
                violations.append(
                    f"t={t}: max load {peak_here} below degraded optimum "
                    f"ceil({placed_volume}/{alive}) = {floor}"
                )

    peak, lstar = oracle_optimal_load(tasks, num_pes)
    return OracleReport(
        ok=not violations,
        max_load=max_load,
        optimal_load=lstar,
        peak_active_size=peak,
        violations=violations,
        checked_times=len(times),
        min_alive_pes=min_alive,
        peak_degraded_lstar=peak_degraded_lstar,
    )


def tasks_table(sequence) -> dict[int, tuple[int, float, float]]:
    """Flatten a :class:`~repro.tasks.sequence.TaskSequence` into the raw
    ``task_id -> (size, arrival, departure)`` mapping the oracle consumes.

    Lives here (rather than on the sequence) so the oracle's input is an
    explicit plain-data boundary: everything past this call is
    reimplemented from scratch.
    """
    return {
        int(tid): (task.size, float(task.arrival), float(task.departure))
        for tid, task in sequence.tasks.items()
    }


def faults_table(plan) -> dict:
    """Flatten a :class:`~repro.faults.plan.FaultPlan` into the raw
    ``{"events": [(kind, time, ref), ...]}`` stream the oracle consumes.

    Same explicit plain-data boundary as :func:`tasks_table`: only the
    event kinds, times and node/task references cross it — interval
    matching and kill semantics are re-derived inside the oracle.
    """
    events = []
    for event in plan:
        ref = getattr(event, "node", None)
        if ref is None:
            ref = event.task_id
        events.append((event.kind, float(event.time), int(ref)))
    return {"events": events}

"""Brute-force load oracle — the third, fully independent referee.

The verification hierarchy has three layers that share progressively less
code with what they check:

1. the **engine** (:class:`~repro.sim.engine.Simulator`) meters loads with
   the production :class:`~repro.machines.loads.LoadTracker`;
2. the **auditor** (:func:`~repro.sim.audit.audit_run`) re-derives loads
   from the placement history with NumPy interval arithmetic, but still
   trusts :class:`~repro.machines.hierarchy.Hierarchy` for node geometry;
3. this **oracle** re-derives everything — node validity, leaf spans, the
   load field, ``s(sigma)`` and ``L*`` — from first principles in plain
   Python.  It imports nothing from ``repro.machines`` or ``repro.sim``,
   so a bug in the shared geometry or tracker code cannot silently cancel
   out of both sides of a comparison.

Model recap (paper, Section 2): an ``N``-PE machine is decomposed by a
complete binary hierarchy, heap-indexed with root 1; the node ``v`` at
level ``l`` (``l = floor(log2 v)``) roots an aligned run of ``N >> l``
PEs starting at PE ``(v - 2**l) * (N >> l)``.  A task placed at ``v``
adds one to the load of every PE in that run for the duration of its
residence.  The oracle evaluates the per-PE load field at every interval
breakpoint with a difference array — interval arithmetic only, no trees,
no aggregation structures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence, Tuple

__all__ = ["OracleReport", "oracle_audit", "oracle_leaf_span", "oracle_optimal_load"]

#: One placement segment: the task resided at ``node`` over [start, end).
Segment = Tuple[float, float, int]


@dataclass
class OracleReport:
    """Outcome of the oracle's from-scratch recomputation."""

    ok: bool
    #: Max PE load over time, recomputed by brute force.
    max_load: int
    #: ``L* = ceil(s(sigma)/N)``, recomputed from the task intervals alone.
    optimal_load: int
    #: Peak cumulative active size ``s(sigma)``.
    peak_active_size: int
    violations: list[str] = field(default_factory=list)
    #: Number of breakpoint times the load field was evaluated at.
    checked_times: int = 0

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise AssertionError("oracle audit failed:\n" + "\n".join(self.violations))


def oracle_leaf_span(node: int, num_pes: int) -> tuple[int, int]:
    """PE range [lo, hi) covered by heap node ``node`` — own arithmetic.

    Independent re-derivation of the hierarchy convention: level
    ``l = bit_length(node) - 1``, span size ``num_pes >> l``, offset
    ``(node - 2**l) * span``.
    """
    level = node.bit_length() - 1
    size = num_pes >> level
    lo = (node - (1 << level)) * size
    return lo, lo + size


def _is_power_of_two(x: int) -> bool:
    return x >= 1 and (x & (x - 1)) == 0


def oracle_optimal_load(
    tasks: Mapping[int, tuple[int, float, float]], num_pes: int
) -> tuple[int, int]:
    """``(s(sigma), L*)`` from task (size, arrival, departure) triples only.

    Sweeps the arrival/departure breakpoints with a running sum — the
    paper's definition executed literally, independent of
    :class:`~repro.tasks.sequence.TaskSequence`'s cached statistics.
    Departures at a time tie with arrivals are applied first, matching the
    model's departures-before-arrivals event order.
    """
    deltas: dict[float, list[int]] = {}
    for size, arrival, departure in tasks.values():
        deltas.setdefault(arrival, [0, 0])[1] += size
        if not math.isinf(departure):
            deltas.setdefault(departure, [0, 0])[0] -= size
    peak = 0
    active = 0
    for t in sorted(deltas):
        down, up = deltas[t]
        active += down  # departures first: they free volume before arrivals
        active += up
        peak = max(peak, active)
    lstar = -(-peak // num_pes)  # ceil division, no helper imports
    return peak, lstar


def oracle_audit(
    num_pes: int,
    tasks: Mapping[int, tuple[int, float, float]],
    intervals: Mapping[int, Sequence[Segment]],
) -> OracleReport:
    """Referee a run from raw data alone.

    Parameters
    ----------
    num_pes:
        Machine size ``N`` (power of two).
    tasks:
        ``task_id -> (size, arrival, departure)`` for every task in the
        sequence (departure may be ``inf``).
    intervals:
        ``task_id -> [(start, end, node), ...]`` placement history, e.g.
        :meth:`repro.sim.engine.Simulator.placement_intervals`.

    The oracle checks placement geometry, lifetime coverage, and recomputes
    the max-load figure of merit and ``L*`` by brute force.
    """
    violations: list[str] = []
    if not _is_power_of_two(num_pes):
        return OracleReport(
            ok=False,
            max_load=0,
            optimal_load=0,
            peak_active_size=0,
            violations=[f"num_pes {num_pes} is not a power of two"],
        )

    # 1. Geometry and lifetime coverage per task.
    for tid, (size, arrival, departure) in tasks.items():
        segs = list(intervals.get(tid, ()))
        if not segs:
            violations.append(f"task {tid}: never placed")
            continue
        for start, end, node in segs:
            if not 1 <= node < 2 * num_pes:
                violations.append(f"task {tid}: node {node} outside machine")
                continue
            lo, hi = oracle_leaf_span(node, num_pes)
            if hi - lo != size:
                violations.append(
                    f"task {tid}: size {size} placed on node {node} "
                    f"spanning {hi - lo} PEs"
                )
            if end <= start:
                violations.append(f"task {tid}: empty segment [{start}, {end})")
        if segs[0][0] != arrival:
            violations.append(
                f"task {tid}: residence starts at {segs[0][0]}, arrival {arrival}"
            )
        last_end = segs[-1][1]
        if math.isinf(departure):
            if not math.isinf(last_end):
                violations.append(
                    f"task {tid}: open-ended task ends residence at {last_end}"
                )
        elif last_end != departure:
            violations.append(
                f"task {tid}: residence ends at {last_end}, departure {departure}"
            )
        for (s1, e1, _n1), (s2, _e2, _n2) in zip(segs, segs[1:]):
            if e1 != s2:
                violations.append(
                    f"task {tid}: residence gap/overlap at [{e1}, {s2})"
                )

    # 2. Brute-force load field at every breakpoint via difference arrays.
    breakpoints: set[float] = set()
    for segs in intervals.values():
        for start, end, _node in segs:
            breakpoints.add(start)
            if not math.isinf(end):
                breakpoints.add(end)
    times = sorted(breakpoints)
    max_load = 0
    for t in times:
        diff = [0] * (num_pes + 1)
        placed_volume = 0
        for tid, segs in intervals.items():
            for start, end, node in segs:
                if start <= t < end:
                    lo, hi = oracle_leaf_span(node, num_pes)
                    diff[lo] += 1
                    diff[hi] -= 1
                    placed_volume += hi - lo
                    break
        level = 0
        peak_here = 0
        for delta in diff[:num_pes]:
            level += delta
            if level > peak_here:
                peak_here = level
        max_load = max(max_load, peak_here)
        active_volume = sum(
            size
            for size, arrival, departure in tasks.values()
            if arrival <= t < departure
        )
        if placed_volume != active_volume:
            violations.append(
                f"t={t}: placed volume {placed_volume} != active volume "
                f"{active_volume}"
            )

    peak, lstar = oracle_optimal_load(tasks, num_pes)
    return OracleReport(
        ok=not violations,
        max_load=max_load,
        optimal_load=lstar,
        peak_active_size=peak,
        violations=violations,
        checked_times=len(times),
    )


def tasks_table(sequence) -> dict[int, tuple[int, float, float]]:
    """Flatten a :class:`~repro.tasks.sequence.TaskSequence` into the raw
    ``task_id -> (size, arrival, departure)`` mapping the oracle consumes.

    Lives here (rather than on the sequence) so the oracle's input is an
    explicit plain-data boundary: everything past this call is
    reimplemented from scratch.
    """
    return {
        int(tid): (task.size, float(task.arrival), float(task.departure))
        for tid, task in sequence.tasks.items()
    }

"""Coverage-guided task-sequence fuzzing.

Uniform random sequences cluster in a narrow structural regime (mid-size
tasks, moderate overlap, no departure bursts), so the interesting corners
of the theorems — full-machine tasks forcing exact packing, deep overlap
stacks that trigger repacks, mass departures that strand fragmentation —
are rarely exercised.  :class:`SequenceFuzzer` borrows the AFL loop to fix
that: generator parameters live in a pool, each generated sequence is
mapped to a coarse structural :class:`FeatureVector`, and parameter sets
that discover a feature combination never seen before are retained and
mutated further.  Coverage is over *sequence structure*, which is what the
paper's bounds quantify over.

Everything is driven by one seeded :class:`numpy.random.Generator`, so a
fuzzing campaign is reproducible from ``(num_pes, seed)`` alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.tasks.events import Departure
from repro.tasks.sequence import TaskSequence
from repro.tasks.task import Task
from repro.types import TaskId, ceil_div

__all__ = [
    "ChurnFuzzer",
    "FeatureVector",
    "SequenceFuzzer",
    "scenario_features",
    "sequence_features",
]


@dataclass(frozen=True)
class FeatureVector:
    """Coarse structural fingerprint of one task sequence.

    Each axis is bucketed so the feature space is small enough to saturate
    (a few hundred combinations) yet distinguishes the regimes the theorems
    treat differently.
    """

    #: Number of distinct task sizes (log-size classes) present.
    size_classes: int
    #: True when some task requests the whole machine (forces root placement).
    has_full_machine: bool
    #: Overlap depth: ``min(ceil(s(sigma)/N), 4)`` — how many optimal "layers"
    #: the sequence stacks (the multiplier the bounds scale with).
    depth: int
    #: Repack-trigger cadence: ``min(S // N, 8)`` — total arrival volume in
    #: machine-sized units, a proxy for how many load-doubling/periodic
    #: repack triggers the run can fire.
    volume: int
    #: Departure burstiness: longest run of consecutive departure events,
    #: capped at 5.  Mass departures create the fragmentation that repacking
    #: exists to undo.
    burst: int
    #: Churn-rate bucket: fault-plan events (failures/repairs/kills) per
    #: unit time, coarsened to 0 (none) .. 4 (storm of churn).  0 for the
    #: plain task-sequence features, so healthy campaigns are unchanged.
    churn: int = 0
    #: Flash-crowd depth: most arrivals sharing one timestamp, capped at 5
    #: (1 = no storm; 0 for plain task-sequence features).
    storm: int = 0
    #: Online resize count, capped at 3 (0 = fixed machine).
    resizes: int = 0


def sequence_features(sequence: TaskSequence, num_pes: int) -> FeatureVector:
    """Map a sequence onto its :class:`FeatureVector` bucket."""
    tasks = sequence.tasks
    logs = {t.log_size for t in tasks.values()}
    run = 0
    max_run = 0
    for ev in sequence:
        if isinstance(ev, Departure):
            run += 1
            if run > max_run:
                max_run = run
        else:
            run = 0
    return FeatureVector(
        size_classes=len(logs),
        has_full_machine=any(t.size == num_pes for t in tasks.values()),
        depth=min(ceil_div(sequence.peak_active_size, num_pes), 4),
        volume=min(sequence.total_arrival_size // num_pes, 8),
        burst=min(max_run, 5),
    )


def scenario_features(scenario) -> FeatureVector:
    """Map a churn :class:`~repro.scenarios.elastic.Scenario` onto its
    :class:`FeatureVector` bucket (base sequence axes + churn axes)."""
    from collections import Counter
    from dataclasses import replace

    base = sequence_features(scenario.sequence, scenario.num_pes)
    horizon = scenario.horizon()
    n_fault = len(scenario.plan)
    rate = n_fault / horizon if horizon > 0 else 0.0
    if n_fault == 0:
        churn = 0
    elif rate <= 0.05:
        churn = 1
    elif rate <= 0.2:
        churn = 2
    elif rate <= 1.0:
        churn = 3
    else:
        churn = 4
    arrivals_at = Counter(
        float(t.arrival) for t in scenario.sequence.tasks.values()
    )
    return replace(
        base,
        churn=churn,
        storm=min(max(arrivals_at.values(), default=0), 5),
        resizes=min(len(scenario.resizes), 3),
    )


#: Generator-parameter bounds: (low, high) per knob, used by seeding and
#: mutation.  Kept coarse on purpose — coverage feedback, not the priors,
#: is what steers the campaign.
_PARAM_BOUNDS: dict[str, tuple[float, float]] = {
    "num_tasks": (2, 64),
    "size_bias": (0.0, 1.0),  # P(each bit set) in binomial log-size draw
    "depart_prob": (0.0, 1.0),
    "hold": (1, 40),  # residence-time scale
    "max_gap": (0, 6),  # inter-arrival gap scale
    "burst": (1, 8),  # departure-burst group size
}

_INT_PARAMS = frozenset({"num_tasks", "hold", "max_gap", "burst"})


def _seed_pool() -> list[dict[str, float]]:
    """Hand-picked starting corners of the parameter space."""
    return [
        # calm: few small long-lived tasks
        dict(num_tasks=8, size_bias=0.15, depart_prob=0.2, hold=30, max_gap=4, burst=1),
        # dense: many tasks, heavy churn, bursty departures
        dict(num_tasks=48, size_bias=0.5, depart_prob=0.9, hold=6, max_gap=1, burst=6),
        # huge tasks: full-machine pressure
        dict(num_tasks=12, size_bias=0.95, depart_prob=0.6, hold=10, max_gap=2, burst=2),
        # wave/drain: everything arrives, then everything leaves at once
        dict(num_tasks=24, size_bias=0.4, depart_prob=1.0, hold=40, max_gap=0, burst=8),
    ]


def _clamp(key: str, value: float) -> float:
    lo, hi = _PARAM_BOUNDS[key]
    value = min(max(value, lo), hi)
    if key in _INT_PARAMS:
        value = int(round(value))
    return value


def _mutate(params: dict[str, float], rng: np.random.Generator) -> dict[str, float]:
    """Perturb 1–2 knobs of a pool member."""
    child = dict(params)
    for key in rng.choice(sorted(_PARAM_BOUNDS), size=int(rng.integers(1, 3)), replace=False):
        lo, hi = _PARAM_BOUNDS[key]
        span = hi - lo
        child[key] = _clamp(key, child[key] + rng.normal(0.0, 0.25 * span))
    return child


def _generate_tasks(
    params: dict[str, float], num_pes: int, rng: np.random.Generator
) -> list[Task]:
    """Sample one task set from a parameter vector."""
    max_log = num_pes.bit_length() - 1
    num_tasks = int(params["num_tasks"])
    tasks: list[Task] = []
    t = 0.0
    for i in range(num_tasks):
        if i:
            t += float(rng.integers(0, int(params["max_gap"]) + 1))
        log_size = int(rng.binomial(max_log, params["size_bias"])) if max_log else 0
        if rng.random() < params["depart_prob"]:
            departure = t + 1.0 + float(rng.integers(0, int(params["hold"]) + 1))
        else:
            departure = float("inf")
        tasks.append(Task(TaskId(i), 1 << log_size, t, departure))

    # Departure bursts: groups of `burst` departing tasks share one departure
    # time, producing the consecutive-departure runs the `burst` feature
    # measures (and the fragmentation cliffs repacking has to survive).
    burst = int(params["burst"])
    if burst > 1:
        departing = [i for i, task in enumerate(tasks) if task.departure != float("inf")]
        for lo in range(0, len(departing), burst):
            group = departing[lo : lo + burst]
            if len(group) < 2:
                continue
            common = max(tasks[i].arrival for i in group) + 1.0 + float(rng.integers(0, 3))
            for i in group:
                tasks[i] = tasks[i].with_departure(common)
    return tasks


class SequenceFuzzer:
    """Coverage-guided generator of :class:`TaskSequence` instances.

    Iterating yields an endless stream of sequences; the caller bounds the
    campaign (by count or wall-clock budget).  ``coverage`` exposes the set
    of feature buckets reached so far, and ``pool_size`` how many parameter
    vectors earned retention by discovering one.
    """

    def __init__(self, num_pes: int, *, seed: int = 0):
        if num_pes < 1 or num_pes & (num_pes - 1):
            raise ValueError(f"num_pes must be a positive power of two, got {num_pes}")
        self.num_pes = num_pes
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._pool: list[dict[str, float]] = _seed_pool()
        self._covered: set[FeatureVector] = set()
        self.generated = 0

    @property
    def coverage(self) -> frozenset[FeatureVector]:
        return frozenset(self._covered)

    @property
    def pool_size(self) -> int:
        return len(self._pool)

    def generate(self) -> TaskSequence:
        """Produce the next sequence, updating coverage and the pool."""
        rng = self._rng
        parent = self._pool[int(rng.integers(len(self._pool)))]
        # Always mutate: the parent stays in the pool, so its exact regime
        # keeps getting replayed through its children anyway.
        params = _mutate(parent, rng)
        sequence = TaskSequence.from_tasks(_generate_tasks(params, self.num_pes, rng))
        self.generated += 1
        features = sequence_features(sequence, self.num_pes)
        if features not in self._covered:
            self._covered.add(features)
            self._pool.append(params)
        return sequence

    def __iter__(self) -> Iterator[TaskSequence]:
        while True:
            yield self.generate()


#: Churn-process parameter bounds, same role as :data:`_PARAM_BOUNDS`.
#: ``fault_rate`` is failures per unit time (below 0.02 disables faults);
#: ``resize_mode`` indexes the resize-schedule templates below.
_CHURN_PARAM_BOUNDS: dict[str, tuple[float, float]] = {
    "task_rate": (0.2, 4.0),
    "mean_duration": (1.0, 20.0),
    "fault_rate": (0.0, 1.0),
    "mttr": (0.5, 6.0),
    "kill_rate": (0.0, 0.5),
    "storm_rate": (0.0, 0.3),
    "storm_depth": (2, 12),
    "diurnal_amplitude": (0.0, 0.9),
    "resize_mode": (0, 4),
}

_CHURN_INT_PARAMS = frozenset({"storm_depth", "resize_mode"})


def _churn_seed_pool() -> list[dict[str, float]]:
    """Hand-picked corners of the churn parameter space."""
    base = dict(
        task_rate=1.0, mean_duration=8.0, fault_rate=0.0, mttr=3.0,
        kill_rate=0.0, storm_rate=0.0, storm_depth=6,
        diurnal_amplitude=0.0, resize_mode=0,
    )
    return [
        # calm fixed machine: healthy regression anchor
        dict(base),
        # faulty: MTTF pressure with slow repairs
        dict(base, fault_rate=0.5, mttr=5.0, kill_rate=0.1),
        # flash crowds: deep storms, short tasks
        dict(base, storm_rate=0.25, storm_depth=10, mean_duration=3.0),
        # elastic: grow then shrink under diurnal load
        dict(base, resize_mode=3, diurnal_amplitude=0.7, task_rate=2.0),
        # worst mix: shrink-first schedule with faults, kills and storms
        dict(base, resize_mode=4, fault_rate=0.3, kill_rate=0.3,
             storm_rate=0.15, storm_depth=8),
    ]


def _churn_clamp(key: str, value: float) -> float:
    lo, hi = _CHURN_PARAM_BOUNDS[key]
    value = min(max(value, lo), hi)
    if key in _CHURN_INT_PARAMS:
        value = int(round(value))
    return value


def _churn_mutate(
    params: dict[str, float], rng: np.random.Generator
) -> dict[str, float]:
    child = dict(params)
    for key in rng.choice(
        sorted(_CHURN_PARAM_BOUNDS), size=int(rng.integers(1, 3)), replace=False
    ):
        lo, hi = _CHURN_PARAM_BOUNDS[key]
        child[key] = _churn_clamp(key, child[key] + rng.normal(0.0, 0.25 * (hi - lo)))
    return child


def _resize_schedule(
    mode: int, horizon: float
) -> tuple[tuple[float, str, int], ...]:
    """Resize-schedule templates, scaled to the generation horizon."""
    if mode == 1:
        return ((0.45 * horizon, "grow", 2),)
    if mode == 2:
        return ((0.45 * horizon, "shrink", 2),)
    if mode == 3:
        return ((0.35 * horizon, "grow", 2), (0.7 * horizon, "shrink", 2))
    if mode == 4:
        return ((0.3 * horizon, "shrink", 2), (0.65 * horizon, "grow", 2))
    return ()


class ChurnFuzzer:
    """Coverage-guided generator of churn scenarios.

    Same AFL loop as :class:`SequenceFuzzer`, but the pool holds
    :class:`~repro.scenarios.churn.ChurnProcess` rate parameters and
    coverage is over :func:`scenario_features` — the base sequence axes
    plus churn rate, flash-crowd depth, and resize count.  Every generated
    scenario is admissible by construction (the churn process guarantees
    the granularity floor per epoch), so the campaign never wastes checks
    on inadmissible inputs.
    """

    def __init__(self, num_pes: int, *, seed: int = 0, horizon: float = 60.0):
        if num_pes < 2 or num_pes & (num_pes - 1):
            raise ValueError(
                f"num_pes must be a power of two >= 2 (shrink schedules "
                f"halve it), got {num_pes}"
            )
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self.num_pes = num_pes
        self.seed = seed
        self.horizon = horizon
        self._rng = np.random.default_rng([seed, 0xC0897])
        self._pool: list[dict[str, float]] = _churn_seed_pool()
        self._covered: set[FeatureVector] = set()
        self.generated = 0

    @property
    def coverage(self) -> frozenset[FeatureVector]:
        return frozenset(self._covered)

    @property
    def pool_size(self) -> int:
        return len(self._pool)

    def process_for(self, params: dict[str, float], seed: int):
        """Materialise one parameter vector as a :class:`ChurnProcess`."""
        from repro.scenarios.churn import ChurnProcess

        fault_rate = float(params["fault_rate"])
        return ChurnProcess(
            num_pes=self.num_pes,
            seed=seed,
            horizon=self.horizon,
            task_rate=float(params["task_rate"]),
            mean_duration=float(params["mean_duration"]),
            pe_mttf=(1.0 / fault_rate) if fault_rate >= 0.02 else float("inf"),
            mttr=float(params["mttr"]),
            kill_rate=float(params["kill_rate"]),
            storm_rate=float(params["storm_rate"]),
            storm_depth=int(params["storm_depth"]),
            diurnal_period=self.horizon / 2.0,
            diurnal_amplitude=float(params["diurnal_amplitude"]),
            resizes=_resize_schedule(int(params["resize_mode"]), self.horizon),
        )

    def generate(self):
        """Produce the next scenario, updating coverage and the pool."""
        rng = self._rng
        parent = self._pool[int(rng.integers(len(self._pool)))]
        params = _churn_mutate(parent, rng)
        process = self.process_for(params, int(rng.integers(2**31)))
        scenario = process.build()
        self.generated += 1
        features = scenario_features(scenario)
        if features not in self._covered:
            self._covered.add(features)
            self._pool.append(params)
        return scenario

    def __iter__(self):
        while True:
            yield self.generate()

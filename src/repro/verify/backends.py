"""Backend-parity referee: per-event loop vs columnar batch engines.

The columnar engines (:mod:`repro.kernel.columnar`) promise strict
bit-identity with the per-event kernel path.  This module is the referee
that holds them to it: :func:`check_backend_parity` replays one task
sequence through a fresh kernel per batch backend — identical chunked
``apply_batch`` calls — and demands that every observable agree exactly:

* the full :class:`~repro.kernel.decision.Decision` stream (placements,
  per-event max loads, active sizes, L*);
* the kernel state snapshot digest (placements, tracker, history);
* the metered max-load time series;
* the peak leaf snapshot (array and capture time);
* error behaviour — if one backend raises, all must raise the same error
  text at the same prefix length.

:func:`repro.verify.harness.check_algorithm` calls this for every fuzzed
sequence whenever the algorithm under test is columnar-capable, so any
divergence between backends surfaces as an ordinary fuzzing violation
with a replayable counterexample.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional, Sequence as TypingSequence

import numpy as np

from repro.core.registry import make_algorithm
from repro.errors import BatchError, ReproError
from repro.kernel.columnar import available_backends
from repro.kernel.core import AllocationKernel
from repro.machines.tree import TreeMachine
from repro.tasks.sequence import TaskSequence

__all__ = ["check_backend_parity", "check_churn_backend_parity"]


def _state_digest(kernel: AllocationKernel) -> str:
    return hashlib.sha256(
        json.dumps(kernel.snapshot(), sort_keys=True, default=repr).encode()
    ).hexdigest()


@dataclass
class _BackendRun:
    backend: str
    decisions: tuple
    digest: str
    series: dict
    peak_snapshot: Optional[np.ndarray]
    peak_time: Optional[float]
    error: Optional[str]


def _run_backend(
    backend: str,
    name: str,
    num_pes: int,
    d: float,
    seed: int,
    events: list,
    chunk: int,
    *,
    churn: bool = False,
) -> _BackendRun:
    machine = TreeMachine(num_pes)
    algorithm = make_algorithm(name, machine, d=d, seed=seed)
    if churn:
        # Full event alphabet (faults, kills, resizes): the algorithm needs
        # the fault-tolerant wrapper and the kernel a degraded view.  The
        # columnar engines decline such batches and fall back to the exact
        # per-event path — which is precisely the behaviour under test:
        # the decline must be deterministic and identical across backends.
        from repro.faults.salvage import FaultTolerantAlgorithm

        view = machine.degraded_view()
        wrapped = FaultTolerantAlgorithm(machine, algorithm, view)
        kernel = AllocationKernel(
            machine, wrapped, view=view, batch_backend=backend
        )
    else:
        kernel = AllocationKernel(machine, algorithm, batch_backend=backend)
    decisions: list = []
    error: Optional[str] = None
    try:
        for start in range(0, len(events), chunk):
            batch = kernel.apply_batch(events[start : start + chunk])
            decisions.extend(batch.decisions)
    except BatchError as exc:
        decisions.extend(exc.decisions)
        error = f"{type(exc).__name__}: {exc}"
    except ReproError as exc:
        error = f"{type(exc).__name__}: {exc}"
    m = kernel.metrics
    return _BackendRun(
        backend=backend,
        decisions=tuple(decisions),
        digest=_state_digest(kernel),
        series=m.series.to_state(),
        peak_snapshot=m.peak_snapshot,
        peak_time=m.peak_snapshot_time,
        error=error,
    )


def check_backend_parity(
    name: str,
    num_pes: int,
    d: float,
    seed: int,
    sequence: TaskSequence,
    *,
    backends: Optional[TypingSequence[str]] = None,
    chunk: int = 64,
) -> list[str]:
    """Replay ``sequence`` under every batch backend and diff the runs.

    Returns a list of violation strings (empty = all backends agree).
    ``backends`` defaults to every backend usable in this environment;
    the first entry (normally ``python``, the per-event oracle) is the
    reference the others are diffed against.  ``chunk`` is the
    ``apply_batch`` size — small enough that batches straddle arrival
    runs, large enough to engage the columnar run path.
    """
    names = tuple(backends) if backends is not None else available_backends()
    if len(names) < 2:
        return []
    events = list(sequence)
    runs = [
        _run_backend(b, name, num_pes, d, seed, events, chunk) for b in names
    ]
    return _diff_runs(runs)


def check_churn_backend_parity(
    name: str,
    d: float,
    seed: int,
    scenario,
    *,
    backends: Optional[TypingSequence[str]] = None,
    chunk: int = 64,
) -> list[str]:
    """Replay a full churn scenario under every batch backend and diff.

    Same contract as :func:`check_backend_parity`, but the event stream is
    the scenario's merged alphabet — arrivals, departures, failures,
    repairs, kills, and resizes — fed through ``apply_batch`` in chunks
    that deliberately straddle fault and resize boundaries.  The columnar
    engines must decline such batches onto the per-event path identically,
    so every observable (decision stream, snapshot digest, metered series,
    peak snapshots, error behaviour) stays bit-identical across backends.
    """
    names = tuple(backends) if backends is not None else available_backends()
    if len(names) < 2:
        return []
    events = list(scenario.merged_events())
    runs = [
        _run_backend(
            b, name, scenario.num_pes, d, seed, events, chunk, churn=True
        )
        for b in names
    ]
    return _diff_runs(runs)


def _diff_runs(runs: list[_BackendRun]) -> list[str]:
    """Diff every run against the first (the per-event reference)."""
    ref = runs[0]
    violations: list[str] = []
    for run in runs[1:]:
        tag = f"{run.backend} vs {ref.backend}"
        if run.error != ref.error:
            violations.append(
                f"{tag}: error mismatch ({run.error!r} != {ref.error!r})"
            )
        if run.decisions != ref.decisions:
            idx = next(
                (
                    i
                    for i, (a, b) in enumerate(zip(run.decisions, ref.decisions))
                    if a != b
                ),
                min(len(run.decisions), len(ref.decisions)),
            )
            violations.append(
                f"{tag}: decision streams diverge at event {idx} "
                f"({len(run.decisions)} vs {len(ref.decisions)} decisions)"
            )
        if run.digest != ref.digest:
            violations.append(f"{tag}: kernel snapshot digests differ")
        if run.series != ref.series:
            violations.append(f"{tag}: max-load series differ")
        same_snap = (
            run.peak_snapshot is None
            and ref.peak_snapshot is None
            or run.peak_snapshot is not None
            and ref.peak_snapshot is not None
            and np.array_equal(run.peak_snapshot, ref.peak_snapshot)
            and run.peak_time == ref.peak_time
        )
        if not same_snap:
            violations.append(f"{tag}: peak leaf snapshots differ")
    return violations

"""SLO admission referee: an independent shadow of the admission gate.

The production path (:meth:`repro.service.session.AllocationSession.offer`)
decides with the kernel's O(log N) min-of-max descent; this referee
re-derives every admission decision from nothing but a flat NumPy leaf-load
array and a plain deque, and demands the two accounts agree:

1. **No admitted violation** — after every admitted arrival (fresh or
   drained), the max PE load inside the task's submachine is ``<= target``;
2. **Head-blocking FIFO** — an arrival is queued only when something is
   already waiting or its own admission would violate; while the queue is
   non-empty, the shadow must agree that the *head* is inadmissible after
   every event (otherwise the session failed to drain);
3. **FIFO drain order** — every drained decision matches the shadow
   queue's popleft, id for id;
4. **Bounded queue** — rejects happen exactly when the shadow queue is at
   capacity;
5. **Counter agreement** — ``status()``'s admission counters equal the
   shadow's tallies;
6. **Determinism** — a second, fresh session fed the same records produces
   the identical outcome log.

Module-level and picklable, like the other referees, so
:meth:`repro.verify.harness.DifferentialHarness.fuzz_slo` can fan it out
over worker processes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, Optional

import numpy as np

from repro.core.registry import make_algorithm
from repro.machines.tree import TreeMachine
from repro.service.session import AllocationSession
from repro.service.slo import SLOPolicy
from repro.tasks.sequence import TaskSequence
from repro.verify.harness import CheckOutcome

__all__ = ["check_slo_admission", "admission_log"]


def _shadow_min_load(loads: np.ndarray, size: int) -> int:
    """Min over aligned ``size``-PE submachines of the max PE load inside."""
    return int(loads.reshape(-1, size).max(axis=1).min())


def admission_log(
    name: str,
    num_pes: int,
    d: float,
    seed: int,
    records: Iterable[dict[str, Any]],
    *,
    load_target: int,
    queue_capacity: int,
) -> list[tuple[str, Any]]:
    """Feed ``records`` through a fresh SLO session; return the outcome log.

    One ``(verdict, payload)`` tuple per offered record: the admitted node
    and the drained ``(id, node)`` pairs for admits/cancels, the queue
    position for queues, the reason for rejects.  Two runs of the same
    records must produce identical logs — this is the determinism oracle.
    """
    machine = TreeMachine(num_pes)
    algorithm = make_algorithm(
        name, machine, d=d, seed=seed, load_target=load_target
    )
    session = AllocationSession(
        machine,
        algorithm,
        slo=SLOPolicy(
            slowdown_target=float(load_target), queue_capacity=queue_capacity
        ),
    )
    log: list[tuple[str, Any]] = []
    for record in records:
        outcome = session.offer(dict(record))
        drained = tuple(
            (d_.task_id, d_.node) for d_ in getattr(outcome, "drained", ())
        )
        if outcome.verdict == "admit":
            log.append(("admit", (outcome.decision.task_id,
                                  outcome.decision.node, drained)))
        elif outcome.verdict == "queue":
            log.append(("queue", (outcome.task_id, outcome.position)))
        elif outcome.verdict == "reject":
            log.append(("reject", (outcome.task_id, outcome.reason)))
        else:
            log.append(("cancel", (outcome.task_id, outcome.dequeued, drained)))
    return log


def check_slo_admission(
    name: str,
    num_pes: int,
    d: float,
    seed: int,
    sequence: TaskSequence,
    load_target: int = 2,
    queue_capacity: int = 16,
) -> CheckOutcome:
    """Referee one algorithm's SLO session against the shadow model.

    Module-level and picklable end to end, like
    :func:`repro.verify.harness.check_algorithm`.
    """
    from repro.service.stream import sequence_records

    violations: list[str] = []
    records = list(sequence_records(sequence))
    machine = TreeMachine(num_pes)
    hierarchy = machine.hierarchy
    target = int(load_target)

    try:
        algorithm = make_algorithm(
            name, machine, d=d, seed=seed, load_target=target
        )
        session = AllocationSession(
            machine,
            algorithm,
            slo=SLOPolicy(
                slowdown_target=float(target), queue_capacity=queue_capacity
            ),
        )
    except Exception as exc:  # pragma: no cover - construction should not fail
        return CheckOutcome(
            algorithm=name, num_pes=num_pes, d=d, seed=seed,
            num_events=len(records), ok=False,
            violations=(f"engine: {type(exc).__name__}: {exc}",),
            sloed=True,
        )

    # Independent shadow state: flat leaf loads, task spans, FIFO queue.
    loads = np.zeros(num_pes, dtype=np.int64)
    spans: dict[int, tuple[int, int]] = {}
    shadow_queue: "deque[tuple[int, int]]" = deque()  # (id, size)
    shadow_dropped: set[int] = set()
    counts = {"admitted": 0, "drained": 0, "queued": 0, "rejected": 0,
              "canceled": 0}
    max_seen = 0

    def shadow_admit(tid: int, node: Optional[int], size: int,
                     what: str) -> None:
        nonlocal max_seen
        if node is None:
            violations.append(f"{what}: admitted task {tid} has no node")
            return
        lo, hi = hierarchy.leaf_span(node)
        if hi - lo != size:
            violations.append(
                f"{what}: task {tid} of size {size} placed on node {node} "
                f"spanning {hi - lo} PEs"
            )
            return
        loads[lo:hi] += 1
        spans[tid] = (lo, hi)
        counts["admitted"] += 1
        peak = int(loads[lo:hi].max())
        max_seen = max(max_seen, int(loads.max()))
        if peak > target:
            violations.append(
                f"{what}: admitting task {tid} (size {size}) pushed node "
                f"{node} to load {peak} > target {target}"
            )

    def check_drained(drained: tuple, what: str) -> None:
        for decision in drained:
            if not shadow_queue:
                violations.append(
                    f"{what}: drained task {decision.task_id} but the "
                    "shadow queue is empty"
                )
                return
            head_id, head_size = shadow_queue[0]
            if decision.task_id != head_id:
                violations.append(
                    f"{what}: drained task {decision.task_id} out of FIFO "
                    f"order (shadow head is {head_id})"
                )
                return
            if _shadow_min_load(loads, head_size) + 1 > target:
                violations.append(
                    f"{what}: drained task {head_id} (size {head_size}) "
                    "while the shadow says it is inadmissible"
                )
            shadow_queue.popleft()
            counts["drained"] += 1
            shadow_admit(head_id, decision.node, head_size, what)

    for i, record in enumerate(records):
        kind = record["kind"]
        what = f"record {i} ({kind})"
        try:
            outcome = session.offer(dict(record))
        except Exception as exc:  # a crash IS a finding
            violations.append(f"{what}: {type(exc).__name__}: {exc}")
            break
        verdict = outcome.verdict
        if kind == "arrival":
            tid, size = int(record["id"]), int(record["size"])
            fits = _shadow_min_load(loads, size) + 1 <= target
            if verdict == "admit":
                if shadow_queue:
                    violations.append(
                        f"{what}: admitted task {tid} past "
                        f"{len(shadow_queue)} queued task(s) — FIFO broken"
                    )
                if not fits:
                    violations.append(
                        f"{what}: admitted task {tid} (size {size}) that the "
                        "shadow says is inadmissible"
                    )
                if outcome.decision.reallocated:
                    violations.append(
                        f"{what}: admission triggered an unexpected "
                        "reallocation — shadow loads no longer track"
                    )
                shadow_admit(tid, outcome.decision.node, size, what)
                check_drained(outcome.drained, what)
            elif verdict == "queue":
                if not shadow_queue and fits:
                    violations.append(
                        f"{what}: queued task {tid} (size {size}) the shadow "
                        "says was immediately admissible"
                    )
                shadow_queue.append((tid, size))
                shadow_dropped.discard(tid)
                counts["queued"] += 1
            elif verdict == "reject":
                if len(shadow_queue) < queue_capacity:
                    violations.append(
                        f"{what}: rejected task {tid} with only "
                        f"{len(shadow_queue)}/{queue_capacity} queued"
                    )
                shadow_dropped.add(tid)
                counts["rejected"] += 1
            else:
                violations.append(f"{what}: arrival resolved as {verdict}")
        else:  # departure (sequence_records emits only arrivals/departures)
            tid = int(record["id"])
            if verdict == "cancel":
                in_queue = any(q[0] == tid for q in shadow_queue)
                if in_queue != outcome.dequeued:
                    violations.append(
                        f"{what}: cancel of task {tid} reported "
                        f"dequeued={outcome.dequeued}, shadow says {in_queue}"
                    )
                if in_queue:
                    shadow_queue = deque(
                        q for q in shadow_queue if q[0] != tid
                    )
                    counts["canceled"] += 1
                elif tid not in shadow_dropped:
                    violations.append(
                        f"{what}: cancel of task {tid} the shadow never "
                        "queued or dropped"
                    )
                shadow_dropped.add(tid)
                check_drained(outcome.drained, what)
            elif verdict == "admit":
                span = spans.pop(tid, None)
                if span is None:
                    violations.append(
                        f"{what}: departure of task {tid} the shadow never "
                        "admitted"
                    )
                else:
                    loads[span[0]:span[1]] -= 1
                check_drained(outcome.drained, what)
            else:
                violations.append(f"{what}: departure resolved as {verdict}")
        # Head-blocking invariant: a non-empty queue means the session
        # could not admit its head right now.
        if shadow_queue:
            head_id, head_size = shadow_queue[0]
            if _shadow_min_load(loads, head_size) + 1 <= target:
                violations.append(
                    f"{what}: task {head_id} (size {head_size}) left queued "
                    "though the shadow says it is admissible — drain missed"
                )

    status = session.status()
    expect = {
        "admitted_total": counts["admitted"],
        "drained_total": counts["drained"],
        "queued_total": counts["queued"],
        "rejected_total": counts["rejected"],
        "canceled_total": counts["canceled"],
    }
    got = {k: status["slo"][k] for k in expect}
    if got != expect:
        violations.append(f"counter mismatch: session {got} != shadow {expect}")
    if status["queued_tasks"] != len(shadow_queue):
        violations.append(
            f"queued_tasks {status['queued_tasks']} != shadow queue length "
            f"{len(shadow_queue)}"
        )
    if status["slo_violations"] != 0:
        violations.append(
            f"gated session reported {status['slo_violations']} SLO "
            "violation(s) — the gate admitted a violating arrival"
        )

    # Determinism oracle: same records, fresh session, identical outcomes.
    if not violations:
        first = admission_log(
            name, num_pes, d, seed, records,
            load_target=target, queue_capacity=queue_capacity,
        )
        second = admission_log(
            name, num_pes, d, seed, records,
            load_target=target, queue_capacity=queue_capacity,
        )
        if first != second:
            diverged = next(
                i for i, (a, b) in enumerate(zip(first, second)) if a != b
            )
            violations.append(
                f"admission log diverges between identical runs at record "
                f"{diverged}: {first[diverged]} != {second[diverged]}"
            )

    return CheckOutcome(
        algorithm=name,
        num_pes=num_pes,
        d=d,
        seed=seed,
        num_events=len(records),
        ok=not violations,
        violations=tuple(violations),
        max_load=max_seen,
        optimal_load=sequence.optimal_load(num_pes),
        sloed=True,
    )

"""Replayable counterexample corpus under ``tests/corpus/``.

Every violation the differential harness finds is shrunk and serialised
here as a small JSON file: the task intervals plus the exact check
configuration (algorithm, machine size, ``d``, seed) that exposed it.
Committed entries form a *regression corpus*: each one once failed, so CI
replays the whole directory through :func:`check_algorithm` on every run
and fails if any entry regresses.

The format is deliberately dumb — a flat task table, ``"inf"`` for open
departures, schema-versioned — so an entry written while debugging one bug
stays replayable after any amount of refactoring around it.

Loading is *tolerant*: a corrupt file or a schema version this build does
not understand is skipped with a warning instead of aborting the whole
replay — one bad entry (a truncated write, an entry from a newer branch)
must not mask regressions in the hundred good ones.  Callers that need the
strict behaviour pass ``strict=True``.
"""

from __future__ import annotations

import hashlib
import json
import math
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.tasks.sequence import TaskSequence
from repro.tasks.task import Task
from repro.types import TaskId

__all__ = [
    "CorpusEntry",
    "CorpusLoadWarning",
    "load_corpus",
    "replay_corpus",
    "write_counterexample",
]

#: Bump when the JSON layout changes incompatibly.
CORPUS_VERSION = 1


class CorpusLoadWarning(UserWarning):
    """A corpus file was skipped (corrupt JSON or unsupported schema)."""


def _encode_time(t: float):
    return "inf" if math.isinf(t) else t


def _decode_time(t) -> float:
    return math.inf if t == "inf" else float(t)


@dataclass(frozen=True)
class CorpusEntry:
    """One replayable counterexample (or regression witness)."""

    algorithm: str
    num_pes: int
    d: float
    seed: int
    #: The first violation message observed when the entry was recorded —
    #: documentation for triage, not part of the replay contract.
    check: str
    #: ``(task_id, size, arrival, departure)`` rows.
    tasks: tuple[tuple[int, int, float, float], ...]
    #: Fault-plan event rows ``(kind, time, ref)`` for entries recorded in
    #: fault mode (``ref`` is the node for failure/repair, the task id for
    #: kill); empty for healthy entries.  Additive: absent from the JSON of
    #: healthy entries, so the schema version is unchanged.
    fault_events: tuple[tuple[str, float, int], ...] = ()
    #: Resize-schedule rows ``(time, op, factor)`` for entries recorded in
    #: churn mode; empty otherwise.  Additive, like ``fault_events`` — the
    #: presence of any row routes replay through the piecewise-N churn
    #: check (:func:`repro.verify.churn.check_algorithm_under_churn`).
    resize_events: tuple[tuple[float, str, int], ...] = ()

    @staticmethod
    def from_sequence(
        sequence: TaskSequence,
        *,
        algorithm: str,
        num_pes: int,
        d: float,
        seed: int,
        check: str,
        fault_plan=None,
        resizes=None,
    ) -> "CorpusEntry":
        rows = tuple(
            (int(tid), task.size, float(task.arrival), float(task.departure))
            for tid, task in sorted(sequence.tasks.items(), key=lambda kv: int(kv[0]))
        )
        fault_rows: tuple[tuple[str, float, int], ...] = ()
        if fault_plan is not None and not fault_plan.is_empty:
            fault_rows = tuple(
                (
                    event.kind,
                    float(event.time),
                    int(event.node if event.kind != "kill" else event.task_id),
                )
                for event in fault_plan.events
            )
        resize_rows: tuple[tuple[float, str, int], ...] = ()
        if resizes:
            resize_rows = tuple(
                (float(r.time), str(r.op), int(r.factor)) for r in resizes
            )
        return CorpusEntry(
            algorithm=algorithm,
            num_pes=num_pes,
            d=d,
            seed=seed,
            check=check,
            tasks=rows,
            fault_events=fault_rows,
            resize_events=resize_rows,
        )

    def sequence(self) -> TaskSequence:
        """Rebuild the task sequence this entry witnesses."""
        return TaskSequence.from_tasks(
            Task(TaskId(tid), size, arrival, departure)
            for tid, size, arrival, departure in self.tasks
        )

    def fault_plan(self):
        """Rebuild the fault plan, or ``None`` for healthy entries."""
        if not self.fault_events:
            return None
        from repro.faults.plan import FaultPlan

        return FaultPlan.from_dict(
            {
                "events": [
                    {
                        "kind": kind,
                        "time": time,
                        ("task_id" if kind == "kill" else "node"): ref,
                    }
                    for kind, time, ref in self.fault_events
                ]
            }
        )

    def scenario(self):
        """Rebuild the churn scenario, or ``None`` for non-churn entries."""
        if not self.resize_events:
            return None
        from repro.faults.plan import FaultPlan
        from repro.scenarios.elastic import MachineResize, Scenario

        return Scenario(
            num_pes=self.num_pes,
            sequence=self.sequence(),
            plan=self.fault_plan() or FaultPlan.empty(),
            resizes=tuple(
                MachineResize(float(t), str(op), int(f))
                for t, op, f in self.resize_events
            ),
        )

    def to_json(self) -> str:
        payload = {
            "version": CORPUS_VERSION,
            "algorithm": self.algorithm,
            "num_pes": self.num_pes,
            "d": _encode_time(self.d),
            "seed": self.seed,
            "check": self.check,
            "tasks": [
                {
                    "id": tid,
                    "size": size,
                    "arrival": _encode_time(arrival),
                    "departure": _encode_time(departure),
                }
                for tid, size, arrival, departure in self.tasks
            ],
        }
        if self.fault_events:
            payload["faults"] = [
                {"kind": kind, "time": time, "ref": ref}
                for kind, time, ref in self.fault_events
            ]
        if self.resize_events:
            payload["resizes"] = [
                {"time": time, "op": op, "factor": factor}
                for time, op, factor in self.resize_events
            ]
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @staticmethod
    def from_json(text: str) -> "CorpusEntry":
        payload = json.loads(text)
        version = payload.get("version")
        if version != CORPUS_VERSION:
            raise ValueError(
                f"corpus entry version {version!r} not supported "
                f"(expected {CORPUS_VERSION})"
            )
        return CorpusEntry(
            algorithm=payload["algorithm"],
            num_pes=int(payload["num_pes"]),
            d=_decode_time(payload["d"]),
            seed=int(payload["seed"]),
            check=payload.get("check", ""),
            tasks=tuple(
                (
                    int(row["id"]),
                    int(row["size"]),
                    _decode_time(row["arrival"]),
                    _decode_time(row["departure"]),
                )
                for row in payload["tasks"]
            ),
            fault_events=tuple(
                (str(row["kind"]), float(row["time"]), int(row["ref"]))
                for row in payload.get("faults", ())
            ),
            resize_events=tuple(
                (float(row["time"]), str(row["op"]), int(row["factor"]))
                for row in payload.get("resizes", ())
            ),
        )

    def filename(self) -> str:
        """Content-addressed name: stable across rewrites, no collisions."""
        digest = hashlib.sha256(self.to_json().encode()).hexdigest()[:12]
        return f"{self.algorithm}-n{self.num_pes}-{digest}.json"


def write_counterexample(entry: CorpusEntry, directory) -> Path:
    """Persist one entry (idempotent: same content, same file)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / entry.filename()
    path.write_text(entry.to_json())
    return path


def load_corpus(directory, *, strict: bool = False) -> list[CorpusEntry]:
    """Read every ``*.json`` entry in ``directory`` (sorted by filename).

    Unreadable entries — corrupt JSON, missing keys, or a schema version
    this build does not support — are skipped with a
    :class:`CorpusLoadWarning` naming the file and the reason, unless
    ``strict=True``, in which case the underlying error propagates with
    the file path attached.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    entries: list[CorpusEntry] = []
    for path in sorted(directory.glob("*.json")):
        try:
            entries.append(CorpusEntry.from_json(path.read_text()))
        except (ValueError, KeyError, TypeError, OSError) as exc:
            if strict:
                # Not type(exc): some (e.g. JSONDecodeError) need extra
                # constructor arguments, so rebuild as a plain ValueError.
                raise ValueError(f"{path}: {type(exc).__name__}: {exc}") from exc
            warnings.warn(
                f"skipping corpus entry {path}: {type(exc).__name__}: {exc}",
                CorpusLoadWarning,
                stacklevel=2,
            )
    return entries


def _replay_one(entry: CorpusEntry):
    """Dispatch one entry to its check: churn, fault-mode, or healthy."""
    from repro.verify.harness import check_algorithm, check_algorithm_under_faults

    scenario = entry.scenario()
    if scenario is not None:
        from repro.verify.churn import check_algorithm_under_churn

        return check_algorithm_under_churn(
            entry.algorithm, entry.d, entry.seed, scenario
        )
    plan = entry.fault_plan()
    if plan is not None:
        return check_algorithm_under_faults(
            entry.algorithm, entry.num_pes, entry.d, entry.seed,
            entry.sequence(), plan,
        )
    return check_algorithm(
        entry.algorithm, entry.num_pes, entry.d, entry.seed, entry.sequence()
    )


def replay_corpus(directory, *, jobs: Optional[int] = None, strict: bool = False):
    """Re-check every corpus entry; return ``[(entry, CheckOutcome), ...]``.

    The committed corpus is a regression corpus — each entry once exposed a
    bug that has since been fixed — so callers (the test suite, the CI
    ``verify-smoke`` job) assert every outcome is ``ok``.  Entries recorded
    in fault mode replay through the fault-aware check with their stored
    plan.  Unloadable files are skipped with a warning (see
    :func:`load_corpus`); only real check failures should fail a replay run.
    """
    from repro.sim.parallel import parallel_map

    entries = load_corpus(directory, strict=strict)
    outcomes = parallel_map(_replay_one, [(e,) for e in entries], jobs=jobs)
    return list(zip(entries, outcomes))

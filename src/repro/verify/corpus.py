"""Replayable counterexample corpus under ``tests/corpus/``.

Every violation the differential harness finds is shrunk and serialised
here as a small JSON file: the task intervals plus the exact check
configuration (algorithm, machine size, ``d``, seed) that exposed it.
Committed entries form a *regression corpus*: each one once failed, so CI
replays the whole directory through :func:`check_algorithm` on every run
and fails if any entry regresses.

The format is deliberately dumb — a flat task table, ``"inf"`` for open
departures, schema-versioned — so an entry written while debugging one bug
stays replayable after any amount of refactoring around it.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

from repro.tasks.sequence import TaskSequence
from repro.tasks.task import Task
from repro.types import TaskId

__all__ = ["CorpusEntry", "load_corpus", "replay_corpus", "write_counterexample"]

#: Bump when the JSON layout changes incompatibly.
CORPUS_VERSION = 1


def _encode_time(t: float):
    return "inf" if math.isinf(t) else t


def _decode_time(t) -> float:
    return math.inf if t == "inf" else float(t)


@dataclass(frozen=True)
class CorpusEntry:
    """One replayable counterexample (or regression witness)."""

    algorithm: str
    num_pes: int
    d: float
    seed: int
    #: The first violation message observed when the entry was recorded —
    #: documentation for triage, not part of the replay contract.
    check: str
    #: ``(task_id, size, arrival, departure)`` rows.
    tasks: tuple[tuple[int, int, float, float], ...]

    @staticmethod
    def from_sequence(
        sequence: TaskSequence,
        *,
        algorithm: str,
        num_pes: int,
        d: float,
        seed: int,
        check: str,
    ) -> "CorpusEntry":
        rows = tuple(
            (int(tid), task.size, float(task.arrival), float(task.departure))
            for tid, task in sorted(sequence.tasks.items(), key=lambda kv: int(kv[0]))
        )
        return CorpusEntry(
            algorithm=algorithm,
            num_pes=num_pes,
            d=d,
            seed=seed,
            check=check,
            tasks=rows,
        )

    def sequence(self) -> TaskSequence:
        """Rebuild the task sequence this entry witnesses."""
        return TaskSequence.from_tasks(
            Task(TaskId(tid), size, arrival, departure)
            for tid, size, arrival, departure in self.tasks
        )

    def to_json(self) -> str:
        payload = {
            "version": CORPUS_VERSION,
            "algorithm": self.algorithm,
            "num_pes": self.num_pes,
            "d": _encode_time(self.d),
            "seed": self.seed,
            "check": self.check,
            "tasks": [
                {
                    "id": tid,
                    "size": size,
                    "arrival": _encode_time(arrival),
                    "departure": _encode_time(departure),
                }
                for tid, size, arrival, departure in self.tasks
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @staticmethod
    def from_json(text: str) -> "CorpusEntry":
        payload = json.loads(text)
        version = payload.get("version")
        if version != CORPUS_VERSION:
            raise ValueError(
                f"corpus entry version {version!r} not supported "
                f"(expected {CORPUS_VERSION})"
            )
        return CorpusEntry(
            algorithm=payload["algorithm"],
            num_pes=int(payload["num_pes"]),
            d=_decode_time(payload["d"]),
            seed=int(payload["seed"]),
            check=payload.get("check", ""),
            tasks=tuple(
                (
                    int(row["id"]),
                    int(row["size"]),
                    _decode_time(row["arrival"]),
                    _decode_time(row["departure"]),
                )
                for row in payload["tasks"]
            ),
        )

    def filename(self) -> str:
        """Content-addressed name: stable across rewrites, no collisions."""
        digest = hashlib.sha256(self.to_json().encode()).hexdigest()[:12]
        return f"{self.algorithm}-n{self.num_pes}-{digest}.json"


def write_counterexample(entry: CorpusEntry, directory) -> Path:
    """Persist one entry (idempotent: same content, same file)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / entry.filename()
    path.write_text(entry.to_json())
    return path


def load_corpus(directory) -> list[CorpusEntry]:
    """Read every ``*.json`` entry in ``directory`` (sorted by filename)."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [
        CorpusEntry.from_json(path.read_text())
        for path in sorted(directory.glob("*.json"))
    ]


def replay_corpus(directory, *, jobs: Optional[int] = None):
    """Re-check every corpus entry; return ``[(entry, CheckOutcome), ...]``.

    The committed corpus is a regression corpus — each entry once exposed a
    bug that has since been fixed — so callers (the test suite, the CI
    ``verify-smoke`` job) assert every outcome is ``ok``.
    """
    from repro.sim.parallel import parallel_map
    from repro.verify.harness import check_algorithm

    entries = load_corpus(directory)
    outcomes = parallel_map(
        check_algorithm,
        [(e.algorithm, e.num_pes, e.d, e.seed, e.sequence()) for e in entries],
        jobs=jobs,
    )
    return list(zip(entries, outcomes))

"""Differential verification: oracle cross-checks, coverage-guided fuzzing,
and counterexample shrinking.

The paper's claims are inequalities (Theorem 3.1's exact ``L*``, the
Theorem 4.1/4.2 upper bounds, the Theorem 4.3 adversarial lower bound), so
this reproduction is only as trustworthy as the machinery that checks every
algorithm against them on sequences nobody hand-picked.  This package turns
the suite's scattered ad-hoc checks into one engine:

* :mod:`repro.verify.oracle` — a from-scratch brute-force referee that
  recomputes loads with interval arithmetic only, sharing no code with
  :class:`~repro.machines.loads.LoadTracker`;
* :mod:`repro.verify.fuzzer` — :class:`~repro.verify.fuzzer.SequenceFuzzer`,
  a coverage-guided generator steered by structural features (size mix,
  overlap depth, repack-trigger cadence, departure burstiness) rather than
  blind sampling;
* :mod:`repro.verify.harness` —
  :class:`~repro.verify.harness.DifferentialHarness`, which runs every
  registered algorithm on each fuzzed sequence through the parallel engine
  and cross-checks engine metrics against ``audit_run``, the oracle, and
  the theorem bounds from :mod:`repro.core.bounds` (via the registry's
  ``load_bound`` table);
* :mod:`repro.verify.backends` —
  :func:`~repro.verify.backends.check_backend_parity`, a fifth referee
  that replays each sequence through every columnar batch backend
  (:mod:`repro.kernel.columnar`) and demands bit-identical decisions,
  metrics, and kernel state against the per-event oracle path;
* :mod:`repro.verify.churn` —
  :func:`~repro.verify.churn.check_algorithm_under_churn`, the
  piecewise-N referee for full churn scenarios (faults, kills,
  flash-crowd storms, and online grow/shrink): each constant-machine-size
  epoch is audited independently and the degraded salvage bound is
  enforced with that epoch's minimum surviving capacity;
* :mod:`repro.verify.slo` —
  :func:`~repro.verify.slo.check_slo_admission`, the admission-control
  referee: an independent NumPy/deque shadow of the SLO gate that demands
  no admitted arrival break the load target, FIFO drains, bounded-queue
  rejects, counter agreement, and run-to-run determinism (see
  ``docs/SLO.md``);
* :mod:`repro.verify.shrink` — greedy delta debugging that reduces any
  violating sequence to a minimal counterexample;
* :mod:`repro.verify.corpus` — the replayable counterexample store under
  ``tests/corpus/``;
* :mod:`repro.verify.report` — :class:`~repro.verify.report.VerifyReport`,
  summarizing sequences tried, features covered, bound margins observed,
  and the tightest instance per theorem.

Entry points: ``repro verify`` on the command line, or::

    from repro.verify import DifferentialHarness
    report = DifferentialHarness(64).fuzz(max_sequences=200)
    report.raise_if_failed()
"""

from repro.verify.backends import check_backend_parity, check_churn_backend_parity
from repro.verify.churn import check_algorithm_under_churn
from repro.verify.corpus import (
    CorpusEntry,
    load_corpus,
    replay_corpus,
    write_counterexample,
)
from repro.verify.fuzzer import (
    ChurnFuzzer,
    FeatureVector,
    SequenceFuzzer,
    scenario_features,
    sequence_features,
)
from repro.verify.harness import CheckOutcome, DifferentialHarness, check_algorithm
from repro.verify.oracle import OracleReport, oracle_audit
from repro.verify.report import BoundMargin, VerifyReport
from repro.verify.shrink import shrink
from repro.verify.slo import check_slo_admission

__all__ = [
    "BoundMargin",
    "CheckOutcome",
    "ChurnFuzzer",
    "CorpusEntry",
    "DifferentialHarness",
    "FeatureVector",
    "OracleReport",
    "SequenceFuzzer",
    "VerifyReport",
    "check_algorithm",
    "check_algorithm_under_churn",
    "check_backend_parity",
    "check_churn_backend_parity",
    "check_slo_admission",
    "load_corpus",
    "oracle_audit",
    "replay_corpus",
    "scenario_features",
    "sequence_features",
    "shrink",
    "write_counterexample",
]

"""The sharding referee: a sharded cluster must be invisible.

The tentpole claim of the sharded service is *bit-identity*: routing one
event stream through a coordinator and ``K`` subtree workers must
produce exactly the decisions, running ``L_A``/``L*``/ratio, kernel
state, and task placements of one single-process session.  This referee
enforces the claim the same way the rest of :mod:`repro.verify` works —
drive both configurations with the same input and diff everything:

* **per-event**: every :class:`~repro.kernel.Decision` (as its wire
  dict) must match the monolithic oracle's, event by event;
* **final state**: ``status()`` (the aggregate view), the kernel
  ``snapshot()``, and the *merged placement map* — every shard's local
  placements lifted back to host-tree nodes, plus the coordinator-owned
  cross-shard tasks — must equal the oracle's;
* **determinism across shard counts**: the oracle never changes, so
  checking K ∈ {2, 4, ...} against it also checks the Ks against each
  other.

Both the committed regression corpus (:func:`replay_corpus_sharded`) and
fresh fuzzed sequences (:func:`fuzz_sharding`) feed it; ``repro verify
--shards K`` wires both into CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.registry import ALGORITHM_SPECS, make_algorithm
from repro.errors import SimulationError
from repro.machines.tree import TreeMachine
from repro.service.session import AllocationSession
from repro.service.shard.coordinator import COORDINATOR_OWNED, ShardedCoordinator
from repro.service.stream import sequence_records
from repro.verify.corpus import load_corpus
from repro.workloads.generators import churn_sequence

__all__ = [
    "ShardingOutcome",
    "check_sharded_parity",
    "fuzz_sharding",
    "replay_corpus_sharded",
    "shardable_algorithms",
]


@dataclass
class ShardingOutcome:
    """Verdict of one parity check (one stream, one shard count)."""

    algorithm: str
    num_pes: int
    num_shards: int
    events: int
    divergences: list[str] = field(default_factory=list)
    #: Events wider than one shard that exercised the coordinator-owned
    #: path — a check that never routes one proves less.
    cross_shard_events: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences


def shardable_algorithms() -> list[str]:
    """Registry names the coordinator accepts (never-reallocating)."""
    return [
        name
        for name, spec in ALGORITHM_SPECS.items()
        if not spec.reallocates
    ]


def check_sharded_parity(
    records: Sequence[Mapping[str, Any]],
    *,
    algorithm: str,
    num_pes: int,
    num_shards: int,
    d: float = 2.0,
    seed: int = 0,
    batch: int = 0,
    max_divergences: int = 10,
) -> ShardingOutcome:
    """Diff one event stream: monolithic oracle vs a local shard cluster.

    ``batch > 1`` drives the cluster through :meth:`apply_batch` (the
    columnar throughput path) while the oracle stays per-event — so the
    check also pins the batch path to the per-event semantics.
    """
    oracle_machine = TreeMachine(num_pes)
    oracle = AllocationSession(
        oracle_machine,
        make_algorithm(algorithm, oracle_machine, d=d, seed=seed),
    )
    cluster_machine = TreeMachine(num_pes)
    cluster = ShardedCoordinator.create_local(
        cluster_machine,
        make_algorithm(algorithm, cluster_machine, d=d, seed=seed),
        num_shards=num_shards,
    )
    outcome = ShardingOutcome(
        algorithm=algorithm,
        num_pes=num_pes,
        num_shards=num_shards,
        events=len(records),
    )
    width = num_pes // num_shards

    def diverge(message: str) -> None:
        if len(outcome.divergences) < max_divergences:
            outcome.divergences.append(message)

    try:
        if batch > 1:
            for start in range(0, len(records), batch):
                chunk = [dict(r) for r in records[start : start + batch]]
                expected = oracle.push_batch(
                    [dict(r) for r in chunk]
                ).decisions
                got = cluster.apply_batch(chunk).decisions
                for offset, (e, g) in enumerate(zip(expected, got)):
                    if e.to_dict() != g.to_dict():
                        diverge(
                            f"event {start + offset}: oracle {e.to_dict()} "
                            f"!= sharded {g.to_dict()}"
                        )
        else:
            for i, record in enumerate(records):
                expected = oracle.push(dict(record))
                got = cluster.apply(dict(record))
                if expected.to_dict() != got.to_dict():
                    diverge(
                        f"event {i}: oracle {expected.to_dict()} != "
                        f"sharded {got.to_dict()}"
                    )
        outcome.cross_shard_events = sum(
            1
            for r in records
            if r.get("kind") == "arrival" and int(r["size"]) > width
        )
        oracle_status = oracle.status()
        aggregate = cluster.status()["aggregate"]
        for key, value in oracle_status.items():
            if aggregate.get(key) != value:
                diverge(
                    f"status[{key!r}]: oracle {value!r} != sharded "
                    f"{aggregate.get(key)!r}"
                )
        if oracle.snapshot() != cluster.snapshot():
            diverge("kernel snapshots differ")
        merged: dict[int, int] = {}
        for handle in cluster.shards:
            for tid, local in handle.placements().items():
                merged[tid] = int(cluster.plan.to_global(local, handle.index))
        cross = {
            tid
            for tid, owner in cluster._owner.items()
            if owner == COORDINATOR_OWNED
        }
        oracle_placements = {
            int(tid): int(node) for tid, node in oracle.placements.items()
        }
        expected_merged = {
            tid: node
            for tid, node in oracle_placements.items()
            if tid not in cross
        }
        if merged != expected_merged:
            diverge(
                f"merged shard placements differ: {len(merged)} sharded vs "
                f"{len(expected_merged)} expected"
            )
        if not (cross <= set(oracle_placements)):
            diverge("coordinator owns task(s) the oracle never placed")
    finally:
        oracle.close()
        cluster.close()
    return outcome


def replay_corpus_sharded(
    directory: Union[str, Any],
    *,
    num_shards: int,
    batch: int = 0,
    strict: bool = False,
) -> list[tuple[Any, Optional[ShardingOutcome]]]:
    """Parity-check every shardable corpus entry; reallocating entries
    (which the coordinator refuses by contract) and fault/churn entries
    (not routable in sharded mode) map to ``None``."""
    shardable = set(shardable_algorithms())
    results: list[tuple[Any, Optional[ShardingOutcome]]] = []
    for entry in load_corpus(directory, strict=strict):
        if (
            entry.algorithm not in shardable
            or entry.fault_events
            or entry.resize_events
            or num_shards > entry.num_pes
        ):
            results.append((entry, None))
            continue
        records = list(sequence_records(entry.sequence()))
        outcome = check_sharded_parity(
            records,
            algorithm=entry.algorithm,
            num_pes=entry.num_pes,
            num_shards=num_shards,
            d=entry.d,
            seed=entry.seed,
            batch=batch,
        )
        results.append((entry, outcome))
    return results


def _wide_stream(
    num_pes: int, tasks: int, rng: np.random.Generator
) -> list[dict[str, Any]]:
    """A record stream biased toward shard-straddling sizes.

    ``churn_sequence`` keeps tasks small relative to N, so it never
    exercises the coordinator-owned cross-shard path; this generator
    draws sizes up to N itself (half the draws from the top two levels)
    so every fuzz run routes through both halves of the coordinator.
    """
    max_log = num_pes.bit_length() - 1
    records: list[dict[str, Any]] = []
    active: list[int] = []
    t, next_id = 0.0, 0
    for _ in range(tasks):
        t += float(rng.random()) + 1e-3
        if active and rng.random() < 0.45:
            victim = active.pop(int(rng.integers(len(active))))
            records.append({"kind": "departure", "time": t, "id": victim})
        else:
            if rng.random() < 0.5:
                log = int(rng.integers(max(0, max_log - 1), max_log + 1))
            else:
                log = int(rng.integers(0, max_log + 1))
            records.append(
                {
                    "kind": "arrival",
                    "time": t,
                    "id": next_id,
                    "size": 1 << log,
                    "work": float(rng.random()) * 3 + 0.5,
                }
            )
            active.append(next_id)
            next_id += 1
    return records


def fuzz_sharding(
    *,
    num_pes: int = 256,
    num_shards: int = 4,
    sequences: int = 50,
    tasks: int = 120,
    seed: int = 0,
    algorithms: Optional[Sequence[str]] = None,
    batch_every: int = 3,
) -> list[ShardingOutcome]:
    """Random-churn parity sweep: ``sequences`` fresh streams per
    algorithm, every third one through the batch path.

    Raises :class:`~repro.errors.SimulationError` listing the first
    divergences if any stream breaks parity, so CI fails loudly.
    """
    names = list(algorithms) if algorithms else shardable_algorithms()
    outcomes: list[ShardingOutcome] = []
    failures: list[str] = []
    for name in names:
        for index in range(sequences):
            rng = np.random.default_rng(seed + index)
            if index % 2:
                records = _wide_stream(num_pes, tasks, rng)
            else:
                records = list(
                    sequence_records(churn_sequence(num_pes, tasks, rng))
                )
            outcome = check_sharded_parity(
                records,
                algorithm=name,
                num_pes=num_pes,
                num_shards=num_shards,
                seed=seed + index,
                batch=64 if batch_every and index % batch_every == 0 else 0,
            )
            outcomes.append(outcome)
            if not outcome.ok:
                failures.append(
                    f"{name} seq {index}: " + "; ".join(outcome.divergences)
                )
    if failures:
        raise SimulationError(
            f"sharding parity broken in {len(failures)} stream(s): "
            + " | ".join(failures[:5])
        )
    return outcomes

"""Greedy delta debugging of violating task sequences.

A fuzzed counterexample with 60 tasks is evidence; the same violation on 3
tasks is an explanation.  :func:`shrink` applies the classic ddmin loop at
the granularity of whole tasks (removing a task removes its arrival *and*
departure, so every candidate is a valid sequence by construction), then
finishes with a single-task elimination sweep.

The predicate is "does the violation still reproduce?" — the harness binds
it to a deterministic re-run of :func:`repro.verify.harness.check_algorithm`
with the same algorithm, machine size, ``d`` and seed, so shrinking never
chases a moving target.
"""

from __future__ import annotations

from typing import Callable

from repro.tasks.sequence import TaskSequence
from repro.tasks.task import Task

__all__ = ["shrink"]


def _rebuild(tasks: list[Task]) -> TaskSequence:
    return TaskSequence.from_tasks(tasks)


def shrink(
    sequence: TaskSequence,
    predicate: Callable[[TaskSequence], bool],
    *,
    max_checks: int = 500,
) -> TaskSequence:
    """Return a locally minimal sub-sequence on which ``predicate`` holds.

    ``predicate(sequence)`` must be true on entry (the full counterexample
    reproduces); the result is a sequence of a subset of the original tasks
    on which the predicate still holds and from which no single task can be
    removed without losing it (unless ``max_checks`` predicate evaluations
    were exhausted first — the budget bounds shrink time on pathological
    inputs, at the cost of minimality only).
    """
    tasks = sorted(
        sequence.tasks.values(), key=lambda t: (t.arrival, int(t.task_id))
    )
    checks = 0

    def holds(candidate: list[Task]) -> bool:
        nonlocal checks
        checks += 1
        return predicate(_rebuild(candidate))

    # ddmin: try dropping complements of ever-finer chunks.
    granularity = 2
    while len(tasks) >= 2 and checks < max_checks:
        chunk = max(1, -(-len(tasks) // granularity))
        reduced = None
        for lo in range(0, len(tasks), chunk):
            candidate = tasks[:lo] + tasks[lo + chunk :]
            if candidate and holds(candidate):
                reduced = candidate
                break
            if checks >= max_checks:
                break
        if reduced is not None:
            tasks = reduced
            granularity = max(granularity - 1, 2)
        elif chunk == 1:
            break
        else:
            granularity = min(granularity * 2, len(tasks))

    # Final sweep: no single remaining task should be removable.
    i = 0
    while i < len(tasks) and len(tasks) > 1 and checks < max_checks:
        candidate = tasks[:i] + tasks[i + 1 :]
        if holds(candidate):
            tasks = candidate  # keep i: the next task shifted into place
        else:
            i += 1
    return _rebuild(tasks)

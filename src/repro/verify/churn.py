"""Piecewise-N referees for churn scenarios (faults + kills + resizes).

A churn run has no single machine size: resizes split the timeline into
epochs of constant ``N_e`` (:meth:`repro.scenarios.elastic.Scenario.epochs`).
The referee strategy is *piecewise*: because the kernel logs a placement
for every active task at each resize instant, no residence segment ever
straddles an epoch boundary, so each epoch is a self-contained run on a
fixed ``N_e``-PE machine that the existing referees can audit verbatim.

:func:`check_algorithm_under_churn` drives one registry algorithm through
the production kernel over the full event alphabet, then per epoch:

1. clamps every task's lifetime to the epoch window and selects its
   in-window residence segments;
2. re-referees the epoch with :func:`repro.sim.audit.audit_run` (NumPy
   intervals) *and* :func:`repro.verify.oracle.oracle_audit` (from-scratch
   brute force), fault slice included;
3. demands the two interval referees agree exactly on the epoch max load;
4. enforces the **piecewise salvage bound**: for finite ``d``, the epoch's
   interval max load stays within
   ``(d + 1) * max(ceil(s_peak_e / N_surviving_e), 1)``
   where ``s_peak_e`` is the epoch's peak active volume and
   ``N_surviving_e`` the fewest PEs the epoch's fault slice ever left
   alive.  The bound applies from the first degradation on — any epoch
   with failures, and every epoch after the first resize (a resize forces
   a full repack and permanently switches the fault-tolerant wrapper to
   its copy-based first-fit, whose degraded guarantee this is).

Globally the engine's metered max load must dominate every epoch's
interval max (the engine also sees same-instant transients the interval
referees cannot), the machine-size trajectory must match the scenario,
and — when several batch backends are available — the whole scenario must
replay bit-identically under each (:func:`check_churn_backend_parity`
exercises the columnar decline-and-fallback on fault/resize batches).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.core.registry import ALGORITHM_SPECS, make_algorithm
from repro.machines.tree import TreeMachine
from repro.scenarios.elastic import Scenario
from repro.scenarios.runner import run_scenario
from repro.sim.audit import audit_run, effective_end_times
from repro.tasks.sequence import TaskSequence
from repro.tasks.task import Task
from repro.types import NodeId, TaskId, ceil_div
from repro.verify.harness import CheckOutcome

__all__ = ["check_algorithm_under_churn"]

#: One placement segment, as produced by ``placement_intervals``.
_Segment = Tuple[float, float, NodeId]


def _clamped_epoch_run(
    scenario: Scenario,
    intervals: Dict[TaskId, List[_Segment]],
    ends: Dict[TaskId, float],
) -> List[Tuple[int, TaskSequence, Dict[TaskId, List[_Segment]]]]:
    """Split one traced run into per-epoch (sequence, intervals) slices.

    The epoch's *residence window* is ``[start, end)`` in resize
    timestamps: a task arriving exactly at a resize instant is placed on
    the old machine but immediately remapped (its old-machine segment is
    empty), so its residence belongs to the new epoch.  ``ends`` are the
    kill-effective end times; a task enters an epoch's slice iff its
    effective lifetime intersects the window.
    """
    out: List[Tuple[int, TaskSequence, Dict[TaskId, List[_Segment]]]] = []
    for epoch in scenario.epochs():
        w_lo, w_hi = epoch.start, epoch.end
        tasks: List[Task] = []
        segs_e: Dict[TaskId, List[_Segment]] = {}
        for tid, task in scenario.sequence.tasks.items():
            lo = max(float(task.arrival), w_lo)
            hi = min(ends[tid], w_hi)
            if lo >= hi:
                continue
            tasks.append(
                Task(tid, task.size, lo, min(float(task.departure), w_hi))
            )
            segs_e[tid] = [
                seg for seg in intervals.get(tid, []) if w_lo <= seg[0] < w_hi
            ]
        out.append((epoch.index, TaskSequence.from_tasks(tasks), segs_e))
    return out


def check_algorithm_under_churn(
    name: str,
    d: float,
    seed: int,
    scenario: Scenario,
) -> CheckOutcome:
    """Run one algorithm over a churn scenario and referee it piecewise.

    Module-level and picklable end to end, like the healthy and fault-mode
    checks, so campaigns fan out over worker processes.
    """
    from repro.verify.backends import check_churn_backend_parity
    from repro.verify.oracle import faults_table, oracle_audit, tasks_table

    num_pes = scenario.num_pes
    epochs = scenario.epochs()
    num_events = len(scenario.merged_events())
    violations: list[str] = []

    try:
        d_eff = make_algorithm(
            name, TreeMachine(num_pes), d=d, seed=seed
        ).reallocation_parameter
        result = run_scenario(scenario, name, d=d, seed=seed)
    except Exception as exc:  # a crash IS a finding — record, don't propagate
        violations.append(f"engine: {type(exc).__name__}: {exc}")
        return CheckOutcome(
            algorithm=name,
            num_pes=num_pes,
            d=d,
            seed=seed,
            num_events=num_events,
            ok=False,
            violations=tuple(violations),
            faulted=True,
            churned=True,
            num_epochs=len(epochs),
            num_resizes=len(scenario.resizes),
        )

    intervals = result.intervals
    plan = scenario.plan
    ends = effective_end_times(scenario.sequence.tasks, plan.kills())
    slices = scenario.plan_slices()

    # -- Machine-size trajectory ---------------------------------------------
    if result.final_num_pes != scenario.final_num_pes():
        violations.append(
            f"engine final machine size {result.final_num_pes} != scenario "
            f"final size {scenario.final_num_pes()}"
        )
    if result.num_resizes != len(scenario.resizes):
        violations.append(
            f"engine absorbed {result.num_resizes} resizes, scenario "
            f"schedules {len(scenario.resizes)}"
        )

    # -- Per-epoch referees ---------------------------------------------------
    max_epoch_load = 0
    bound: float | None = None
    bound_load = 0  # the governed epoch's load paired with ``bound``
    for (index, seq_e, segs_e), epoch, piece in zip(
        _clamped_epoch_run(scenario, intervals, ends), epochs, slices
    ):
        n_e = epoch.num_pes
        tag = f"epoch {index} (N={n_e})"
        # Residence segments must never straddle a resize boundary: the
        # kernel logs a placement for every active task at the resize
        # instant, which is what makes the piecewise audit sound at all.
        if math.isfinite(epoch.end):
            for tid, segs in segs_e.items():
                for start, end, _node in segs:
                    if end > epoch.end:
                        violations.append(
                            f"{tag}: task {tid} segment [{start},{end}) "
                            f"straddles the resize at t={epoch.end:g}"
                        )
        machine_e = TreeMachine(n_e)
        audit = audit_run(
            machine_e,
            seq_e,
            segs_e,
            fault_plan=piece if not piece.is_empty else None,
        )
        if not audit.ok:
            violations.extend(f"{tag}: audit: {v}" for v in audit.violations)
        oracle = oracle_audit(
            n_e,
            tasks_table(seq_e),
            segs_e,
            faults=faults_table(piece) if not piece.is_empty else None,
        )
        if not oracle.ok:
            violations.extend(f"{tag}: oracle: {v}" for v in oracle.violations)
        if audit.max_load != oracle.max_load:
            violations.append(
                f"{tag}: audit max_load {audit.max_load} != oracle "
                f"max_load {oracle.max_load} — interval referees disagree"
            )
        max_epoch_load = max(max_epoch_load, audit.max_load)

        # Piecewise salvage bound (min surviving N *per epoch*).  Epoch 0
        # without failures runs the inner algorithm healthy — its own
        # theorem bound applies there and is exercised by the healthy
        # fuzzing mode, not re-checked here.  Randomized algorithms carry
        # w.h.p. guarantees only, so the deterministic bound is skipped for
        # them (same policy as ``load_bound is None`` in the registry).
        if (
            math.isfinite(d_eff)
            and not ALGORITHM_SPECS[name].randomized
            and (piece.num_failures > 0 or index > 0)
        ):
            min_surviving = piece.min_surviving_pes(n_e)
            s_peak = oracle.peak_active_size
            bound_e = (d_eff + 1) * max(ceil_div(s_peak, min_surviving), 1)
            if bound is None or bound_e - audit.max_load < bound - bound_load:
                bound, bound_load = bound_e, audit.max_load
            if audit.max_load > bound_e + 1e-9:
                violations.append(
                    f"{tag}: piecewise salvage bound violated: max_load "
                    f"{audit.max_load} > {bound_e:g} "
                    f"((d+1)*ceil(s_peak/N_surv) with d={d_eff:g}, "
                    f"s_peak={s_peak}, N_surv={min_surviving})"
                )

    # -- Engine vs piecewise referees ----------------------------------------
    max_load = result.max_load
    if max_load < max_epoch_load:
        violations.append(
            f"engine max_load {max_load} < piecewise referee max "
            f"{max_epoch_load} — engine under-reports"
        )
    transient_sources = (
        result.metrics.realloc.num_reallocations
        + result.metrics.faults.num_salvage_repacks
        + result.metrics.faults.num_resizes
    )
    if transient_sources == 0 and max_load != max_epoch_load:
        violations.append(
            f"engine max_load {max_load} != piecewise referee max "
            f"{max_epoch_load} with no reallocation, salvage, or resize "
            "to explain a transient"
        )

    # -- Backend parity over the full event alphabet -------------------------
    violations.extend(
        f"backend: {v}"
        for v in check_churn_backend_parity(name, d, seed, scenario)
    )

    return CheckOutcome(
        algorithm=name,
        num_pes=num_pes,
        d=d,
        seed=seed,
        num_events=num_events,
        ok=not violations,
        violations=tuple(violations),
        # Report a genuinely governed (load, bound) pair — the tightest
        # epoch the piecewise bound actually checked.  Neither the engine
        # max (same-instant repack transients) nor the all-epoch referee
        # max (healthy epoch 0 is bound-exempt) pairs with the bound:
        # both would show spurious negative slack in the margins.
        max_load=bound_load if bound is not None else max_epoch_load,
        optimal_load=scenario.sequence.optimal_load(num_pes),
        bound=bound,
        faulted=True,
        degradation=result.metrics.faults.to_dict(),
        churned=True,
        num_epochs=len(epochs),
        num_resizes=len(scenario.resizes),
    )

"""The differential harness: every algorithm vs. every referee, per sequence.

For each (algorithm, sequence) pair the harness runs the production engine
and then demands that four independent accounts of the run agree:

1. the engine's own metered ``max_load`` / ``optimal_load``;
2. :func:`repro.sim.audit.audit_run`'s NumPy interval referee;
3. :func:`repro.verify.oracle.oracle_audit`'s from-scratch brute force;
4. the theorem bounds registered on :class:`repro.core.registry.AlgorithmSpec`
   (``load_bound`` — Theorems 3.1/4.1/4.2 and Lemma 2), plus the universal
   ``max_load >= L*`` lower bound every valid placement obeys.

Randomized algorithms run with a fixed per-check seed so failures replay;
their expectation-only guarantees are not checked per run (the registry
gives them no ``load_bound``), but the referee agreement still is.

:func:`check_algorithm` is module-level and takes only picklable arguments,
so :class:`DifferentialHarness` can fan checks out over worker processes
with :func:`repro.sim.parallel.parallel_map`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence as TypingSequence

from repro.core.registry import ALGORITHM_SPECS, algorithm_names, make_algorithm
from repro.machines.tree import TreeMachine
from repro.sim.audit import audit_run
from repro.sim.parallel import parallel_map
from repro.sim.runner import run_traced
from repro.tasks.sequence import TaskSequence
from repro.verify.corpus import CorpusEntry, write_counterexample
from repro.verify.fuzzer import SequenceFuzzer, sequence_features
from repro.verify.report import VerifyReport
from repro.verify.shrink import shrink

__all__ = ["CheckOutcome", "DifferentialHarness", "check_algorithm"]

#: Reallocation parameters cycled across fuzzed sequences: both Theorem 4.2
#: branches (d < g and d >= g via inf), the degenerate repack-always d = 0,
#: and a fractional value.
DEFAULT_D_VALUES: tuple[float, ...] = (0.0, 1.0, 2.0, 0.5, math.inf)


@dataclass(frozen=True)
class CheckOutcome:
    """Verdict of one algorithm on one sequence under all referees."""

    algorithm: str
    num_pes: int
    d: float
    seed: int
    num_events: int
    ok: bool
    violations: tuple[str, ...] = ()
    max_load: int = 0
    optimal_load: int = 0
    #: Theorem bound evaluated for this run, or ``None`` when the algorithm
    #: carries no per-run guarantee (randomized / baseline entries).
    bound: Optional[float] = None

    @property
    def slack(self) -> Optional[float]:
        """``bound - max_load`` — how much headroom the theorem left."""
        if self.bound is None or math.isinf(self.bound):
            return None
        return self.bound - self.max_load


def check_algorithm(
    name: str,
    num_pes: int,
    d: float,
    seed: int,
    sequence: TaskSequence,
) -> CheckOutcome:
    """Run one registry algorithm on ``sequence`` and referee the result.

    Module-level and picklable end to end: safe to dispatch through
    :func:`~repro.sim.parallel.parallel_map` workers.
    """
    from repro.verify.oracle import oracle_audit, tasks_table

    spec = ALGORITHM_SPECS[name]
    violations: list[str] = []
    max_load = 0
    lstar = sequence.optimal_load(num_pes)
    bound: Optional[float] = None
    if spec.load_bound is not None:
        bound = spec.load_bound(num_pes, d, lstar, sequence.total_arrival_size)

    machine = TreeMachine(num_pes)
    try:
        algorithm = make_algorithm(name, machine, d=d, seed=seed)
        result, intervals = run_traced(machine, algorithm, sequence)
    except Exception as exc:  # a crash IS a finding — record, don't propagate
        violations.append(f"engine: {type(exc).__name__}: {exc}")
        return CheckOutcome(
            algorithm=name,
            num_pes=num_pes,
            d=d,
            seed=seed,
            num_events=len(sequence),
            ok=False,
            violations=tuple(violations),
            optimal_load=lstar,
            bound=bound,
        )

    max_load = result.max_load

    audit = audit_run(machine, sequence, intervals)
    if not audit.ok:
        violations.extend(f"audit: {v}" for v in audit.violations)
    oracle = oracle_audit(num_pes, tasks_table(sequence), intervals)
    if not oracle.ok:
        violations.extend(f"oracle: {v}" for v in oracle.violations)

    # Referee agreement on the figure of merit and the benchmark.  The two
    # interval referees see the same data and must agree exactly.  The
    # engine's per-event metric is compared one-sidedly: within a batch of
    # same-timestamp events, an arrival can momentarily raise the load
    # before a repack at that same instant lowers it, and only the engine
    # observes that transient (the paper's L_A counts it; Theorem 4.2's
    # pre-repack argument bounds it).  So engine >= referees always, with
    # equality mandatory whenever no reallocation happened.
    if audit.max_load != oracle.max_load:
        violations.append(
            f"audit max_load {audit.max_load} != oracle max_load "
            f"{oracle.max_load} — interval referees disagree"
        )
    num_reallocs = result.metrics.realloc.num_reallocations
    if max_load < audit.max_load:
        violations.append(
            f"engine max_load {max_load} < audit max_load {audit.max_load} "
            "— engine under-reports"
        )
    if num_reallocs == 0 and max_load != audit.max_load:
        violations.append(
            f"engine max_load {max_load} != audit max_load {audit.max_load} "
            "with no reallocation to explain a transient"
        )
    if result.optimal_load != lstar:
        violations.append(
            f"engine optimal_load {result.optimal_load} != sequence L* {lstar}"
        )
    if oracle.optimal_load != lstar:
        violations.append(
            f"oracle L* {oracle.optimal_load} != sequence L* {lstar}"
        )

    # Universal lower bound: no valid placement beats L* (Section 2).
    if max_load < lstar:
        violations.append(f"max_load {max_load} < L* {lstar} — impossible placement")

    # Theorem upper bound (and equality for Theorem 3.1's exact guarantee).
    if bound is not None:
        if max_load > bound + 1e-9:
            violations.append(
                f"bound violated: max_load {max_load} > {bound:g} "
                f"({spec.guarantee}, d={d:g}, L*={lstar})"
            )
        if spec.bound_exact and max_load != int(bound):
            violations.append(
                f"exact bound missed: max_load {max_load} != {bound:g} "
                f"({spec.guarantee})"
            )

    return CheckOutcome(
        algorithm=name,
        num_pes=num_pes,
        d=d,
        seed=seed,
        num_events=len(sequence),
        ok=not violations,
        violations=tuple(violations),
        max_load=max_load,
        optimal_load=lstar,
        bound=bound,
    )


class DifferentialHarness:
    """Coverage-guided differential fuzzing over the whole registry.

    Parameters
    ----------
    num_pes:
        Machine size (power of two).
    algorithms:
        Registry names to exercise; defaults to every registered algorithm.
    d_values:
        Reallocation parameters cycled one-per-sequence.
    seed:
        Master seed for the fuzzer and the per-check algorithm seeds.
    jobs:
        Fan-out for per-sequence algorithm checks (``None``/``1`` = serial,
        ``-1`` = all cores) — same convention as the rest of the library.
    corpus_dir:
        Where shrunk counterexamples are written (skipped when ``None``).
    """

    def __init__(
        self,
        num_pes: int,
        *,
        algorithms: Optional[TypingSequence[str]] = None,
        d_values: TypingSequence[float] = DEFAULT_D_VALUES,
        seed: int = 0,
        jobs: Optional[int] = None,
        corpus_dir=None,
    ):
        names = list(algorithms) if algorithms is not None else algorithm_names()
        unknown = [n for n in names if n not in ALGORITHM_SPECS]
        if unknown:
            # Reuse the registry's clean error so the CLI path stays uniform.
            make_algorithm(unknown[0], TreeMachine(num_pes))
        self.num_pes = num_pes
        self.algorithms = names
        self.d_values = tuple(d_values)
        self.seed = seed
        self.jobs = jobs
        self.corpus_dir = corpus_dir

    def check_sequence(
        self, sequence: TaskSequence, *, d: float = 2.0, seed: int = 0
    ) -> list[CheckOutcome]:
        """Run every configured algorithm on one sequence."""
        return parallel_map(
            check_algorithm,
            [(name, self.num_pes, d, seed, sequence) for name in self.algorithms],
            jobs=self.jobs,
        )

    def fuzz(
        self,
        *,
        max_sequences: Optional[int] = None,
        budget: Optional[float] = None,
        shrink_violations: bool = True,
    ) -> VerifyReport:
        """Run a fuzzing campaign and return the :class:`VerifyReport`.

        ``max_sequences`` caps the number of fuzzed sequences; ``budget``
        caps wall-clock seconds.  At least one of the two must be given.
        Every violation is (optionally) shrunk to a minimal counterexample
        and, when ``corpus_dir`` is set, written there for replay.
        """
        if max_sequences is None and budget is None:
            raise ValueError("give max_sequences and/or budget")
        fuzzer = SequenceFuzzer(self.num_pes, seed=self.seed)
        report = VerifyReport(
            num_pes=self.num_pes, seed=self.seed, algorithms=tuple(self.algorithms)
        )
        start = time.monotonic()
        index = 0
        while True:
            if max_sequences is not None and index >= max_sequences:
                break
            if budget is not None and time.monotonic() - start >= budget:
                break
            sequence = fuzzer.generate()
            d = self.d_values[index % len(self.d_values)]
            seed = self.seed + index
            outcomes = self.check_sequence(sequence, d=d, seed=seed)
            report.sequences_tried += 1
            for outcome in outcomes:
                report.record(outcome)
                if not outcome.ok:
                    report.counterexamples.append(
                        self._shrink_and_store(sequence, outcome, shrink_violations)
                    )
            index += 1
        report.elapsed = time.monotonic() - start
        report.features = sorted(
            fuzzer.coverage, key=lambda f: (f.size_classes, f.depth, f.volume, f.burst)
        )
        return report

    def _shrink_and_store(
        self, sequence: TaskSequence, outcome: CheckOutcome, do_shrink: bool
    ) -> CorpusEntry:
        """Reduce a violating sequence and persist it for replay."""

        def still_fails(candidate: TaskSequence) -> bool:
            return not check_algorithm(
                outcome.algorithm, self.num_pes, outcome.d, outcome.seed, candidate
            ).ok

        reduced = shrink(sequence, still_fails) if do_shrink else sequence
        entry = CorpusEntry.from_sequence(
            reduced,
            algorithm=outcome.algorithm,
            num_pes=self.num_pes,
            d=outcome.d,
            seed=outcome.seed,
            check=outcome.violations[0] if outcome.violations else "unknown",
        )
        if self.corpus_dir is not None:
            write_counterexample(entry, self.corpus_dir)
        return entry

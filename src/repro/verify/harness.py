"""The differential harness: every algorithm vs. every referee, per sequence.

For each (algorithm, sequence) pair the harness runs the production engine
and then demands that four independent accounts of the run agree:

1. the engine's own metered ``max_load`` / ``optimal_load``;
2. :func:`repro.sim.audit.audit_run`'s NumPy interval referee;
3. :func:`repro.verify.oracle.oracle_audit`'s from-scratch brute force;
4. the theorem bounds registered on :class:`repro.core.registry.AlgorithmSpec`
   (``load_bound`` — Theorems 3.1/4.1/4.2 and Lemma 2), plus the universal
   ``max_load >= L*`` lower bound every valid placement obeys.

Randomized algorithms run with a fixed per-check seed so failures replay;
their expectation-only guarantees are not checked per run (the registry
gives them no ``load_bound``), but the referee agreement still is.

:func:`check_algorithm` is module-level and takes only picklable arguments,
so :class:`DifferentialHarness` can fan checks out over worker processes
with :func:`repro.sim.parallel.parallel_map`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence as TypingSequence

from repro.core.registry import ALGORITHM_SPECS, algorithm_names, make_algorithm
from repro.faults.plan import FaultPlan, generate_fault_plan
from repro.machines.tree import TreeMachine
from repro.sim.audit import audit_run
from repro.sim.parallel import parallel_map
from repro.sim.runner import run_traced
from repro.tasks.sequence import TaskSequence
from repro.types import ceil_div
from repro.verify.corpus import CorpusEntry, write_counterexample
from repro.verify.fuzzer import SequenceFuzzer, sequence_features
from repro.verify.report import VerifyReport
from repro.verify.shrink import shrink

__all__ = [
    "CheckOutcome",
    "DifferentialHarness",
    "check_algorithm",
    "check_algorithm_under_faults",
]

#: Reallocation parameters cycled across fuzzed sequences: both Theorem 4.2
#: branches (d < g and d >= g via inf), the degenerate repack-always d = 0,
#: and a fractional value.
DEFAULT_D_VALUES: tuple[float, ...] = (0.0, 1.0, 2.0, 0.5, math.inf)

#: Domain-separation key mixed into the per-index fault-plan RNG seed so
#: fault plans are independent of both the fuzzer stream and check seeds.
_FAULT_PLAN_KEY = 0xFA017


@dataclass(frozen=True)
class CheckOutcome:
    """Verdict of one algorithm on one sequence under all referees."""

    algorithm: str
    num_pes: int
    d: float
    seed: int
    num_events: int
    ok: bool
    violations: tuple[str, ...] = ()
    max_load: int = 0
    optimal_load: int = 0
    #: Theorem bound evaluated for this run, or ``None`` when the algorithm
    #: carries no per-run guarantee (randomized / baseline entries).
    bound: Optional[float] = None
    #: True when the check ran under a fault plan (the bound is then the
    #: degraded salvage bound, not the healthy theorem bound).
    faulted: bool = False
    #: Degradation summary (``FaultStats.to_dict``) for fault-mode checks.
    degradation: Optional[dict] = None
    #: True when the check ran a full churn scenario (faults + resizes)
    #: through the piecewise-N referees of :mod:`repro.verify.churn`.
    churned: bool = False
    #: Constant-machine-size epochs the piecewise referee audited.
    num_epochs: int = 0
    #: Online grow/shrink events in the scenario (churn checks only).
    num_resizes: int = 0
    #: True when the check refereed an SLO admission session
    #: (:func:`repro.verify.slo.check_slo_admission`); ``max_load`` is then
    #: the shadow model's peak and ``bound`` is unused.
    sloed: bool = False

    @property
    def slack(self) -> Optional[float]:
        """``bound - max_load`` — how much headroom the theorem left."""
        if self.bound is None or math.isinf(self.bound):
            return None
        return self.bound - self.max_load


def check_algorithm(
    name: str,
    num_pes: int,
    d: float,
    seed: int,
    sequence: TaskSequence,
) -> CheckOutcome:
    """Run one registry algorithm on ``sequence`` and referee the result.

    Module-level and picklable end to end: safe to dispatch through
    :func:`~repro.sim.parallel.parallel_map` workers.
    """
    from repro.verify.oracle import oracle_audit, tasks_table

    spec = ALGORITHM_SPECS[name]
    violations: list[str] = []
    max_load = 0
    lstar = sequence.optimal_load(num_pes)
    bound: Optional[float] = None
    if spec.load_bound is not None:
        bound = spec.load_bound(num_pes, d, lstar, sequence.total_arrival_size)

    machine = TreeMachine(num_pes)
    try:
        algorithm = make_algorithm(name, machine, d=d, seed=seed)
        result, intervals = run_traced(machine, algorithm, sequence)
    except Exception as exc:  # a crash IS a finding — record, don't propagate
        violations.append(f"engine: {type(exc).__name__}: {exc}")
        return CheckOutcome(
            algorithm=name,
            num_pes=num_pes,
            d=d,
            seed=seed,
            num_events=len(sequence),
            ok=False,
            violations=tuple(violations),
            optimal_load=lstar,
            bound=bound,
        )

    max_load = result.max_load

    audit = audit_run(machine, sequence, intervals)
    if not audit.ok:
        violations.extend(f"audit: {v}" for v in audit.violations)
    oracle = oracle_audit(num_pes, tasks_table(sequence), intervals)
    if not oracle.ok:
        violations.extend(f"oracle: {v}" for v in oracle.violations)

    # Referee agreement on the figure of merit and the benchmark.  The two
    # interval referees see the same data and must agree exactly.  The
    # engine's per-event metric is compared one-sidedly: within a batch of
    # same-timestamp events, an arrival can momentarily raise the load
    # before a repack at that same instant lowers it, and only the engine
    # observes that transient (the paper's L_A counts it; Theorem 4.2's
    # pre-repack argument bounds it).  So engine >= referees always, with
    # equality mandatory whenever no reallocation happened.
    if audit.max_load != oracle.max_load:
        violations.append(
            f"audit max_load {audit.max_load} != oracle max_load "
            f"{oracle.max_load} — interval referees disagree"
        )
    num_reallocs = result.metrics.realloc.num_reallocations
    if max_load < audit.max_load:
        violations.append(
            f"engine max_load {max_load} < audit max_load {audit.max_load} "
            "— engine under-reports"
        )
    if num_reallocs == 0 and max_load != audit.max_load:
        violations.append(
            f"engine max_load {max_load} != audit max_load {audit.max_load} "
            "with no reallocation to explain a transient"
        )
    if result.optimal_load != lstar:
        violations.append(
            f"engine optimal_load {result.optimal_load} != sequence L* {lstar}"
        )
    if oracle.optimal_load != lstar:
        violations.append(
            f"oracle L* {oracle.optimal_load} != sequence L* {lstar}"
        )

    # Universal lower bound: no valid placement beats L* (Section 2).
    if max_load < lstar:
        violations.append(f"max_load {max_load} < L* {lstar} — impossible placement")

    # Theorem upper bound (and equality for Theorem 3.1's exact guarantee).
    if bound is not None:
        if max_load > bound + 1e-9:
            violations.append(
                f"bound violated: max_load {max_load} > {bound:g} "
                f"({spec.guarantee}, d={d:g}, L*={lstar})"
            )
        if spec.bound_exact and max_load != int(bound):
            violations.append(
                f"exact bound missed: max_load {max_load} != {bound:g} "
                f"({spec.guarantee})"
            )

    # Backend-parity axis: columnar-capable algorithms additionally replay
    # the sequence through every available batch backend and must produce
    # bit-identical decisions, metrics, and state (fifth referee).  Gated on
    # the capability so non-columnar algorithms don't pay the extra runs.
    if getattr(algorithm, "columnar_state", None) is not None:
        from repro.verify.backends import check_backend_parity

        violations.extend(
            f"backend: {v}"
            for v in check_backend_parity(name, num_pes, d, seed, sequence)
        )

    return CheckOutcome(
        algorithm=name,
        num_pes=num_pes,
        d=d,
        seed=seed,
        num_events=len(sequence),
        ok=not violations,
        violations=tuple(violations),
        max_load=max_load,
        optimal_load=lstar,
        bound=bound,
    )


def check_algorithm_under_faults(
    name: str,
    num_pes: int,
    d: float,
    seed: int,
    sequence: TaskSequence,
    plan: FaultPlan,
) -> CheckOutcome:
    """Run one algorithm on ``sequence`` under ``plan`` and referee the run.

    The healthy theorem bounds do not apply on a degraded machine; instead
    the salvage guarantee is enforced: for a finite-``d`` algorithm under a
    granularity-respecting fault plan, the peak load stays within
    ``(d + 1) * max(ceil(s_peak / N_surviving_min), 1)`` — the degraded
    Lemma 1 repack optimum stretched by the d-reallocation transient.
    Referee agreement (audit == oracle, engine >= audit, equality when
    neither a reallocation nor a salvage repack happened) is demanded
    exactly as in the healthy check; healthy ``L*`` comparisons are
    omitted because kills reduce the realised volume below the sequence's
    nominal one.

    Module-level and picklable end to end, like :func:`check_algorithm`.
    """
    from repro.faults.injector import run_traced_with_faults
    from repro.verify.oracle import faults_table, oracle_audit, tasks_table

    violations: list[str] = []
    lstar = sequence.optimal_load(num_pes)
    bound: Optional[float] = None
    degradation: Optional[dict] = None

    machine = TreeMachine(num_pes)
    try:
        algorithm = make_algorithm(name, machine, d=d, seed=seed)
        d_eff = algorithm.reallocation_parameter
        result, intervals = run_traced_with_faults(
            machine, algorithm, sequence, plan
        )
    except Exception as exc:  # a crash IS a finding — record, don't propagate
        violations.append(f"engine: {type(exc).__name__}: {exc}")
        return CheckOutcome(
            algorithm=name,
            num_pes=num_pes,
            d=d,
            seed=seed,
            num_events=len(sequence),
            ok=False,
            violations=tuple(violations),
            optimal_load=lstar,
            faulted=True,
        )

    max_load = result.max_load
    degradation = result.metrics.faults.to_dict()

    audit = audit_run(machine, sequence, intervals, fault_plan=plan)
    if not audit.ok:
        violations.extend(f"audit: {v}" for v in audit.violations)
    oracle = oracle_audit(
        num_pes, tasks_table(sequence), intervals, faults=faults_table(plan)
    )
    if not oracle.ok:
        violations.extend(f"oracle: {v}" for v in oracle.violations)

    # Referee agreement: same discipline as the healthy check, except a
    # salvage repack is a second legitimate source of an engine-only
    # transient (arrival raises the load, the same-instant salvage lowers
    # it before the interval referees can see it).
    if audit.max_load != oracle.max_load:
        violations.append(
            f"audit max_load {audit.max_load} != oracle max_load "
            f"{oracle.max_load} — interval referees disagree"
        )
    transient_sources = (
        result.metrics.realloc.num_reallocations
        + result.metrics.faults.num_salvage_repacks
    )
    if max_load < audit.max_load:
        violations.append(
            f"engine max_load {max_load} < audit max_load {audit.max_load} "
            "— engine under-reports"
        )
    if transient_sources == 0 and max_load != audit.max_load:
        violations.append(
            f"engine max_load {max_load} != audit max_load {audit.max_load} "
            "with neither a reallocation nor a salvage to explain a transient"
        )

    # Degraded salvage bound.  s_peak is the sequence's nominal peak active
    # volume (kills only shrink it, so this is the conservative numerator);
    # the denominator is the worst surviving capacity the plan ever left.
    # Randomized algorithms carry w.h.p. guarantees only — a single run may
    # legally stack tasks past any deterministic bound, so the referee
    # skips them (same policy as ``load_bound is None`` in the registry).
    if (
        plan.num_failures > 0
        and math.isfinite(d_eff)
        and not ALGORITHM_SPECS[name].randomized
    ):
        min_surviving = plan.min_surviving_pes(num_pes)
        s_peak = oracle.peak_active_size
        bound = (d_eff + 1) * max(ceil_div(s_peak, min_surviving), 1)
        if max_load > bound + 1e-9:
            violations.append(
                f"salvage bound violated: max_load {max_load} > {bound:g} "
                f"((d+1)*ceil(s_peak/N_surv) with d={d_eff:g}, "
                f"s_peak={s_peak}, N_surv={min_surviving})"
            )

    return CheckOutcome(
        algorithm=name,
        num_pes=num_pes,
        d=d,
        seed=seed,
        num_events=len(sequence),
        ok=not violations,
        violations=tuple(violations),
        max_load=max_load,
        optimal_load=lstar,
        bound=bound,
        faulted=True,
        degradation=degradation,
    )


class DifferentialHarness:
    """Coverage-guided differential fuzzing over the whole registry.

    Parameters
    ----------
    num_pes:
        Machine size (power of two).
    algorithms:
        Registry names to exercise; defaults to every registered algorithm.
    d_values:
        Reallocation parameters cycled one-per-sequence.
    seed:
        Master seed for the fuzzer and the per-check algorithm seeds.
    jobs:
        Fan-out for per-sequence algorithm checks (``None``/``1`` = serial,
        ``-1`` = all cores) — same convention as the rest of the library.
    corpus_dir:
        Where shrunk counterexamples are written (skipped when ``None``).
    timeout / retries:
        Per-check wall-clock bound and transient-failure retry rounds,
        passed straight to :func:`repro.sim.parallel.parallel_map` — a
        wedged or crashed check fails (and is retried) alone instead of
        hanging the campaign.
    """

    def __init__(
        self,
        num_pes: int,
        *,
        algorithms: Optional[TypingSequence[str]] = None,
        d_values: TypingSequence[float] = DEFAULT_D_VALUES,
        seed: int = 0,
        jobs: Optional[int] = None,
        corpus_dir=None,
        timeout: Optional[float] = None,
        retries: int = 0,
    ):
        names = list(algorithms) if algorithms is not None else algorithm_names()
        unknown = [n for n in names if n not in ALGORITHM_SPECS]
        if unknown:
            # Reuse the registry's clean error so the CLI path stays uniform.
            make_algorithm(unknown[0], TreeMachine(num_pes))
        self.num_pes = num_pes
        self.algorithms = names
        self.d_values = tuple(d_values)
        self.seed = seed
        self.jobs = jobs
        self.corpus_dir = corpus_dir
        self.timeout = timeout
        self.retries = retries

    def check_sequence(
        self,
        sequence: TaskSequence,
        *,
        d: float = 2.0,
        seed: int = 0,
        plan: Optional[FaultPlan] = None,
    ) -> list[CheckOutcome]:
        """Run every configured algorithm on one sequence.

        With a ``plan`` the fault-mode check runs instead of the healthy one.
        """
        if plan is not None and not plan.is_empty:
            return parallel_map(
                check_algorithm_under_faults,
                [
                    (name, self.num_pes, d, seed, sequence, plan)
                    for name in self.algorithms
                ],
                jobs=self.jobs,
                timeout=self.timeout,
                retries=self.retries,
            )
        return parallel_map(
            check_algorithm,
            [(name, self.num_pes, d, seed, sequence) for name in self.algorithms],
            jobs=self.jobs,
            timeout=self.timeout,
            retries=self.retries,
        )

    def _plan_for(self, sequence: TaskSequence, index: int) -> FaultPlan:
        """Deterministic per-index fault plan (independent of outcomes)."""
        import numpy as np

        rng = np.random.default_rng([self.seed, _FAULT_PLAN_KEY, index])
        return generate_fault_plan(self.num_pes, sequence, rng)

    def fuzz(
        self,
        *,
        max_sequences: Optional[int] = None,
        budget: Optional[float] = None,
        shrink_violations: bool = True,
        faults: bool = False,
        checkpoint=None,
    ) -> VerifyReport:
        """Run a fuzzing campaign and return the :class:`VerifyReport`.

        ``max_sequences`` caps the number of fuzzed sequences; ``budget``
        caps wall-clock seconds.  At least one of the two must be given.
        Every violation is (optionally) shrunk to a minimal counterexample
        and, when ``corpus_dir`` is set, written there for replay.

        With ``faults=True`` every sequence additionally gets a
        deterministic per-index fault plan and runs through
        :func:`check_algorithm_under_faults`.  Faulted violations are
        stored unshrunk: shrinking changes the task-size census and with
        it the plan's granularity floor, so the reduced sequence would no
        longer reproduce the same degraded geometry.

        ``checkpoint`` (a path) journals per-index outcomes so an
        interrupted campaign resumes from completed indices: the fuzzer's
        sequence stream is a pure function of the seed, so regeneration is
        exact and the resumed report is identical to an uninterrupted run.
        """
        if max_sequences is None and budget is None:
            raise ValueError("give max_sequences and/or budget")
        fuzzer = SequenceFuzzer(self.num_pes, seed=self.seed)
        report = VerifyReport(
            num_pes=self.num_pes, seed=self.seed, algorithms=tuple(self.algorithms)
        )
        journal = None
        if checkpoint is not None:
            from repro.sim.checkpoint import CheckpointJournal

            journal = CheckpointJournal(
                checkpoint,
                fingerprint={
                    "kind": "verify-fuzz",
                    "num_pes": self.num_pes,
                    "seed": self.seed,
                    "algorithms": list(self.algorithms),
                    "d_values": [repr(d) for d in self.d_values],
                    "faults": faults,
                },
            )
        cached = journal.completed() if journal is not None else {}
        start = time.monotonic()
        index = 0
        while True:
            if max_sequences is not None and index >= max_sequences:
                break
            if budget is not None and time.monotonic() - start >= budget:
                break
            # The sequence must be generated even for cached indices: the
            # fuzzer's RNG stream and coverage census have to advance
            # exactly as in the uninterrupted run.
            sequence = fuzzer.generate()
            d = self.d_values[index % len(self.d_values)]
            seed = self.seed + index
            plan = self._plan_for(sequence, index) if faults else None
            if index in cached:
                outcomes = cached[index]
            else:
                outcomes = self.check_sequence(sequence, d=d, seed=seed, plan=plan)
                if journal is not None:
                    journal.record(index, outcomes)
            report.sequences_tried += 1
            for outcome in outcomes:
                report.record(outcome)
                if not outcome.ok:
                    report.counterexamples.append(
                        self._shrink_and_store(
                            sequence,
                            outcome,
                            shrink_violations and not outcome.faulted,
                            plan=plan,
                        )
                    )
            index += 1
        if journal is not None:
            journal.close()
        report.elapsed = time.monotonic() - start
        report.features = sorted(
            fuzzer.coverage, key=lambda f: (f.size_classes, f.depth, f.volume, f.burst)
        )
        return report

    def fuzz_churn(
        self,
        *,
        max_sequences: Optional[int] = None,
        budget: Optional[float] = None,
        horizon: float = 60.0,
        checkpoint=None,
    ) -> VerifyReport:
        """Run a churn-mode campaign: full scenarios, piecewise-N referees.

        The coverage-guided :class:`~repro.verify.fuzzer.ChurnFuzzer`
        generates admissible churn scenarios (faults, kills, flash-crowd
        storms, diurnal arrivals, grow/shrink schedules); every scenario
        runs through :func:`repro.verify.churn.check_algorithm_under_churn`
        for each configured algorithm.  Violating scenarios are stored
        *unshrunk* — like fault-mode entries, shrinking would change the
        epoch structure and the granularity census the scenario's
        admissibility rests on — with their resize schedule, so corpus
        replay dispatches them back through the churn check.

        ``checkpoint`` journaling and resume semantics match :meth:`fuzz`.
        """
        from repro.verify.churn import check_algorithm_under_churn
        from repro.verify.fuzzer import ChurnFuzzer

        if max_sequences is None and budget is None:
            raise ValueError("give max_sequences and/or budget")
        fuzzer = ChurnFuzzer(self.num_pes, seed=self.seed, horizon=horizon)
        report = VerifyReport(
            num_pes=self.num_pes, seed=self.seed, algorithms=tuple(self.algorithms)
        )
        journal = None
        if checkpoint is not None:
            from repro.sim.checkpoint import CheckpointJournal

            journal = CheckpointJournal(
                checkpoint,
                fingerprint={
                    "kind": "verify-fuzz-churn",
                    "num_pes": self.num_pes,
                    "seed": self.seed,
                    "algorithms": list(self.algorithms),
                    "d_values": [repr(d) for d in self.d_values],
                    "horizon": horizon,
                },
            )
        cached = journal.completed() if journal is not None else {}
        start = time.monotonic()
        index = 0
        while True:
            if max_sequences is not None and index >= max_sequences:
                break
            if budget is not None and time.monotonic() - start >= budget:
                break
            # Generated even for cached indices so the fuzzer's RNG stream
            # and coverage census advance exactly as in the original run.
            scenario = fuzzer.generate()
            d = self.d_values[index % len(self.d_values)]
            seed = self.seed + index
            if index in cached:
                outcomes = cached[index]
            else:
                outcomes = parallel_map(
                    check_algorithm_under_churn,
                    [(name, d, seed, scenario) for name in self.algorithms],
                    jobs=self.jobs,
                    timeout=self.timeout,
                    retries=self.retries,
                )
                if journal is not None:
                    journal.record(index, outcomes)
            report.sequences_tried += 1
            for outcome in outcomes:
                report.record(outcome)
                if not outcome.ok:
                    entry = CorpusEntry.from_sequence(
                        scenario.sequence,
                        algorithm=outcome.algorithm,
                        num_pes=self.num_pes,
                        d=outcome.d,
                        seed=outcome.seed,
                        check=(
                            outcome.violations[0]
                            if outcome.violations
                            else "unknown"
                        ),
                        fault_plan=scenario.plan,
                        resizes=scenario.resizes,
                    )
                    if self.corpus_dir is not None:
                        write_counterexample(entry, self.corpus_dir)
                    report.counterexamples.append(entry)
            index += 1
        if journal is not None:
            journal.close()
        report.elapsed = time.monotonic() - start
        report.features = sorted(
            fuzzer.coverage,
            key=lambda f: (f.size_classes, f.depth, f.volume, f.burst,
                           f.churn, f.storm, f.resizes),
        )
        return report

    def fuzz_slo(
        self,
        *,
        max_sequences: Optional[int] = None,
        budget: Optional[float] = None,
        load_targets: TypingSequence[int] = (1, 2, 4),
        queue_capacity: int = 16,
        checkpoint=None,
    ) -> VerifyReport:
        """Run an SLO-admission campaign through the shadow referee.

        Every fuzzed sequence is streamed through an SLO-gated
        :class:`~repro.service.session.AllocationSession` per configured
        algorithm and refereed by
        :func:`repro.verify.slo.check_slo_admission`: no admitted arrival
        may push its submachine past the load target, queued arrivals
        drain strictly FIFO exactly when capacity frees, rejects happen
        only at capacity, and two identical runs must produce identical
        admission logs.  ``load_targets`` are cycled one per sequence so
        both the tight (target 1: dedicated submachines only) and loose
        regimes get coverage.

        Violating sequences are stored *unshrunk*: shrinking re-times the
        event stream, which changes which arrivals queue versus admit, so
        the reduced sequence would no longer replay the same admission
        trace.  ``checkpoint`` journaling and resume semantics match
        :meth:`fuzz`.
        """
        from repro.verify.slo import check_slo_admission

        if max_sequences is None and budget is None:
            raise ValueError("give max_sequences and/or budget")
        targets = tuple(int(t) for t in load_targets)
        if not targets:
            raise ValueError("load_targets must be non-empty")
        fuzzer = SequenceFuzzer(self.num_pes, seed=self.seed)
        report = VerifyReport(
            num_pes=self.num_pes, seed=self.seed, algorithms=tuple(self.algorithms)
        )
        journal = None
        if checkpoint is not None:
            from repro.sim.checkpoint import CheckpointJournal

            journal = CheckpointJournal(
                checkpoint,
                fingerprint={
                    "kind": "verify-fuzz-slo",
                    "num_pes": self.num_pes,
                    "seed": self.seed,
                    "algorithms": list(self.algorithms),
                    "d_values": [repr(d) for d in self.d_values],
                    "load_targets": list(targets),
                    "queue_capacity": queue_capacity,
                },
            )
        cached = journal.completed() if journal is not None else {}
        start = time.monotonic()
        index = 0
        while True:
            if max_sequences is not None and index >= max_sequences:
                break
            if budget is not None and time.monotonic() - start >= budget:
                break
            # Generated even for cached indices so the fuzzer's RNG stream
            # and coverage census advance exactly as in the original run.
            sequence = fuzzer.generate()
            d = self.d_values[index % len(self.d_values)]
            seed = self.seed + index
            target = targets[index % len(targets)]
            if index in cached:
                outcomes = cached[index]
            else:
                outcomes = parallel_map(
                    check_slo_admission,
                    [
                        (name, self.num_pes, d, seed, sequence, target,
                         queue_capacity)
                        for name in self.algorithms
                    ],
                    jobs=self.jobs,
                    timeout=self.timeout,
                    retries=self.retries,
                )
                if journal is not None:
                    journal.record(index, outcomes)
            report.sequences_tried += 1
            for outcome in outcomes:
                report.record(outcome)
                if not outcome.ok:
                    entry = CorpusEntry.from_sequence(
                        sequence,
                        algorithm=outcome.algorithm,
                        num_pes=self.num_pes,
                        d=outcome.d,
                        seed=outcome.seed,
                        check=(
                            outcome.violations[0]
                            if outcome.violations
                            else "unknown"
                        ),
                    )
                    if self.corpus_dir is not None:
                        write_counterexample(entry, self.corpus_dir)
                    report.counterexamples.append(entry)
            index += 1
        if journal is not None:
            journal.close()
        report.elapsed = time.monotonic() - start
        report.features = sorted(
            fuzzer.coverage, key=lambda f: (f.size_classes, f.depth, f.volume, f.burst)
        )
        return report

    def _shrink_and_store(
        self,
        sequence: TaskSequence,
        outcome: CheckOutcome,
        do_shrink: bool,
        *,
        plan: Optional[FaultPlan] = None,
    ) -> CorpusEntry:
        """Reduce a violating sequence and persist it for replay."""

        def still_fails(candidate: TaskSequence) -> bool:
            return not check_algorithm(
                outcome.algorithm, self.num_pes, outcome.d, outcome.seed, candidate
            ).ok

        reduced = shrink(sequence, still_fails) if do_shrink else sequence
        entry = CorpusEntry.from_sequence(
            reduced,
            algorithm=outcome.algorithm,
            num_pes=self.num_pes,
            d=outcome.d,
            seed=outcome.seed,
            check=outcome.violations[0] if outcome.violations else "unknown",
            fault_plan=plan if outcome.faulted else None,
        )
        if self.corpus_dir is not None:
            write_counterexample(entry, self.corpus_dir)
        return entry

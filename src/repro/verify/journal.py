"""The journal-format referee: v1 and v2 journals must be one history.

The binary v2 journal buys its throughput with three liberties — framed
pickle/columnar records instead of JSONL, delta digests instead of full
snapshots between full-snapshot crossings, and batch frames that never
materialise per-event dicts.  None of them may be observable: a session
journaled in either format must resume to *bit-identical* state, and a
v2 journal killed mid-delta-window (after a delta rider, before the
next full snapshot) must recover exactly the surviving hole-free prefix
and then catch up to the uninterrupted run.  This referee enforces all
of that the way the rest of :mod:`repro.verify` does — same input, both
configurations, diff everything:

* **final state**: kernel ``snapshot()``, ``status()``, and metrics of
  the v1- and v2-journaled sessions must equal an unjournaled oracle's,
  both live and after a close/reopen round trip;
* **kill windows**: the v2 journal is truncated at sampled frame
  boundaries *and* mid-frame (the torn-tail case); each truncation must
  reopen to the state of an oracle fed exactly the surviving records,
  then drive to the same end state.  v1 copies get the same treatment
  at line granularity, so both recovery paths stay honest;
* **replayability**: both the committed corpus
  (:func:`replay_corpus_journal`) and fresh fuzzed churn streams
  (:func:`fuzz_journal`) feed the check; ``repro verify --journal``
  wires both into CI.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.registry import make_algorithm
from repro.errors import SimulationError
from repro.machines.tree import TreeMachine
from repro.service.session import AllocationSession
from repro.service.stream import sequence_records
from repro.sim.frames import JOURNAL_MAGIC, scan_frames
from repro.verify.corpus import load_corpus
from repro.workloads.generators import churn_sequence

__all__ = [
    "JournalOutcome",
    "check_journal_parity",
    "fuzz_journal",
    "replay_corpus_journal",
]


@dataclass
class JournalOutcome:
    """Verdict of one parity check (one stream, both formats)."""

    algorithm: str
    num_pes: int
    events: int
    divergences: list[str] = field(default_factory=list)
    #: Truncation points exercised on each format's journal — a check
    #: that never kills inside a delta window proves less.
    kills_checked: int = 0
    #: Of those, truncations that landed strictly between a delta rider
    #: and the next full snapshot (the v2-only recovery path).
    delta_window_kills: int = 0
    bytes_v1: int = 0
    bytes_v2: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences


def _digest(state: Any) -> str:
    return hashlib.sha256(
        json.dumps(state, sort_keys=True, default=repr).encode()
    ).hexdigest()


def _fingerprint(session: AllocationSession) -> tuple[str, int]:
    """Everything "bit-identical" means for a session, hashed.

    ``journal_pending`` is durability plumbing (how many writes await
    fsync), not session state — an unjournaled oracle always reads 0 —
    so it is excluded from the comparison.
    """
    status = dict(session.status())
    status.pop("journal_pending", None)
    state = {
        "snapshot": session.snapshot(),
        "status": status,
        "metrics": session.kernel.metrics.to_state(),
        "now": session.now,
        "next_id": session._next_task_id,
    }
    return _digest(state), session.num_events


def _open(
    path: Optional[Path],
    *,
    algorithm: str,
    num_pes: int,
    d: float,
    seed: int,
    fault_tolerant: bool,
    journal_format: str,
    snapshot_interval: int,
    full_snapshot_interval: int,
    fsync_policy: str,
) -> AllocationSession:
    machine = TreeMachine(num_pes)
    return AllocationSession(
        machine,
        make_algorithm(algorithm, machine, d=d, seed=seed),
        fault_tolerant=fault_tolerant,
        journal_path=path,
        snapshot_interval=snapshot_interval,
        full_snapshot_interval=full_snapshot_interval,
        fsync_policy=fsync_policy,
        journal_format=journal_format,
    )


def _truncation_points(
    data: bytes, journal_format: str, rng: np.random.Generator, count: int
) -> list[int]:
    """Sampled kill offsets: record boundaries plus one mid-record cut.

    v2 boundaries are frame starts (the header frame is never cut — a
    journal without its header is a different failure, not a crash);
    v1 boundaries are newline positions past the header line.  The final
    mid-record offset exercises the torn-tail scan.
    """
    if journal_format == "v2":
        frames, good_end, _reason = scan_frames(data, len(JOURNAL_MAGIC))
        boundaries = [start for _k, _p, start in frames[2:]] + [good_end]
    else:
        text = data.decode("utf-8")
        first = text.index("\n") + 1
        boundaries = [
            i + 1 for i, ch in enumerate(text) if ch == "\n" and i + 1 > first
        ]
    boundaries = sorted(set(boundaries))
    if not boundaries:
        return []
    picks = min(count, len(boundaries))
    chosen = sorted(
        int(boundaries[i])
        for i in rng.choice(len(boundaries), size=picks, replace=False)
    )
    # One torn cut: a few bytes into the record after some clean boundary.
    torn = chosen[len(chosen) // 2] + 3
    if torn < len(data):
        chosen.append(torn)
    return chosen


def check_journal_parity(
    records: Sequence[Mapping[str, Any]],
    *,
    algorithm: str = "greedy",
    num_pes: int = 64,
    d: float = 2.0,
    seed: int = 0,
    batch: int = 16,
    snapshot_interval: int = 8,
    full_snapshot_interval: int = 32,
    fsync_policy: str = "batch",
    fault_tolerant: bool = False,
    kill_points: int = 4,
    max_divergences: int = 10,
) -> JournalOutcome:
    """Diff one event stream across journal formats and kill windows.

    The deliberately small ``snapshot_interval`` / ``full_snapshot_interval``
    pair guarantees fuzzed streams cross several delta windows, so the
    sampled truncations land inside them.
    """
    outcome = JournalOutcome(
        algorithm=algorithm, num_pes=num_pes, events=len(records)
    )
    rng = np.random.default_rng(seed)

    def diverge(message: str) -> None:
        if len(outcome.divergences) < max_divergences:
            outcome.divergences.append(message)

    def reopen(path: Path, journal_format: str) -> AllocationSession:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # partial tails are expected
            return _open(
                path,
                algorithm=algorithm, num_pes=num_pes, d=d, seed=seed,
                fault_tolerant=fault_tolerant, journal_format=journal_format,
                snapshot_interval=snapshot_interval,
                full_snapshot_interval=full_snapshot_interval,
                fsync_policy=fsync_policy,
            )

    with tempfile.TemporaryDirectory(prefix="repro-jref-") as tmp:
        tmpdir = Path(tmp)
        oracle = _open(
            None,
            algorithm=algorithm, num_pes=num_pes, d=d, seed=seed,
            fault_tolerant=fault_tolerant, journal_format="v2",
            snapshot_interval=snapshot_interval,
            full_snapshot_interval=full_snapshot_interval,
            fsync_policy=fsync_policy,
        )
        paths = {
            "v1": tmpdir / "session.v1.journal",
            "v2": tmpdir / "session.v2.journal",
        }
        writers = {
            fmt: _open(
                path,
                algorithm=algorithm, num_pes=num_pes, d=d, seed=seed,
                fault_tolerant=fault_tolerant, journal_format=fmt,
                snapshot_interval=snapshot_interval,
                full_snapshot_interval=full_snapshot_interval,
                fsync_policy=fsync_policy,
            )
            for fmt, path in paths.items()
        }
        try:
            for start in range(0, len(records), batch):
                chunk = records[start : start + batch]
                for rec in chunk:
                    oracle.push(dict(rec))
                for fmt, writer in writers.items():
                    writer.push_batch([dict(r) for r in chunk])
            expected = _fingerprint(oracle)
            for fmt, writer in writers.items():
                if _fingerprint(writer) != expected:
                    diverge(f"{fmt} live state != oracle")
        finally:
            oracle.close()
            for writer in writers.values():
                writer.close()
        outcome.bytes_v1 = paths["v1"].stat().st_size
        outcome.bytes_v2 = paths["v2"].stat().st_size

        # Clean close/reopen: both formats must restore the exact state.
        for fmt, path in paths.items():
            resumed = reopen(path, fmt)
            try:
                if resumed.num_events != len(records):
                    diverge(
                        f"{fmt} reopen lost events: {resumed.num_events} "
                        f"of {len(records)}"
                    )
                elif _fingerprint(resumed) != expected:
                    diverge(f"{fmt} reopened state != oracle")
            finally:
                resumed.close()

        # Kill windows: truncate at sampled boundaries, reopen, diff
        # against an oracle fed exactly the surviving prefix, then drive
        # both to the end of the stream.
        for fmt, path in paths.items():
            data = path.read_bytes()
            for cut in _truncation_points(data, fmt, rng, kill_points):
                copy = tmpdir / f"kill.{fmt}.{cut}.journal"
                copy.write_bytes(data[:cut])
                resumed = reopen(copy, fmt)
                try:
                    survived = resumed.num_events
                    if survived > len(records):
                        diverge(
                            f"{fmt} cut@{cut}: resurrected "
                            f"{survived - len(records)} unknown event(s)"
                        )
                        continue
                    last_delta = (survived // snapshot_interval) * snapshot_interval
                    last_full = (
                        survived // full_snapshot_interval
                    ) * full_snapshot_interval
                    if fmt == "v2" and last_delta > last_full:
                        outcome.delta_window_kills += 1
                    prefix = _open(
                        None,
                        algorithm=algorithm, num_pes=num_pes, d=d,
                        seed=seed, fault_tolerant=fault_tolerant,
                        journal_format=fmt,
                        snapshot_interval=snapshot_interval,
                        full_snapshot_interval=full_snapshot_interval,
                        fsync_policy=fsync_policy,
                    )
                    try:
                        for rec in records[:survived]:
                            prefix.push(dict(rec))
                        if _fingerprint(resumed) != _fingerprint(prefix):
                            diverge(
                                f"{fmt} cut@{cut}: resumed state != "
                                f"oracle of the surviving {survived} "
                                f"record(s)"
                            )
                            continue
                        for rec in records[survived:]:
                            resumed.push(dict(rec))
                            prefix.push(dict(rec))
                        if _fingerprint(resumed) != _fingerprint(prefix):
                            diverge(
                                f"{fmt} cut@{cut}: end state diverges "
                                f"after catch-up"
                            )
                    finally:
                        prefix.close()
                    outcome.kills_checked += 1
                finally:
                    resumed.close()
    return outcome


def replay_corpus_journal(
    directory: Union[str, Any],
    *,
    kill_points: int = 2,
    strict: bool = False,
) -> list[tuple[Any, Optional[JournalOutcome]]]:
    """Parity-check every journalable corpus entry; churn entries (whose
    resize events a session cannot ingest) map to ``None``."""
    results: list[tuple[Any, Optional[JournalOutcome]]] = []
    for entry in load_corpus(directory, strict=strict):
        if entry.resize_events:
            results.append((entry, None))
            continue
        records = list(sequence_records(entry.sequence()))
        outcome = check_journal_parity(
            records,
            algorithm=entry.algorithm,
            num_pes=entry.num_pes,
            d=entry.d,
            seed=entry.seed,
            fault_tolerant=bool(entry.fault_events),
            kill_points=kill_points,
        )
        results.append((entry, outcome))
    return results


def fuzz_journal(
    *,
    num_pes: int = 256,
    sequences: int = 25,
    tasks: int = 120,
    seed: int = 0,
    algorithms: Optional[Sequence[str]] = None,
    kill_points: int = 3,
) -> list[JournalOutcome]:
    """Random-churn parity sweep: ``sequences`` fresh streams per
    algorithm through both journal formats, every journal kill-sampled.

    Raises :class:`~repro.errors.SimulationError` listing the first
    divergences if any stream breaks parity, so CI fails loudly.
    """
    names = list(algorithms) if algorithms else ["greedy", "firstfit"]
    outcomes: list[JournalOutcome] = []
    failures: list[str] = []
    for name in names:
        for index in range(sequences):
            rng = np.random.default_rng(seed + index)
            records = list(
                sequence_records(churn_sequence(num_pes, tasks, rng))
            )
            outcome = check_journal_parity(
                records,
                algorithm=name,
                num_pes=num_pes,
                seed=seed + index,
                batch=int(rng.integers(1, 65)),
                kill_points=kill_points,
            )
            outcomes.append(outcome)
            if not outcome.ok:
                failures.append(
                    f"{name} seq {index}: " + "; ".join(outcome.divergences)
                )
    if failures:
        raise SimulationError(
            f"journal parity broken in {len(failures)} stream(s): "
            + " | ".join(failures[:5])
        )
    return outcomes

"""Campaign summary: what was tried, what was covered, how tight the bounds ran.

:class:`VerifyReport` is the single artifact a ``repro verify`` run leaves
behind.  Beyond pass/fail it answers the questions that make a fuzzing
campaign auditable:

* how many sequences and checks ran, over what wall-clock;
* which structural feature buckets the fuzzer reached
  (:class:`~repro.verify.fuzzer.FeatureVector` coverage);
* per bounded algorithm, the *tightest* instance observed — the run with
  the least slack between measured load and its theorem bound.  Theorems
  are inequalities; the tightest instances show how close to equality the
  implementation actually sails (Theorem 3.1 should show slack 0 always).

Markdown rendering lives in :func:`repro.analysis.reporting.render_verify_markdown`
so report formatting stays in one package.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import VerificationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.verify.corpus import CorpusEntry
    from repro.verify.fuzzer import FeatureVector
    from repro.verify.harness import CheckOutcome

__all__ = ["BoundMargin", "VerifyReport"]


@dataclass(frozen=True)
class BoundMargin:
    """Tightest observed instance of one algorithm's theorem bound."""

    algorithm: str
    d: float
    max_load: int
    optimal_load: int
    bound: float
    num_events: int

    @property
    def slack(self) -> float:
        """``bound - max_load``; 0 means the bound was attained exactly."""
        return self.bound - self.max_load

    @property
    def utilisation(self) -> float:
        """``max_load / bound`` — 1.0 is a tight theorem, small is loose."""
        return self.max_load / self.bound if self.bound else 0.0


@dataclass
class VerifyReport:
    """Everything one differential-verification campaign learned."""

    num_pes: int
    seed: int
    algorithms: tuple[str, ...] = ()
    sequences_tried: int = 0
    checks_run: int = 0
    elapsed: float = 0.0
    violations: list["CheckOutcome"] = field(default_factory=list)
    counterexamples: list["CorpusEntry"] = field(default_factory=list)
    #: Feature buckets the fuzzer covered, for the coverage summary.
    features: list["FeatureVector"] = field(default_factory=list)
    #: Per-algorithm tightest bound instance (least slack seen).
    tightest: dict[str, BoundMargin] = field(default_factory=dict)
    #: Checks that ran under an injected fault plan.
    faulted_checks: int = 0
    #: Checks that ran a full churn scenario through the piecewise-N
    #: referees (every churn check is also counted in ``faulted_checks``).
    churn_checks: int = 0
    #: Online resizes absorbed across all churn checks.
    resizes_checked: int = 0
    #: Checks that refereed an SLO admission session
    #: (:func:`repro.verify.slo.check_slo_admission`).
    slo_checks: int = 0
    #: Degradation tallies over all faulted checks (summed counters plus
    #: worst-case gauges) — the campaign-level fault accounting.
    fault_summary: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def features_covered(self) -> int:
        return len(self.features)

    _SUMMED_FAULT_KEYS = (
        "failures",
        "repairs",
        "kills",
        "grows",
        "shrinks",
        "orphaned_tasks",
        "salvage_repacks",
        "salvage_migrations",
        "salvage_pe_volume",
    )

    def record(self, outcome: "CheckOutcome") -> None:
        """Fold one check outcome into the tallies."""
        self.checks_run += 1
        if not outcome.ok:
            self.violations.append(outcome)
        if getattr(outcome, "churned", False):
            self.churn_checks += 1
            self.resizes_checked += getattr(outcome, "num_resizes", 0)
        if getattr(outcome, "sloed", False):
            self.slo_checks += 1
        if outcome.faulted:
            self.faulted_checks += 1
            if outcome.degradation:
                s = self.fault_summary
                for key in self._SUMMED_FAULT_KEYS:
                    s[key] = s.get(key, 0) + outcome.degradation.get(key, 0)
                s["min_surviving_pes"] = min(
                    s.get("min_surviving_pes", self.num_pes),
                    outcome.degradation.get("min_surviving_pes", self.num_pes),
                )
                s["max_load_overshoot_vs_degraded"] = max(
                    s.get("max_load_overshoot_vs_degraded", 0),
                    outcome.degradation.get("load_overshoot_vs_degraded", 0),
                )
        if outcome.bound is not None and not math.isinf(outcome.bound):
            margin = BoundMargin(
                algorithm=outcome.algorithm,
                d=outcome.d,
                max_load=outcome.max_load,
                optimal_load=outcome.optimal_load,
                bound=outcome.bound,
                num_events=outcome.num_events,
            )
            best = self.tightest.get(outcome.algorithm)
            if best is None or margin.slack < best.slack:
                self.tightest[outcome.algorithm] = margin

    def raise_if_failed(self) -> None:
        if self.ok:
            return
        lines = [
            f"{len(self.violations)} violation(s) over "
            f"{self.sequences_tried} sequences:"
        ]
        for outcome in self.violations[:10]:
            lines.append(
                f"  {outcome.algorithm} (d={outcome.d:g}, seed={outcome.seed}): "
                + "; ".join(outcome.violations)
            )
        if len(self.violations) > 10:
            lines.append(f"  ... and {len(self.violations) - 10} more")
        raise VerificationError("\n".join(lines))

    def to_dict(self) -> dict:
        """JSON-serialisable summary (CI artifact payload)."""
        return {
            "num_pes": self.num_pes,
            "seed": self.seed,
            "algorithms": list(self.algorithms),
            "ok": self.ok,
            "sequences_tried": self.sequences_tried,
            "checks_run": self.checks_run,
            "elapsed_seconds": round(self.elapsed, 3),
            "features_covered": self.features_covered,
            "features": [
                {
                    "size_classes": f.size_classes,
                    "has_full_machine": f.has_full_machine,
                    "depth": f.depth,
                    "volume": f.volume,
                    "burst": f.burst,
                    "churn": getattr(f, "churn", 0),
                    "storm": getattr(f, "storm", 0),
                    "resizes": getattr(f, "resizes", 0),
                }
                for f in self.features
            ],
            "violations": [
                {
                    "algorithm": o.algorithm,
                    "d": "inf" if math.isinf(o.d) else o.d,
                    "seed": o.seed,
                    "messages": list(o.violations),
                }
                for o in self.violations
            ],
            "counterexamples": [e.filename() for e in self.counterexamples],
            "faulted_checks": self.faulted_checks,
            "churn_checks": self.churn_checks,
            "resizes_checked": self.resizes_checked,
            "slo_checks": self.slo_checks,
            "fault_summary": dict(self.fault_summary),
            "tightest_bounds": {
                name: {
                    "d": "inf" if math.isinf(m.d) else m.d,
                    "max_load": m.max_load,
                    "optimal_load": m.optimal_load,
                    "bound": m.bound,
                    "slack": m.slack,
                    "utilisation": round(m.utilisation, 4),
                    "num_events": m.num_events,
                }
                for name, m in sorted(self.tightest.items())
            },
        }

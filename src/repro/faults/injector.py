"""The fault-aware simulator: fault events merged into the event loop.

:class:`FaultAwareSimulator` extends the production
:class:`~repro.sim.engine.Simulator` with three fault event types
(:class:`~repro.faults.plan.PEFailure`, :class:`~repro.faults.plan.PERepair`,
:class:`~repro.faults.plan.TaskKill`) and keeps the same validation
discipline — every placement is additionally checked against the degraded
view, so an algorithm (or salvage) bug that lands a task on dead PEs is a
hard :class:`~repro.errors.PlacementError`, not a silent result.

Semantics, in the order things happen at a failure event:

1. the set of *orphans* (active tasks overlapping the failing subtree) is
   recorded;
2. the view degrades; the wrapped algorithm's :meth:`on_fault` runs a
   salvage repack (A_R on surviving capacity) and the simulator applies
   the remapping, charging the cost model and metering it in
   :class:`~repro.sim.metrics.FaultStats` — *not* in the regular
   reallocation stats, because salvage is charged to the fault (the
   external-perturbation framing of Bender et al.), and the ``d``-budget
   arrival counter resets exactly as after a planned repack;
3. degradation gauges update: ``L*_deg``, overshoot, survivor minimum.

A killed task's scheduled departure becomes a metered no-op, and with an
empty plan the simulator is behaviourally identical to the plain
:class:`~repro.sim.engine.Simulator`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import AllocationAlgorithm
from repro.errors import ReallocationError, SalvageError
from repro.faults.plan import FaultPlan, PEFailure, PERepair, TaskKill, merge_events
from repro.faults.salvage import FaultTolerantAlgorithm
from repro.machines.base import PartitionableMachine
from repro.sim.engine import RunResult, Simulator
from repro.sim.realloc_cost import MigrationCostModel
from repro.tasks.events import Departure
from repro.tasks.sequence import TaskSequence
from repro.types import NodeId, TaskId

__all__ = ["FaultAwareSimulator", "run_traced_with_faults"]

_FAULT_EVENT_TYPES = (PEFailure, PERepair, TaskKill)


class FaultAwareSimulator(Simulator):
    """Drives one algorithm over one sequence *and* one fault plan."""

    def __init__(
        self,
        machine: PartitionableMachine,
        algorithm: AllocationAlgorithm,
        plan: FaultPlan,
        cost_model: Optional[MigrationCostModel] = None,
        *,
        collect_leaf_snapshots: bool = True,
        repack_on_repair: bool = True,
    ):
        plan.validate_for(machine.num_pes)
        if isinstance(algorithm, FaultTolerantAlgorithm):
            wrapper = algorithm
        else:
            wrapper = FaultTolerantAlgorithm(
                machine, algorithm, machine.degraded_view()
            )
        super().__init__(
            machine,
            wrapper,
            cost_model,
            collect_leaf_snapshots=collect_leaf_snapshots,
        )
        self.plan = plan
        self.view = wrapper.view
        self.repack_on_repair = repack_on_repair
        self._killed: set[TaskId] = set()
        self.metrics.faults.min_surviving_pes = machine.num_pes

    # -- Overridden validation / budget ------------------------------------

    def _validate_node_for(self, task, node: NodeId) -> None:
        super()._validate_node_for(task, node)
        self.view.validate_placement(node, task_id=task.task_id)

    def _offer_reallocation(self, now: float) -> None:
        # Same contract as the base simulator, with the budget measured
        # against *surviving* capacity: a d-reallocation algorithm on a
        # degraded machine may repack once d * N_surviving PE-arrivals have
        # accumulated (d * N with no failures — identical to the base).
        realloc = self.algorithm.maybe_reallocate(self._arrived_since_realloc)
        if realloc is None:
            return
        d = self.algorithm.reallocation_parameter
        budget = d * max(1, self.view.surviving_pes)
        if self._arrived_since_realloc < budget:
            raise ReallocationError(
                f"{self.algorithm.name} attempted a reallocation after only "
                f"{self._arrived_since_realloc} PE-arrivals; its degraded "
                f"budget is d*N_surviving = {budget}"
            )
        self._apply_reallocation(realloc, now)
        self._arrived_since_realloc = 0

    # -- Fault event processing --------------------------------------------

    def step(self, event) -> None:
        if isinstance(event, _FAULT_EVENT_TYPES):
            self._apply_fault(event)
            self._record_event(event)
        elif isinstance(event, Departure) and event.task_id in self._killed:
            # The task already died at its kill time; its scheduled
            # departure is a no-op (still metered, so series stay aligned
            # with the merged event stream).
            self._killed.discard(event.task_id)
            self._record_event(event)
        else:
            super().step(event)
        self._update_degradation_gauges()

    def _record_event(self, event) -> None:
        self.metrics.observe(
            event.time,
            self._loads.max_load,
            self._loads.leaf_loads() if self.collect_leaf_snapshots else None,
        )
        for callback in self._observers:
            callback(self, event)

    def _apply_fault(self, event) -> None:
        stats = self.metrics.faults
        if isinstance(event, PEFailure):
            h = self.machine.hierarchy
            orphans = {
                tid
                for tid, node in self._placements.items()
                if h.contains(event.node, node) or h.contains(node, event.node)
            }
            self.view.fail(event.node)
            stats.record_failure(
                len(orphans), sum(self._tasks[t].size for t in orphans)
            )
            self._salvage_after_fault(event.time, orphans)
        elif isinstance(event, PERepair):
            self.view.repair(event.node)
            stats.num_repairs += 1
            if self.repack_on_repair:
                self._salvage_after_fault(event.time, set())
        else:  # TaskKill
            self._apply_kill(event)

    def _apply_kill(self, event: TaskKill) -> None:
        node = self._placements.pop(event.task_id, None)
        task = self._tasks.pop(event.task_id, None)
        if node is None or task is None:
            return  # the task is not active at kill time: a no-op by contract
        assert isinstance(self.algorithm, FaultTolerantAlgorithm)
        self.algorithm.kill(task)
        self._loads.remove(node, task.size)
        self._departure_times[event.task_id] = event.time
        self._killed.add(event.task_id)
        self.metrics.faults.num_kills += 1

    def _salvage_after_fault(self, now: float, orphans: set[TaskId]) -> None:
        assert isinstance(self.algorithm, FaultTolerantAlgorithm)
        realloc = self.algorithm.on_fault()
        if realloc is not None:
            self._apply_salvage(dict(realloc.mapping), now, orphans)
        # A salvage leaves the machine optimally repacked, so the planned
        # d-budget clock restarts — the fault paid for the repack, the
        # algorithm's budget did not.
        self._arrived_since_realloc = 0

    def _apply_salvage(
        self, mapping: dict[TaskId, NodeId], now: float, orphans: set[TaskId]
    ) -> None:
        if set(mapping) != set(self._placements):
            missing = set(self._placements) - set(mapping)
            extra = set(mapping) - set(self._placements)
            raise SalvageError(
                f"salvage must remap exactly the active tasks; "
                f"missing={sorted(missing)!r} extra={sorted(extra)!r}"
            )
        stats = self.metrics.faults
        stats.num_salvage_repacks += 1
        for tid, new_node in mapping.items():
            task = self._tasks[tid]
            self._validate_node_for(task, new_node)
            old_node = self._placements[tid]
            if new_node == old_node:
                continue
            charge = self.cost_model.charge(
                self.machine, task.size, old_node, new_node
            )
            stats.record_salvage_move(
                task.size, charge.distance, charge.seconds, orphan=tid in orphans
            )
            self._loads.remove(old_node, task.size)
            self._loads.place(new_node, task.size)
            self._placements[tid] = new_node
            self._placement_log[tid].append((now, new_node))

    def _update_degradation_gauges(self) -> None:
        stats = self.metrics.faults
        lstar_deg = self.view.degraded_optimal_load(self.active_size())
        stats.peak_degraded_lstar = max(stats.peak_degraded_lstar, lstar_deg)
        stats.load_overshoot_vs_degraded = max(
            stats.load_overshoot_vs_degraded, self._loads.max_load - lstar_deg
        )
        stats.min_surviving_pes = min(
            stats.min_surviving_pes, self.view.surviving_pes
        )

    # -- Public API ---------------------------------------------------------

    def run(self, sequence: TaskSequence) -> RunResult:
        """Drive the merged task + fault event stream to completion."""
        for event in merge_events(sequence, self.plan):
            self.step(event)
        return RunResult(
            algorithm_name=self.algorithm.name,
            machine_description=self.machine.describe(),
            metrics=self.metrics,
            optimal_load=sequence.optimal_load(self.machine.num_pes),
            final_placements=dict(self._placements),
        )


def run_traced_with_faults(
    machine: PartitionableMachine,
    algorithm: AllocationAlgorithm,
    sequence: TaskSequence,
    plan: FaultPlan,
    cost_model: Optional[MigrationCostModel] = None,
    *,
    collect_leaf_snapshots: bool = True,
    repack_on_repair: bool = True,
):
    """Fault-injected analogue of :func:`repro.sim.runner.run_traced`.

    Returns ``(RunResult, placement_intervals)`` — the inputs the audit
    referees consume.
    """
    sim = FaultAwareSimulator(
        machine,
        algorithm,
        plan,
        cost_model,
        collect_leaf_snapshots=collect_leaf_snapshots,
        repack_on_repair=repack_on_repair,
    )
    result = sim.run(sequence)
    return result, sim.placement_intervals()

"""The fault-aware simulator: fault events merged into the event loop.

:class:`FaultAwareSimulator` extends the production
:class:`~repro.sim.engine.Simulator` with three fault event types
(:class:`~repro.faults.plan.PEFailure`, :class:`~repro.faults.plan.PERepair`,
:class:`~repro.faults.plan.TaskKill`).  All fault semantics live in the
shared :class:`~repro.kernel.AllocationKernel` — constructing it with a
:class:`~repro.machines.degraded.DegradedView` enables the fault event
paths — so this class only wraps the algorithm for fault tolerance,
validates the plan, and merges the fault events into the run loop.  The
validation discipline is unchanged: every placement is additionally
checked against the degraded view, so an algorithm (or salvage) bug that
lands a task on dead PEs is a hard
:class:`~repro.errors.PlacementError`, not a silent result.

Semantics, in the order things happen at a failure event:

1. the set of *orphans* (active tasks overlapping the failing subtree) is
   recorded;
2. the view degrades; the wrapped algorithm's :meth:`on_fault` runs a
   salvage repack (A_R on surviving capacity) and the kernel applies the
   remapping, charging the cost model and metering it in
   :class:`~repro.sim.metrics.FaultStats` — *not* in the regular
   reallocation stats, because salvage is charged to the fault (the
   external-perturbation framing of Bender et al.), and the ``d``-budget
   arrival counter resets exactly as after a planned repack;
3. degradation gauges update: ``L*_deg``, overshoot, survivor minimum.

A killed task's scheduled departure becomes a metered no-op, and with an
empty plan the simulator is behaviourally identical to the plain
:class:`~repro.sim.engine.Simulator`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import AllocationAlgorithm
from repro.faults.plan import FaultPlan, merge_events
from repro.faults.salvage import FaultTolerantAlgorithm
from repro.kernel import AllocationKernel
from repro.machines.base import PartitionableMachine
from repro.machines.degraded import DegradedView
from repro.sim.engine import RunResult, Simulator
from repro.sim.realloc_cost import MigrationCostModel
from repro.tasks.sequence import TaskSequence
from repro.types import TaskId

__all__ = ["FaultAwareSimulator", "run_traced_with_faults"]


class FaultAwareSimulator(Simulator):
    """Drives one algorithm over one sequence *and* one fault plan."""

    def __init__(
        self,
        machine: PartitionableMachine,
        algorithm: AllocationAlgorithm,
        plan: FaultPlan,
        cost_model: Optional[MigrationCostModel] = None,
        *,
        collect_leaf_snapshots: bool = True,
        repack_on_repair: bool = True,
        batch_backend: str = "python",
    ):
        plan.validate_for(machine.num_pes)
        if isinstance(algorithm, FaultTolerantAlgorithm):
            wrapper = algorithm
        else:
            wrapper = FaultTolerantAlgorithm(
                machine, algorithm, machine.degraded_view()
            )
        # Stashed for the _build_kernel hook, which super().__init__ calls.
        self._pending_view: DegradedView = wrapper.view
        self._pending_repack_on_repair = repack_on_repair
        super().__init__(
            machine,
            wrapper,
            cost_model,
            collect_leaf_snapshots=collect_leaf_snapshots,
            batch_backend=batch_backend,
        )
        self.plan = plan
        self.view = wrapper.view
        self.repack_on_repair = repack_on_repair

    def _build_kernel(
        self,
        machine: PartitionableMachine,
        algorithm: AllocationAlgorithm,
        cost_model: Optional[MigrationCostModel],
        collect_leaf_snapshots: bool,
    ) -> AllocationKernel:
        return AllocationKernel(
            machine,
            algorithm,
            cost_model,
            collect_leaf_snapshots=collect_leaf_snapshots,
            view=self._pending_view,
            repack_on_repair=self._pending_repack_on_repair,
            batch_backend=self._batch_backend,
        )

    @property
    def _killed(self) -> set[TaskId]:
        return self.kernel._killed

    # -- Public API ---------------------------------------------------------

    def run(self, sequence: TaskSequence) -> RunResult:
        """Drive the merged task + fault event stream to completion."""
        for event in merge_events(sequence, self.plan):
            self.step(event)
        return RunResult(
            algorithm_name=self.algorithm.name,
            machine_description=self.machine.describe(),
            metrics=self.metrics,
            optimal_load=sequence.optimal_load(self.machine.num_pes),
            final_placements=dict(self._placements),
        )


def run_traced_with_faults(
    machine: PartitionableMachine,
    algorithm: AllocationAlgorithm,
    sequence: TaskSequence,
    plan: FaultPlan,
    cost_model: Optional[MigrationCostModel] = None,
    *,
    collect_leaf_snapshots: bool = True,
    repack_on_repair: bool = True,
):
    """Fault-injected analogue of :func:`repro.sim.runner.run_traced`.

    Returns ``(RunResult, placement_intervals)`` — the inputs the audit
    referees consume.
    """
    sim = FaultAwareSimulator(
        machine,
        algorithm,
        plan,
        cost_model,
        collect_leaf_snapshots=collect_leaf_snapshots,
        repack_on_repair=repack_on_repair,
    )
    result = sim.run(sequence)
    return result, sim.placement_intervals()

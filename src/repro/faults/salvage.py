"""Salvage repacking — procedure A_R on the degraded machine.

When a subtree fails, every task overlapping it is orphaned.  The salvage
policy re-runs the paper's repacking procedure A_R over *all* active tasks
against the surviving capacity: copies of T in which every failed subtree
is pre-blocked (:class:`DegradedCopySet`), decreasing-size first-fit as in
Section 3.

Degraded Lemma 1 (docs/RESILIENCE.md): when every active task size is at
most the smallest maximal alive subtree — guaranteed by the fault-plan
generator's granularity rule — decreasing first-fit fills every degraded
copy completely before opening the last, so salvage uses exactly
``ceil(S / N_surviving)`` copies: the degraded optimum ``L*_deg``.

:class:`FaultTolerantAlgorithm` makes *every* registry algorithm runnable
under faults: while the machine is healthy it is a transparent proxy for
the wrapped algorithm; after the first failure it permanently switches to
degraded mode — copy-based first-fit (A_B) for new arrivals on the
surviving machine, salvage repacks at fault events, and budgeted A_R
repacks at the wrapped algorithm's own ``d`` (against ``d * N_surviving``).
The wrapped algorithm's healthy-machine guarantee is kept verbatim until
the failure; afterwards the degraded bound of Theorem 4.2's argument
applies (peak load <= (d+1) * max(ceil(s / N_surviving), 1)).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence

from repro.core.base import AllocationAlgorithm, Placement, Reallocation
from repro.core.repack import RepackResult
from repro.errors import AllocationError, SalvageError
from repro.machines.base import PartitionableMachine
from repro.machines.copies import BuddyCopy, CopySet
from repro.machines.degraded import DegradedView
from repro.machines.hierarchy import Hierarchy
from repro.tasks.task import Task
from repro.types import CopyId, NodeId, TaskId

__all__ = ["DegradedCopySet", "salvage_repack", "FaultTolerantAlgorithm"]


class DegradedCopySet(CopySet):
    """Copies of T with every failed subtree pre-blocked.

    Fresh copies come up with the failed nodes already withdrawn, so the
    first-fit rule can never place a task over dead PEs; everything else
    (creation order, leftmost allocation) matches the healthy
    :class:`~repro.machines.copies.CopySet` exactly.
    """

    __slots__ = ("_blocked_nodes",)

    def __init__(self, hierarchy: Hierarchy, blocked_nodes: Iterable[NodeId]):
        super().__init__(hierarchy)
        self._blocked_nodes = tuple(sorted(blocked_nodes))

    @property
    def blocked_nodes(self) -> tuple[NodeId, ...]:
        return self._blocked_nodes

    def _new_copy(self) -> BuddyCopy:
        copy = BuddyCopy(self.hierarchy)
        for node in self._blocked_nodes:
            copy.block(node)
        return copy


def salvage_repack(
    hierarchy: Hierarchy,
    active_tasks: Iterable[Task],
    failed_nodes: Sequence[NodeId],
) -> RepackResult:
    """Run A_R over ``active_tasks`` on the machine minus ``failed_nodes``.

    Identical to :func:`repro.core.repack.repack` except that every copy
    blocks the failed subtrees.  Raises :class:`SalvageError` when some
    task is larger than every surviving submachine (ruled out by the
    granularity rule, but reachable with hand-built plans).
    """
    ordered = sorted(active_tasks, key=lambda t: (-t.size, t.task_id))
    copies = DegradedCopySet(hierarchy, failed_nodes)
    mapping: Dict[TaskId, NodeId] = {}
    copy_of: Dict[TaskId, CopyId] = {}
    for task in ordered:
        try:
            cid, node = copies.first_fit(task.size)
        except AllocationError as exc:
            raise SalvageError(
                f"cannot salvage task {task.task_id} (size {task.size}): "
                f"no surviving {task.size}-PE submachine with failed "
                f"subtrees {list(failed_nodes)!r}"
            ) from exc
        mapping[task.task_id] = node
        copy_of[task.task_id] = cid
    return RepackResult(
        mapping=mapping,
        copy_of=copy_of,
        num_copies=copies.num_copies,
        copies=copies,
    )


class FaultTolerantAlgorithm(AllocationAlgorithm):
    """Registry-algorithm wrapper that survives PE failures.

    Healthy mode: pure delegation to ``inner`` (placements mirrored so the
    fault path always knows the active set).  Degraded mode — entered at
    the first failure, permanent for the run: arrivals first-fit into the
    current degraded copies, fault events trigger salvage repacks via
    :meth:`on_fault`, and the inner algorithm's ``d`` budget triggers full
    A_R repacks against surviving capacity.  The inner algorithm is not
    consulted again after the switch: its internal geometry (greedy load
    trees, healthy copies) is unsound on the degraded machine.
    """

    def __init__(
        self,
        machine: PartitionableMachine,
        inner: AllocationAlgorithm,
        view: DegradedView,
    ):
        super().__init__(machine)
        if inner.machine is not machine:
            raise SalvageError(
                "wrapped algorithm was constructed for a different machine"
            )
        self.inner = inner
        self.view = view
        self._degraded = False
        self._tasks: Dict[TaskId, Task] = {}
        self._nodes: Dict[TaskId, NodeId] = {}
        self._copies: Optional[DegradedCopySet] = None
        self._copy_of: Dict[TaskId, CopyId] = {}

    # -- Identification -----------------------------------------------------

    @property
    def name(self) -> str:
        return f"FT[{self.inner.name}]"

    @property
    def is_randomized(self) -> bool:
        return self.inner.is_randomized

    @property
    def reallocation_parameter(self) -> float:
        return self.inner.reallocation_parameter

    @property
    def is_degraded(self) -> bool:
        return self._degraded

    @property
    def active_tasks(self) -> Dict[TaskId, Task]:
        return dict(self._tasks)

    # -- Event hooks --------------------------------------------------------

    def on_arrival(self, task: Task) -> Placement:
        if not self._degraded:
            placement = self.inner.on_arrival(task)
            self._tasks[task.task_id] = task
            self._nodes[task.task_id] = placement.node
            return placement
        assert self._copies is not None
        try:
            cid, node = self._copies.first_fit(task.size)
        except AllocationError as exc:
            raise SalvageError(
                f"cannot place arriving task {task.task_id} "
                f"(size {task.size}) on the degraded machine"
            ) from exc
        self._tasks[task.task_id] = task
        self._nodes[task.task_id] = node
        self._copy_of[task.task_id] = cid
        return Placement(task.task_id, node)

    def on_departure(self, task: Task) -> None:
        if not self._degraded:
            self.inner.on_departure(task)
        else:
            assert self._copies is not None
            self._copies.free(
                self._copy_of.pop(task.task_id), self._nodes[task.task_id]
            )
        self._tasks.pop(task.task_id, None)
        self._nodes.pop(task.task_id, None)

    def kill(self, task: Task) -> None:
        """The task died (its PEs survive) — release it like a departure."""
        self.on_departure(task)

    def maybe_reallocate(self, arrived_since_last: int) -> Optional[Reallocation]:
        if not self._degraded:
            realloc = self.inner.maybe_reallocate(arrived_since_last)
            if realloc is not None:
                self._nodes.update(realloc.mapping)
            return realloc
        d = self.reallocation_parameter
        if math.isinf(d):
            return None
        if arrived_since_last < d * max(1, self.view.surviving_pes):
            return None
        return Reallocation(self._salvage())

    # -- Fault hooks --------------------------------------------------------

    def on_fault(self) -> Optional[Reallocation]:
        """React to a just-applied failure or repair on :attr:`view`.

        Called by the fault-aware simulator *after* the view is updated.
        Switches to (or stays in) degraded mode, repacks all active tasks
        onto the surviving capacity, and returns the remapping (``None``
        when nothing is active — the copies are still rebuilt so future
        arrivals respect the new fault set).
        """
        self._degraded = True
        mapping = self._salvage()
        return Reallocation(mapping) if mapping else None

    def on_resize(
        self, machine: PartitionableMachine, view: DegradedView
    ) -> Optional[Reallocation]:
        """Adopt a grown/shrunk ``machine`` and repack every active task.

        Called by the kernel *after* it swapped its own machine and view
        (so placements the repack returns are validated against the new
        tree).  The wrapper switches to degraded mode permanently: the
        inner algorithm's internal geometry (greedy load trees, healthy
        copies) was built for the old machine and is unsound on the new
        one, while copy-based first-fit is sound on any machine — and its
        degraded bound (``(d+1) * max(ceil(s / N_surviving), 1)``,
        evaluated per constant-N epoch) is exactly what the piecewise
        referee checks.  Returns the full remapping (``None`` when nothing
        is active; the copies are still rebuilt for future arrivals).
        """
        self.machine = machine
        self.view = view
        self._degraded = True
        mapping = self._salvage()
        return Reallocation(mapping) if mapping else None

    def _salvage(self) -> Dict[TaskId, NodeId]:
        result = salvage_repack(
            self.machine.hierarchy, self._tasks.values(), self.view.failed_nodes
        )
        assert isinstance(result.copies, DegradedCopySet)
        self._copies = result.copies
        self._copy_of = dict(result.copy_of)
        self._nodes = dict(result.mapping)
        return dict(result.mapping)

    def reset(self) -> None:
        self.inner.reset()
        self._degraded = False
        self._tasks.clear()
        self._nodes.clear()
        self._copies = None
        self._copy_of.clear()

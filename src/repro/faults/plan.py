"""Fault plans: scheduled failures, repairs and kills as first-class events.

A :class:`FaultPlan` is an ordered tuple of fault events:

* :class:`PEFailure` — an aligned subtree (a single PE when the node is a
  leaf) drops out; every task overlapping it is *orphaned* and must be
  salvaged onto surviving capacity;
* :class:`PERepair` — a previously-failed subtree returns to service;
* :class:`TaskKill` — one task dies (its PEs survive); its scheduled
  departure event, if any, becomes a no-op.

Fault events merge into the task-event stream with
:func:`merge_events`; at equal timestamps they sort *after* departures and
arrivals (priority 2), so a placement decided "at" a fault time still sees
the pre-fault machine and is immediately salvaged — the convention the
audit referees assume.

:func:`generate_fault_plan` draws admissible plans for fuzzing with one
structural constraint, the **granularity rule**: failures hit only nodes
whose subtree size is at least the largest task size ``w`` in the
sequence, and never reduce surviving capacity below ``w``.  Then every
``w``-aligned block is entirely failed or entirely alive, every maximal
alive subtree has size >= ``w``, and salvage repacking can never get stuck
(docs/RESILIENCE.md, degraded Lemma 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.errors import FaultPlanError
from repro.machines.hierarchy import Hierarchy
from repro.tasks.events import Event, event_priority, event_sort_key
from repro.tasks.sequence import TaskSequence
from repro.types import NodeId, TaskId, Time

__all__ = [
    "PEFailure",
    "PERepair",
    "TaskKill",
    "FaultEvent",
    "FaultPlan",
    "merge_events",
    "generate_fault_plan",
    "FAULT_EVENT_PRIORITY",
]

#: Sort priority of fault events at a shared timestamp: departures (0) and
#: arrivals (1) first, then faults.  Kept as a named constant for
#: documentation and tests; the authoritative table lives in
#: :func:`repro.tasks.events.event_priority`.
FAULT_EVENT_PRIORITY = 2


@dataclass(frozen=True, slots=True)
class PEFailure:
    """The aligned subtree rooted at ``node`` fails at ``time``."""

    time: Time
    node: NodeId

    @property
    def kind(self) -> str:
        return "failure"


@dataclass(frozen=True, slots=True)
class PERepair:
    """The previously-failed subtree at ``node`` returns at ``time``."""

    time: Time
    node: NodeId

    @property
    def kind(self) -> str:
        return "repair"


@dataclass(frozen=True, slots=True)
class TaskKill:
    """Task ``task_id`` dies at ``time`` (no-op if it is not active then)."""

    time: Time
    task_id: TaskId

    @property
    def kind(self) -> str:
        return "kill"


FaultEvent = Union[PEFailure, PERepair, TaskKill]

_KINDS = {"failure": PEFailure, "repair": PERepair, "kill": TaskKill}


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, chronologically-ordered schedule of fault events."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        times = [e.time for e in self.events]
        if any(b < a for a, b in zip(times, times[1:])):
            raise FaultPlanError("fault plan events must be time-ordered")

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def is_empty(self) -> bool:
        return not self.events

    @property
    def num_failures(self) -> int:
        return sum(1 for e in self.events if isinstance(e, PEFailure))

    @property
    def num_repairs(self) -> int:
        return sum(1 for e in self.events if isinstance(e, PERepair))

    @property
    def num_kills(self) -> int:
        return sum(1 for e in self.events if isinstance(e, TaskKill))

    # -- Validation ---------------------------------------------------------

    def validate_for(self, num_pes: int, *, max_task_size: Optional[int] = None) -> None:
        """Replay fail/repair admissibility on an ``num_pes``-PE machine.

        Raises :class:`FaultPlanError` on overlapped failures, repairs of
        healthy nodes, a failure that kills the whole machine, or — when
        ``max_task_size`` is given — a violation of the granularity rule.
        Every message names the offending event's plan index and
        timestamp, so a rejected generated plan (hundreds of events under
        churn) is findable without bisecting.
        """
        h = Hierarchy(num_pes)
        failed: set[NodeId] = set()
        failed_pes = 0
        for index, event in enumerate(self.events):
            where = f"event {index} (t={float(event.time):g})"
            if isinstance(event, PEFailure):
                if not h.is_valid_node(event.node):
                    raise FaultPlanError(
                        f"{where}: failure at node {event.node}: outside "
                        f"the {num_pes}-PE machine"
                    )
                size = h.subtree_size(event.node)
                if max_task_size is not None and size < max_task_size:
                    raise FaultPlanError(
                        f"{where}: failure at node {event.node} (size "
                        f"{size}) breaks the granularity rule for task "
                        f"size {max_task_size}"
                    )
                for f in failed:
                    if h.contains(f, event.node) or h.contains(event.node, f):
                        raise FaultPlanError(
                            f"{where}: failure at node {event.node} "
                            f"overlaps already-failed subtree {f}"
                        )
                floor = max_task_size if max_task_size is not None else 1
                if num_pes - failed_pes - size < floor:
                    raise FaultPlanError(
                        f"{where}: failure at node {event.node} leaves "
                        f"fewer than {floor} surviving PEs"
                    )
                failed.add(event.node)
                failed_pes += size
            elif isinstance(event, PERepair):
                if event.node not in failed:
                    raise FaultPlanError(
                        f"{where}: repair of node {event.node}, which is "
                        "not failed"
                    )
                failed.discard(event.node)
                failed_pes -= h.subtree_size(event.node)

    # -- Derived views -----------------------------------------------------

    def failure_intervals(self) -> List[Tuple[NodeId, float, float]]:
        """``(node, start, end)`` per failure; ``end`` is ``inf`` if never repaired.

        Each repair closes the earliest still-open failure of its node, so
        repeated fail/repair cycles of one node yield one interval each.
        """
        open_at: dict[NodeId, list[int]] = {}
        intervals: list[list] = []
        for event in self.events:
            if isinstance(event, PEFailure):
                intervals.append([event.node, float(event.time), math.inf])
                open_at.setdefault(event.node, []).append(len(intervals) - 1)
            elif isinstance(event, PERepair):
                stack = open_at.get(event.node)
                if stack:
                    intervals[stack.pop(0)][2] = float(event.time)
        return [(n, s, e) for n, s, e in intervals]

    def kills(self) -> List[Tuple[TaskId, float]]:
        """``(task_id, time)`` for every scheduled kill, in plan order."""
        return [
            (e.task_id, float(e.time))
            for e in self.events
            if isinstance(e, TaskKill)
        ]

    def min_surviving_pes(self, num_pes: int) -> int:
        """Minimum surviving PE count over the plan's lifetime."""
        h = Hierarchy(num_pes)
        failed_pes = 0
        low = num_pes
        for event in self.events:
            if isinstance(event, PEFailure):
                failed_pes += h.subtree_size(event.node)
            elif isinstance(event, PERepair):
                failed_pes -= h.subtree_size(event.node)
            low = min(low, num_pes - failed_pes)
        return low

    # -- Serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        out = []
        for event in self.events:
            record: dict = {"kind": event.kind, "time": float(event.time)}
            if isinstance(event, TaskKill):
                record["task_id"] = int(event.task_id)
            else:
                record["node"] = int(event.node)
            out.append(record)
        return {"events": out}

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        events: list[FaultEvent] = []
        for record in payload.get("events", []):
            kind = record.get("kind")
            if kind not in _KINDS:
                raise FaultPlanError(f"unknown fault event kind {kind!r}")
            if kind == "kill":
                events.append(TaskKill(record["time"], TaskId(record["task_id"])))
            else:
                events.append(_KINDS[kind](record["time"], NodeId(record["node"])))
        return cls(tuple(events))

    @classmethod
    def empty(cls) -> "FaultPlan":
        return cls(())


def merge_events(
    sequence: Iterable[Event], plan: FaultPlan
) -> List[Union[Event, FaultEvent]]:
    """Chronological merge of task events and fault events.

    Ties follow the canonical :func:`repro.tasks.events.event_sort_key`
    ordering — departures (0), arrivals (1), then faults (2) — and within a
    class the original order (stable sort; task events are listed before
    fault events, so a task event never sorts after a fault event of the
    same priority because the priorities never collide across the two
    groups).
    """
    assert all(event_priority(e) == FAULT_EVENT_PRIORITY for e in plan.events)
    return sorted([*sequence, *plan.events], key=event_sort_key)


def generate_fault_plan(
    num_pes: int,
    sequence: TaskSequence,
    rng: np.random.Generator,
    *,
    max_events: int = 6,
    kill_fraction: float = 0.25,
    repair_fraction: float = 0.25,
) -> FaultPlan:
    """Draw an admissible fault plan for ``sequence`` on an ``num_pes`` machine.

    The plan walks forward in time choosing, at each step, a failure, a
    repair of a currently-failed subtree, or a kill of a then-active task.
    Failures obey the granularity rule (see module docstring), so the
    resulting plan is always salvageable and the degraded Lemma 1 bound is
    checkable.  Returns an empty plan when the machine cannot lose capacity
    (e.g. a task spans the whole machine, so no node may fail).
    """
    h = Hierarchy(num_pes)
    tasks = sequence.tasks
    w_max = max((t.size for t in tasks.values()), default=1)

    finite_times = sorted(
        {float(t.arrival) for t in tasks.values()}
        | {float(t.departure) for t in tasks.values() if not math.isinf(t.departure)}
    )
    t_lo = finite_times[0] if finite_times else 0.0
    t_hi = finite_times[-1] if finite_times else 1.0
    span = max(t_hi - t_lo, 1.0)

    candidates_all = [
        v for v in range(1, 2 * num_pes) if h.subtree_size(v) >= w_max
    ]
    failed: set[NodeId] = set()
    failed_pes = 0
    killed: set[TaskId] = set()
    events: list[FaultEvent] = []
    num_events = int(rng.integers(1, max_events + 1))
    t = t_lo

    for step in range(num_events):
        t = t + float(rng.uniform(0.0, span / num_events))
        fail_candidates = [
            v
            for v in candidates_all
            if not any(h.contains(f, v) or h.contains(v, f) for f in failed)
            and num_pes - failed_pes - h.subtree_size(v) >= w_max
        ]
        live_tasks = [
            tid
            for tid, task in tasks.items()
            if tid not in killed and task.arrival <= t < task.departure
        ]
        actions: list[str] = []
        weights: list[float] = []
        if fail_candidates:
            actions.append("fail")
            weights.append(1.0 - kill_fraction - repair_fraction)
        if failed:
            actions.append("repair")
            weights.append(repair_fraction)
        if live_tasks:
            actions.append("kill")
            weights.append(kill_fraction)
        if not actions:
            break
        if step == 0 and "fail" in actions:
            action = "fail"  # every non-degenerate plan injects >= 1 failure
        else:
            p = np.asarray(weights) / sum(weights)
            action = str(rng.choice(actions, p=p))
        if action == "fail":
            node = int(rng.choice(fail_candidates))
            events.append(PEFailure(t, NodeId(node)))
            failed.add(NodeId(node))
            failed_pes += h.subtree_size(node)
        elif action == "repair":
            node = int(rng.choice(sorted(failed)))
            events.append(PERepair(t, NodeId(node)))
            failed.discard(NodeId(node))
            failed_pes -= h.subtree_size(node)
        else:
            tid = int(rng.choice(live_tasks))
            events.append(TaskKill(t, TaskId(tid)))
            killed.add(TaskId(tid))

    plan = FaultPlan(tuple(events))
    plan.validate_for(num_pes, max_task_size=w_max)
    return plan

"""Fault injection for partitionable machines (PR 3's Layer 1).

The paper studies *planned* disruption only — arrival volume crossing the
``dN`` budget.  This package adds the unplanned kind: PE/subtree failures,
repairs, and task kills scheduled by a :class:`~repro.faults.plan.FaultPlan`
and merged into the event stream by the
:class:`~repro.faults.injector.FaultAwareSimulator`.  Orphaned tasks are
reallocated by :func:`~repro.faults.salvage.salvage_repack` — procedure
A_R run on the *degraded* machine — and every algorithm in the registry
runs under faults via the
:class:`~repro.faults.salvage.FaultTolerantAlgorithm` wrapper.

See ``docs/RESILIENCE.md`` for the fault model and the degraded Lemma 1.
"""

from repro.faults.injector import FaultAwareSimulator, run_traced_with_faults
from repro.faults.plan import (
    FaultPlan,
    PEFailure,
    PERepair,
    TaskKill,
    generate_fault_plan,
    merge_events,
)
from repro.faults.salvage import (
    DegradedCopySet,
    FaultTolerantAlgorithm,
    salvage_repack,
)

__all__ = [
    "FaultPlan",
    "PEFailure",
    "PERepair",
    "TaskKill",
    "generate_fault_plan",
    "merge_events",
    "DegradedCopySet",
    "FaultTolerantAlgorithm",
    "salvage_repack",
    "FaultAwareSimulator",
    "run_traced_with_faults",
]

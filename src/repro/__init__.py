"""repro — reproduction of Gao, Rosenberg & Sitaraman (SPAA 1996),
"On Trading Task Reallocation for Thread Management in Partitionable
Multiprocessors".

The library simulates online processor allocation on hierarchically
decomposable (partitionable) multiprocessors and reproduces every bound in
the paper.  Quick tour::

    import numpy as np
    from repro import (TreeMachine, GreedyAlgorithm,
                       PeriodicReallocationAlgorithm, run)
    from repro.workloads import poisson_sequence

    machine = TreeMachine(64)
    sigma = poisson_sequence(64, 500, np.random.default_rng(0))
    result = run(machine, GreedyAlgorithm(machine), sigma)
    print(result.max_load, result.optimal_load, result.competitive_ratio)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.adversary import (
    AdversaryResult,
    DeterministicAdversary,
    sigma_r_sequence,
)
from repro.core import (
    AllocationAlgorithm,
    BasicAlgorithm,
    GreedyAlgorithm,
    IncrementalReallocationAlgorithm,
    ObliviousRandomAlgorithm,
    RandomizedPeriodicAlgorithm,
    OptimalReallocatingAlgorithm,
    PeriodicReallocationAlgorithm,
    Placement,
    Reallocation,
    RepackResult,
    TwoChoiceAlgorithm,
    basic_copy_bound,
    deterministic_lower_factor,
    deterministic_upper_factor,
    greedy_upper_bound_factor,
    optimal_load,
    randomized_lower_factor,
    randomized_upper_factor,
    repack,
)
from repro.errors import ReproError
from repro.machines import (
    Butterfly,
    FatTree,
    Hierarchy,
    Hypercube,
    LoadTracker,
    Mesh2D,
    PartitionableMachine,
    TreeMachine,
)
from repro.sim import (
    MigrationCostModel,
    RunResult,
    Simulator,
    expected_max_load,
    measure_slowdowns,
    run,
    run_many,
)
from repro.tasks import (
    Arrival,
    Departure,
    SequenceBuilder,
    Task,
    TaskSequence,
    figure1_sequence,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    # machines
    "PartitionableMachine",
    "Hierarchy",
    "TreeMachine",
    "Hypercube",
    "FatTree",
    "Mesh2D",
    "Butterfly",
    "LoadTracker",
    # tasks
    "Task",
    "Arrival",
    "Departure",
    "TaskSequence",
    "SequenceBuilder",
    "figure1_sequence",
    # algorithms
    "AllocationAlgorithm",
    "Placement",
    "Reallocation",
    "GreedyAlgorithm",
    "BasicAlgorithm",
    "OptimalReallocatingAlgorithm",
    "PeriodicReallocationAlgorithm",
    "ObliviousRandomAlgorithm",
    "RandomizedPeriodicAlgorithm",
    "IncrementalReallocationAlgorithm",
    "TwoChoiceAlgorithm",
    "repack",
    "RepackResult",
    # bounds
    "optimal_load",
    "greedy_upper_bound_factor",
    "basic_copy_bound",
    "deterministic_upper_factor",
    "deterministic_lower_factor",
    "randomized_upper_factor",
    "randomized_lower_factor",
    # adversaries
    "DeterministicAdversary",
    "AdversaryResult",
    "sigma_r_sequence",
    # simulation
    "Simulator",
    "RunResult",
    "MigrationCostModel",
    "run",
    "run_many",
    "expected_max_load",
    "measure_slowdowns",
]

"""Discrete-event simulation: engine, metrics, costs, and the slowdown model.

* :class:`~repro.sim.engine.Simulator` — validated event-by-event driver.
* :class:`~repro.sim.engine.RunResult` — per-run outcome bundle.
* :class:`~repro.sim.metrics.MetricsCollector` — load series, fairness,
  reallocation accounting.
* :class:`~repro.sim.realloc_cost.MigrationCostModel` — checkpoint-and-move
  pricing of reallocations.
* :func:`~repro.sim.slowdown.measure_slowdowns` — round-robin time-sharing
  slowdown measurement (the paper's thread-management motivation).
* :func:`~repro.sim.runner.run` / :func:`~repro.sim.runner.run_many` /
  :func:`~repro.sim.runner.expected_max_load` — one-call helpers.
"""

from repro.sim.archive import load_run, machine_from_descriptor, save_run
from repro.sim.audit import AuditReport, audit_run
from repro.sim.closedloop import (
    ClosedLoopResult,
    TaskOutcome,
    simulate_shared_closed_loop,
)
from repro.sim.engine import RunResult, Simulator
from repro.sim.queueing import simulate_exclusive_queueing
from repro.sim.metrics import (
    LoadTimeSeries,
    MetricsCollector,
    ReallocationStats,
    jain_fairness,
)
from repro.sim.realloc_cost import MigrationCharge, MigrationCostModel
from repro.sim.runner import (
    AlgorithmFactory,
    SweepPoint,
    expected_max_load,
    run,
    run_many,
    run_traced,
)
from repro.sim.slowdown import (
    SlowdownReport,
    TaskSlowdown,
    measure_slowdowns,
    measure_slowdowns_dynamic,
)

__all__ = [
    "Simulator",
    "ClosedLoopResult",
    "TaskOutcome",
    "simulate_shared_closed_loop",
    "simulate_exclusive_queueing",
    "AuditReport",
    "audit_run",
    "save_run",
    "load_run",
    "machine_from_descriptor",
    "RunResult",
    "MetricsCollector",
    "LoadTimeSeries",
    "ReallocationStats",
    "jain_fairness",
    "MigrationCostModel",
    "MigrationCharge",
    "run",
    "run_many",
    "run_traced",
    "expected_max_load",
    "AlgorithmFactory",
    "SweepPoint",
    "SlowdownReport",
    "TaskSlowdown",
    "measure_slowdowns",
    "measure_slowdowns_dynamic",
]

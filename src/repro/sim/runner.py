"""High-level one-call helpers for running experiments.

Most experiments are "make algorithm, run sequence, read max load"; these
helpers remove the boilerplate and make the benches and examples read like
the paper's prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence as TypingSequence

import numpy as np

from repro.core.base import AllocationAlgorithm
from repro.machines.base import PartitionableMachine
from repro.sim.engine import RunResult, Simulator
from repro.sim.parallel import parallel_map
from repro.sim.realloc_cost import MigrationCostModel
from repro.tasks.sequence import TaskSequence

__all__ = [
    "run",
    "run_traced",
    "run_many",
    "expected_max_load",
    "AlgorithmFactory",
    "SweepPoint",
]

#: A factory producing a fresh algorithm for a given machine — the unit the
#: sweep helpers parallelise over.  (Fresh instances per run keep randomized
#: algorithms' repetitions independent and deterministic under seeding.)
AlgorithmFactory = Callable[[PartitionableMachine], AllocationAlgorithm]


def run(
    machine: PartitionableMachine,
    algorithm: AllocationAlgorithm,
    sequence: TaskSequence,
    cost_model: Optional[MigrationCostModel] = None,
) -> RunResult:
    """Run one algorithm over one sequence and return the result."""
    return Simulator(machine, algorithm, cost_model).run(sequence)


def run_traced(
    machine: PartitionableMachine,
    algorithm: AllocationAlgorithm,
    sequence: TaskSequence,
    cost_model: Optional[MigrationCostModel] = None,
) -> tuple[RunResult, dict]:
    """Run one algorithm and return ``(result, placement_intervals)``.

    The hook the differential-verification harness drives: the placement
    history is what the independent referees (:func:`repro.sim.audit.audit_run`
    and :func:`repro.verify.oracle.oracle_audit`) re-derive loads from, and
    the engine's own invariants are cross-checked before returning.  Module
    level and picklable, so harness checks fan out over worker processes.
    """
    sim = Simulator(machine, algorithm, cost_model)
    result = sim.run(sequence)
    sim.check_consistency()
    return result, sim.placement_intervals()


def _run_fresh(
    machine: PartitionableMachine,
    factory: AlgorithmFactory,
    sequence: TaskSequence,
    cost_model: Optional[MigrationCostModel],
) -> RunResult:
    """Worker for :func:`run_many`: build a fresh algorithm and run.

    Module-level so it pickles into :class:`ProcessPoolExecutor` workers.
    """
    return Simulator(machine, factory(machine), cost_model).run(sequence)


def run_many(
    machine: PartitionableMachine,
    factory: AlgorithmFactory,
    sequences: Iterable[TaskSequence],
    cost_model: Optional[MigrationCostModel] = None,
    *,
    jobs: int | None = None,
) -> list[RunResult]:
    """Run a fresh algorithm instance over each sequence.

    ``jobs`` fans the sequences out over worker processes (``-1`` = all
    cores; ``None``/``0``/``1`` = serial).  Runs are independent and each
    worker builds its own simulator, so results are identical to the
    serial path — ``machine``, ``factory`` and ``cost_model`` must then
    be picklable (a lambda factory is not; algorithm classes are).
    """
    return parallel_map(
        _run_fresh,
        [(machine, factory, seq, cost_model) for seq in sequences],
        jobs=jobs,
    )


def expected_max_load(
    machine: PartitionableMachine,
    factory: AlgorithmFactory,
    sequence: TaskSequence,
    repetitions: int,
) -> tuple[float, np.ndarray]:
    """Estimate E[L_R(sigma)] for a randomized algorithm by repetition.

    Returns the sample mean and the raw per-repetition peak loads, so
    callers can compute confidence intervals
    (:func:`repro.analysis.stats.bootstrap_ci`).
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    peaks = np.empty(repetitions, dtype=np.int64)
    for i in range(repetitions):
        result = Simulator(machine, factory(machine)).run(sequence)
        peaks[i] = result.max_load
    return float(peaks.mean()), peaks


@dataclass(frozen=True)
class SweepPoint:
    """One (parameter, result) pair of a sweep, for tabulation."""

    parameter: float
    result: RunResult

    @property
    def max_load(self) -> int:
        return self.result.max_load

    @property
    def ratio(self) -> float:
        return self.result.competitive_ratio

"""Fluid round-robin time-sharing model — the thread-management substrate.

Section 2 of the paper notes that "when tasks allocated to a single PE are
time-shared in a round-robin fashion, the worst slowdown ever experienced
by a user is proportional to the maximum load of any PE in the submachine
allocated to it".  This module makes that interpretation executable so the
E8 bench can *measure* the load -> slowdown relationship instead of assuming
it.

Model.  Each PE round-robins among the active tasks assigned to it, so a
task sharing a PE with ``lambda`` tasks in total advances at rate
``1/lambda`` on that PE.  A parallel task advances at the rate of its
slowest PE (a bulk-synchronous view): instantaneous rate
``1 / max(load over its PEs)``.  Given fixed placements over time (from a
:class:`~repro.sim.engine.RunResult`), each task's *completion time* is the
solution of ``integral of rate dt = work``; its *slowdown* is completion
time divided by its dedicated-machine runtime (``work``).

We integrate the piecewise-constant rate field exactly: rates only change
at arrival/departure instants, so the integral is a sum over inter-event
intervals — no time-stepping error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.machines.base import PartitionableMachine
from repro.tasks.sequence import TaskSequence
from repro.types import NodeId, TaskId, Time

__all__ = [
    "SlowdownReport",
    "TaskSlowdown",
    "load_target_for_slowdown",
    "measure_slowdowns",
    "measure_slowdowns_dynamic",
]


def load_target_for_slowdown(slowdown_target: float) -> int:
    """Max PE load compatible with a worst-case slowdown target.

    Under the fluid round-robin model a resident task's worst slowdown is
    its submachine's max PE load (every PE at load ``lambda`` advances
    each task at rate ``1/lambda``), so a slowdown target ``s`` tolerates
    integer loads up to ``floor(s)``.  The floor is the conservative
    direction: a submachine at load ``floor(s) + 1`` would already exceed
    the target.  Targets below 1 are impossible — a task alone on a
    dedicated submachine has load (and slowdown) exactly 1.
    """
    import math

    s = float(slowdown_target)
    if not s >= 1.0:
        from repro.errors import SimulationError

        raise SimulationError(
            f"slowdown target must be >= 1 (dedicated-machine slowdown), "
            f"got {slowdown_target!r}"
        )
    return int(math.floor(s + 1e-9))


@dataclass(frozen=True)
class TaskSlowdown:
    """Slowdown outcome for one task under time-sharing."""

    task_id: TaskId
    work: float
    completed_work: float
    busy_time: Time          # wall time the task was resident
    effective_rate: float    # completed_work / busy_time
    slowdown: float          # busy_time needed per unit work = 1/effective_rate
    max_observed_load: int   # max PE load in its submachine while resident


@dataclass(frozen=True)
class SlowdownReport:
    """Per-task slowdowns plus the aggregate the paper's claim is about."""

    per_task: Mapping[TaskId, TaskSlowdown]

    @property
    def worst_slowdown(self) -> float:
        return max((s.slowdown for s in self.per_task.values()), default=0.0)

    @property
    def mean_slowdown(self) -> float:
        if not self.per_task:
            return 0.0
        return sum(s.slowdown for s in self.per_task.values()) / len(self.per_task)

    def worst_max_load(self) -> int:
        return max((s.max_observed_load for s in self.per_task.values()), default=0)


def measure_slowdowns(
    machine: PartitionableMachine,
    sequence: TaskSequence,
    placements: Mapping[TaskId, NodeId],
    horizon: Time | None = None,
) -> SlowdownReport:
    """Integrate round-robin progress for every task under fixed placements.

    ``placements`` maps every task of the sequence to the node it occupied
    for its whole residence — exact for the non-reallocating algorithms.
    For reallocating algorithms, use :func:`measure_slowdowns_dynamic`
    with the simulator's :meth:`~repro.sim.engine.Simulator.placement_intervals`,
    which reflects mid-life migrations.  Tasks without a finite departure
    are integrated up to ``horizon`` (default: the sequence horizon).
    """
    end_time = sequence.horizon() if horizon is None else horizon
    intervals: dict[TaskId, list[tuple[Time, Time, NodeId]]] = {}
    for tid, task in sequence.tasks.items():
        end = min(task.departure, end_time)
        if end > task.arrival:
            intervals[tid] = [(task.arrival, end, placements[tid])]
        else:
            intervals[tid] = []
    return measure_slowdowns_dynamic(machine, sequence, intervals, horizon=horizon)


def measure_slowdowns_dynamic(
    machine: PartitionableMachine,
    sequence: TaskSequence,
    intervals: Mapping[TaskId, list[tuple[Time, Time, NodeId]]],
    horizon: Time | None = None,
) -> SlowdownReport:
    """Exact round-robin integration over per-task placement *histories*.

    ``intervals[tid]`` is the list of ``(start, end, node)`` residence
    segments of task ``tid`` (``end`` may be ``inf``), as produced by
    :meth:`repro.sim.engine.Simulator.placement_intervals`.  The rate field
    is piecewise constant between segment boundaries, so the integral is
    exact; a task that migrates mid-life contributes load to different PEs
    in different windows, exactly as the real machine would.
    """
    h = machine.hierarchy
    tasks = sequence.tasks
    end_time = sequence.horizon() if horizon is None else horizon

    # Clip segments to the horizon and precompute leaf spans.
    clipped: dict[TaskId, list[tuple[Time, Time, tuple[int, int]]]] = {}
    breakpoints: set[Time] = set()
    for tid in tasks:
        segs = []
        for start, end, node in intervals.get(tid, []):
            end = min(end, end_time)
            if end > start:
                segs.append((start, end, h.leaf_span(node)))
                breakpoints.add(start)
                breakpoints.add(end)
        clipped[tid] = segs
    times = sorted(breakpoints)

    completed: dict[TaskId, float] = {tid: 0.0 for tid in tasks}
    busy: dict[TaskId, Time] = {tid: 0.0 for tid in tasks}
    max_load_seen: dict[TaskId, int] = {tid: 0 for tid in tasks}

    import numpy as np

    for idx in range(len(times)):
        t0 = times[idx]
        t1 = times[idx + 1] if idx + 1 < len(times) else end_time
        if t1 <= t0:
            continue
        # Segments covering [t0, t1): exactly one per resident task, since
        # segment boundaries are breakpoints.
        window: list[tuple[TaskId, tuple[int, int]]] = []
        for tid, segs in clipped.items():
            for start, end, span in segs:
                if start <= t0 < end:
                    window.append((tid, span))
                    break
        if not window:
            continue
        loads = np.zeros(machine.num_pes, dtype=np.int64)
        for _tid, (lo, hi) in window:
            loads[lo:hi] += 1
        dt = t1 - t0
        for tid, (lo, hi) in window:
            peak = int(loads[lo:hi].max())
            max_load_seen[tid] = max(max_load_seen[tid], peak)
            completed[tid] += dt / peak
            busy[tid] += dt

    per_task: dict[TaskId, TaskSlowdown] = {}
    for tid, task in tasks.items():
        b = busy[tid]
        c = completed[tid]
        rate = (c / b) if b > 0 else 1.0
        per_task[tid] = TaskSlowdown(
            task_id=tid,
            work=task.work,
            completed_work=c,
            busy_time=b,
            effective_rate=rate,
            slowdown=(1.0 / rate) if rate > 0 else float("inf"),
            max_observed_load=max_load_seen[tid],
        )
    return SlowdownReport(per_task=per_task)

"""Work-driven ("closed-loop") simulation: departures happen when work ends.

The main :class:`~repro.sim.engine.Simulator` replays a *trace*: departure
times are part of the input, which is the right model for the paper's
load analysis.  To compare *response times* across operating models (the
paper's time-shared service vs the related work's exclusive queueing),
departures must instead be computed from the service each task actually
receives: a task on a crowded PE takes longer, departs later, and crowds
others longer — feedback a trace cannot express.

:func:`simulate_shared_closed_loop` runs that feedback loop for the
paper's model: arrivals are placed immediately by any
:class:`~repro.core.base.AllocationAlgorithm`; every active task advances
at the fluid round-robin rate ``1 / max-load-of-its-span``; a task departs
the moment its ``work`` completes.  The integration is exact: rates are
piecewise constant between events, and the next departure time under
current rates is known in closed form.

Placement state is owned by the shared
:class:`~repro.kernel.AllocationKernel` — the same validation, d-budget
enforcement and migration pricing as the trace-driven simulator — so this
driver only decides *when* events happen, never *whether they are legal*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.base import AllocationAlgorithm
from repro.errors import SimulationError
from repro.kernel import AllocationKernel
from repro.machines.base import PartitionableMachine
from repro.tasks.events import Arrival, Departure
from repro.tasks.task import Task
from repro.types import TaskId

__all__ = ["ClosedLoopResult", "TaskOutcome", "simulate_shared_closed_loop"]


@dataclass(frozen=True)
class TaskOutcome:
    """Service record of one task in a work-driven run."""

    task_id: TaskId
    work: float
    arrival: float
    start: float          # == arrival for the shared model (immediate service)
    completion: float
    response_time: float  # completion - arrival
    slowdown: float       # response_time / work


@dataclass
class ClosedLoopResult:
    """All task outcomes plus machine-level aggregates."""

    outcomes: dict[TaskId, TaskOutcome]
    makespan: float
    max_load: int
    #: Time-integral of busy PEs / (N * makespan).
    utilization: float

    @property
    def mean_response(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.response_time for o in self.outcomes.values()) / len(self.outcomes)

    @property
    def max_response(self) -> float:
        return max((o.response_time for o in self.outcomes.values()), default=0.0)

    @property
    def mean_slowdown(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.slowdown for o in self.outcomes.values()) / len(self.outcomes)

    @property
    def worst_slowdown(self) -> float:
        return max((o.slowdown for o in self.outcomes.values()), default=0.0)

    def percentile_response(self, q: float) -> float:
        if not self.outcomes:
            return 0.0
        return float(
            np.percentile([o.response_time for o in self.outcomes.values()], q)
        )


def simulate_shared_closed_loop(
    machine: PartitionableMachine,
    algorithm: AllocationAlgorithm,
    arrivals: Sequence[Task],
) -> ClosedLoopResult:
    """Run the paper's shared model with endogenous departures.

    ``arrivals`` supply id, size, arrival time and ``work``; their
    ``departure`` fields are ignored (departure is what we compute).  The
    algorithm is driven through its normal hooks; reallocations offered via
    ``maybe_reallocate`` are applied by the kernel (spans change
    mid-flight, and the integration accounts for it exactly).
    """
    if algorithm.machine is not machine:
        raise SimulationError("algorithm was built for a different machine instance")
    n = machine.num_pes
    pending = sorted(arrivals, key=lambda t: (t.arrival, t.task_id))
    for t in pending:
        if t.work <= 0:
            raise SimulationError(f"task {t.task_id} has non-positive work")

    kernel = AllocationKernel(machine, algorithm, collect_leaf_snapshots=False)
    remaining: dict[TaskId, float] = {}
    outcomes: dict[TaskId, TaskOutcome] = {}

    now = 0.0
    busy_integral = 0.0
    next_arrival_idx = 0

    def rate_of(tid: TaskId) -> float:
        # Max leaf load over the task's span — O(log N) via the tracker.
        return 1.0 / float(kernel.submachine_load(kernel._placements[tid]))

    def advance(dt: float) -> None:
        nonlocal busy_integral
        if dt <= 0:
            return
        for tid in remaining:
            remaining[tid] -= dt * rate_of(tid)
        busy_integral += dt * float((kernel.leaf_loads(copy=False) > 0).sum())

    guard = 0
    while next_arrival_idx < len(pending) or remaining:
        guard += 1
        if guard > 10 * len(pending) + 10_000:
            raise SimulationError("closed-loop simulation failed to converge")
        # Earliest completion under current (constant) rates.
        dt_completion = math.inf
        completing: TaskId | None = None
        for tid, rem in remaining.items():
            dt = rem / rate_of(tid)
            if dt < dt_completion:
                dt_completion = dt
                completing = tid
        dt_arrival = math.inf
        if next_arrival_idx < len(pending):
            dt_arrival = pending[next_arrival_idx].arrival - now
        if dt_arrival == math.inf and dt_completion == math.inf:
            break  # nothing active, nothing pending

        if dt_completion <= dt_arrival:
            advance(dt_completion)
            now += dt_completion
            assert completing is not None
            task = kernel._tasks[completing]
            del remaining[completing]
            kernel.apply(Departure(now, completing))
            outcomes[completing] = TaskOutcome(
                task_id=completing,
                work=task.work,
                arrival=task.arrival,
                start=task.arrival,
                completion=now,
                response_time=now - task.arrival,
                slowdown=(now - task.arrival) / task.work,
            )
        else:
            advance(dt_arrival)
            now += dt_arrival
            task = pending[next_arrival_idx]
            next_arrival_idx += 1
            kernel.apply(Arrival(now, task))
            remaining[task.task_id] = task.work

    makespan = now
    utilization = 0.0 if makespan <= 0 else busy_integral / (n * makespan)
    return ClosedLoopResult(
        outcomes=outcomes,
        makespan=makespan,
        max_load=kernel.metrics.max_load,
        utilization=utilization,
    )

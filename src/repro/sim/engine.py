"""The batch discrete-event simulator — a thin driver over the kernel.

The :class:`Simulator` drives one algorithm over one
:class:`~repro.tasks.sequence.TaskSequence` (already ordered, with
same-time departures before arrivals).  All allocation state — placement
validation, the d-budget gate, the
:class:`~repro.machines.loads.LoadTracker`, metrics, and the placement
history — lives in the shared
:class:`~repro.kernel.AllocationKernel`; the simulator contributes only
the batch loop, the observer hooks, and the :class:`RunResult` bundle.
Streaming sessions (:mod:`repro.service`) and the fault injector drive the
very same kernel, so every operating mode enforces the same validation
discipline:

1. the algorithm's placement must root a submachine of exactly the task's
   size;
2. a reallocation is accepted only when the cumulative arrival volume
   since the last one has reached ``d * N`` (``d = 0`` always may;
   ``d = inf`` never may); accepted remaps are diffed against current
   placements and migrations priced by the cost model;
3. metrics are recorded after every event, so the reported peak is exact.

The kernel deliberately re-derives loads itself rather than trusting any
algorithm-internal tracker: an algorithm bug (e.g. overlapping copies or a
dropped task) surfaces as a hard :class:`~repro.errors.SimulationError`
instead of silently flattering the results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.base import AllocationAlgorithm
from repro.kernel import AllocationKernel
from repro.machines.base import PartitionableMachine
from repro.sim.metrics import MetricsCollector
from repro.sim.realloc_cost import MigrationCostModel
from repro.tasks.sequence import TaskSequence
from repro.tasks.task import Task
from repro.types import NodeId, TaskId

__all__ = ["Simulator", "RunResult"]


@dataclass
class RunResult:
    """Outcome of one algorithm on one sequence on one machine."""

    algorithm_name: str
    machine_description: dict
    metrics: MetricsCollector
    optimal_load: int
    #: Final task -> node placements (empty if all tasks departed).
    final_placements: dict[TaskId, NodeId] = field(default_factory=dict)

    @property
    def max_load(self) -> int:
        """``L_A(sigma)`` — the paper's figure of merit."""
        return self.metrics.max_load

    @property
    def competitive_ratio(self) -> float:
        """``L_A(sigma) / L*`` (inf if L* = 0 but load was incurred)."""
        if self.optimal_load == 0:
            return 0.0 if self.max_load == 0 else float("inf")
        return self.max_load / self.optimal_load

    def to_dict(self, include_series: bool = False) -> dict:
        """JSON-serialisable summary (for result archives and reports).

        The per-event load series is O(events) and dominates the payload
        for long runs, so it is omitted unless ``include_series=True``.
        """
        realloc = self.metrics.realloc
        payload = {
            "algorithm": self.algorithm_name,
            "machine": dict(self.machine_description),
            "max_load": self.max_load,
            "optimal_load": self.optimal_load,
            "competitive_ratio": self.competitive_ratio,
            "events": self.metrics.events_processed,
            "reallocations": realloc.num_reallocations,
            "migrations": realloc.num_migrations,
            "traffic_pe_hops": realloc.traffic_pe_hops,
            "checkpoint_bytes": realloc.checkpoint_bytes,
            "fairness_at_peak": self.metrics.fairness_at_peak(),
        }
        if self.metrics.faults.any_faults:
            payload["faults"] = self.metrics.faults.to_dict()
        if include_series:
            times, loads = self.metrics.series.as_arrays()
            payload["load_series"] = {
                "times": [float(t) for t in times],
                "max_loads": [int(v) for v in loads],
            }
        return payload


class Simulator:
    """Drives one algorithm over one sequence with validation and metering."""

    def __init__(
        self,
        machine: PartitionableMachine,
        algorithm: AllocationAlgorithm,
        cost_model: Optional[MigrationCostModel] = None,
        *,
        collect_leaf_snapshots: bool = True,
        batch_backend: str = "python",
    ):
        # Stashed before _build_kernel so subclass hooks can forward it.
        self._batch_backend = batch_backend
        self.kernel = self._build_kernel(
            machine, algorithm, cost_model, collect_leaf_snapshots
        )
        self._observers: list = []

    def _build_kernel(
        self,
        machine: PartitionableMachine,
        algorithm: AllocationAlgorithm,
        cost_model: Optional[MigrationCostModel],
        collect_leaf_snapshots: bool,
    ) -> AllocationKernel:
        """Subclass hook: the fault injector builds a fault-capable kernel."""
        return AllocationKernel(
            machine,
            algorithm,
            cost_model,
            collect_leaf_snapshots=collect_leaf_snapshots,
            batch_backend=self._batch_backend,
        )

    # -- Kernel state, re-exported for drivers, tests and observers ----------

    @property
    def machine(self) -> PartitionableMachine:
        return self.kernel.machine

    @property
    def algorithm(self) -> AllocationAlgorithm:
        algorithm = self.kernel.algorithm
        assert algorithm is not None  # batch simulators always drive one
        return algorithm

    @property
    def cost_model(self) -> MigrationCostModel:
        return self.kernel.cost_model

    @property
    def collect_leaf_snapshots(self) -> bool:
        return self.kernel.collect_leaf_snapshots

    @property
    def metrics(self) -> MetricsCollector:
        return self.kernel.metrics

    @property
    def _loads(self):
        return self.kernel._loads

    @property
    def _placements(self) -> dict[TaskId, NodeId]:
        return self.kernel._placements

    @property
    def _tasks(self) -> dict[TaskId, Task]:
        return self.kernel._tasks

    @property
    def _arrived_since_realloc(self) -> int:
        return self.kernel._arrived_since_realloc

    @property
    def _placement_log(self) -> dict[TaskId, list[tuple[float, NodeId]]]:
        return self.kernel._placement_log

    @property
    def _departure_times(self) -> dict[TaskId, float]:
        return self.kernel._departure_times

    # -- Public API ------------------------------------------------------------

    def add_observer(self, callback) -> None:
        """Register ``callback(simulator, event)`` to run after every event.

        Observers see the post-event state (placements, loads, metrics
        already updated) — the hook the streaming-metrics examples use
        instead of re-implementing the event loop.
        """
        self._observers.append(callback)

    def step(self, event) -> None:
        """Process one event and record metrics."""
        self.kernel.apply(event)
        for callback in self._observers:
            callback(self, event)

    def run(self, sequence: TaskSequence) -> RunResult:
        """Drive the whole sequence and return the result bundle."""
        for event in sequence:
            self.step(event)
        return self._result(sequence)

    def run_batched(self, sequence: TaskSequence, batch_size: int = 256) -> RunResult:
        """Drive the sequence in ``batch_size`` chunks via ``apply_batch``.

        Bit-identical results to :meth:`run` (the kernel guarantees it),
        but the per-event metering is amortised and, with a non-python
        ``batch_backend``, whole batches execute columnar — the fast path
        for large offline sweeps.  Observer hooks are per-event by nature
        and are not invoked; use :meth:`run` when observers are attached.
        """
        if self._observers:
            raise ValueError(
                "run_batched() does not deliver per-event observer "
                "callbacks; use run() with observers attached"
            )
        events = list(sequence)
        for start in range(0, len(events), batch_size):
            self.kernel.apply_batch(events[start : start + batch_size])
        return self._result(sequence)

    def _result(self, sequence: TaskSequence) -> RunResult:
        return RunResult(
            algorithm_name=self.algorithm.name,
            machine_description=self.machine.describe(),
            metrics=self.metrics,
            optimal_load=sequence.optimal_load(self.machine.num_pes),
            final_placements=dict(self._placements),
        )

    # -- State inspection (used by the adversary and by tests) ---------------------

    @property
    def current_max_load(self) -> int:
        return self.kernel.current_max_load

    @property
    def active_tasks(self) -> dict[TaskId, Task]:
        return self.kernel.active_tasks

    @property
    def placements(self) -> dict[TaskId, NodeId]:
        return self.kernel.placements

    def leaf_loads(self) -> np.ndarray:
        return self.kernel.leaf_loads()

    def submachine_load(self, node: NodeId) -> int:
        return self.kernel.submachine_load(node)

    def active_size(self) -> int:
        return self.kernel.active_size()

    def placement_intervals(self) -> dict[TaskId, list[tuple[float, float, NodeId]]]:
        """Exact (start, end, node) residence segments for every task seen.

        ``end`` is the task's departure time (``inf`` if it never departed)
        or the instant a reallocation moved it.  This is the input the
        slowdown model integrates over — it reflects what actually ran,
        including mid-life migrations.
        """
        return self.kernel.placement_intervals()

    def check_consistency(self) -> None:
        """Cross-check tracker vs. placements (test helper)."""
        self.kernel.check_consistency()

"""The discrete-event simulator that drives algorithms over task sequences.

The :class:`Simulator` owns the authoritative machine state.  For each
event of a :class:`~repro.tasks.sequence.TaskSequence` (already ordered,
with same-time departures before arrivals) it:

1. calls the algorithm's hook and validates the returned placement —
   the node must root a submachine of exactly the task's size;
2. applies it to the machine's :class:`~repro.machines.loads.LoadTracker`;
3. after each arrival, offers the algorithm a reallocation and *enforces
   the d-budget*: a reallocation is accepted only when the cumulative
   arrival volume since the last one has reached ``d * N`` (``d = 0``
   always may; ``d = inf`` never may).  Accepted remaps are diffed against
   current placements, migrations are priced by the cost model, and the
   arrival counter resets;
4. records metrics after every event, so the reported peak load is exact.

The simulator deliberately re-derives loads itself rather than trusting any
algorithm-internal tracker: an algorithm bug (e.g. overlapping copies or a
dropped task) surfaces as a hard :class:`~repro.errors.SimulationError`
instead of silently flattering the results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.base import AllocationAlgorithm, Reallocation
from repro.errors import PlacementError, ReallocationError, SimulationError
from repro.machines.base import PartitionableMachine
from repro.sim.metrics import MetricsCollector
from repro.sim.realloc_cost import MigrationCostModel
from repro.tasks.events import Arrival, Departure
from repro.tasks.sequence import TaskSequence
from repro.tasks.task import Task
from repro.types import NodeId, TaskId

__all__ = ["Simulator", "RunResult"]


@dataclass
class RunResult:
    """Outcome of one algorithm on one sequence on one machine."""

    algorithm_name: str
    machine_description: dict
    metrics: MetricsCollector
    optimal_load: int
    #: Final task -> node placements (empty if all tasks departed).
    final_placements: dict[TaskId, NodeId] = field(default_factory=dict)

    @property
    def max_load(self) -> int:
        """``L_A(sigma)`` — the paper's figure of merit."""
        return self.metrics.max_load

    @property
    def competitive_ratio(self) -> float:
        """``L_A(sigma) / L*`` (inf if L* = 0 but load was incurred)."""
        if self.optimal_load == 0:
            return 0.0 if self.max_load == 0 else float("inf")
        return self.max_load / self.optimal_load

    def to_dict(self, include_series: bool = False) -> dict:
        """JSON-serialisable summary (for result archives and reports).

        The per-event load series is O(events) and dominates the payload
        for long runs, so it is omitted unless ``include_series=True``.
        """
        realloc = self.metrics.realloc
        payload = {
            "algorithm": self.algorithm_name,
            "machine": dict(self.machine_description),
            "max_load": self.max_load,
            "optimal_load": self.optimal_load,
            "competitive_ratio": self.competitive_ratio,
            "events": self.metrics.events_processed,
            "reallocations": realloc.num_reallocations,
            "migrations": realloc.num_migrations,
            "traffic_pe_hops": realloc.traffic_pe_hops,
            "checkpoint_bytes": realloc.checkpoint_bytes,
            "fairness_at_peak": self.metrics.fairness_at_peak(),
        }
        if self.metrics.faults.any_faults:
            payload["faults"] = self.metrics.faults.to_dict()
        if include_series:
            times, loads = self.metrics.series.as_arrays()
            payload["load_series"] = {
                "times": [float(t) for t in times],
                "max_loads": [int(v) for v in loads],
            }
        return payload


class Simulator:
    """Drives one algorithm over one sequence with validation and metering."""

    def __init__(
        self,
        machine: PartitionableMachine,
        algorithm: AllocationAlgorithm,
        cost_model: Optional[MigrationCostModel] = None,
        *,
        collect_leaf_snapshots: bool = True,
    ):
        if algorithm.machine is not machine:
            raise SimulationError(
                "algorithm was constructed for a different machine instance"
            )
        self.machine = machine
        self.algorithm = algorithm
        self.cost_model = cost_model or MigrationCostModel()
        # Lightweight mode: skip the O(N)-per-event leaf snapshot (max-load
        # accounting stays exact); essential for N >= 2^14 runs.
        self.collect_leaf_snapshots = collect_leaf_snapshots
        self._loads = machine.new_load_tracker()
        self._placements: dict[TaskId, NodeId] = {}
        self._tasks: dict[TaskId, Task] = {}
        self._arrived_since_realloc = 0
        self.metrics = MetricsCollector()
        # Full placement history: every (start_time, node) a task ever held,
        # in order.  Fuels the exact slowdown integration
        # (repro.sim.slowdown.placement_intervals / measure_slowdowns).
        self._placement_log: dict[TaskId, list[tuple[float, NodeId]]] = {}
        self._departure_times: dict[TaskId, float] = {}
        self._observers: list = []

    # -- Validation helpers -------------------------------------------------

    def _validate_node_for(self, task: Task, node: NodeId) -> None:
        h = self.machine.hierarchy
        if not h.is_valid_node(node):
            raise PlacementError(
                f"{self.algorithm.name} placed task {task.task_id} at "
                f"invalid node {node}"
            )
        if h.subtree_size(node) != task.size:
            raise PlacementError(
                f"{self.algorithm.name} placed a size-{task.size} task at a "
                f"{h.subtree_size(node)}-PE submachine (node {node})"
            )

    # -- Event processing -----------------------------------------------------

    def _apply_arrival(self, event: Arrival) -> None:
        task = event.task
        if task.task_id in self._placements:
            raise SimulationError(f"duplicate arrival of task {task.task_id}")
        placement = self.algorithm.on_arrival(task)
        if placement.task_id != task.task_id:
            raise PlacementError(
                f"{self.algorithm.name} answered arrival of {task.task_id} "
                f"with a placement for {placement.task_id}"
            )
        self._validate_node_for(task, placement.node)
        self._loads.place(placement.node, task.size)
        self._placements[task.task_id] = placement.node
        self._tasks[task.task_id] = task
        self._placement_log[task.task_id] = [(event.time, placement.node)]
        self._arrived_since_realloc += task.size
        self._offer_reallocation(event.time)

    def _apply_departure(self, event: Departure) -> None:
        node = self._placements.pop(event.task_id, None)
        task = self._tasks.pop(event.task_id, None)
        if node is None or task is None:
            raise SimulationError(f"departure of unknown task {event.task_id}")
        self.algorithm.on_departure(task)
        self._loads.remove(node, task.size)
        self._departure_times[event.task_id] = event.time

    def _offer_reallocation(self, now: float) -> None:
        realloc = self.algorithm.maybe_reallocate(self._arrived_since_realloc)
        if realloc is None:
            return
        d = self.algorithm.reallocation_parameter
        budget = d * self.machine.num_pes
        if self._arrived_since_realloc < budget:
            raise ReallocationError(
                f"{self.algorithm.name} attempted a reallocation after only "
                f"{self._arrived_since_realloc} PE-arrivals; its budget is "
                f"d*N = {budget}"
            )
        self._apply_reallocation(realloc, now)
        self._arrived_since_realloc = 0

    def _apply_reallocation(self, realloc: Reallocation, now: float) -> None:
        mapping = dict(realloc.mapping)
        if set(mapping) != set(self._placements):
            missing = set(self._placements) - set(mapping)
            extra = set(mapping) - set(self._placements)
            raise ReallocationError(
                f"reallocation must remap exactly the active tasks; "
                f"missing={sorted(missing)!r} extra={sorted(extra)!r}"
            )
        self.metrics.realloc.record_reallocation()
        for tid, new_node in mapping.items():
            task = self._tasks[tid]
            self._validate_node_for(task, new_node)
            old_node = self._placements[tid]
            if new_node == old_node:
                self.metrics.realloc.record_stationary()
                continue
            charge = self.cost_model.charge(self.machine, task.size, old_node, new_node)
            self.metrics.realloc.record_move(
                task.size, charge.distance, charge.bytes_moved
            )
            self._loads.remove(old_node, task.size)
            self._loads.place(new_node, task.size)
            self._placements[tid] = new_node
            self._placement_log[tid].append((now, new_node))

    # -- Public API ------------------------------------------------------------

    def add_observer(self, callback) -> None:
        """Register ``callback(simulator, event)`` to run after every event.

        Observers see the post-event state (placements, loads, metrics
        already updated) — the hook the streaming-metrics examples use
        instead of re-implementing the event loop.
        """
        self._observers.append(callback)

    def step(self, event) -> None:
        """Process one event and record metrics."""
        if isinstance(event, Arrival):
            self._apply_arrival(event)
        elif isinstance(event, Departure):
            self._apply_departure(event)
        else:
            raise SimulationError(f"unknown event type {type(event)!r}")
        self.metrics.observe(
            event.time,
            self._loads.max_load,
            self._loads.leaf_loads() if self.collect_leaf_snapshots else None,
        )
        for callback in self._observers:
            callback(self, event)

    def run(self, sequence: TaskSequence) -> RunResult:
        """Drive the whole sequence and return the result bundle."""
        for event in sequence:
            self.step(event)
        return RunResult(
            algorithm_name=self.algorithm.name,
            machine_description=self.machine.describe(),
            metrics=self.metrics,
            optimal_load=sequence.optimal_load(self.machine.num_pes),
            final_placements=dict(self._placements),
        )

    # -- State inspection (used by the adversary and by tests) ---------------------

    @property
    def current_max_load(self) -> int:
        return self._loads.max_load

    @property
    def active_tasks(self) -> dict[TaskId, Task]:
        return dict(self._tasks)

    @property
    def placements(self) -> dict[TaskId, NodeId]:
        return dict(self._placements)

    def leaf_loads(self) -> np.ndarray:
        return self._loads.leaf_loads()

    def submachine_load(self, node: NodeId) -> int:
        return self._loads.submachine_load(node)

    def active_size(self) -> int:
        return sum(t.size for t in self._tasks.values())

    def placement_intervals(self) -> dict[TaskId, list[tuple[float, float, NodeId]]]:
        """Exact (start, end, node) residence segments for every task seen.

        ``end`` is the task's departure time (``inf`` if it never departed)
        or the instant a reallocation moved it.  This is the input the
        slowdown model integrates over — it reflects what actually ran,
        including mid-life migrations.
        """
        intervals: dict[TaskId, list[tuple[float, float, NodeId]]] = {}
        for tid, changes in self._placement_log.items():
            end_of_life = self._departure_times.get(tid, float("inf"))
            segments = []
            for i, (start, node) in enumerate(changes):
                end = changes[i + 1][0] if i + 1 < len(changes) else end_of_life
                if end > start:
                    segments.append((start, end, node))
            intervals[tid] = segments
        return intervals

    def check_consistency(self) -> None:
        """Cross-check tracker vs. placements (test helper)."""
        self._loads.check_invariants()
        expected = np.zeros(self.machine.num_pes, dtype=np.int64)
        h = self.machine.hierarchy
        for tid, node in self._placements.items():
            lo, hi = h.leaf_span(node)
            expected[lo:hi] += 1
        if not np.array_equal(expected, self._loads.leaf_loads()):
            raise SimulationError("leaf loads disagree with placements")

"""Run archives: persist a complete run and re-audit it anywhere.

A reproduction artifact is more convincing when the *evidence* can be
shipped, not just the code: this module writes a run — the task sequence
plus the full placement history — to a single JSON file, and loads it back
for independent re-verification with :func:`repro.sim.audit.audit_run`.

Workflow::

    sim = Simulator(machine, algorithm)
    for ev in sigma: sim.step(ev)
    save_run("run.json", machine, sigma, sim)          # archive

    machine2, sigma2, intervals = load_run("run.json")  # anywhere, later
    audit_run(machine2, sigma2, intervals).raise_if_failed()

The file format is versioned JSON: machine descriptor, task table, event
order, and per-task ``(start, end, node)`` segments.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Mapping, Sequence, Union

from repro.errors import TraceFormatError
from repro.kernel import AllocationKernel
from repro.machines.base import PartitionableMachine
from repro.machines.factory import machine_descriptor, machine_from_descriptor
from repro.sim.engine import RunResult, Simulator
from repro.tasks.sequence import TaskSequence
from repro.tasks.task import Task
from repro.types import NodeId, TaskId

__all__ = ["save_run", "load_run", "load_run_events", "machine_from_descriptor"]

_FORMAT_VERSION = 1

# Descriptor round-trip now lives in repro.machines.factory (the kernel and
# service layers need it without importing sim); the old private name is
# kept for in-repo callers.
_machine_descriptor = machine_descriptor


def _encode_number(x: float):
    return "inf" if math.isinf(x) else x


def _decode_number(x) -> float:
    return math.inf if x == "inf" else float(x)


def save_run(
    path: Union[str, Path],
    machine: PartitionableMachine,
    sequence: TaskSequence,
    simulator: Union[Simulator, AllocationKernel],
    *,
    metadata: Mapping | None = None,
    result: RunResult | None = None,
    events: Sequence[Mapping[str, Any]] | None = None,
    fault_plan=None,
) -> None:
    """Archive one completed run (machine + sequence + placement history).

    ``simulator`` may be a driver or a bare
    :class:`~repro.kernel.AllocationKernel` (an online session archives its
    kernel directly).  Pass the :class:`RunResult` to embed its compact
    summary (no load series — ``to_dict()`` default) under
    ``"result_summary"``; the full series can always be recomputed from the
    archived segments.  ``events`` embeds the raw wire-format event log of
    a streaming run (see :mod:`repro.service.stream`) so the exact online
    history — not just the reconstructed task table — ships with the
    evidence; read it back with :func:`load_run_events`.  ``fault_plan``
    overrides the plan discovered on the simulator (sessions track faults
    outside the driver).
    """
    intervals = simulator.placement_intervals()
    payload = {
        "format_version": _FORMAT_VERSION,
        "machine": _machine_descriptor(machine),
        "algorithm": simulator.algorithm.name,
        "metadata": dict(metadata or {}),
        "tasks": [
            {
                "id": int(t.task_id),
                "size": t.size,
                "arrival": t.arrival,
                "departure": _encode_number(t.departure),
                "work": t.work,
            }
            for t in sorted(sequence.tasks.values(), key=lambda t: int(t.task_id))
        ],
        "segments": {
            str(int(tid)): [
                [start, _encode_number(end), int(node)] for start, end, node in segs
            ]
            for tid, segs in intervals.items()
        },
        "max_load": simulator.metrics.max_load,
    }
    # A fault-injected run archives its plan too, so the evidence file
    # records *why* tasks moved off failed subtrees.
    plan = fault_plan if fault_plan is not None else getattr(simulator, "plan", None)
    if plan is not None and not plan.is_empty:
        payload["faults"] = plan.to_dict()
    if events is not None:
        payload["events"] = [dict(record) for record in events]
    if result is not None:
        payload["result_summary"] = result.to_dict()
    Path(path).write_text(json.dumps(payload, indent=1), encoding="utf-8")


def _read_payload(path: Path) -> dict:
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise TraceFormatError(f"{path}: cannot read run archive: {exc}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        if exc.pos >= len(text.rstrip()):
            raise TraceFormatError(
                f"{path}: truncated run archive — the JSON document ends "
                f"mid-value at offset {exc.pos} (was the writing process "
                "interrupted?)"
            ) from exc
        raise TraceFormatError(f"{path}: invalid run archive: {exc}") from exc
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise TraceFormatError(
            f"{path}: unsupported archive version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    return payload


def load_run(
    path: Union[str, Path],
) -> tuple[PartitionableMachine, TaskSequence, dict[TaskId, list[tuple[float, float, NodeId]]]]:
    """Load an archived run: (machine, sequence, placement intervals).

    Every failure mode names the offending file: corrupt JSON, a truncated
    write (the common crash artifact — detected as JSON that ends
    mid-document), an unsupported version, or missing/garbled fields all
    raise :class:`~repro.errors.TraceFormatError` with ``path`` in the
    message, so a broken archive in a batch is identifiable at a glance.
    """
    path = Path(path)
    payload = _read_payload(path)
    try:
        machine = machine_from_descriptor(payload["machine"])
        tasks = [
            Task(
                TaskId(int(rec["id"])),
                int(rec["size"]),
                float(rec["arrival"]),
                _decode_number(rec["departure"]),
                float(rec.get("work", 1.0)),
            )
            for rec in payload["tasks"]
        ]
        sequence = TaskSequence.from_tasks(tasks)
        intervals: dict[TaskId, list[tuple[float, float, NodeId]]] = {}
        for tid_str, segs in payload["segments"].items():
            intervals[TaskId(int(tid_str))] = [
                (float(start), _decode_number(end), int(node))
                for start, end, node in segs
            ]
    except TraceFormatError as exc:
        raise TraceFormatError(f"{path}: {exc}") from exc
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(
            f"{path}: malformed run archive ({type(exc).__name__}: {exc})"
        ) from exc
    return machine, sequence, intervals


def load_run_events(path: Union[str, Path]) -> list[dict[str, Any]]:
    """The embedded wire-format event log of an archived streaming run.

    Returns ``[]`` for archives written without ``events=`` (batch runs) —
    the task table and segments are still available via :func:`load_run`.
    """
    path = Path(path)
    payload = _read_payload(path)
    events = payload.get("events", [])
    if not isinstance(events, list) or not all(
        isinstance(rec, dict) for rec in events
    ):
        raise TraceFormatError(f"{path}: malformed embedded event log")
    return [dict(rec) for rec in events]

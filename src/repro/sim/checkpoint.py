"""Journaled checkpoint/resume for long-running cell bags.

A :class:`CheckpointJournal` is an append-only JSONL file that records the
result of every completed cell of a sweep (or any other bag of independent
work items).  When the coordinating process dies — SIGKILL, OOM, a pulled
plug — the journal survives, and the next run replays completed cells from
it instead of recomputing them.  Because the executors in
:mod:`repro.sim.parallel` spawn every cell's RNG stream *before* dispatch,
a resumed run produces **bit-identical** final results to an uninterrupted
one: the journal only short-circuits work, never changes it.

File layout::

    {"kind": "repro-checkpoint", "version": 1, "fingerprint": "<sha256>", ...}
    {"cell": 17, "data": "<base64(pickle(result))>"}
    {"cell": 3,  "data": "..."}

* The **header** pins a fingerprint of the workload (callable identity,
  cell parameters, seed streams).  Resuming against a different workload
  is a hard :class:`~repro.errors.CheckpointError` — silently mixing
  results from two different sweeps would be far worse than recomputing.
* Each **record** is one completed cell.  Durability is governed by the
  **fsync policy**: ``always`` (the default) writes every record with
  ``flush`` + ``fsync``, so a crash loses at most the record being
  written; ``batch`` buffers records in user space until an explicit
  :meth:`~CheckpointJournal.commit` (or a :meth:`record_many` group
  commit, or close), trading a bounded loss window — everything since
  the last commit — for one ``fsync`` per batch instead of per record;
  ``interval:<ms>`` buffers and syncs whenever at least that much wall
  time has passed since the last sync.
* A **corrupt tail** (the partial line a crash leaves behind) is detected
  on open, reported with a warning, and truncated away; every record
  before it is kept.

Results are pickled because cell values are arbitrary Python objects
(:class:`~repro.sim.engine.RunResult`, dataclasses, tuples).  The journal
is a private working file, not an interchange format — the schema version
exists so a newer build refuses an older journal instead of misreading it.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import time
import warnings
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from repro.errors import CheckpointError

__all__ = ["CheckpointJournal", "workload_fingerprint"]

#: Bump when the journal layout changes incompatibly.
JOURNAL_VERSION = 1

_HEADER_KIND = "repro-checkpoint"


def _parse_fsync_policy(spec: str) -> tuple[str, float]:
    """``'always' | 'batch' | 'interval:<ms>'`` -> (mode, interval seconds)."""
    if spec in ("always", "batch"):
        return spec, 0.0
    if spec.startswith("interval:"):
        try:
            ms = float(spec.split(":", 1)[1])
        except ValueError:
            ms = -1.0
        if ms <= 0:
            raise CheckpointError(
                f"bad fsync interval in {spec!r}; expected a positive "
                "millisecond count, e.g. 'interval:50'"
            )
        return "interval", ms / 1000.0
    raise CheckpointError(
        f"unknown fsync policy {spec!r}; expected 'always', 'batch', "
        "or 'interval:<ms>'"
    )


def workload_fingerprint(
    fn: Callable[..., Any],
    cells: Sequence[Mapping[str, Any]],
    streams: Sequence[Any] = (),
) -> dict:
    """Fingerprint a seeded cell bag: callable + parameters + entropy.

    Used by :func:`repro.sim.parallel.run_seeded_cells` so a journal
    written for one sweep cannot be replayed into a different one.  The
    stream component covers ``(entropy, spawn_key)`` of every per-cell
    :class:`numpy.random.SeedSequence`, which pins the exact randomness
    each cell would consume.
    """
    cell_digest = hashlib.sha256()
    for params in cells:
        cell_digest.update(
            json.dumps(
                {k: repr(v) for k, v in sorted(params.items())}, sort_keys=True
            ).encode()
        )
    stream_digest = hashlib.sha256()
    for stream in streams:
        stream_digest.update(
            repr((getattr(stream, "entropy", None), getattr(stream, "spawn_key", ()))).encode()
        )
    return {
        "kind": "seeded-cells",
        "fn": f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}",
        "num_cells": len(cells),
        "cells_sha256": cell_digest.hexdigest(),
        "streams_sha256": stream_digest.hexdigest(),
    }


def _fingerprint_digest(fingerprint: Mapping[str, Any]) -> str:
    return hashlib.sha256(
        json.dumps(fingerprint, sort_keys=True, default=repr).encode()
    ).hexdigest()


class CheckpointJournal:
    """Append-only journal of ``(cell index, pickled result)`` records.

    ``fsync_policy`` governs the durability/throughput trade (module
    docstring): ``always`` syncs per record, ``batch`` syncs on
    :meth:`commit` / :meth:`record_many` / :meth:`close`, and
    ``interval:<ms>`` syncs whenever that much wall time has elapsed
    since the last sync.
    """

    def __init__(
        self,
        path,
        *,
        fingerprint: Mapping[str, Any],
        fsync_policy: str = "always",
    ):
        self.path = Path(path)
        self._policy, self._interval_s = _parse_fsync_policy(fsync_policy)
        self.fsync_policy = fsync_policy
        self._pending = 0
        self._pending_bytes = 0
        self._last_sync = time.monotonic()
        self._digest = _fingerprint_digest(fingerprint)
        self._fingerprint = dict(fingerprint)
        self._completed: dict[int, Any] = {}
        self._fh = None
        if self.path.exists():
            self._load_existing()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
            header = {
                "kind": _HEADER_KIND,
                "version": JOURNAL_VERSION,
                "fingerprint": self._digest,
                "workload": self._fingerprint,
            }
            self._write_line(json.dumps(header, sort_keys=True, default=repr))

    # -- Opening / recovery -------------------------------------------------

    def _load_existing(self) -> None:
        raw = self.path.read_text(encoding="utf-8")
        good_chars = 0  # byte offset (in chars) of the validated prefix
        offset = 0
        header: Optional[dict] = None
        bad_reason: Optional[str] = None
        for lineno, piece in enumerate(raw.splitlines(keepends=True), start=1):
            line = piece.rstrip("\n")
            if not piece.endswith("\n"):
                # Every record is written as one ``line + "\n"`` — a final
                # line without its newline is the partial write of a crash,
                # even in the unlikely case it parses as complete JSON.
                bad_reason = f"line {lineno}: truncated final record"
                break
            try:
                record = json.loads(line)
                if header is None:
                    header = record
                    index = None
                else:
                    index = int(record["cell"])
                    value = pickle.loads(base64.b64decode(record["data"]))
            except Exception as exc:
                bad_reason = f"line {lineno}: {type(exc).__name__}: {exc}"
                break
            if header is record:
                self._check_header(header)
            elif index is not None:
                self._completed[index] = value
            offset += len(piece)
            good_chars = offset
        if header is None:
            raise CheckpointError(
                f"checkpoint {self.path} contains no readable header"
            )
        if bad_reason is not None:
            warnings.warn(
                f"checkpoint {self.path}: truncating corrupt tail ({bad_reason}); "
                f"{len(self._completed)} completed cell(s) retained",
                stacklevel=3,
            )
            with open(self.path, "r+", encoding="utf-8") as fh:
                fh.truncate(good_chars)
        self._fh = open(self.path, "a", encoding="utf-8")

    def _check_header(self, header: dict) -> None:
        if header.get("kind") != _HEADER_KIND or header.get("version") != JOURNAL_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path} has kind={header.get('kind')!r} "
                f"version={header.get('version')!r}; this build expects "
                f"{_HEADER_KIND!r} v{JOURNAL_VERSION}"
            )
        if header.get("fingerprint") != self._digest:
            raise CheckpointError(
                f"checkpoint {self.path} was written for a different workload "
                f"(fingerprint {header.get('fingerprint')!r} != {self._digest!r}); "
                "delete it or point --resume at the matching run"
            )

    # -- Recording ----------------------------------------------------------

    def _write_line(self, line: str) -> None:
        # Unconditionally durable — used for the header, which must hit
        # disk before any record regardless of the fsync policy.
        assert self._fh is not None
        self._fh.write(line + "\n")
        self._sync()

    def _sync(self) -> None:
        assert self._fh is not None
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._pending = 0
        self._pending_bytes = 0
        self._last_sync = time.monotonic()

    def _maybe_interval_sync(self) -> None:
        if time.monotonic() - self._last_sync >= self._interval_s:
            self._sync()

    @property
    def pending(self) -> int:
        """Records written but not yet flushed + fsynced (the loss window)."""
        return self._pending

    @property
    def pending_bytes(self) -> int:
        """Bytes written but not yet flushed + fsynced.

        The byte-denominated loss window — the backpressure watermarks in
        :class:`repro.service.slo.SLOPolicy` trip on either this or
        :attr:`pending`, whichever crosses first.
        """
        return self._pending_bytes

    def commit(self) -> None:
        """Make every buffered record durable now (no-op when none pending)."""
        if self._fh is not None and self._pending:
            self._sync()

    def record(self, index: int, value: Any) -> None:
        """Journal one completed cell.

        Durable before return under the ``always`` policy; under ``batch``
        the record stays in the user-space buffer until :meth:`commit`,
        and under ``interval:<ms>`` until the interval elapses.
        """
        if self._fh is None:
            raise CheckpointError(f"checkpoint {self.path} is closed")
        data = base64.b64encode(pickle.dumps(value)).decode("ascii")
        line = json.dumps({"cell": int(index), "data": data}) + "\n"
        self._fh.write(line)
        self._pending += 1
        self._pending_bytes += len(line)
        self._completed[int(index)] = value
        if self._policy == "always":
            self._sync()
        elif self._policy == "interval":
            self._maybe_interval_sync()

    def record_many(self, items: Iterable[tuple[int, Any]]) -> None:
        """Group-commit a batch of cells: one write, one flush, one fsync.

        Under ``always`` and ``batch`` the whole batch (plus anything
        already pending) is durable before return — this is *the*
        group-commit primitive, amortising the per-record ``fsync`` that
        dominates journaled stream ingest.  Under ``interval:<ms>`` the
        batch is buffered and synced only when the interval has elapsed.
        """
        if self._fh is None:
            raise CheckpointError(f"checkpoint {self.path} is closed")
        lines: list[str] = []
        for index, value in items:
            data = base64.b64encode(pickle.dumps(value)).decode("ascii")
            lines.append(json.dumps({"cell": int(index), "data": data}))
            self._completed[int(index)] = value
        if not lines:
            return
        blob = "\n".join(lines) + "\n"
        self._fh.write(blob)
        self._pending += len(lines)
        self._pending_bytes += len(blob)
        if self._policy == "interval":
            self._maybe_interval_sync()
        else:
            self._sync()

    def completed(self) -> dict[int, Any]:
        """Cell index -> result for every journaled cell."""
        return dict(self._completed)

    def drop_tail(self, first_index: int) -> None:
        """Physically discard every record with index >= ``first_index``.

        Distributed crash recovery: when several journals share one
        logical history (the sharded service), the coordinator reconciles
        a common durable prefix and truncates each journal to it — a later
        resume must never replay records past the cutoff.  The file is
        rewritten atomically (temp file + rename, fsync'd) keeping the
        header and every record below the cutoff; a no-op when nothing
        lies at or past it.
        """
        if self._fh is None:
            raise CheckpointError(f"checkpoint {self.path} is closed")
        if all(index < first_index for index in self._completed):
            return
        self.commit()
        self._fh.close()
        self._fh = None
        kept: list[str] = []
        with open(self.path, encoding="utf-8") as fh:
            kept.append(fh.readline())  # header, validated at open
            for line in fh:
                if int(json.loads(line)["cell"]) < first_index:
                    kept.append(line)
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.writelines(kept)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._completed = {
            index: value
            for index, value in self._completed.items()
            if index < first_index
        }
        self._fh = open(self.path, "a", encoding="utf-8")
        self._pending = 0
        self._pending_bytes = 0

    def close(self) -> None:
        """Commit anything pending, then close the file handle."""
        if self._fh is not None:
            self.commit()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
